type severity = Transient | Fatal

type kind = Read_fault | Write_fault | Torn_write | Alloc_fault | Latency

type trigger =
  | Probability of float
  | Nth of int
  | Every of int

type rule = {
  kind : kind;
  trigger : trigger;
  severity : severity;
  delay_s : float;
}

type spec = rule list

exception Injected of { kind : kind; severity : severity; page : int option }

(* A rule armed with its per-site call counters. Decisions depend only on
   the seed and the sequence of storage operations, so a schedule replays
   exactly: same seed + same spec + same operation sequence = same faults. *)
type armed = {
  rule : rule;
  mutable calls : int;
  mutable fired : int;
}

type t = {
  seed : int;
  rng : Random.State.t;
  arms : armed array;
  mutable injected_read : int;
  mutable injected_write : int;
  mutable injected_torn : int;
  mutable injected_alloc : int;
  mutable latency_events : int;
  mutable delayed_s : float;
}

let kind_name = function
  | Read_fault -> "read"
  | Write_fault -> "write"
  | Torn_write -> "torn"
  | Alloc_fault -> "alloc"
  | Latency -> "latency"

let severity_name = function Transient -> "transient" | Fatal -> "fatal"

let () =
  Printexc.register_printer (function
    | Injected { kind; severity; page } ->
        Some
          (Printf.sprintf "Storage.Fault.Injected(%s, %s%s)" (kind_name kind)
             (severity_name severity)
             (match page with
             | Some p -> Printf.sprintf ", page %d" p
             | None -> ""))
    | _ -> None)

let create ?(seed = 0) spec =
  {
    seed;
    rng = Random.State.make [| 0xFA17; seed |];
    arms =
      Array.of_list (List.map (fun rule -> { rule; calls = 0; fired = 0 }) spec);
    injected_read = 0;
    injected_write = 0;
    injected_torn = 0;
    injected_alloc = 0;
    latency_events = 0;
    delayed_s = 0.0;
  }

let seed t = t.seed
let spec t = Array.to_list (Array.map (fun a -> a.rule) t.arms)

(* One decision per operation per matching rule; the rng is consumed only
   by probability triggers, so counter-based schedules never perturb it. *)
let decide t a =
  a.calls <- a.calls + 1;
  let fire =
    match a.rule.trigger with
    | Probability p -> Random.State.float t.rng 1.0 < p
    | Nth n -> a.calls = n
    | Every n -> a.calls mod n = 0
  in
  if fire then a.fired <- a.fired + 1;
  fire

let record t kind =
  match kind with
  | Read_fault -> t.injected_read <- t.injected_read + 1
  | Write_fault -> t.injected_write <- t.injected_write + 1
  | Torn_write -> t.injected_torn <- t.injected_torn + 1
  | Alloc_fault -> t.injected_alloc <- t.injected_alloc + 1
  | Latency -> t.latency_events <- t.latency_events + 1

let delay t a =
  record t Latency;
  t.delayed_s <- t.delayed_s +. a.rule.delay_s;
  if a.rule.delay_s > 0.0 then Unix.sleepf a.rule.delay_s

let inject t a kind page =
  record t kind;
  raise (Injected { kind; severity = a.rule.severity; page })

let on_read fo ~page =
  match fo with
  | None -> ()
  | Some t ->
      Array.iter
        (fun a ->
          match a.rule.kind with
          | Latency -> if decide t a then delay t a
          | Read_fault -> if decide t a then inject t a Read_fault (Some page)
          | Write_fault | Torn_write | Alloc_fault -> ())
        t.arms

let on_write fo ~page tear =
  match fo with
  | None -> ()
  | Some t ->
      Array.iter
        (fun a ->
          match a.rule.kind with
          | Latency -> if decide t a then delay t a
          | Write_fault -> if decide t a then inject t a Write_fault (Some page)
          | Torn_write ->
              if decide t a then begin
                tear ();
                inject t a Torn_write (Some page)
              end
          | Read_fault | Alloc_fault -> ())
        t.arms

let on_alloc fo =
  match fo with
  | None -> ()
  | Some t ->
      Array.iter
        (fun a ->
          match a.rule.kind with
          | Alloc_fault -> if decide t a then inject t a Alloc_fault None
          | Read_fault | Write_fault | Torn_write | Latency -> ())
        t.arms

let injected t =
  t.injected_read + t.injected_write + t.injected_torn + t.injected_alloc

let latency_events t = t.latency_events

let counters t =
  [
    ("fault_read", t.injected_read);
    ("fault_write", t.injected_write);
    ("fault_torn", t.injected_torn);
    ("fault_alloc", t.injected_alloc);
    ("fault_latency", t.latency_events);
  ]

(* ------------------------------------------------------------------ *)
(* Spec syntax: clauses separated by ';', each
   [kind:trigger[:severity][:ms=N]] with kind one of read | write | torn |
   alloc | latency, trigger one of [p=F] | [nth=N] | [every=N], severity
   transient (default) | fatal, and [ms=N] the latency spike in
   milliseconds (latency clauses only; default 1). *)

let trigger_to_string = function
  | Probability p -> Printf.sprintf "p=%g" p
  | Nth n -> Printf.sprintf "nth=%d" n
  | Every n -> Printf.sprintf "every=%d" n

let rule_to_string r =
  let base =
    Printf.sprintf "%s:%s" (kind_name r.kind) (trigger_to_string r.trigger)
  in
  let base =
    if r.severity = Fatal then base ^ ":fatal" else base
  in
  if r.kind = Latency then
    Printf.sprintf "%s:ms=%g" base (1000.0 *. r.delay_s)
  else base

let spec_to_string spec = String.concat ";" (List.map rule_to_string spec)

let parse_rule clause =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ':' (String.trim clause) with
  | [] | [ "" ] -> err "empty fault clause"
  | kind_s :: rest -> (
      let kind =
        match kind_s with
        | "read" -> Ok Read_fault
        | "write" -> Ok Write_fault
        | "torn" -> Ok Torn_write
        | "alloc" -> Ok Alloc_fault
        | "latency" -> Ok Latency
        | k -> err "unknown fault kind %S (read|write|torn|alloc|latency)" k
      in
      match kind with
      | Error _ as e -> e
      | Ok kind -> (
          let trigger = ref None in
          let severity = ref Transient in
          let delay_ms = ref None in
          let bad = ref None in
          List.iter
            (fun field ->
              if !bad = None then
                match String.index_opt field '=' with
                | Some i -> (
                    let key = String.sub field 0 i in
                    let v =
                      String.sub field (i + 1) (String.length field - i - 1)
                    in
                    match key with
                    | "p" -> (
                        match float_of_string_opt v with
                        | Some p when p >= 0.0 && p <= 1.0 ->
                            trigger := Some (Probability p)
                        | _ -> bad := Some ("bad probability " ^ v))
                    | "nth" -> (
                        match int_of_string_opt v with
                        | Some n when n >= 1 -> trigger := Some (Nth n)
                        | _ -> bad := Some ("bad nth " ^ v))
                    | "every" -> (
                        match int_of_string_opt v with
                        | Some n when n >= 1 -> trigger := Some (Every n)
                        | _ -> bad := Some ("bad every " ^ v))
                    | "ms" -> (
                        match float_of_string_opt v with
                        | Some ms when ms >= 0.0 -> delay_ms := Some ms
                        | _ -> bad := Some ("bad ms " ^ v))
                    | k -> bad := Some ("unknown field " ^ k))
                | None -> (
                    match field with
                    | "transient" -> severity := Transient
                    | "fatal" -> severity := Fatal
                    | f -> bad := Some ("unknown field " ^ f)))
            rest;
          match (!bad, !trigger) with
          | Some m, _ -> err "%s in %S" m clause
          | None, None -> err "missing trigger (p=|nth=|every=) in %S" clause
          | None, Some trigger ->
              Ok
                {
                  kind;
                  trigger;
                  severity = !severity;
                  delay_s =
                    (match !delay_ms with
                    | Some ms -> ms /. 1000.0
                    | None -> if kind = Latency then 0.001 else 0.0);
                }))

let parse_spec s =
  let clauses =
    List.filter
      (fun c -> String.trim c <> "")
      (String.split_on_char ';' s)
  in
  if clauses = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc clause ->
        match (acc, parse_rule clause) with
        | Error _, _ -> acc
        | _, (Error _ as e) -> e
        | Ok rules, Ok r -> Ok (r :: rules))
      (Ok []) clauses
    |> Result.map List.rev
