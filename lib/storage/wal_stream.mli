(** WAL shipping primitives — the storage-level half of replication.

    The shipping invariant is {e byte identity}: the primary's sender
    reads raw frames through an independent fd ({!Cursor}) and the
    replica appends them verbatim ({!Appender}), so replica LSNs
    coincide with primary LSNs and every shipped frame re-validates
    locally (CRC-32 + offset stamp). {!Tail} buffers received bytes and
    releases only prefixes ending at a commit point, so the replica's
    log is clean-ended at all times — a read-only {!Wal.open_existing}
    succeeds whenever the applier is between batches, and nothing the
    primary could truncate after a crash is ever made durable on the
    replica. *)

(** Positioned reader over a live log (primary side). Reads through its
    own fd, so it never touches the writer's offset or lock. *)
module Cursor : sig
  type t

  val open_at : path:string -> pos:int -> t
  val pos : t -> int

  val rotated : t -> bool
  (** Whether the path now names a different inode than the open fd — a
      checkpoint rewrote the log (tmp+rename) and every LSN this cursor
      knows is meaningless. The sender must resync subscribers. *)

  val reopen : t -> pos:int -> unit
  (** Re-open the (possibly rotated) path and seek to [pos]. *)

  val read : t -> upto:int -> max:int -> bytes
  (** Read up to [max] bytes, never past offset [upto] (the shippable
      end: [min committed_end written_lsn]). [Bytes.empty] when caught
      up. Advances the cursor. *)

  val close : t -> unit
end

(** Incremental commit-boundary parser over received bytes (replica
    side). *)
module Tail : sig
  type t

  val create : start_lsn:int -> t
  (** [start_lsn] is the file offset of the first byte that will be
      fed — the replica log's current end. *)

  val expected : t -> int
  (** The offset of the next byte the tail wants from the wire (frames
      arriving elsewhere mean the stream desynced — resync). *)

  val feed : t -> bytes -> unit

  type drained = {
    records : (int * Wal.record) list;  (** (end-LSN, record), in order *)
    bytes : bytes;  (** the raw frames behind [records], verbatim *)
    new_end : int;  (** end LSN of the drained prefix *)
  }

  val drain : t -> (drained option, string) result
  (** Release the longest buffered prefix ending at a [Commit] /
      [Checkpoint] boundary — safe to append + fsync locally because the
      primary's recovery can never truncate it. [Ok None] when no
      boundary is buffered yet; [Error _] when a fully-received frame
      fails validation (corrupt stream). *)

  val reset : t -> start_lsn:int -> unit
  (** Drop buffered bytes and restart at [start_lsn] (resync). *)
end

(** Raw byte appender for the replica's log file. *)
module Appender : sig
  type t

  val open_at : path:string -> t
  (** Open for append; [end_lsn] starts at the current file size. *)

  val end_lsn : t -> int
  val append : t -> bytes -> unit
  val fsync : t -> unit
  val close : t -> unit
end

val committed_state : path:string -> (int * int, string) result
(** [(committed_end, epoch)] of the log at [path], read without
    constructing a {!Wal.t}: the last commit-point boundary and the
    maximum epoch bound at or before it (an [Epoch] record binds only
    once a later commit point covers it). Tolerates a torn tail. *)
