exception All_frames_pinned of { page : int; capacity : int }

let () =
  Printexc.register_printer (function
    | All_frames_pinned { page; capacity } ->
        Some
          (Printf.sprintf
             "Buffer_pool.All_frames_pinned(loading page %d, all %d frames \
              pinned)"
             page capacity)
    | _ -> None)

type frame = {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable page_lsn : int;
      (* LSN of the last WAL record that touched this page; 0 = unlogged *)
  mutable pins : int;
  mutable last_use : int;
}

type t = {
  disk : Disk.t;
  wal : Wal.t option;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?wal disk ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity";
  {
    disk;
    wal;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let disk t = t.disk
let wal t = t.wal

let touch t f =
  t.clock <- t.clock + 1;
  f.last_use <- t.clock

let write_back t f =
  if f.dirty then begin
    (* WAL rule: a logged page may reach the data file only after its
       log records — and, because recovery is redo-to-last-commit, only
       after a commit point covering them — are durable. *)
    (match t.wal with
    | Some w when f.page_lsn > 0 -> Wal.ensure_committed w f.page_lsn
    | _ -> ());
    Disk.write ~lsn:f.page_lsn t.disk f.page_id f.data;
    f.dirty <- false
  end

let evict_one t ~for_page =
  let victim =
    Hashtbl.fold
      (fun _ f best ->
        if f.pins > 0 then best
        else
          match best with
          | Some b when b.last_use <= f.last_use -> best
          | _ -> Some f)
      t.frames None
  in
  match victim with
  | None -> raise (All_frames_pinned { page = for_page; capacity = t.capacity })
  | Some f ->
      write_back t f;
      Hashtbl.remove t.frames f.page_id

let load t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
      t.hits <- t.hits + 1;
      touch t f;
      f
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.frames >= t.capacity then evict_one t ~for_page:page_id;
      let f =
        { page_id; data = Disk.read t.disk page_id; dirty = false;
          page_lsn = 0; pins = 0; last_use = 0 }
      in
      touch t f;
      Hashtbl.replace t.frames page_id f;
      f

let read t page_id = (load t page_id).data

let with_write ?lsn t page_id fn =
  let f = load t page_id in
  fn f.data;
  f.dirty <- true;
  match lsn with
  | Some l when l > f.page_lsn -> f.page_lsn <- l
  | _ -> ()

let pin t page_id =
  let f = load t page_id in
  f.pins <- f.pins + 1

let unpin t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some f when f.pins > 0 -> f.pins <- f.pins - 1
  | Some _ | None -> invalid_arg "Buffer_pool.unpin: page not pinned"

let flush t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let reset_lsns t =
  Hashtbl.iter
    (fun _ f -> if not f.dirty then f.page_lsn <- 0)
    t.frames

let drop t =
  flush t;
  Hashtbl.reset t.frames

let hits t = t.hits
let misses t = t.misses
let counters t = (t.hits, t.misses)
