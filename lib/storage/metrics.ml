type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable g_value : float }

(* Log-scale buckets: bucket [i] counts observations in
   [min_bound * 2^i, min_bound * 2^(i+1)); below-range observations land in
   bucket 0, above-range in the last. 64 buckets from 1e-6 cover [1 us,
   ~1.8e13 s] — every duration, count or byte size the engine produces. *)
let n_buckets = 64
let min_bound = 1e-6

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

(* One slot of a sliding-window histogram: the same log2 buckets, plus the
   absolute window index ([slot_epoch]) the data belongs to. A slot whose
   epoch has fallen out of the window is dead; it is zeroed lazily the next
   time its ring position is reused, so expiry costs nothing per
   observation. *)
type window_slot = {
  mutable slot_epoch : int;  (** [-1] = never used *)
  mutable s_n : int;
  mutable s_sum : float;
  mutable s_max : float;
  s_buckets : int array;
}

type window_histogram = {
  w_name : string;
  w_window_s : float;  (** seconds covered by one slot *)
  w_slots : window_slot array;
}

type t = {
  mutable counters : counter list;  (** reverse registration order *)
  mutable histograms : histogram list;
  mutable gauges : gauge list;
  mutable windows : window_histogram list;
}

let create () = { counters = []; histograms = []; gauges = []; windows = [] }

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      t.counters <- c :: t.counters;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let counter_name c = c.c_name

let gauge t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      t.gauges <- g :: t.gauges;
      g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value
let gauge_name g = g.g_name

let histogram t name =
  match List.find_opt (fun h -> h.h_name = name) t.histograms with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          n = 0;
          sum = 0.0;
          min_v = Float.infinity;
          max_v = Float.neg_infinity;
          buckets = Array.make n_buckets 0;
        }
      in
      t.histograms <- h :: t.histograms;
      h

let bucket_of v =
  if v <= min_bound then 0
  else
    let i = int_of_float (Float.log2 (v /. min_bound)) in
    Int.min (n_buckets - 1) (Int.max 0 i)

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_count h = h.n
let hist_sum h = h.sum
let hist_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let hist_min h = if h.n = 0 then 0.0 else h.min_v
let hist_max h = if h.n = 0 then 0.0 else h.max_v
let hist_name h = h.h_name

(* Upper bound of the first bucket whose cumulative count reaches the
   quantile — exact to within a factor of 2 (the bucket width), clamped to
   the observed max. Shared by lifetime and windowed histograms.

   Edge cases (unit-tested): [n = 0] has no observations, so every quantile
   is [nan] — returning a bucket bound would invent a latency that never
   happened. [n = 1] returns the single observation exactly for every [q]:
   the target index clamps to 1, the observation's bucket bound is >= the
   observation, and the clamp to [max_v] brings it back down to the
   observed value. *)
let quantile_of_buckets ~n ~max_v buckets q =
  if n = 0 then Float.nan
  else begin
    let target = Int.max 1 (int_of_float (Float.round (q *. float_of_int n))) in
    let acc = ref 0 and result = ref max_v and found = ref false in
    Array.iteri
      (fun i c ->
        if not !found then begin
          acc := !acc + c;
          if !acc >= target then begin
            found := true;
            result := min_bound *. Float.pow 2.0 (float_of_int (i + 1))
          end
        end)
      buckets;
    Float.min !result max_v
  end

let hist_quantile h q = quantile_of_buckets ~n:h.n ~max_v:h.max_v h.buckets q

(* ------------------------------------------------------------------ *)
(* Sliding-window histograms: a ring of [slots] bucket snapshots, each
   covering [window_s] seconds. Epoch arithmetic replaces timers: the slot
   for instant [now] is [floor (now / window_s) mod slots]; a slot holding
   an older epoch is zeroed before reuse, and readers simply skip slots
   whose epoch has fallen out of the window — so both observation and
   expiry are O(1), with no background thread. *)

let default_window_s = 5.0
let default_slots = 12

let window_histogram t ?(window_s = default_window_s) ?(slots = default_slots)
    name =
  if window_s <= 0.0 then invalid_arg "Metrics.window_histogram: window_s <= 0";
  if slots < 1 then invalid_arg "Metrics.window_histogram: slots < 1";
  match List.find_opt (fun w -> w.w_name = name) t.windows with
  | Some w -> w
  | None ->
      let w =
        {
          w_name = name;
          w_window_s = window_s;
          w_slots =
            Array.init slots (fun _ ->
                {
                  slot_epoch = -1;
                  s_n = 0;
                  s_sum = 0.0;
                  s_max = Float.neg_infinity;
                  s_buckets = Array.make n_buckets 0;
                });
        }
      in
      t.windows <- w :: t.windows;
      w

let window_name w = w.w_name
let window_span_s w = w.w_window_s *. float_of_int (Array.length w.w_slots)

let epoch_of w now = int_of_float (Float.floor (now /. w.w_window_s))

let clear_slot s =
  s.s_n <- 0;
  s.s_sum <- 0.0;
  s.s_max <- Float.neg_infinity;
  Array.fill s.s_buckets 0 n_buckets 0

let observe_window w ~now v =
  let epoch = epoch_of w now in
  let s = w.w_slots.(epoch mod Array.length w.w_slots) in
  if s.slot_epoch <> epoch then begin
    clear_slot s;
    s.slot_epoch <- epoch
  end;
  s.s_n <- s.s_n + 1;
  s.s_sum <- s.s_sum +. v;
  if v > s.s_max then s.s_max <- v;
  let b = bucket_of v in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1

(* Fold the live slots (epoch within the last [slots] windows ending at
   [now]) into one merged view. *)
let window_fold w ~now f init =
  let epoch = epoch_of w now in
  let slots = Array.length w.w_slots in
  Array.fold_left
    (fun acc s ->
      if s.slot_epoch >= 0 && s.slot_epoch <= epoch && epoch - s.slot_epoch < slots
      then f acc s
      else acc)
    init w.w_slots

let window_count w ~now = window_fold w ~now (fun acc s -> acc + s.s_n) 0
let window_sum w ~now = window_fold w ~now (fun acc s -> acc +. s.s_sum) 0.0

let window_max w ~now =
  let m = window_fold w ~now (fun acc s -> Float.max acc s.s_max) Float.neg_infinity in
  if m = Float.neg_infinity then Float.nan else m

let window_quantile w ~now q =
  let merged = Array.make n_buckets 0 in
  let n, max_v =
    window_fold w ~now
      (fun (n, max_v) s ->
        Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) s.s_buckets;
        (n + s.s_n, Float.max max_v s.s_max))
      (0, Float.neg_infinity)
  in
  quantile_of_buckets ~n ~max_v merged q

(* Rate of observations over the window actually covered so far: until the
   ring has wrapped once, dividing by the full span would understate a
   fresh server's qps. *)
let window_rate w ~now =
  let epoch = epoch_of w now in
  let oldest =
    window_fold w ~now (fun acc s -> Int.min acc s.slot_epoch) epoch
  in
  let covered =
    Float.max w.w_window_s (float_of_int (epoch - oldest + 1) *. w.w_window_s)
  in
  float_of_int (window_count w ~now) /. covered

let reset t =
  List.iter (fun c -> c.count <- 0) t.counters;
  List.iter
    (fun h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.min_v <- Float.infinity;
      h.max_v <- Float.neg_infinity;
      Array.fill h.buckets 0 n_buckets 0)
    t.histograms;
  List.iter (fun g -> g.g_value <- 0.0) t.gauges;
  List.iter
    (fun w ->
      Array.iter
        (fun s ->
          clear_slot s;
          s.slot_epoch <- -1)
        w.w_slots)
    t.windows

let counters t = List.rev t.counters
let histograms t = List.rev t.histograms
let gauges t = List.rev t.gauges
let window_histograms t = List.rev t.windows

let pp ppf t =
  let counters = List.rev t.counters and histograms = List.rev t.histograms in
  List.iter
    (fun c -> Format.fprintf ppf "%-32s %d@." c.c_name c.count)
    counters;
  List.iter
    (fun h ->
      Format.fprintf ppf
        "%-32s n=%d mean=%.6g min=%.6g p50<=%.3g p95<=%.3g max=%.6g@."
        h.h_name h.n (hist_mean h) (hist_min h) (hist_quantile h 0.5)
        (hist_quantile h 0.95) (hist_max h))
    histograms;
  List.iter
    (fun g -> Format.fprintf ppf "%-32s %.6g@." g.g_name g.g_value)
    (List.rev t.gauges)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A quantile of an empty histogram is [nan]; JSON has no nan, so it
   travels as [null]. *)
let json_float v =
  if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let to_json ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"counters\": {";
  List.iteri
    (fun i c ->
      if i > 0 then add ", ";
      add "\"%s\": %d" (json_escape c.c_name) c.count)
    (List.rev t.counters);
  add "}, \"gauges\": {";
  List.iteri
    (fun i g ->
      if i > 0 then add ", ";
      add "\"%s\": %s" (json_escape g.g_name) (json_float g.g_value))
    (List.rev t.gauges);
  add "}, \"histograms\": {";
  List.iteri
    (fun i h ->
      if i > 0 then add ", ";
      add
        "\"%s\": {\"count\": %d, \"sum\": %.6g, \"mean\": %.6g, \"min\": \
         %.6g, \"max\": %.6g, \"p50\": %s, \"p95\": %s}"
        (json_escape h.h_name) h.n h.sum (hist_mean h) (hist_min h)
        (hist_max h)
        (json_float (hist_quantile h 0.5))
        (json_float (hist_quantile h 0.95)))
    (List.rev t.histograms);
  add "}, \"windows\": {";
  List.iteri
    (fun i w ->
      if i > 0 then add ", ";
      add
        "\"%s\": {\"span_s\": %.6g, \"count\": %d, \"rate\": %.6g, \"p50\": \
         %s, \"p99\": %s, \"max\": %s}"
        (json_escape w.w_name) (window_span_s w) (window_count w ~now)
        (window_rate w ~now)
        (json_float (window_quantile w ~now 0.5))
        (json_float (window_quantile w ~now 0.99))
        (json_float (window_max w ~now)))
    (List.rev t.windows);
  add "}}";
  Buffer.contents buf
