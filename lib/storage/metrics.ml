type counter = { c_name : string; mutable count : int }

(* Log-scale buckets: bucket [i] counts observations in
   [min_bound * 2^i, min_bound * 2^(i+1)); below-range observations land in
   bucket 0, above-range in the last. 64 buckets from 1e-6 cover [1 us,
   ~1.8e13 s] — every duration, count or byte size the engine produces. *)
let n_buckets = 64
let min_bound = 1e-6

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

type t = {
  mutable counters : counter list;  (** reverse registration order *)
  mutable histograms : histogram list;
}

let create () = { counters = []; histograms = [] }

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      t.counters <- c :: t.counters;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let counter_name c = c.c_name

let histogram t name =
  match List.find_opt (fun h -> h.h_name = name) t.histograms with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          n = 0;
          sum = 0.0;
          min_v = Float.infinity;
          max_v = Float.neg_infinity;
          buckets = Array.make n_buckets 0;
        }
      in
      t.histograms <- h :: t.histograms;
      h

let bucket_of v =
  if v <= min_bound then 0
  else
    let i = int_of_float (Float.log2 (v /. min_bound)) in
    Int.min (n_buckets - 1) (Int.max 0 i)

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_count h = h.n
let hist_sum h = h.sum
let hist_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let hist_min h = if h.n = 0 then 0.0 else h.min_v
let hist_max h = if h.n = 0 then 0.0 else h.max_v
let hist_name h = h.h_name

(* Upper bound of the first bucket whose cumulative count reaches the
   quantile — exact to within a factor of 2 (the bucket width). *)
let hist_quantile h q =
  if h.n = 0 then 0.0
  else begin
    let target =
      Int.max 1 (int_of_float (Float.round (q *. float_of_int h.n)))
    in
    let acc = ref 0 and result = ref h.max_v and found = ref false in
    Array.iteri
      (fun i c ->
        if not !found then begin
          acc := !acc + c;
          if !acc >= target then begin
            found := true;
            result := min_bound *. Float.pow 2.0 (float_of_int (i + 1))
          end
        end)
      h.buckets;
    Float.min !result h.max_v
  end

let reset t =
  List.iter (fun c -> c.count <- 0) t.counters;
  List.iter
    (fun h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.min_v <- Float.infinity;
      h.max_v <- Float.neg_infinity;
      Array.fill h.buckets 0 n_buckets 0)
    t.histograms

let pp ppf t =
  let counters = List.rev t.counters and histograms = List.rev t.histograms in
  List.iter
    (fun c -> Format.fprintf ppf "%-32s %d@." c.c_name c.count)
    counters;
  List.iter
    (fun h ->
      Format.fprintf ppf
        "%-32s n=%d mean=%.6g min=%.6g p50<=%.3g p95<=%.3g max=%.6g@."
        h.h_name h.n (hist_mean h) (hist_min h) (hist_quantile h 0.5)
        (hist_quantile h 0.95) (hist_max h))
    histograms

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"counters\": {";
  List.iteri
    (fun i c ->
      if i > 0 then add ", ";
      add "\"%s\": %d" (json_escape c.c_name) c.count)
    (List.rev t.counters);
  add "}, \"histograms\": {";
  List.iteri
    (fun i h ->
      if i > 0 then add ", ";
      add
        "\"%s\": {\"count\": %d, \"sum\": %.6g, \"mean\": %.6g, \"min\": \
         %.6g, \"max\": %.6g, \"p50\": %.6g, \"p95\": %.6g}"
        (json_escape h.h_name) h.n h.sum (hist_mean h) (hist_min h)
        (hist_max h) (hist_quantile h 0.5) (hist_quantile h 0.95))
    (List.rev t.histograms);
  add "}}";
  Buffer.contents buf
