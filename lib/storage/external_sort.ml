(* Binary min-heap of cursor heads for the k-way merge. *)
module Heap = struct
  type 'a t = { mutable data : 'a array; mutable size : int; le : 'a -> 'a -> bool }

  let create le = { data = [||]; size = 0; le }
  let is_empty h = h.size = 0

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.le h.data.(i) h.data.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && h.le h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && h.le h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (Int.max 4 (2 * h.size)) x in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    top
end

(* Every run builder below frees its temporary pages back to the disk
   when an exception (injected fault, cancellation, ...) aborts the sort:
   partially-written runs are destroyed before the exception propagates,
   so [Sim_disk.live_pages] returns to its pre-sort baseline. *)
let write_run env records =
  let run = Heap_file.create env in
  try
    Array.iter (fun r -> Heap_file.append run r) records;
    run
  with e ->
    Heap_file.destroy run;
    raise e

let make_runs ?cancel env input ~compare ~mem_pages =
  let stats = env.Env.stats in
  let budget = mem_pages * Env.page_size env in
  let counted a b =
    Iostats.record_comparison stats;
    compare a b
  in
  let runs = ref [] in
  let batch = ref [] in
  let batch_bytes = ref 0 in
  let flush () =
    if !batch <> [] then begin
      let arr = Array.of_list (List.rev !batch) in
      Array.sort counted arr;
      runs := write_run env arr :: !runs;
      batch := [];
      batch_bytes := 0
    end
  in
  try
    Heap_file.iter input (fun r ->
        Cancel.check cancel;
        batch := r :: !batch;
        batch_bytes := !batch_bytes + Bytes.length r + 2;
        if !batch_bytes >= budget then flush ());
    flush ();
    List.rev !runs
  with e ->
    List.iter Heap_file.destroy !runs;
    raise e

(* Replacement selection: keep a heap of records; pop the smallest that is
   >= the last record written to the current run; records smaller than the
   last output are frozen for the next run. On random input this doubles the
   average run length (Knuth's snow-plough argument). *)
let make_runs_replacement ?cancel env input ~compare ~mem_pages =
  let stats = env.Env.stats in
  let budget = mem_pages * Env.page_size env in
  let counted_le a b =
    Iostats.record_comparison stats;
    compare a b <= 0
  in
  let heap = Heap.create counted_le in
  let frozen = ref [] in
  let frozen_bytes = ref 0 in
  let in_memory = ref 0 in
  let cursor = Heap_file.Cursor.of_file input in
  let refill () =
    let continue = ref true in
    while !in_memory + !frozen_bytes < budget && !continue do
      match Heap_file.Cursor.next cursor with
      | Some r ->
          Heap.push heap r;
          in_memory := !in_memory + Bytes.length r + 2
      | None -> continue := false
    done
  in
  let runs = ref [] in
  let current = ref None in
  try
    refill ();
    while not (Heap.is_empty heap) do
    let run = Heap_file.create env in
    current := Some run;
    let last = ref None in
    while not (Heap.is_empty heap) do
      Cancel.check cancel;
      let r = Heap.pop heap in
      in_memory := !in_memory - (Bytes.length r + 2);
      (match !last with
      | Some prev when compare r prev < 0 ->
          (* Should not happen: candidates below [last] are frozen before
             they are pushed. *)
          assert false
      | _ -> ());
      Heap_file.append run r;
      last := Some r;
      (* Admit the next input record: into the heap if it can still join
         this run, frozen otherwise. *)
      match Heap_file.Cursor.next cursor with
      | Some next ->
          Iostats.record_comparison stats;
          if compare next r >= 0 then begin
            Heap.push heap next;
            in_memory := !in_memory + Bytes.length next + 2
          end
          else begin
            frozen := next :: !frozen;
            frozen_bytes := !frozen_bytes + Bytes.length next + 2
          end
      | None -> ()
    done;
    runs := run :: !runs;
    current := None;
    (* Thaw the frozen records into the heap for the next run. *)
    List.iter
      (fun r ->
        Heap.push heap r;
        in_memory := !in_memory + Bytes.length r + 2)
      !frozen;
    frozen := [];
    frozen_bytes := 0;
    refill ()
    done;
    List.rev !runs
  with e ->
    Option.iter Heap_file.destroy !current;
    List.iter Heap_file.destroy !runs;
    raise e

type run_strategy = Load_sort | Replacement_selection

let initial_runs ?cancel strategy input ~compare ~mem_pages =
  let env = Heap_file.env input in
  match strategy with
  | Load_sort -> make_runs ?cancel env input ~compare ~mem_pages
  | Replacement_selection ->
      make_runs_replacement ?cancel env input ~compare ~mem_pages

(* On exception the freshly-created output file is destroyed but the input
   runs are left alive: the caller owns them and cleans them up (see the
   [live] tracking in [sort]). On success the input runs are destroyed. *)
let merge_runs ?cancel env runs ~compare =
  let stats = env.Env.stats in
  let out = Heap_file.create env in
  try
    let le (r1, _) (r2, _) =
      Iostats.record_comparison stats;
      compare r1 r2 <= 0
    in
    let heap = Heap.create le in
    List.iter
      (fun run ->
        let c = Heap_file.Cursor.of_file run in
        match Heap_file.Cursor.next c with
        | Some r -> Heap.push heap (r, c)
        | None -> ())
      runs;
    while not (Heap.is_empty heap) do
      Cancel.check cancel;
      let r, c = Heap.pop heap in
      Heap_file.append out r;
      match Heap_file.Cursor.next c with
      | Some r' -> Heap.push heap (r', c)
      | None -> ()
    done;
    List.iter Heap_file.destroy runs;
    out
  with e ->
    Heap_file.destroy out;
    raise e

(* ------------------------------------------------------------------ *)
(* Domain-parallel sort.

   Run formation is the CPU-heavy half of the external sort (the record
   comparator decodes tuples), so it is the part handed to the domain pool:
   the coordinator chops the input scan into slices of [budget / domains]
   bytes and each job sorts one slice and writes it as a run into a
   domain-private environment — its own simulated disk, buffer pool and
   stats record — so no storage structure is shared between domains. The
   parallel engine also decorates: the sort key is decoded once per record
   per phase instead of twice per comparison, which is what makes
   [--domains N] pay off even on machines with few cores. Runs are then
   combined by the same k-way heap merge as the sequential sort (multi-pass
   when the fan-in is exceeded), reading each run through its private pool;
   the final pass writes into the caller's environment. Private stats are
   merged into the shared record with [Iostats.add_into] after the
   coordinator has joined the batch, so counter totals are exact; worker
   page transfers land in the [Other] phase bucket (only the coordinator
   runs inside [Iostats.timed], keeping the response-time model
   wall-clock-shaped). *)

let sort_keyed ~pool ?trace ?cancel input ~key ~compare_key ~mem_pages =
  if mem_pages < 3 then invalid_arg "External_sort.sort_keyed: mem_pages < 3";
  let env = Heap_file.env input in
  let stats = env.Env.stats in
  let page_size = Env.page_size env in
  Iostats.timed stats Iostats.Sort (fun () ->
      let budget = mem_pages * page_size in
      let p = Task_pool.domains pool in
      let total_bytes = Int.max 1 (Heap_file.num_pages input * page_size) in
      let slice_budget = Int.max page_size (Int.min budget total_bytes / p) in
      (* Chop the input scan into slices; the scan itself stays on the
         coordinator (the shared buffer pool is not domain-safe). *)
      let batches = ref [] and cur = ref [] and cur_bytes = ref 0 in
      let cut () =
        if !cur <> [] then begin
          batches := Array.of_list (List.rev !cur) :: !batches;
          cur := [];
          cur_bytes := 0
        end
      in
      Heap_file.iter input (fun r ->
          Cancel.check cancel;
          cur := r :: !cur;
          cur_bytes := !cur_bytes + Bytes.length r + 2;
          if !cur_bytes >= slice_budget then cut ());
      cut ();
      let jobs =
        List.rev_map
          (fun batch jtrace ->
            let penv =
              Env.create ~page_size
                ~pool_pages:(Int.max 1 (mem_pages / p))
                ()
            in
            let pstats = penv.Env.stats in
            (* Phase-tag the private record: the run-writing I/O below must
               count as [Sort] in the merged totals, not [Other]. *)
            Iostats.set_phase pstats (Some Iostats.Sort);
            Trace.with_span jtrace ~stats:pstats "run-formation" (fun () ->
                let keyed = Array.map (fun r -> (key r, r)) batch in
                Array.sort
                  (fun (k1, _) (k2, _) ->
                    Iostats.record_comparison pstats;
                    compare_key k1 k2)
                  keyed;
                let run = Heap_file.create penv in
                Array.iter (fun (_, r) -> Heap_file.append run r) keyed;
                Buffer_pool.flush penv.Env.pool;
                Trace.set_rows jtrace (Array.length batch);
                (run, penv)))
          !batches
      in
      let runs_envs = Task_pool.run_list_traced ?trace ~label:"sort" pool jobs in
      (* Fold the run-formation I/O into the shared record now and reset the
         private records (re-tagging their phase): what accumulates on them
         afterwards is exactly the merge phase's run reads, so the final
         merge below — and the k-way-merge trace span around it — charges
         the merge's cross-environment I/O accurately. Totals are identical
         to a single end-of-sort merge. *)
      List.iter
        (fun (_, pe) ->
          Iostats.add_into stats pe.Env.stats;
          Iostats.reset pe.Env.stats;
          Iostats.set_phase pe.Env.stats (Some Iostats.Sort))
        runs_envs;
      let private_envs = ref (List.map snd runs_envs) in
      (* Decorated k-way merge: the head key is decoded once per record
         pulled, and heap comparisons compare keys only. *)
      let merge_keyed out_env runs =
        (* Destroy the partial output on abort so no pages leak into
           [out_env] — which on the final pass is the caller's shared
           environment (intermediate runs live in private environments
           that are discarded wholesale). *)
        let out = Heap_file.create out_env in
        try
          let le (k1, _, _) (k2, _, _) =
            Iostats.record_comparison stats;
            compare_key k1 k2 <= 0
          in
          let heap = Heap.create le in
          List.iter
            (fun run ->
              let c = Heap_file.Cursor.of_file run in
              match Heap_file.Cursor.next c with
              | Some r -> Heap.push heap (key r, r, c)
              | None -> ())
            runs;
          while not (Heap.is_empty heap) do
            Cancel.check cancel;
            let _, r, c = Heap.pop heap in
            Heap_file.append out r;
            match Heap_file.Cursor.next c with
            | Some r' -> Heap.push heap (key r', r', c)
            | None -> ()
          done;
          List.iter Heap_file.destroy runs;
          out
        with e ->
          Heap_file.destroy out;
          raise e
      in
      let fan_in = mem_pages - 1 in
      (* Intermediate passes write to a scratch private environment; only
         the final pass writes into the caller's (shared) environment, so
         the returned file's pages always live on the shared disk. *)
      let rec merge_all runs =
        if List.length runs <= fan_in then merge_keyed env runs
        else begin
          let scratch =
            Env.create ~page_size ~pool_pages:(Int.max 1 (mem_pages / 2)) ()
          in
          (* Intermediate merge passes write through the scratch record:
             that I/O is sort work too. *)
          Iostats.set_phase scratch.Env.stats (Some Iostats.Sort);
          private_envs := scratch :: !private_envs;
          let rec take k acc = function
            | rest when k = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | r :: rest -> take (k - 1) (r :: acc) rest
          in
          let rec pass acc = function
            | [] -> List.rev acc
            | runs ->
                let group, rest = take fan_in [] runs in
                pass (merge_keyed scratch group :: acc) rest
          in
          merge_all (pass [] runs)
        end
      in
      Trace.with_span trace ~stats "k-way-merge" (fun () ->
          let out = merge_all (List.map fst runs_envs) in
          List.iter
            (fun pe -> Iostats.add_into stats pe.Env.stats)
            !private_envs;
          out))

(* ------------------------------------------------------------------ *)
(* Sequential columnar decorated sort (the batch engine's sort path).

   The sequential [sort] decodes both records on every comparison — the
   dominant cost of the merge-join pipeline. Here run formation decodes
   each record's sort key exactly once into two unboxed float columns
   (support lo / hi) and sorts an index permutation over them, so the
   comparator touches no bytes at all; the k-way merge decorates each
   cursor head the same way. Cancellation is polled once per batch of
   records rather than per comparison. The record multiset and key order
   are identical to [sort] with the corresponding record comparator; only
   ties may land in a different order (exactly like [sort_keyed]). *)

let batch_poll = 1024

let sort_support ?trace ?cancel input ~key ~mem_pages =
  if mem_pages < 3 then invalid_arg "External_sort.sort_support: mem_pages < 3";
  let env = Heap_file.env input in
  let stats = env.Env.stats in
  Iostats.timed stats Iostats.Sort (fun () ->
      let budget = mem_pages * Env.page_size env in
      (* Runs not yet consumed by a merge pass, destroyed on abort like
         [sort]'s. *)
      let live = ref [] in
      let untrack f = live := List.filter (fun g -> g != f) !live in
      try
        let make_runs () =
          let runs = ref [] in
          let batch = ref [] and batch_bytes = ref 0 and seen = ref 0 in
          let flush () =
            if !batch <> [] then begin
              let arr = Array.of_list (List.rev !batch) in
              let n = Array.length arr in
              let klo = Array.make n 0.0 and khi = Array.make n 0.0 in
              for i = 0 to n - 1 do
                let lo, hi = key arr.(i) in
                klo.(i) <- lo;
                khi.(i) <- hi
              done;
              let idx = Array.init n (fun i -> i) in
              Array.sort
                (fun i j ->
                  Iostats.record_comparison stats;
                  let c = Float.compare klo.(i) klo.(j) in
                  if c <> 0 then c else Float.compare khi.(i) khi.(j))
                idx;
              let run = write_run env (Array.map (fun i -> arr.(i)) idx) in
              runs := run :: !runs;
              live := run :: !live;
              batch := [];
              batch_bytes := 0
            end
          in
          Heap_file.iter input (fun r ->
              if !seen land (batch_poll - 1) = 0 then Cancel.check cancel;
              incr seen;
              batch := r :: !batch;
              batch_bytes := !batch_bytes + Bytes.length r + 2;
              if !batch_bytes >= budget then flush ());
          flush ();
          List.rev !runs
        in
        let merge_group group =
          let out = Heap_file.create env in
          try
            let le (l1, h1, _, _) (l2, h2, _, _) =
              Iostats.record_comparison stats;
              let c = Float.compare l1 l2 in
              (if c <> 0 then c else Float.compare h1 h2) <= 0
            in
            let heap = Heap.create le in
            let push_head c =
              match Heap_file.Cursor.next c with
              | Some r ->
                  let lo, hi = key r in
                  Heap.push heap (lo, hi, r, c)
              | None -> ()
            in
            List.iter (fun run -> push_head (Heap_file.Cursor.of_file run)) group;
            let popped = ref 0 in
            while not (Heap.is_empty heap) do
              if !popped land (batch_poll - 1) = 0 then Cancel.check cancel;
              incr popped;
              let _, _, r, c = Heap.pop heap in
              Heap_file.append out r;
              push_head c
            done;
            List.iter Heap_file.destroy group;
            out
          with e ->
            Heap_file.destroy out;
            raise e
        in
        let fan_in = mem_pages - 1 in
        let rec merge_all = function
          | [] -> Heap_file.create env
          | [ only ] ->
              untrack only;
              only
          | runs ->
              let rec take k acc = function
                | rest when k = 0 -> (List.rev acc, rest)
                | [] -> (List.rev acc, [])
                | r :: rest -> take (k - 1) (r :: acc) rest
              in
              let rec pass acc = function
                | [] -> List.rev acc
                | runs ->
                    let group, rest = take fan_in [] runs in
                    let out = merge_group group in
                    List.iter untrack group;
                    live := out :: !live;
                    pass (out :: acc) rest
              in
              merge_all (pass [] runs)
        in
        let runs =
          Trace.with_span trace ~stats ~pool:env.Env.pool "run-formation"
            (fun () -> make_runs ())
        in
        Trace.with_span trace ~stats ~pool:env.Env.pool "k-way-merge" (fun () ->
            merge_all runs)
      with e ->
        List.iter Heap_file.destroy !live;
        raise e)

let sort ?(run_strategy = Load_sort) ?trace ?cancel input ~compare ~mem_pages =
  if mem_pages < 3 then invalid_arg "External_sort.sort: mem_pages < 3";
  let env = Heap_file.env input in
  let stats = env.Env.stats in
  Iostats.timed stats Iostats.Sort (fun () ->
      (* Runs not yet consumed by a merge pass; destroyed if the sort is
         aborted by an exception or a cancelled token, so no temp pages
         leak (the builders clean their own partial output). *)
      let live = ref [] in
      let untrack f = live := List.filter (fun g -> g != f) !live in
      try
        let fan_in = mem_pages - 1 in
        let rec merge_all = function
          | [] -> Heap_file.create env
          | [ only ] ->
              untrack only;
              only
          | runs ->
              let rec take k acc = function
                | rest when k = 0 -> (List.rev acc, rest)
                | [] -> (List.rev acc, [])
                | r :: rest -> take (k - 1) (r :: acc) rest
              in
              let rec pass acc = function
                | [] -> List.rev acc
                | runs ->
                    let group, rest = take fan_in [] runs in
                    let out = merge_runs ?cancel env group ~compare in
                    List.iter untrack group;
                    live := out :: !live;
                    pass (out :: acc) rest
              in
              merge_all (pass [] runs)
        in
        let runs =
          Trace.with_span trace ~stats ~pool:env.Env.pool "run-formation"
            (fun () -> initial_runs ?cancel run_strategy input ~compare ~mem_pages)
        in
        live := runs;
        Trace.with_span trace ~stats ~pool:env.Env.pool "k-way-merge" (fun () ->
            merge_all runs)
      with e ->
        List.iter Heap_file.destroy !live;
        raise e)
