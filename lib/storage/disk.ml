(* Backend dispatch: every consumer of page storage (buffer pool, heap
   files, benches, tests) goes through this type, so the simulated and
   durable backends are interchangeable per environment. Plain variant
   dispatch, not a functor: the storage stack stays concrete records and
   the backend is chosen at runtime by [Env.create]/[Env.open_durable]. *)

module type S = sig
  type disk

  val page_size : disk -> int
  val stats : disk -> Iostats.t
  val set_fault : disk -> Fault.t option -> unit
  val fault : disk -> Fault.t option
  val alloc : disk -> int
  val read : disk -> int -> bytes
  val num_pages : disk -> int
  val live_pages : disk -> int
  val free_pages : disk -> int
  val free : disk -> int list -> unit
end

(* Both backends satisfy the contract; checked here so a drifting API
   fails the build rather than the docs. *)
module _ : S with type disk := Sim_disk.t = Sim_disk
module _ : S with type disk := Real_disk.t = Real_disk

type t = Sim of Sim_disk.t | Real of Real_disk.t

let sim d = Sim d
let real d = Real d

let is_durable = function Sim _ -> false | Real _ -> true
let as_sim = function Sim d -> Some d | Real _ -> None
let as_real = function Real d -> Some d | Sim _ -> None

let page_size = function
  | Sim d -> Sim_disk.page_size d
  | Real d -> Real_disk.page_size d

let stats = function
  | Sim d -> Sim_disk.stats d
  | Real d -> Real_disk.stats d

let set_fault t f =
  match t with
  | Sim d -> Sim_disk.set_fault d f
  | Real d -> Real_disk.set_fault d f

let fault = function
  | Sim d -> Sim_disk.fault d
  | Real d -> Real_disk.fault d

let alloc = function
  | Sim d -> Sim_disk.alloc d
  | Real d -> Real_disk.alloc d

let read = function
  | Sim d -> Sim_disk.read d
  | Real d -> Real_disk.read d

let write ?lsn t page buf =
  match t with
  | Sim d -> Sim_disk.write d page buf (* simulated pages carry no LSN *)
  | Real d -> Real_disk.write ?lsn d page buf

let num_pages = function
  | Sim d -> Sim_disk.num_pages d
  | Real d -> Real_disk.num_pages d

let live_pages = function
  | Sim d -> Sim_disk.live_pages d
  | Real d -> Real_disk.live_pages d

let free_pages = function
  | Sim d -> Sim_disk.free_pages d
  | Real d -> Real_disk.free_pages d

let free t pages =
  match t with
  | Sim d -> Sim_disk.free d pages
  | Real d -> Real_disk.free d pages

let sync = function
  | Sim _ -> () (* nothing to make durable *)
  | Real d -> Real_disk.sync d
