(** Execution tracing: hierarchical spans over the query engine.

    A trace is a tree of {e spans}, one per plan operator execution (scan,
    reduce, sort run-formation, k-way merge, sweep, join, dedup, ...) plus
    one per {!Task_pool} job, tagged with a lane (domain/partition) id. Each
    span carries wall-clock start/duration and a delta snapshot of the
    {!Iostats} counters (page reads/writes, tuple comparisons, fuzzy-library
    calls) — and optionally {!Buffer_pool} hit/miss deltas and output /
    estimated cardinalities.

    The whole engine threads a [Trace.t option]: [None] is the no-op sink —
    every entry point short-circuits to the traced function with no
    allocation, so tracing disabled costs nothing on the execution paths and
    bench numbers are unchanged.

    Concurrency discipline mirrors {!Iostats}: a collector is
    single-threaded. Parallel operators {!fork} a child collector per pool
    job (sharing the parent's time origin, tagged with the job's lane) and
    {!graft} it back under the coordinator's open span once the batch has
    joined. *)

type t
(** A span collector (single-threaded; see {!fork} for worker domains). *)

type span

val create : unit -> t
(** A fresh collector; its creation time is the trace's time origin. *)

val fork : t -> lane:int -> t
(** A detached collector sharing [t]'s time origin, for one parallel job.
    Spans opened on the fork default to [lane]. Must be {!graft}ed back. *)

val graft : t -> t -> unit
(** [graft t child] re-parents [child]'s root spans under [t]'s innermost
    open span (or as roots). Call on the coordinator after the batch joins. *)

val with_span :
  t option -> ?lane:int -> ?stats:Iostats.t -> ?pool:Buffer_pool.t ->
  string -> (unit -> 'a) -> 'a
(** [with_span trace name f] runs [f] inside a span. With [trace = None]
    this is exactly [f ()] — no allocation. [?stats] snapshots the Iostats
    counters at entry/exit and stores the deltas on the span; [?pool]
    likewise for buffer-pool hits/misses. Exception-safe (the span is closed
    and the exception re-raised). *)

val add_timed_span :
  t option -> ?lane:int -> string -> start_s:float -> dur_s:float -> unit
(** Attach a pre-measured span (no counter deltas) under the innermost open
    span. [start_s] is an absolute [Unix.gettimeofday] instant — it is
    rebased onto the trace's time origin, so a span timed before the
    collector existed (a server request's queue wait, measured at admission)
    still lands at the right offset. No-op when the trace is [None]. *)

val set_rows : t option -> int -> unit
(** Record the output cardinality on the innermost open span. No-op when
    the trace is [None] or no span is open. *)

val set_est_rows : t option -> float -> unit
(** Record the planner's estimated cardinality on the innermost open span. *)

(** {1 Inspection} *)

val roots : t -> span list
val span_name : span -> string
val span_lane : span -> int
val span_children : span -> span list
val span_duration : span -> float
val span_ios : span -> int
val span_reads : span -> int
val span_writes : span -> int
val span_compares : span -> int
val span_fuzzy_ops : span -> int
val span_rows : span -> int option
val span_est_rows : span -> float option

val span_set_est_rows : span -> float -> unit
(** Attach an estimate after the fact (EXPLAIN ANALYZE computes estimates
    outside the measured run so histogram scans don't pollute the trace). *)

val iter_spans : t -> (span -> unit) -> unit
(** Depth-first over all spans. *)

val span_count : t -> int

(** {1 Exporters} *)

val pp_tree : Format.formatter -> t -> unit
(** Human-readable tree: per-span time, I/Os, comparisons, fuzzy ops, cache
    hits, rows, estimate error, lane. *)

val to_json : t -> string
(** Hierarchical JSON of the span tree. *)

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON (an array of ["ph": "X"] complete events, one
    thread per lane) — loads in [chrome://tracing] and Perfetto; the
    parallel sweep/sort lanes appear as separate tracks. *)

val write_chrome : t -> path:string -> unit
