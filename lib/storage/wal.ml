(* Append-only redo log with LSN-stamped, CRC-checksummed records.

   LSNs are byte offsets: a record's LSN is the file offset just past its
   last byte, so [flush up to LSN l] means [the first l bytes of the log
   are on disk]. The log also carries the durable catalog ("manifest"):
   which page belongs to which durable file and each file's opaque
   metadata blob, snapshotted into every checkpoint record so recovery
   never needs a separate catalog file.

   Redo is physical within a page: [Heap_append] records are byte-range
   overwrites, and the first post-checkpoint touch of a page that already
   existed at checkpoint time logs a full [Page_image] first (the
   torn-page defence: recovery rebuilds every touched page from its image
   plus deltas and never reads a possibly-torn page from the data file).
   Pages allocated after the checkpoint start from zeroes, like
   [Sim_disk.alloc]'s contract.

   Commit records mark durability points. Recovery replays the log only
   up to the last valid commit/checkpoint record, and the buffer pool
   forces a commit before any dirty logged page reaches the data file
   (see [ensure_committed]), so the data file never contains bytes from
   beyond a commit point: restart state is exactly the last committed
   state. *)

type sync_mode = Always | Group | Never

let sync_mode_name = function
  | Always -> "always"
  | Group -> "group"
  | Never -> "never"

let sync_mode_of_string = function
  | "always" -> Some Always
  | "group" -> Some Group
  | "never" -> Some Never
  | _ -> None

type record =
  | Alloc of { fid : int; page : int }
  | Page_image of { page : int; data : bytes }
  | Heap_append of { page : int; off : int; count : int; data : bytes }
  | Free of { fid : int }
  | Define of { fid : int; meta : bytes }
  | Commit
  | Checkpoint of {
      next_fid : int;
      files : (int * bytes * int array) list;
      epoch : int;
    }
  | Epoch of { epoch : int }

exception Read_only of string

let () =
  Printexc.register_printer (function
    | Read_only op -> Some (Printf.sprintf "Wal.Read_only(%s)" op)
    | _ -> None)

let magic = "FSQLWAL1"
let header_size = String.length magic

type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  readonly : bool;
  mode : sync_mode;
  lock : Mutex.t;
  cond : Condition.t;
  buf : Buffer.t;  (** appended records not yet written to [fd] *)
  mutable next_lsn : int;  (** end offset of the last appended record *)
  mutable written_lsn : int;  (** bytes handed to the kernel *)
  mutable durable_lsn : int;  (** bytes known fsynced *)
  mutable committed_end : int;  (** LSN of the last commit/checkpoint *)
  mutable syncing : bool;  (** a group-commit leader is in fsync *)
  (* counters for the wal bench and tests *)
  mutable commits : int;
  mutable fsyncs : int;
  mutable appended : int;
  (* manifest: the durable catalog, maintained on every append and
     rebuilt from the log on open *)
  mutable next_fid : int;
  files : (int, int list ref) Hashtbl.t;  (** fid -> pages, reversed *)
  metas : (int, bytes) Hashtbl.t;
  epoch_fresh : (int, unit) Hashtbl.t;
      (** pages allocated or imaged since the last checkpoint: no
          full-page image needed before their next delta *)
  mutable epoch : int;
      (** replication epoch — monotone, bumped at promotion, persisted
          in every checkpoint record and by explicit [Epoch] records *)
}

(* ------------------------------------------------------------------ *)
(* Little-endian scratch encoding *)

let add_u16 b v =
  Buffer.add_uint8 b (v land 0xff);
  Buffer.add_uint8 b ((v lsr 8) land 0xff)

let add_u32 b v =
  for k = 0 to 3 do
    Buffer.add_uint8 b ((v lsr (8 * k)) land 0xff)
  done

let add_u64 b v =
  for k = 0 to 7 do
    Buffer.add_uint8 b ((v lsr (8 * k)) land 0xff)
  done

let get_u16 s off = Bytes.get_uint8 s off lor (Bytes.get_uint8 s (off + 1) lsl 8)

let get_u32 s off =
  let v = ref 0 in
  for k = 3 downto 0 do
    v := (!v lsl 8) lor Bytes.get_uint8 s (off + k)
  done;
  !v

let get_u64 s off =
  let v = ref 0 in
  for k = 7 downto 0 do
    v := (!v lsl 8) lor Bytes.get_uint8 s (off + k)
  done;
  !v

(* ------------------------------------------------------------------ *)
(* Record frames: [u32 body_len][u8 tag][u64 start_off][body][u32 crc],
   crc over tag+start_off+body. [start_off] pins the record to its file
   position, so a record blitted to the wrong offset fails validation. *)

let tag_of = function
  | Alloc _ -> 1
  | Page_image _ -> 2
  | Heap_append _ -> 3
  | Free _ -> 4
  | Define _ -> 5
  | Commit -> 6
  | Checkpoint _ -> 7
  | Epoch _ -> 8

let encode_body b = function
  | Alloc { fid; page } ->
      add_u32 b fid;
      add_u32 b page
  | Page_image { page; data } ->
      add_u32 b page;
      Buffer.add_bytes b data
  | Heap_append { page; off; count; data } ->
      add_u32 b page;
      add_u16 b off;
      add_u16 b count;
      Buffer.add_bytes b data
  | Free { fid } -> add_u32 b fid
  | Define { fid; meta } ->
      add_u32 b fid;
      Buffer.add_bytes b meta
  | Commit -> ()
  | Checkpoint { next_fid; files; epoch } ->
      add_u32 b next_fid;
      add_u32 b (List.length files);
      List.iter
        (fun (fid, meta, pages) ->
          add_u32 b fid;
          add_u32 b (Bytes.length meta);
          Buffer.add_bytes b meta;
          add_u32 b (Array.length pages);
          Array.iter (add_u32 b) pages)
        files;
      (* The replication epoch trails the file list so pre-epoch logs
         (whose bodies end exactly at the list) still decode. *)
      add_u32 b epoch
  | Epoch { epoch } -> add_u32 b epoch

let decode_body tag body =
  let len = Bytes.length body in
  match tag with
  | 1 when len = 8 -> Some (Alloc { fid = get_u32 body 0; page = get_u32 body 4 })
  | 2 when len >= 4 ->
      Some (Page_image { page = get_u32 body 0; data = Bytes.sub body 4 (len - 4) })
  | 3 when len >= 8 ->
      Some
        (Heap_append
           {
             page = get_u32 body 0;
             off = get_u16 body 4;
             count = get_u16 body 6;
             data = Bytes.sub body 8 (len - 8);
           })
  | 4 when len = 4 -> Some (Free { fid = get_u32 body 0 })
  | 5 when len >= 4 ->
      Some (Define { fid = get_u32 body 0; meta = Bytes.sub body 4 (len - 4) })
  | 6 when len = 0 -> Some Commit
  | 7 when len >= 8 -> (
      try
        let next_fid = get_u32 body 0 in
        let nfiles = get_u32 body 4 in
        let pos = ref 8 in
        let files =
          List.init nfiles (fun _ ->
              let fid = get_u32 body !pos in
              let mlen = get_u32 body (!pos + 4) in
              let meta = Bytes.sub body (!pos + 8) mlen in
              pos := !pos + 8 + mlen;
              let npages = get_u32 body !pos in
              pos := !pos + 4;
              let pages =
                Array.init npages (fun i -> get_u32 body (!pos + (4 * i)))
              in
              pos := !pos + (4 * npages);
              (fid, meta, pages))
        in
        if !pos = len then Some (Checkpoint { next_fid; files; epoch = 0 })
        else if !pos + 4 = len then
          Some (Checkpoint { next_fid; files; epoch = get_u32 body !pos })
        else None
      with Invalid_argument _ -> None)
  | 8 when len = 4 -> Some (Epoch { epoch = get_u32 body 0 })
  | _ -> None

(* Frame a record destined for offset [start] into [out]. *)
let add_frame out ~start record =
  let body = Buffer.create 64 in
  encode_body body record;
  let body = Buffer.to_bytes body in
  let protected = Buffer.create (Bytes.length body + 16) in
  Buffer.add_uint8 protected (tag_of record);
  add_u64 protected start;
  Buffer.add_bytes protected body;
  let protected = Buffer.to_bytes protected in
  let crc = Crc32.bytes protected in
  add_u32 out (Bytes.length body);
  Buffer.add_bytes out protected;
  add_u32 out (Int32.to_int crc land 0xffffffff);
  4 + Bytes.length protected + 4

(* ------------------------------------------------------------------ *)
(* Scanning (recovery + open) *)

type scan = {
  scan_records : (int * record) list;  (** (end-LSN, record), log order *)
  scan_valid_end : int;  (** offset just past the last valid record *)
  scan_file_len : int;
  scan_bad_header : bool;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

type stream_status = Stream_ok | Stream_bad

(* Parse frames from [data.[off .. off+len)] whose first byte lives at
   file offset [base]. Returns the decoded records (with end-LSNs), the
   bytes consumed, and whether parsing stopped at an incomplete trailing
   frame ([Stream_ok] — feed more bytes) or at a frame that is fully
   present yet invalid ([Stream_bad] — bad CRC, wrong offset stamp, or
   undecodable body). This is the replication tail's incremental parser;
   {!scan} is the whole-file special case. *)
let parse_stream ?(off = 0) ?len data ~base =
  let avail = match len with Some l -> l | None -> Bytes.length data - off in
  let records = ref [] in
  let pos = ref 0 in
  let status = ref Stream_ok in
  let stop = ref false in
  while not !stop do
    if !pos + 17 > avail then stop := true
    else begin
      let body_len = get_u32 data (off + !pos) in
      let frame_len = 17 + body_len in
      if !pos + frame_len > avail then stop := true
      else begin
        let protected = Bytes.sub data (off + !pos + 4) (9 + body_len) in
        let crc = get_u32 data (off + !pos + 13 + body_len) in
        if Int32.to_int (Crc32.bytes protected) land 0xffffffff <> crc then begin
          status := Stream_bad;
          stop := true
        end
        else begin
          let tag = Bytes.get_uint8 protected 0 in
          let start = get_u64 protected 1 in
          if start <> base + !pos then begin
            status := Stream_bad;
            stop := true
          end
          else
            match decode_body tag (Bytes.sub protected 9 body_len) with
            | None ->
                status := Stream_bad;
                stop := true
            | Some r ->
                pos := !pos + frame_len;
                records := (base + !pos, r) :: !records
        end
      end
    end
  done;
  (List.rev !records, !pos, !status)

let scan path =
  if not (Sys.file_exists path) then
    { scan_records = []; scan_valid_end = 0; scan_file_len = 0; scan_bad_header = true }
  else begin
    let data = read_file path in
    let len = Bytes.length data in
    if len < header_size || Bytes.sub_string data 0 header_size <> magic then
      { scan_records = []; scan_valid_end = 0; scan_file_len = len; scan_bad_header = true }
    else begin
      let records, consumed, _status =
        parse_stream data ~off:header_size ~base:header_size
      in
      {
        scan_records = records;
        scan_valid_end = header_size + consumed;
        scan_file_len = len;
        scan_bad_header = false;
      }
    end
  end

(* ------------------------------------------------------------------ *)
(* Manifest maintenance *)

let file_pages t fid =
  match Hashtbl.find_opt t.files fid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.files fid l;
      l

let apply_manifest t = function
  | Alloc { fid; page } ->
      let l = file_pages t fid in
      l := page :: !l;
      if fid >= t.next_fid then t.next_fid <- fid + 1;
      Hashtbl.replace t.epoch_fresh page ()
  | Page_image { page; _ } -> Hashtbl.replace t.epoch_fresh page ()
  | Heap_append _ | Commit -> ()
  | Free { fid } ->
      Hashtbl.remove t.files fid;
      Hashtbl.remove t.metas fid
  | Define { fid; meta } ->
      ignore (file_pages t fid);
      Hashtbl.replace t.metas fid meta;
      if fid >= t.next_fid then t.next_fid <- fid + 1
  | Checkpoint { next_fid; files; epoch } ->
      Hashtbl.reset t.files;
      Hashtbl.reset t.metas;
      Hashtbl.reset t.epoch_fresh;
      t.next_fid <- next_fid;
      if epoch > t.epoch then t.epoch <- epoch;
      List.iter
        (fun (fid, meta, pages) ->
          Hashtbl.replace t.files fid (ref (List.rev (Array.to_list pages)));
          if Bytes.length meta > 0 then Hashtbl.replace t.metas fid meta)
        files
  | Epoch { epoch } -> if epoch > t.epoch then t.epoch <- epoch

let manifest t =
  Mutex.lock t.lock;
  let out =
    Hashtbl.fold
      (fun fid pages acc ->
        let meta =
          Option.value (Hashtbl.find_opt t.metas fid) ~default:Bytes.empty
        in
        (fid, meta, Array.of_list (List.rev !pages)) :: acc)
      t.files []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) out

let manifest_snapshot_locked t =
  let files =
    Hashtbl.fold
      (fun fid pages acc ->
        let meta =
          Option.value (Hashtbl.find_opt t.metas fid) ~default:Bytes.empty
        in
        (fid, meta, Array.of_list (List.rev !pages)) :: acc)
      t.files []
  in
  let files = List.sort (fun (a, _, _) (b, _, _) -> compare a b) files in
  Checkpoint { next_fid = t.next_fid; files; epoch = t.epoch }

(* ------------------------------------------------------------------ *)
(* File I/O *)

let fd_exn t op =
  match t.fd with
  | Some fd -> fd
  | None -> invalid_arg ("Wal." ^ op ^ ": closed")

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

(* Hand the buffered tail to the kernel (no fsync). Caller holds the lock. *)
let write_out_locked t =
  if Buffer.length t.buf > 0 then begin
    if t.readonly then raise (Read_only "write");
    let data = Buffer.to_bytes t.buf in
    write_all (fd_exn t "write") data 0 (Bytes.length data);
    Buffer.clear t.buf;
    t.written_lsn <- t.next_lsn
  end

let fsync_fd t =
  Unix.fsync (fd_exn t "fsync");
  t.fsyncs <- t.fsyncs + 1

(* ------------------------------------------------------------------ *)
(* Appending *)

let append_locked t record =
  if t.readonly then raise (Read_only "append");
  let start = t.next_lsn in
  ignore (add_frame t.buf ~start record);
  t.next_lsn <- t.written_lsn + Buffer.length t.buf;
  t.appended <- t.appended + 1;
  apply_manifest t record;
  (match record with
  | Commit | Checkpoint _ -> t.committed_end <- t.next_lsn
  | _ -> ());
  t.next_lsn

let append t record =
  Mutex.lock t.lock;
  let lsn =
    try append_locked t record
    with e ->
      Mutex.unlock t.lock;
      raise e
  in
  Mutex.unlock t.lock;
  lsn

(* Make everything up to [target] durable, per sync mode. Caller holds
   the lock; may release and retake it (group mode). *)
let rec sync_to_locked t target =
  match t.mode with
  | Never -> write_out_locked t
  | Always ->
      write_out_locked t;
      if t.durable_lsn < target then begin
        fsync_fd t;
        t.durable_lsn <- t.written_lsn
      end
  | Group ->
      if t.durable_lsn < target then
        if t.syncing then begin
          (* A leader is fsyncing: wait for it, then re-check — our
             records may have missed its write-out batch. *)
          Condition.wait t.cond t.lock;
          sync_to_locked t target
        end
        else begin
          t.syncing <- true;
          write_out_locked t;
          let upto = t.written_lsn in
          Mutex.unlock t.lock;
          (* fsync outside the lock: committers arriving now append to
             the buffer and are batched into the next leader's fsync. *)
          (try Unix.fsync (fd_exn t "fsync")
           with e ->
             Mutex.lock t.lock;
             t.syncing <- false;
             Condition.broadcast t.cond;
             Mutex.unlock t.lock;
             raise e);
          Mutex.lock t.lock;
          t.fsyncs <- t.fsyncs + 1;
          if upto > t.durable_lsn then t.durable_lsn <- upto;
          t.syncing <- false;
          Condition.broadcast t.cond;
          sync_to_locked t target
        end

let sync_committed_locked t = sync_to_locked t t.committed_end

let commit t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.next_lsn > t.committed_end then begin
        ignore (append_locked t Commit);
        t.commits <- t.commits + 1
      end;
      sync_committed_locked t)

let ensure_committed t lsn =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.committed_end < lsn then begin
        ignore (append_locked t Commit);
        t.commits <- t.commits + 1
      end;
      sync_to_locked t lsn)

(* ------------------------------------------------------------------ *)
(* Logged operations (called by Heap_file) *)

let new_file t =
  Mutex.lock t.lock;
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  Hashtbl.replace t.files fid (ref []);
  Mutex.unlock t.lock;
  fid

let log_alloc t ~fid ~page = append t (Alloc { fid; page })

let log_heap_append t ~page ~off ~count ~data ~image =
  Mutex.lock t.lock;
  if Hashtbl.mem t.epoch_fresh page then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> append_locked t (Heap_append { page; off; count; data }))
  else begin
    (* First touch of a pre-checkpoint page this epoch: log its full
       before-image so recovery rebuilds it without reading the
       (possibly torn) data file. [image] must run with the lock
       RELEASED — it reads through the buffer pool, whose eviction path
       re-enters this WAL ([ensure_committed]) on the same non-recursive
       mutex, so calling it while holding the lock self-deadlocks. *)
    Mutex.unlock t.lock;
    let img = image () in
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        (* Re-check: a concurrent appender may have imaged the page, or
           a checkpoint reset the epoch, while the lock was released.
           The captured image is still the page's pre-append content
           (heap writers are single-threaded per file), so it is valid
           to log in either epoch. *)
        if not (Hashtbl.mem t.epoch_fresh page) then
          ignore (append_locked t (Page_image { page; data = img }));
        append_locked t (Heap_append { page; off; count; data }))
  end

let log_define t ~fid ~meta = ignore (append t (Define { fid; meta }))
let log_free t ~fid = ignore (append t (Free { fid }))

(* ------------------------------------------------------------------ *)
(* Checkpoint: the caller has flushed and fsynced the data file; rewrite
   the log as a single checkpoint record carrying the manifest. The new
   log is written to a temp file and renamed over the old one, so a
   crash during checkpoint leaves either the complete old log or the
   complete new one — never a torn log in front of an already-advanced
   data file. *)

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dfd ->
      Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () ->
          try Unix.fsync dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let checkpoint t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.readonly then raise (Read_only "checkpoint");
      ignore (fd_exn t "checkpoint");
      let snapshot = manifest_snapshot_locked t in
      let out = Buffer.create 4096 in
      Buffer.add_string out magic;
      ignore (add_frame out ~start:header_size snapshot);
      let data = Buffer.to_bytes out in
      let tmp = t.path ^ ".tmp" in
      let tfd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      (try
         write_all tfd data 0 (Bytes.length data);
         Unix.fsync tfd;
         Unix.close tfd
       with e ->
         Unix.close tfd;
         raise e);
      Unix.rename tmp t.path;
      fsync_dir t.path;
      (match t.fd with Some fd -> Unix.close fd | None -> ());
      t.fd <- Some (Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644);
      t.fsyncs <- t.fsyncs + 1;
      Buffer.clear t.buf;
      Hashtbl.reset t.epoch_fresh;
      t.next_lsn <- Bytes.length data;
      t.written_lsn <- t.next_lsn;
      t.durable_lsn <- t.next_lsn;
      t.committed_end <- t.next_lsn)

(* ------------------------------------------------------------------ *)
(* Opening *)

exception Needs_recovery of string

let () =
  Printexc.register_printer (function
    | Needs_recovery path -> Some (Printf.sprintf "Wal.Needs_recovery(%s)" path)
    | _ -> None)

let make ~path ~mode ~readonly ~fd =
  {
    path;
    fd = Some fd;
    readonly;
    mode;
    lock = Mutex.create ();
    cond = Condition.create ();
    buf = Buffer.create 4096;
    next_lsn = header_size;
    written_lsn = header_size;
    durable_lsn = header_size;
    committed_end = header_size;
    syncing = false;
    commits = 0;
    fsyncs = 0;
    appended = 0;
    next_fid = 0;
    files = Hashtbl.create 16;
    metas = Hashtbl.create 16;
    epoch_fresh = Hashtbl.create 64;
    epoch = 0;
  }

let create ~path ~mode =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ] 0o644
  in
  let t = make ~path ~mode ~readonly:false ~fd in
  write_all fd (Bytes.of_string magic) 0 header_size;
  Unix.fsync fd;
  t

(* Open a clean log (last record is a commit or checkpoint and the file
   has no torn tail); raises [Needs_recovery] otherwise — run
   {!Recovery.recover} first. *)
let open_existing ~path ~mode ~readonly =
  let s = scan path in
  if s.scan_bad_header then raise (Needs_recovery path);
  if s.scan_valid_end <> s.scan_file_len then raise (Needs_recovery path);
  (match List.rev s.scan_records with
  | (_, (Commit | Checkpoint _)) :: _ | [] -> ()
  | _ -> raise (Needs_recovery path));
  let fd =
    if readonly then Unix.openfile path [ Unix.O_RDONLY ] 0o644
    else Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
  in
  let t = make ~path ~mode ~readonly ~fd in
  List.iter (fun (_, r) -> apply_manifest t r) s.scan_records;
  t.next_lsn <- s.scan_valid_end;
  t.written_lsn <- s.scan_valid_end;
  t.durable_lsn <- s.scan_valid_end;
  t.committed_end <- s.scan_valid_end;
  t

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (match t.fd with
      | Some fd ->
          if not t.readonly then write_out_locked t;
          Unix.close fd
      | None -> ());
      t.fd <- None)

(* Abandon without writing anything buffered — the crash simulation used
   by recovery tests. *)
let crash t =
  Mutex.lock t.lock;
  (match t.fd with Some fd -> Unix.close fd | None -> ());
  t.fd <- None;
  Buffer.clear t.buf;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Introspection *)

let path t = t.path
let mode t = t.mode
let readonly t = t.readonly
let size t = t.next_lsn
let committed_end t = t.committed_end
let durable_lsn t = t.durable_lsn
let commits t = t.commits
let fsyncs t = t.fsyncs
let appended t = t.appended
let is_fresh_page t page = Hashtbl.mem t.epoch_fresh page

let epoch t =
  Mutex.lock t.lock;
  let e = t.epoch in
  Mutex.unlock t.lock;
  e

let written_lsn t =
  Mutex.lock t.lock;
  let l = t.written_lsn in
  Mutex.unlock t.lock;
  l

(* Record an epoch bump (promotion). The caller follows with {!commit} so
   the log stays clean-ended; the new epoch is also carried by every
   subsequent checkpoint snapshot. *)
let log_epoch t epoch = ignore (append t (Epoch { epoch }))
