type t = {
  stats : Iostats.t;
  disk : Sim_disk.t;
  pool : Buffer_pool.t;
}

let create ?(page_size = 8192) ?(pool_pages = 256) () =
  let stats = Iostats.create () in
  let disk = Sim_disk.create ~page_size stats in
  let pool = Buffer_pool.create disk ~capacity:pool_pages in
  { stats; disk; pool }

let page_size t = Sim_disk.page_size t.disk
let set_fault t f = Sim_disk.set_fault t.disk f
let fault t = Sim_disk.fault t.disk

let reset_stats t =
  Buffer_pool.drop t.pool;
  Iostats.reset t.stats
