type t = {
  stats : Iostats.t;
  disk : Disk.t;
  pool : Buffer_pool.t;
  temp_disk : Disk.t;
  temp_pool : Buffer_pool.t;
  wal : Wal.t option;
  recovery : Recovery.report option;
}

let create ?(page_size = 8192) ?(pool_pages = 256) () =
  let stats = Iostats.create () in
  let disk = Disk.sim (Sim_disk.create ~page_size stats) in
  let pool = Buffer_pool.create disk ~capacity:pool_pages in
  (* Simulated environments make no durable/temporary distinction: temp
     pages live on the same disk, so every existing test and bench sees
     the exact pre-durability behaviour. *)
  { stats; disk; pool; temp_disk = disk; temp_pool = pool; wal = None;
    recovery = None }

let open_durable ?(page_size = 8192) ?(pool_pages = 256)
    ?(wal_sync = Wal.Group) ?(readonly = false) ~dir () =
  let stats = Iostats.create () in
  let disk, wal, recovery =
    if readonly then begin
      (* Read-only openers (daemon workers after the coordinator has
         recovered) require a clean log; Wal.open_existing enforces it. *)
      let rdisk = Real_disk.open_existing ~readonly:true ~dir stats in
      let wal =
        Wal.open_existing ~path:(Recovery.wal_path_of dir) ~mode:wal_sync
          ~readonly:true
      in
      (rdisk, wal, None)
    end
    else begin
      let rdisk, wal, report = Recovery.recover ~page_size ~mode:wal_sync ~dir stats in
      (rdisk, wal, Some report)
    end
  in
  let disk = Disk.real disk in
  let pool = Buffer_pool.create ~wal disk ~capacity:pool_pages in
  (* Temporary pages (sort runs, materialised intermediates) stay
     unlogged and in memory: a private simulated disk charging I/O to
     the same stats record, with its own pool half the main one's size
     (minimum 64 pages). *)
  let temp_disk =
    Disk.sim (Sim_disk.create ~page_size:(Disk.page_size disk) stats)
  in
  let temp_pool =
    Buffer_pool.create temp_disk ~capacity:(max 64 (pool_pages / 2))
  in
  { stats; disk; pool; temp_disk; temp_pool; wal = Some wal; recovery }

let is_durable t = Disk.is_durable t.disk
let page_size t = Disk.page_size t.disk
let set_fault t f = Disk.set_fault t.disk f
let fault t = Disk.fault t.disk
let wal t = t.wal
let recovery t = t.recovery

let manifest t =
  match t.wal with Some w -> Wal.manifest w | None -> []

let flush t =
  Buffer_pool.flush t.pool;
  if t.temp_pool != t.pool then Buffer_pool.flush t.temp_pool

let commit t =
  Buffer_pool.flush t.pool;
  match t.wal with Some w -> Wal.commit w | None -> ()

let checkpoint t =
  match t.wal with
  | None -> flush t
  | Some w ->
      Buffer_pool.flush t.pool;
      Disk.sync t.disk;
      Wal.checkpoint w;
      Buffer_pool.reset_lsns t.pool

let reset_stats t =
  Buffer_pool.drop t.pool;
  if t.temp_pool != t.pool then Buffer_pool.drop t.temp_pool;
  Iostats.reset t.stats

let close t =
  (match t.wal with
  | Some w when not (Wal.readonly w) ->
      checkpoint t;
      Wal.close w
  | Some w -> Wal.close w
  | None -> ());
  match Disk.as_real t.disk with
  | Some d -> Real_disk.close d
  | None -> ()

let crash t =
  (match t.wal with Some w -> Wal.crash w | None -> ());
  match Disk.as_real t.disk with
  | Some d -> Real_disk.close d
  | None -> ()
