(** Storage-backend dispatch.

    The page-store contract both backends implement — abstracted out of
    {!Sim_disk} so an environment can run on the in-memory simulated
    disk (the default; the paper's Section 9 I/O model) or on
    {!Real_disk}, a checksummed data-directory file. All page consumers
    ({!Buffer_pool}, {!Heap_file}, benches, tests) dispatch through this
    type, so the choice is made once, in {!Env.create} /
    {!Env.open_durable}.

    The contract, shared with {!Sim_disk} (and documented there):
    [alloc] returns a zeroed page and is uncounted I/O; [read]/[write]
    count one transfer in the backend's {!Iostats}; out-of-range ids
    raise {!Sim_disk.Bad_page}; wrong-size buffers raise
    {!Sim_disk.Write_size}; an attached {!Fault} plane is consulted on
    every operation. The durable backend additionally raises
    {!Real_disk.Checksum_mismatch} when a page fails trailer
    validation. *)

(** The module-level contract, for documentation and for writing
    backend-generic test helpers against a first-class module. *)
module type S = sig
  type disk

  val page_size : disk -> int
  val stats : disk -> Iostats.t
  val set_fault : disk -> Fault.t option -> unit
  val fault : disk -> Fault.t option
  val alloc : disk -> int
  val read : disk -> int -> bytes
  val num_pages : disk -> int
  val live_pages : disk -> int
  val free_pages : disk -> int
  val free : disk -> int list -> unit
end

type t = Sim of Sim_disk.t | Real of Real_disk.t

val sim : Sim_disk.t -> t
val real : Real_disk.t -> t

val is_durable : t -> bool
(** [true] for the real-disk backend: pages survive process exit and
    writes must obey the WAL rule. *)

val as_sim : t -> Sim_disk.t option
val as_real : t -> Real_disk.t option

val page_size : t -> int
val stats : t -> Iostats.t
val set_fault : t -> Fault.t option -> unit
val fault : t -> Fault.t option
val alloc : t -> int
val read : t -> int -> bytes

val write : ?lsn:int -> t -> int -> bytes -> unit
(** [lsn] is the WAL position of the record that last touched this page;
    stamped into the page trailer on the durable backend, ignored by the
    simulated one. *)

val num_pages : t -> int
val live_pages : t -> int
val free_pages : t -> int
val free : t -> int list -> unit

val sync : t -> unit
(** fsync the durable backend; no-op on the simulated one. *)
