type span = {
  name : string;
  lane : int;
  start_s : float;
  mutable dur_s : float;
  mutable reads : int;
  mutable writes : int;
  mutable compares : int;
  mutable fuzzy : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable rows : int;
  mutable est_rows : float;
  mutable rev_children : span list;
}

type t = {
  t0 : float;
  lane : int;
  mutable stack : span list;  (** open spans, innermost first *)
  mutable rev_roots : span list;
}

let now () = Unix.gettimeofday ()

let make_with_t0 ~t0 ~lane = { t0; lane; stack = []; rev_roots = [] }
let create () = make_with_t0 ~t0:(now ()) ~lane:0
let fork t ~lane = make_with_t0 ~t0:t.t0 ~lane

let attach t sp =
  match t.stack with
  | parent :: _ -> parent.rev_children <- sp :: parent.rev_children
  | [] -> t.rev_roots <- sp :: t.rev_roots

let graft t child =
  List.iter (attach t) (List.rev child.rev_roots);
  child.rev_roots <- []

let open_span t ?lane ?stats ?pool name =
  let sp =
    {
      name;
      lane = (match lane with Some l -> l | None -> t.lane);
      start_s = now () -. t.t0;
      dur_s = 0.0;
      reads = (match stats with Some s -> -Iostats.page_reads s | None -> 0);
      writes = (match stats with Some s -> -Iostats.page_writes s | None -> 0);
      compares = (match stats with Some s -> -Iostats.comparisons s | None -> 0);
      fuzzy = (match stats with Some s -> -Iostats.fuzzy_ops s | None -> 0);
      pool_hits = (match pool with Some p -> -Buffer_pool.hits p | None -> 0);
      pool_misses = (match pool with Some p -> -Buffer_pool.misses p | None -> 0);
      rows = -1;
      est_rows = Float.nan;
      rev_children = [];
    }
  in
  attach t sp;
  t.stack <- sp :: t.stack;
  sp

let close_span t ?stats ?pool sp =
  sp.dur_s <- now () -. t.t0 -. sp.start_s;
  (match stats with
  | Some s ->
      sp.reads <- sp.reads + Iostats.page_reads s;
      sp.writes <- sp.writes + Iostats.page_writes s;
      sp.compares <- sp.compares + Iostats.comparisons s;
      sp.fuzzy <- sp.fuzzy + Iostats.fuzzy_ops s
  | None ->
      sp.reads <- 0;
      sp.writes <- 0;
      sp.compares <- 0;
      sp.fuzzy <- 0);
  (match pool with
  | Some p ->
      sp.pool_hits <- sp.pool_hits + Buffer_pool.hits p;
      sp.pool_misses <- sp.pool_misses + Buffer_pool.misses p
  | None ->
      sp.pool_hits <- 0;
      sp.pool_misses <- 0);
  match t.stack with
  | top :: rest when top == sp -> t.stack <- rest
  | _ -> invalid_arg "Trace.close_span: span is not innermost"

let with_span trace ?lane ?stats ?pool name f =
  match trace with
  | None -> f ()
  | Some t -> (
      let sp = open_span t ?lane ?stats ?pool name in
      match f () with
      | v ->
          close_span t ?stats ?pool sp;
          v
      | exception e ->
          close_span t ?stats ?pool sp;
          raise e)

(* A pre-measured span (e.g. a server request's queue wait, timed by the
   admission layer before any worker ran code for it) attached under the
   innermost open span. [start_s] is absolute wall-clock time; counters are
   zero. *)
let add_timed_span trace ?lane name ~start_s ~dur_s =
  match trace with
  | None -> ()
  | Some t ->
      let sp =
        {
          name;
          lane = (match lane with Some l -> l | None -> t.lane);
          start_s = start_s -. t.t0;
          dur_s;
          reads = 0;
          writes = 0;
          compares = 0;
          fuzzy = 0;
          pool_hits = 0;
          pool_misses = 0;
          rows = -1;
          est_rows = Float.nan;
          rev_children = [];
        }
      in
      attach t sp

let annotate trace g =
  match trace with
  | None -> ()
  | Some t -> ( match t.stack with sp :: _ -> g sp | [] -> ())

let set_rows trace n = annotate trace (fun sp -> sp.rows <- n)
let set_est_rows trace e = annotate trace (fun sp -> sp.est_rows <- e)

(* ------------------------------------------------------------------ *)
(* Inspection *)

let roots t = List.rev t.rev_roots
let span_name sp = sp.name
let span_lane (sp : span) = sp.lane
let span_children sp = List.rev sp.rev_children
let span_duration sp = sp.dur_s
let span_ios sp = sp.reads + sp.writes
let span_reads sp = sp.reads
let span_writes sp = sp.writes
let span_compares sp = sp.compares
let span_fuzzy_ops sp = sp.fuzzy
let span_rows sp = if sp.rows < 0 then None else Some sp.rows

let span_est_rows sp =
  if Float.is_nan sp.est_rows then None else Some sp.est_rows

let span_set_est_rows sp e = sp.est_rows <- e

let iter_spans t f =
  let rec go sp =
    f sp;
    List.iter go (span_children sp)
  in
  List.iter go (roots t)

let span_count t =
  let n = ref 0 in
  iter_spans t (fun _ -> incr n);
  !n

(* ------------------------------------------------------------------ *)
(* Exporters *)

let str_ms s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s
  else Printf.sprintf "%.2f ms" (1000.0 *. s)

let span_line buf sp =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s  %s" sp.name (str_ms sp.dur_s);
  if sp.reads + sp.writes > 0 then add "  ios=%d+%d" sp.reads sp.writes;
  if sp.compares > 0 then add "  cmp=%d" sp.compares;
  if sp.fuzzy > 0 then add "  fuzzy=%d" sp.fuzzy;
  if sp.pool_hits + sp.pool_misses > 0 then
    add "  cache=%d/%d" sp.pool_hits (sp.pool_hits + sp.pool_misses);
  if sp.rows >= 0 then add "  rows=%d" sp.rows;
  if not (Float.is_nan sp.est_rows) then begin
    add "  est~%.0f" sp.est_rows;
    if sp.rows > 0 && sp.est_rows > 0.0 then
      add " (x%.2f)" (Float.max sp.est_rows (float_of_int sp.rows)
                      /. Float.min sp.est_rows (float_of_int sp.rows))
  end;
  if sp.lane > 0 then add "  [lane %d]" sp.lane

let pp_tree ppf t =
  let buf = Buffer.create 1024 in
  let rec go prefix child_prefix sp =
    Buffer.add_string buf prefix;
    span_line buf sp;
    Buffer.add_char buf '\n';
    let children = span_children sp in
    let n = List.length children in
    List.iteri
      (fun i c ->
        let last = i = n - 1 in
        go
          (child_prefix ^ if last then "`- " else "|- ")
          (child_prefix ^ if last then "   " else "|  ")
          c)
      children
  in
  List.iter (fun sp -> go "" "" sp) (roots t);
  Format.pp_print_string ppf (Buffer.contents buf)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_args_json buf sp =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"reads\": %d, \"writes\": %d, \"compares\": %d, \"fuzzy_ops\": %d"
    sp.reads sp.writes sp.compares sp.fuzzy;
  if sp.pool_hits + sp.pool_misses > 0 then
    add ", \"cache_hits\": %d, \"cache_misses\": %d" sp.pool_hits
      sp.pool_misses;
  if sp.rows >= 0 then add ", \"rows\": %d" sp.rows;
  if not (Float.is_nan sp.est_rows) then add ", \"est_rows\": %.1f" sp.est_rows;
  add "}"

let to_json t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec go sp =
    add "{\"name\": \"%s\", \"lane\": %d, \"start_s\": %.6f, \"dur_s\": %.6f, \
         \"args\": "
      (json_escape sp.name) sp.lane sp.start_s sp.dur_s;
    span_args_json buf sp;
    add ", \"children\": [";
    List.iteri
      (fun i c ->
        if i > 0 then add ", ";
        go c)
      (span_children sp);
    add "]}"
  in
  add "[";
  List.iteri
    (fun i sp ->
      if i > 0 then add ", ";
      go sp)
    (roots t);
  add "]";
  Buffer.contents buf

(* Chrome trace_event format: an array of complete ("ph": "X") events with
   microsecond timestamps, one thread lane per trace lane, loadable in
   chrome://tracing and Perfetto. *)
let to_chrome_json t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else add ",\n"
  in
  let lanes = Hashtbl.create 8 in
  iter_spans t (fun sp -> Hashtbl.replace lanes sp.lane ());
  let lane_list = List.sort Int.compare (Hashtbl.fold (fun l () acc -> l :: acc) lanes []) in
  List.iter
    (fun lane ->
      sep ();
      add
        "  {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
         \"thread_name\", \"args\": {\"name\": \"%s\"}}"
        lane
        (if lane = 0 then "coordinator" else Printf.sprintf "domain %d" lane))
    lane_list;
  iter_spans t (fun sp ->
      sep ();
      add
        "  {\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"name\": \"%s\", \
         \"ts\": %.3f, \"dur\": %.3f, \"args\": "
        sp.lane (json_escape sp.name)
        (1e6 *. sp.start_s)
        (1e6 *. sp.dur_s);
      span_args_json buf sp;
      add "}");
  add "\n]\n";
  Buffer.contents buf

let write_chrome t ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc
