(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]).

    Used for the page trailers of {!Real_disk} and the record checksums of
    {!Wal}. Any single-byte corruption of the protected region changes the
    digest, which is what the corruption-detection qcheck property relies
    on. *)

val update : int32 -> bytes -> pos:int -> len:int -> int32
(** Fold more bytes into a running digest (start from [0l]). Raises
    [Invalid_argument] if the slice is out of bounds. *)

val digest : bytes -> pos:int -> len:int -> int32
val bytes : bytes -> int32
val string : string -> int32
