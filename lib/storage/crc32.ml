(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Guards every
   persisted page trailer and WAL record; any single-byte corruption of a
   protected region changes the digest. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !c (Int32.of_int (Bytes.get_uint8 buf i)))
           0xffl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let digest buf ~pos ~len = update 0l buf ~pos ~len
let bytes buf = digest buf ~pos:0 ~len:(Bytes.length buf)
let string s = bytes (Bytes.unsafe_of_string s)
