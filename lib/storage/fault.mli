(** Seeded, deterministic fault injection for the simulated storage stack.

    A fault plane is attached to a {!Sim_disk.t} (usually via
    {!Env.set_fault}) and consulted on every disk read, write and page
    allocation. Each rule in a {!spec} matches one operation kind and
    fires according to its trigger: a per-operation probability drawn
    from a seeded PRNG, the nth operation at that site, or every nth
    operation. Because decisions depend only on the seed and the
    sequence of storage operations, a fault schedule replays exactly:
    same seed + same spec + same operation sequence = same faults. This
    is what lets the chaos harness assert that retried queries return
    answers bit-identical to a fault-free run.

    Injected faults carry a severity: [Transient] faults model
    recoverable conditions (flaky I/O) that the serving layer may retry;
    [Fatal] faults model conditions after which the worker's environment
    is suspect and must be rebuilt. Genuine programming errors keep
    their own typed exceptions ({!Sim_disk.Bad_page},
    {!Buffer_pool.All_frames_pinned}, ...) and are never injected. *)

type severity = Transient | Fatal

type kind =
  | Read_fault  (** read fails; no data returned *)
  | Write_fault  (** write fails before any byte reaches the page *)
  | Torn_write  (** half the buffer reaches the page, then the write fails *)
  | Alloc_fault  (** page allocation fails; disk state unchanged *)
  | Latency  (** the operation sleeps [delay_s], then proceeds normally *)

type trigger =
  | Probability of float  (** fire with probability [p] per operation *)
  | Nth of int  (** fire exactly on the nth operation (1-based), once *)
  | Every of int  (** fire on every nth operation *)

type rule = {
  kind : kind;
  trigger : trigger;
  severity : severity;  (** ignored for [Latency] *)
  delay_s : float;  (** sleep duration; [Latency] rules only *)
}

type spec = rule list

type t

exception Injected of { kind : kind; severity : severity; page : int option }
(** Raised at an instrumented site when a non-latency rule fires.
    [page] is the disk page involved, when the site has one. *)

val create : ?seed:int -> spec -> t
(** Fresh plane with all call counters at zero. Default seed 0. *)

val seed : t -> int
val spec : t -> spec

(** {2 Instrumented sites}

    Called by [Sim_disk]; a [None] plane is a no-op (the fault-free fast
    path). These either return normally, sleep (latency rules), or raise
    {!Injected}. *)

val on_read : t option -> page:int -> unit

val on_write : t option -> page:int -> (unit -> unit) -> unit
(** [on_write fo ~page tear] — when a [Torn_write] rule fires, [tear]
    is invoked to blit the torn prefix into the page before the
    exception is raised. *)

val on_alloc : t option -> unit

(** {2 Introspection} *)

val injected : t -> int
(** Total faults raised so far (latency events excluded). *)

val latency_events : t -> int

val counters : t -> (string * int) list
(** Per-kind injection counts, e.g. [("fault_read", 3); ...]. *)

(** {2 Spec syntax}

    Clauses separated by [';'], each
    [kind:trigger\[:severity\]\[:ms=N\]]:
    - kind: [read] | [write] | [torn] | [alloc] | [latency]
    - trigger: [p=F] (probability) | [nth=N] | [every=N]
    - severity: [transient] (default) | [fatal]
    - [ms=N]: latency spike in milliseconds (latency clauses; default 1)

    Example: ["read:p=0.05;write:nth=100:fatal;latency:p=0.02:ms=5"]. *)

val parse_spec : string -> (spec, string) result
val spec_to_string : spec -> string
val kind_name : kind -> string
val severity_name : severity -> string
