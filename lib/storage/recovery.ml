(* Crash recovery: redo-only restart in the ARIES mould, specialised to
   this engine's no-uncommitted-data invariant.

   Analysis = one log scan: find the last valid commit point (truncating
   the torn/uncommitted tail behind it) and rebuild the manifest. Redo =
   replay the committed records into in-memory page images — every
   replayed page starts from an [Alloc] (zeroes) or a [Page_image]
   record, never from the data file, so torn data pages are simply
   overwritten. No undo pass exists because [Wal.ensure_committed]
   guarantees the data file never holds effects from beyond a commit
   point. Recovery ends with a checkpoint, so a crash loop cannot grow
   the log. *)

let wal_file = "wal.fsql"
let wal_path_of dir = Filename.concat dir wal_file

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Recovery.Corrupt(%s)" msg)
    | _ -> None)

type report = {
  clean : bool;
  wal_records : int;  (** valid records found in the log *)
  replayed : int;  (** committed records redone *)
  truncated_bytes : int;  (** torn / uncommitted tail removed *)
  pages_redone : int;  (** distinct pages rebuilt from the log *)
  duration_s : float;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d wal records, %d replayed, %d pages redone, %d bytes truncated, %.3f ms"
    (if r.clean then "clean" else "recovered")
    r.wal_records r.replayed r.pages_redone r.truncated_bytes
    (r.duration_s *. 1e3)

(* Catalog consistency: every manifest page must exist on the disk and
   belong to exactly one file. *)
let verify_catalog wal disk =
  let num_pages = Real_disk.num_pages disk in
  let owner = Hashtbl.create 64 in
  List.iter
    (fun (fid, _, pages) ->
      Array.iter
        (fun p ->
          if p < 0 || p >= num_pages then
            raise
              (Corrupt
                 (Printf.sprintf "file %d references page %d beyond disk end %d"
                    fid p num_pages));
          match Hashtbl.find_opt owner p with
          | Some other ->
              raise
                (Corrupt
                   (Printf.sprintf "page %d owned by both file %d and file %d"
                      p other fid))
          | None -> Hashtbl.replace owner p fid)
        pages)
    (Wal.manifest wal)

(* Rebuild the free list as the complement of manifest-live pages. *)
let rebuild_free_list wal disk =
  let live = Hashtbl.create 64 in
  List.iter
    (fun (_, _, pages) -> Array.iter (fun p -> Hashtbl.replace live p ()) pages)
    (Wal.manifest wal);
  let frees = ref [] in
  for p = Real_disk.num_pages disk - 1 downto 0 do
    if not (Hashtbl.mem live p) then frees := p :: !frees
  done;
  Real_disk.reset_free disk !frees

let truncate_to path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd len;
      Unix.fsync fd)

(* Replay committed records into page-size images. Every replayed page
   begins life as zeroes (Alloc) or a logged full image, never as bytes
   read from the possibly-torn data file. *)
let redo ~psize records boundary =
  let images : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
  let replayed = ref 0 in
  let image_of page =
    match Hashtbl.find_opt images page with
    | Some b -> b
    | None ->
        let b = Bytes.make psize '\000' in
        Hashtbl.replace images page b;
        b
  in
  let apply = function
    | Wal.Alloc { page; _ } ->
        Hashtbl.replace images page (Bytes.make psize '\000')
    | Wal.Page_image { page; data } ->
        let b = Bytes.make psize '\000' in
        Bytes.blit data 0 b 0 (min (Bytes.length data) psize);
        Hashtbl.replace images page b
    | Wal.Heap_append { page; off; count; data } ->
        (* A CRC-valid record can still be logically bad (e.g. the WAL
           was paired with a data file of a different page size): bounds
           must hold against THIS file's page size or the blit below
           would abort recovery with an untyped Invalid_argument. *)
        let len = Bytes.length data in
        if off < 2 || off + len > psize then
          raise
            (Corrupt
               (Printf.sprintf
                  "heap append on page %d spans [%d, %d) outside page size %d"
                  page off (off + len) psize));
        let img = image_of page in
        Bytes.blit data 0 img off len;
        Bytes.set_uint8 img 0 (count land 0xff);
        Bytes.set_uint8 img 1 ((count lsr 8) land 0xff)
    | Wal.Free _ | Wal.Define _ | Wal.Commit | Wal.Checkpoint _ | Wal.Epoch _
      ->
        ()
  in
  List.iter
    (fun (end_lsn, r) ->
      if end_lsn <= boundary then begin
        apply r;
        incr replayed
      end)
    records;
  (images, !replayed)

let recover ?(page_size = 8192) ?(mode = Wal.Group) ?(checkpoint = true) ~dir
    stats =
  let t0 = Unix.gettimeofday () in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let wal_path = wal_path_of dir in
  let have_wal = Sys.file_exists wal_path in
  let have_data = Real_disk.exists ~dir in
  if not have_wal && not have_data then begin
    (* Fresh directory: initialise an empty durable environment. *)
    let disk = Real_disk.create ~page_size ~dir stats in
    let wal = Wal.create ~path:wal_path ~mode in
    let report =
      {
        clean = true;
        wal_records = 0;
        replayed = 0;
        truncated_bytes = 0;
        pages_redone = 0;
        duration_s = Unix.gettimeofday () -. t0;
      }
    in
    (disk, wal, report)
  end
  else begin
    if not have_wal then
      raise (Corrupt (Printf.sprintf "%s: data file present but no WAL" dir));
    let s = Wal.scan wal_path in
    if s.Wal.scan_bad_header then
      raise (Corrupt (Printf.sprintf "%s: unreadable WAL header" wal_path));
    (* The boundary is the end of the last commit point: everything past
       it is uncommitted (or torn) and is truncated away. *)
    let boundary =
      List.fold_left
        (fun acc (end_lsn, r) ->
          match r with Wal.Commit | Wal.Checkpoint _ -> end_lsn | _ -> acc)
        Wal.header_size s.Wal.scan_records
    in
    let last_is_boundary =
      match List.rev s.Wal.scan_records with
      | (_, (Wal.Commit | Wal.Checkpoint _)) :: _ -> true
      | [] -> true
      | _ -> false
    in
    let clean =
      s.Wal.scan_valid_end = s.Wal.scan_file_len && last_is_boundary
    in
    let truncated_bytes = s.Wal.scan_file_len - boundary in
    if not clean then truncate_to wal_path boundary;
    let wal = Wal.open_existing ~path:wal_path ~mode ~readonly:false in
    let disk =
      if have_data then Real_disk.open_existing ~dir stats
      else Real_disk.create ~page_size ~dir stats
    in
    (* Redo runs even over a clean log: the log being intact says
       nothing about how far the data file lags it (pages reach the
       device only on eviction or flush, and the WAL rule only
       guarantees the log is AHEAD of the data, never in sync). Replay
       is idempotent — every rebuilt page starts from Alloc zeroes or a
       logged full image — so redoing already-flushed pages rewrites
       them bit-identically. *)
    let psize = Real_disk.page_size disk in
    let images, replayed = redo ~psize s.Wal.scan_records boundary in
    let pages_redone = Hashtbl.length images in
    let max_page = Hashtbl.fold (fun p _ acc -> max p acc) images (-1) in
    let max_page =
      List.fold_left
        (fun acc (_, _, pages) -> Array.fold_left max acc pages)
        max_page (Wal.manifest wal)
    in
    Real_disk.ensure_pages disk (max_page + 1);
    Hashtbl.iter (fun page img -> Real_disk.write ~lsn:0 disk page img) images;
    verify_catalog wal disk;
    rebuild_free_list wal disk;
    if (not clean) || pages_redone > 0 then begin
      (* Durability point + bound the next replay: data first, then the
         log snapshot. [~checkpoint:false] is the replica catch-up path:
         it must keep the local log a byte-prefix of the primary's, so
         the snapshot rewrite (which would reset every LSN) is skipped —
         the data file is still synced so redone pages are durable. *)
      Real_disk.sync disk;
      if checkpoint then Wal.checkpoint wal
    end;
    let report =
      {
        clean;
        wal_records = List.length s.Wal.scan_records;
        replayed;
        truncated_bytes;
        pages_redone;
        duration_s = Unix.gettimeofday () -. t0;
      }
    in
    (disk, wal, report)
  end

(* Scan every manifest-live page through trailer validation; returns the
   pages that fail (chaos harness asserts this is empty). *)
let verify_pages wal disk =
  List.concat_map
    (fun (_, _, pages) ->
      Array.to_list pages
      |> List.filter_map (fun p ->
             match Real_disk.verify disk p with
             | Ok () -> None
             | Error (stored, computed) -> Some (p, stored, computed)))
    (Wal.manifest wal)
