type t = {
  env : Env.t;
  disk : Disk.t;  (** the backend this file's pages live on *)
  pool : Buffer_pool.t;  (** the pool in front of [disk] *)
  log : (Wal.t * int) option;  (** (wal, file id); durable files only *)
  mutable page_ids : int array;  (** physical page id of each file page *)
  mutable npages : int;
  mutable recs_per_page : int array;
  mutable nrecords : int;
  mutable tail_free : int;  (** next free byte offset in the last page *)
}

let header_size = 2

let create ?(durable = false) env =
  let disk, pool, log =
    if durable then begin
      match Env.wal env with
      | None -> invalid_arg "Heap_file.create: ~durable on a simulated env"
      | Some wal -> (env.Env.disk, env.Env.pool, Some (wal, Wal.new_file wal))
    end
    else
      (* Default: temporary pages — unlogged, rebuilt on restart. In a
         simulated environment these are the main disk/pool, so nothing
         changes for existing callers. *)
      (env.Env.temp_disk, env.Env.temp_pool, None)
  in
  {
    env;
    disk;
    pool;
    log;
    page_ids = Array.make 8 (-1);
    npages = 0;
    recs_per_page = Array.make 8 0;
    nrecords = 0;
    tail_free = 0;
  }

let env t = t.env
let disk t = t.disk
let pool t = t.pool
let fid t = match t.log with Some (_, fid) -> Some fid | None -> None
let is_durable t = t.log <> None

let set_meta t meta =
  match t.log with
  | Some (wal, fid) -> Wal.log_define wal ~fid ~meta
  | None -> ()

let grow t =
  let cap = Array.length t.page_ids in
  if t.npages >= cap then begin
    let ids = Array.make (cap * 2) (-1) in
    Array.blit t.page_ids 0 ids 0 cap;
    t.page_ids <- ids;
    let rp = Array.make (cap * 2) 0 in
    Array.blit t.recs_per_page 0 rp 0 cap;
    t.recs_per_page <- rp
  end

let set_u16 buf off v =
  Bytes.set_uint8 buf off (v land 0xff);
  Bytes.set_uint8 buf (off + 1) ((v lsr 8) land 0xff)

let get_u16 buf off = Bytes.get_uint8 buf off lor (Bytes.get_uint8 buf (off + 1) lsl 8)

let add_page t =
  grow t;
  let id = Disk.alloc t.disk in
  (match t.log with
  | Some (wal, fid) -> ignore (Wal.log_alloc wal ~fid ~page:id)
  | None -> ());
  t.page_ids.(t.npages) <- id;
  t.recs_per_page.(t.npages) <- 0;
  t.npages <- t.npages + 1;
  t.tail_free <- header_size

let append t record =
  let page_size = Env.page_size t.env in
  let len = Bytes.length record in
  if len + 2 + header_size > page_size then
    invalid_arg "Heap_file.append: record larger than a page";
  if len > 0xffff then invalid_arg "Heap_file.append: record longer than 65535";
  if t.npages = 0 || t.tail_free + 2 + len > page_size then add_page t;
  let pi = t.npages - 1 in
  let off = t.tail_free in
  let pid = t.page_ids.(pi) in
  let count = t.recs_per_page.(pi) + 1 in
  let lsn =
    match t.log with
    | None -> None
    | Some (wal, _) ->
        (* Log before the in-pool mutation. The record carries the
           len-prefixed bytes; [image] captures the page's pre-append
           content if this is its first post-checkpoint touch. *)
        let data = Bytes.create (2 + len) in
        set_u16 data 0 len;
        Bytes.blit record 0 data 2 len;
        Some
          (Wal.log_heap_append wal ~page:pid ~off ~count ~data
             ~image:(fun () -> Bytes.copy (Buffer_pool.read t.pool pid)))
  in
  Buffer_pool.with_write ?lsn t.pool pid (fun data ->
      set_u16 data off len;
      Bytes.blit record 0 data (off + 2) len;
      set_u16 data 0 count);
  t.recs_per_page.(pi) <- count;
  t.tail_free <- off + 2 + len;
  t.nrecords <- t.nrecords + 1

let num_records t = t.nrecords
let num_pages t = t.npages

let parse_page data =
  let count = get_u16 data 0 in
  let rec go acc off i =
    if i >= count then List.rev acc
    else
      let len = get_u16 data off in
      let record = Bytes.sub data (off + 2) len in
      go (record :: acc) (off + 2 + len) (i + 1)
  in
  go [] header_size 0

let page_records_via pool t i =
  if i < 0 || i >= t.npages then invalid_arg "Heap_file.page_records";
  parse_page (Buffer_pool.read pool t.page_ids.(i))

let page_records t i = page_records_via t.pool t i

let iter t f =
  for i = 0 to t.npages - 1 do
    List.iter f (page_records t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let pin_page t i =
  if i < 0 || i >= t.npages then invalid_arg "Heap_file.pin_page";
  Buffer_pool.pin t.pool t.page_ids.(i)

let unpin_page t i =
  if i < 0 || i >= t.npages then invalid_arg "Heap_file.unpin_page";
  Buffer_pool.unpin t.pool t.page_ids.(i)

let destroy t =
  (match t.log with
  | Some (wal, fid) -> Wal.log_free wal ~fid
  | None -> ());
  Disk.free t.disk (Array.to_list (Array.sub t.page_ids 0 t.npages));
  t.npages <- 0;
  t.nrecords <- 0;
  t.tail_free <- 0

(* Reattach a durable file recovered from the WAL manifest: rebuild the
   per-page record counts and the tail offset by reading the pages. *)
let open_durable env ~fid ~pages =
  match Env.wal env with
  | None -> invalid_arg "Heap_file.open_durable: simulated env"
  | Some wal ->
      let npages = Array.length pages in
      let cap = max 8 npages in
      let t =
        {
          env;
          disk = env.Env.disk;
          pool = env.Env.pool;
          log = Some (wal, fid);
          page_ids = Array.init cap (fun i -> if i < npages then pages.(i) else -1);
          npages;
          recs_per_page = Array.make cap 0;
          nrecords = 0;
          tail_free = 0;
        }
      in
      for i = 0 to npages - 1 do
        let data = Buffer_pool.read t.pool pages.(i) in
        let count = get_u16 data 0 in
        t.recs_per_page.(i) <- count;
        t.nrecords <- t.nrecords + count;
        if i = npages - 1 then begin
          (* Walk the last page to find the append point. *)
          let off = ref header_size in
          for _ = 1 to count do
            off := !off + 2 + get_u16 data !off
          done;
          t.tail_free <- !off
        end
      done;
      t

let home_pool = pool

module Cursor = struct
  type file = t

  type t = {
    file : file;
    pool : Buffer_pool.t;
    mutable page_i : int;
    mutable rec_i : int;  (** index within the cached page *)
    mutable abs : int;
    mutable cache : bytes array;  (** records of page [page_i] *)
    mutable cache_page : int;  (** which page the cache holds, -1 if none *)
  }

  let of_file ?pool file =
    let pool = Option.value pool ~default:(home_pool file) in
    { file; pool; page_i = 0; rec_i = 0; abs = 0; cache = [||]; cache_page = -1 }

  let fill c =
    if c.cache_page <> c.page_i && c.page_i < c.file.npages then begin
      c.cache <- Array.of_list (page_records_via c.pool c.file c.page_i);
      c.cache_page <- c.page_i
    end

  let rec peek c =
    if c.page_i >= c.file.npages then None
    else begin
      fill c;
      if c.rec_i < Array.length c.cache then Some c.cache.(c.rec_i)
      else begin
        c.page_i <- c.page_i + 1;
        c.rec_i <- 0;
        peek c
      end
    end

  let next c =
    match peek c with
    | None -> None
    | Some r ->
        c.rec_i <- c.rec_i + 1;
        c.abs <- c.abs + 1;
        Some r

  let pos c = c.abs

  let seek c target =
    let target = Int.max 0 (Int.min target c.file.nrecords) in
    let rec locate page remaining =
      if page >= c.file.npages then (page, 0)
      else
        let n = c.file.recs_per_page.(page) in
        if remaining < n then (page, remaining) else locate (page + 1) (remaining - n)
    in
    let page, rec_i = locate 0 target in
    c.page_i <- page;
    c.rec_i <- rec_i;
    c.abs <- target

  let page_index c =
    match peek c with None -> None | Some _ -> Some c.page_i
end
