(** A fixed-size pool of OCaml 5 domains for data-parallel query execution.

    The pool owns [domains - 1] worker domains; the submitting (coordinator)
    domain participates in every batch, so a pool of size 1 spawns no domains
    at all and degenerates to plain sequential execution. Batches are
    scatter/gather: {!run_list} blocks until every job has finished, then
    returns the results in submission order, re-raising the first exception
    (if any) on the coordinator.

    Sharing discipline: jobs must not touch the shared environment's buffer
    pool, simulated disk, or {!Iostats} record — those structures are
    single-threaded by design. The parallel operators built on this pool
    (run formation in {!External_sort}, the partitioned merge-join sweep)
    hand each job a private environment / private stats record and merge the
    counters into the shared record with {!Iostats.add_into} once
    {!run_list} has returned.

    The pool is not reentrant: jobs must not themselves call {!run_list} on
    the pool that is executing them. *)

type t

val create : domains:int -> t
(** Spawn at most [domains - 1] worker domains ([Invalid_argument] if
    [domains < 1]). The actual number of spawned domains is additionally
    capped at [Domain.recommended_domain_count () - 1]: running more domains
    than cores only adds stop-the-world GC synchronisation cost. The pool's
    logical width {!domains} is unaffected by the cap — callers still
    partition work [domains] ways and the coordinator absorbs the excess. *)

val domains : t -> int
(** The parallelism degree the pool was created with (>= 1). *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** Execute the jobs, coordinator included, and return their results in
    order. If any job raised, the first exception (in job order) is
    re-raised after all jobs have completed. *)

val run_list_traced :
  ?trace:Trace.t -> ?label:string -> t ->
  (Trace.t option -> 'a) list -> 'a list
(** {!run_list} with per-job tracing: job [i] receives a {!Trace.fork}ed
    collector (lane [i + 1]; the coordinator's spans stay on lane 0) whose
    open root span is [label-i], so every pool job shows as one span tagged
    with its lane in the trace; nested spans the job opens (with its private
    stats record) attach underneath. The forks are grafted back under the
    caller's innermost open span after the batch joins. With [?trace]
    absent, jobs receive [None] and behaviour is exactly {!run_list}. *)

val map_array : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_array pool ~f arr] is [Array.map f arr] with the elements processed
    by the pool, one job per element. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must be idle. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exceptions. *)
