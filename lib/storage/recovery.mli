(** Crash recovery: redo-only restart in the ARIES mould.

    One log scan finds the last valid commit point (analysis), the torn
    or uncommitted tail behind it is truncated, and the committed
    records are replayed into fresh page images that overwrite the data
    file (redo). Every replayed page starts from zeroes ([Alloc]) or a
    logged full image ([Page_image]) — recovery never reads a
    possibly-torn page from the data file. There is no undo pass:
    {!Wal.ensure_committed} guarantees the data file holds no effects
    from beyond a commit point, so the restart state is exactly the last
    committed state. Recovery ends with a checkpoint (data fsync, then
    the log rewritten as a manifest snapshot), so replay work is bounded
    and a crash loop cannot grow the log.

    Used by {!Env.open_durable}; exposed separately so the recovery
    bench can time it against log length. *)

exception Corrupt of string
(** Unrecoverable inconsistency: unreadable WAL header, a data file with
    no WAL, or a manifest referencing impossible pages. *)

type report = {
  clean : bool;  (** log ended at a commit point with no torn tail *)
  wal_records : int;  (** valid records found in the log *)
  replayed : int;  (** committed records redone *)
  truncated_bytes : int;  (** torn / uncommitted tail removed *)
  pages_redone : int;  (** distinct pages rebuilt from the log *)
  duration_s : float;
}

val pp_report : Format.formatter -> report -> unit

val wal_path_of : string -> string
(** The WAL's path inside a data directory ([<dir>/wal.fsql]). *)

val recover :
  ?page_size:int ->
  ?mode:Wal.sync_mode ->
  ?checkpoint:bool ->
  dir:string ->
  Iostats.t ->
  Real_disk.t * Wal.t * report
(** Open (creating if absent) the durable environment under [dir],
    truncating any torn/uncommitted WAL tail and replaying the
    committed records. Redo always runs — even over a clean log — since
    the data file may lag the log arbitrarily (pages reach the device
    only on eviction or flush); replay is idempotent. Returns
    writable handles with the free list rebuilt from the manifest and
    the catalog verified ({!Corrupt} on inconsistency). [page_size] and
    [mode] apply to fresh directories / the reopened log; an existing
    data file's page size always wins. [checkpoint] (default [true])
    controls the final log-snapshot rewrite — replica catch-up passes
    [false] so the local log stays a byte-prefix of the primary's (the
    data file is still synced). *)

val verify_pages : Wal.t -> Real_disk.t -> (int * int32 * int32) list
(** Run every manifest-live page through trailer validation; returns
    [(page, stored_crc, computed_crc)] for each failure. The chaos
    harness asserts this is empty after recovery. *)
