(** Heap files: unordered sequences of variable-length byte records stored in
    pages of a storage backend.

    Page layout: a 2-byte record count followed by [u16 length][payload]
    records. Records never span pages, so a record must fit in
    [page_size - 4] bytes. All reads go through the buffer pool, so scans
    cost one logical page read per page plus pool hits.

    By default a heap file is {e temporary}: its pages live on the
    environment's temp disk and are unlogged (sort runs, materialised
    intermediates — "temp pages stay unlogged"). In a simulated
    environment the temp disk {e is} the main disk, so this distinction
    only exists on durable environments. Pass [~durable:true] to place
    the file on the durable backend: every allocation and append is then
    WAL-logged first, appends stamp the page's frame with their record's
    LSN, and the file survives restart via the manifest. *)

type t

val create : ?durable:bool -> Env.t -> t
(** Default [~durable:false]. [~durable:true] registers a fresh file id
    with the environment's WAL; raises [Invalid_argument] on a
    simulated environment. *)

val open_durable : Env.t -> fid:int -> pages:int array -> t
(** Reattach a durable file from a manifest entry ({!Env.manifest}),
    rebuilding record counts and the append point by reading the
    pages. *)

val env : t -> Env.t

val disk : t -> Disk.t
(** The backend this file's pages live on — scoped pools for scanning
    this file must be created over {e this} disk, not the
    environment's main one. *)

val pool : t -> Buffer_pool.t
(** The file's home pool (the env's main or temp pool). *)

val fid : t -> int option
(** The WAL file id; [None] for temporary files. *)

val is_durable : t -> bool

val set_meta : t -> bytes -> unit
(** Record the file's catalog metadata blob in the WAL ([Define]);
    no-op on temporary files. {!Relational.Relation} stores its schema
    here. *)

val append : t -> bytes -> unit
(** Raises [Invalid_argument] if the record cannot fit in a page. On
    durable files the append is logged before the page is touched. *)

val num_records : t -> int
val num_pages : t -> int

val iter : t -> (bytes -> unit) -> unit
val fold : t -> init:'a -> f:('a -> bytes -> 'a) -> 'a

val page_records : t -> int -> bytes list
(** Records of the [i]-th page (0-based); one pool read. *)

val page_records_via : Buffer_pool.t -> t -> int -> bytes list
(** Same, but reading through a caller-supplied pool — used by operators that
    manage their own buffer allocation (e.g. "one page for the inner
    relation" in the paper's nested-loop join). The pool must sit over
    {!disk}. *)

val pin_page : t -> int -> unit
val unpin_page : t -> int -> unit

val destroy : t -> unit
(** Return the file's pages to its disk's free list; logs the file's
    destruction first when durable. *)

module Cursor : sig
  type file = t
  type t

  val of_file : ?pool:Buffer_pool.t -> file -> t
  (** Cursor positioned at the first record; reads through [pool] when given
      (default: the file's home pool). *)

  val peek : t -> bytes option
  (** Current record, or [None] at end of file. *)

  val next : t -> bytes option
  (** Current record, advancing the cursor past it. *)

  val pos : t -> int
  (** Zero-based index of the current record. *)

  val seek : t -> int -> unit
  (** Reposition to the given record index (clamped to [0, num_records]). *)

  val page_index : t -> int option
  (** Page holding the current record. *)
end
