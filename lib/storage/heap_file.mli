(** Heap files: unordered sequences of variable-length byte records stored in
    pages of the simulated disk.

    Page layout: a 2-byte record count followed by [u16 length][payload]
    records. Records never span pages, so a record must fit in
    [page_size - 4] bytes. All reads go through the buffer pool, so scans
    cost one logical page read per page plus pool hits. *)

type t

val create : Env.t -> t

val env : t -> Env.t

val append : t -> bytes -> unit
(** Raises [Invalid_argument] if the record cannot fit in a page. *)

val num_records : t -> int
val num_pages : t -> int

val iter : t -> (bytes -> unit) -> unit
val fold : t -> init:'a -> f:('a -> bytes -> 'a) -> 'a

val page_records : t -> int -> bytes list
(** Records of the [i]-th page (0-based); one pool read. *)

val page_records_via : Buffer_pool.t -> t -> int -> bytes list
(** Same, but reading through a caller-supplied pool — used by operators that
    manage their own buffer allocation (e.g. "one page for the inner
    relation" in the paper's nested-loop join). *)

val pin_page : t -> int -> unit
val unpin_page : t -> int -> unit

val destroy : t -> unit
(** Return the file's pages to the disk free list (temporary files). *)

module Cursor : sig
  type file = t
  type t

  val of_file : ?pool:Buffer_pool.t -> file -> t
  (** Cursor positioned at the first record; reads through [pool] when given
      (default: the file's environment pool). *)

  val peek : t -> bytes option
  (** Current record, or [None] at end of file. *)

  val next : t -> bytes option
  (** Current record, advancing the cursor past it. *)

  val pos : t -> int
  (** Zero-based index of the current record. *)

  val seek : t -> int -> unit
  (** Reposition to the given record index (clamped to [0, num_records]). *)

  val page_index : t -> int option
  (** Page holding the current record. *)
end
