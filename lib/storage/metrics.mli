(** A metrics registry: named counters and log-scale histograms that
    aggregate across queries — the bench harness records one observation per
    measured cell, fsql one per statement — with a human-readable summary
    ({!pp}) and a JSON dump ({!to_json}).

    Registration is idempotent: {!counter}/{!histogram} return the existing
    instrument when the name is already registered, so call sites don't need
    to coordinate. Instruments are cheap mutable records; a registry is
    single-threaded like the rest of the stats layer (parallel jobs record
    into {!Iostats}/{!Trace} and the coordinator observes the merged
    totals). *)

type t
type counter
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-register a counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val histogram : t -> string -> histogram
(** Find-or-register a histogram. Observations are bucketed on a log2 scale
    from 1e-6 (64 buckets), so one histogram type serves durations in
    seconds, I/O counts, and cardinalities alike. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float
val hist_name : histogram -> string

val hist_quantile : histogram -> float -> float
(** Upper bound of the quantile's bucket — exact to within the 2x bucket
    width, clamped to the observed max. *)

val reset : t -> unit
(** Zero every registered instrument (instruments stay registered). *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
