(** A metrics registry: named counters, gauges, log-scale histograms, and
    sliding-window histograms that aggregate across queries — the bench
    harness records one observation per measured cell, fsql one per
    statement, the daemon one per request — with a human-readable summary
    ({!pp}) and a JSON dump ({!to_json}).

    Registration is idempotent: {!counter}/{!gauge}/{!histogram}/
    {!window_histogram} return the existing instrument when the name is
    already registered, so call sites don't need to coordinate. Instruments
    are cheap mutable records; a registry is single-threaded like the rest
    of the stats layer (parallel jobs record into {!Iostats}/{!Trace} and
    the coordinator observes the merged totals; the daemon serialises its
    registry behind one mutex). *)

type t
type counter
type gauge
type histogram
type window_histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-register a counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : t -> string -> gauge
(** Find-or-register a gauge: a point-in-time float (queue depth, busy
    workers, breaker state) set by the owner at observation or scrape
    time, not accumulated. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val histogram : t -> string -> histogram
(** Find-or-register a histogram. Observations are bucketed on a log2 scale
    from 1e-6 (64 buckets), so one histogram type serves durations in
    seconds, I/O counts, and cardinalities alike. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float
val hist_name : histogram -> string

val hist_quantile : histogram -> float -> float
(** Upper bound of the quantile's bucket — exact to within the 2x bucket
    width, clamped to the observed max. Edge cases: an {e empty} histogram
    has no quantiles and returns [nan] (never a bucket bound — that would
    invent an observation); a {e single-observation} histogram returns that
    observation exactly for every [q], because the bucket bound is clamped
    to the observed max. *)

(** {1 Sliding-window histograms}

    A ring of log2-bucket snapshots — [slots] slots of [window_s] seconds
    each (default 12 x 5 s = the last minute) — so quantiles are reportable
    "over the last minute" as well as lifetime. Observation and expiry are
    O(1): the slot for [now] is selected by epoch arithmetic and lazily
    zeroed on reuse; readers skip slots that have fallen out of the window.
    Every operation takes [~now] explicitly so tests can drive the clock. *)

val window_histogram :
  t -> ?window_s:float -> ?slots:int -> string -> window_histogram
(** Find-or-register (the window geometry of the first registration
    wins). *)

val observe_window : window_histogram -> now:float -> float -> unit
val window_name : window_histogram -> string

val window_span_s : window_histogram -> float
(** [window_s * slots] — the horizon the reading functions cover. *)

val window_count : window_histogram -> now:float -> int
val window_sum : window_histogram -> now:float -> float

val window_max : window_histogram -> now:float -> float
(** [nan] when no observation is live in the window. *)

val window_quantile : window_histogram -> now:float -> float -> float
(** Same contract as {!hist_quantile}, over the live window only: [nan]
    when the window is empty, the exact observation when it holds one. *)

val window_rate : window_histogram -> now:float -> float
(** Observations per second over the window actually covered so far (the
    full span once the ring has wrapped, less for a fresh registry — so a
    young server's qps is not understated). *)

(** {1 Registry} *)

val reset : t -> unit
(** Zero every registered instrument (instruments stay registered). *)

val counters : t -> counter list
(** Registration order — for exporters ({!Server.Telemetry} renders the
    Prometheus text format from these). *)

val histograms : t -> histogram list
val gauges : t -> gauge list
val window_histograms : t -> window_histogram list

val pp : Format.formatter -> t -> unit

val to_json : ?now:float -> t -> string
(** Counters, gauges, histograms, and window snapshots evaluated at [now]
    (default: the current time). Quantiles of empty (window) histograms are
    [nan] in OCaml and [null] in the JSON. *)
