(** LRU buffer pool over a storage backend.

    The paper gives both methods a 2 MB buffer (256 pages of 8 KB). Reads go
    through the pool: a hit costs no I/O, a miss reads the page from disk and
    may evict the least-recently-used unpinned frame (writing it back if
    dirty). Pinned frames are never evicted — the join algorithms pin the
    frames of the current merge window, mirroring "the page stays in the main
    memory" of Section 3.

    On a durable backend the pool also enforces the WAL rule: each frame
    carries the LSN of the last log record that touched it (stamped via
    {!with_write}'s [?lsn]), and a dirty logged frame is written back only
    after {!Wal.ensure_committed} has made a covering commit point durable.
    Combined with redo-to-last-commit recovery, the data file never holds
    effects from beyond a commit point. *)

type t

exception All_frames_pinned of { page : int; capacity : int }
(** A miss needed to evict a frame but every frame was pinned. [page] is
    the page whose load failed; [capacity] the pool size in frames. A
    programming error (pin leak or pool sized below the working set),
    never injected by {!Fault}. *)

val create : ?wal:Wal.t -> Disk.t -> capacity:int -> t
(** [capacity] in pages; must be >= 1 ([Invalid_argument] otherwise).
    Pass [?wal] on durable environments so write-backs obey the WAL
    rule; without it, [?lsn] stamps are kept but nothing is forced. *)

val capacity : t -> int
val disk : t -> Disk.t
val wal : t -> Wal.t option

val read : t -> int -> bytes
(** The cached frame (do not mutate; use {!with_write} to modify). *)

val with_write : ?lsn:int -> t -> int -> (bytes -> unit) -> unit
(** Mutate the page through the pool and mark the frame dirty. [?lsn]
    is the WAL position of the record describing this mutation; the
    frame's page-LSN becomes the max of all stamps and rides along on
    write-back (into the durable page trailer). *)

val pin : t -> int -> unit
val unpin : t -> int -> unit
(** Pin counts nest. A miss (in {!read}, {!with_write} or {!pin}) raises
    {!All_frames_pinned} when eviction finds every frame pinned;
    {!unpin} raises [Invalid_argument] on a page that is not pinned.
    Reads and write-backs through the pool propagate {!Fault.Injected}
    from the underlying disk; a failed load leaves the pool unchanged
    (the frame is only inserted after a successful disk read). *)

val flush : t -> unit
(** Write back all dirty frames (each obeying the WAL rule). *)

val reset_lsns : t -> unit
(** Zero the page-LSN of every clean frame. Called after a checkpoint,
    whose log rewrite invalidates old LSNs; the pool must be
    {!flush}ed first. *)

val drop : t -> unit
(** Discard all frames, {e flushing dirty ones first} — dropping never
    loses writes; used between experiment runs so each starts cold.
    (To observe drop-without-flush semantics there is deliberately no
    entry point: write-back is the pool's invariant.) *)

val hits : t -> int
val misses : t -> int
(** Cumulative lookup counters since creation. {!Trace.with_span} snapshots
    these around an operator span (pass the scoped cursor pool as [?pool])
    to report per-operator cache hit rates in EXPLAIN ANALYZE and traces. *)

val counters : t -> int * int
(** [(hits, misses)], one call. *)
