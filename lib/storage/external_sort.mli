(** External merge sort over heap files, standing in for the Opt-Tech Sort
    package used in the paper's experiments.

    Classic two-phase sort with a user-specified memory budget: run
    generation fills [mem_pages] buffer pages, sorts in memory and writes a
    run; merging combines up to [mem_pages - 1] runs per pass until one
    sorted file remains. All I/O flows through the environment's buffer pool
    and statistics, and the whole call is accounted to the [Sort] phase, so
    the Table 3 "sorting time" breakdown can be reproduced. *)

type run_strategy =
  | Load_sort
      (** fill memory, sort, write a run: runs of ~[mem_pages] pages *)
  | Replacement_selection
      (** heap-based run formation: ~2x longer runs on random input, hence
          fewer runs and fewer merge passes when memory is scarce *)

val sort :
  ?run_strategy:run_strategy -> Heap_file.t ->
  compare:(bytes -> bytes -> int) -> mem_pages:int -> Heap_file.t
(** Returns a new heap file with the records in non-decreasing order;
    intermediate runs are destroyed. The input file is left intact.
    [mem_pages] must be >= 3 (one output page + two run pages). Default
    strategy: [Load_sort]. *)

val initial_runs :
  run_strategy -> Heap_file.t -> compare:(bytes -> bytes -> int) ->
  mem_pages:int -> Heap_file.t list
(** The run-formation phase alone (each returned file is sorted); exposed for
    tests and the sort ablation bench. Caller destroys the runs. *)
