(** External merge sort over heap files, standing in for the Opt-Tech Sort
    package used in the paper's experiments.

    Classic two-phase sort with a user-specified memory budget: run
    generation fills [mem_pages] buffer pages, sorts in memory and writes a
    run; merging combines up to [mem_pages - 1] runs per pass until one
    sorted file remains. All I/O flows through the environment's buffer pool
    and statistics, and the whole call is accounted to the [Sort] phase, so
    the Table 3 "sorting time" breakdown can be reproduced. *)

type run_strategy =
  | Load_sort
      (** fill memory, sort, write a run: runs of ~[mem_pages] pages *)
  | Replacement_selection
      (** heap-based run formation: ~2x longer runs on random input, hence
          fewer runs and fewer merge passes when memory is scarce *)

val sort :
  ?run_strategy:run_strategy -> ?trace:Trace.t -> ?cancel:Cancel.t ->
  Heap_file.t -> compare:(bytes -> bytes -> int) -> mem_pages:int ->
  Heap_file.t
(** Returns a new heap file with the records in non-decreasing order;
    intermediate runs are destroyed. The input file is left intact.
    [mem_pages] must be >= 3 (one output page + two run pages). Default
    strategy: [Load_sort]. With [?trace], a [run-formation] and a
    [k-way-merge] span are recorded with their I/O and comparison deltas.
    With [?cancel], the run-formation and merge loops poll the token.

    Exception safety: if the sort is aborted — by [Cancel.Cancelled], an
    injected {!Fault.Injected}, or any other exception (including ones
    raised by [compare]) — every temporary run page already written is
    freed back to the disk before the exception propagates, so
    [Sim_disk.live_pages] returns to its pre-sort baseline. *)

val sort_keyed :
  pool:Task_pool.t -> ?trace:Trace.t -> ?cancel:Cancel.t -> Heap_file.t ->
  key:(bytes -> 'k) -> compare_key:('k -> 'k -> int) -> mem_pages:int ->
  Heap_file.t
(** Domain-parallel variant: the input scan is chopped into slices of
    [mem_pages * page_size / domains] bytes and each pool job sorts one
    slice with a private buffer pool (and private stats, merged into the
    input environment's record once the batch joins), then the k-way heap
    merge combines the runs on the coordinator. The sort key is decoded
    once per record per phase ([key]), and only keys are compared
    ([compare_key]) — the decoration that, together with the domain
    parallelism, makes this path faster than {!sort}. The returned file
    lives in the input's environment, like {!sort}; the record multiset and
    key order are identical to {!sort} with the corresponding record
    comparator (the order of records with equal keys may differ). With
    [?trace], each pool job records a [sort-i]/[run-formation] span on its
    own lane (carrying the job's private I/O deltas, phase-tagged [Sort])
    and the coordinator records the [k-way-merge] span. *)

val initial_runs :
  ?cancel:Cancel.t -> run_strategy -> Heap_file.t ->
  compare:(bytes -> bytes -> int) -> mem_pages:int -> Heap_file.t list
(** The run-formation phase alone (each returned file is sorted); exposed for
    tests and the sort ablation bench. Caller destroys the runs. On abort,
    partially-written runs are destroyed before the exception propagates. *)

val merge_runs :
  ?cancel:Cancel.t -> Env.t -> Heap_file.t list ->
  compare:(bytes -> bytes -> int) -> Heap_file.t
(** One k-way heap-merge pass over sorted runs, writing the merged file into
    [env] and destroying the input runs; exposed for tests ({!sort} composes
    it into as many passes as the fan-in requires). On abort the partial
    output file is destroyed but the input runs are left alive for the
    caller to clean up. *)

val sort_support :
  ?trace:Trace.t -> ?cancel:Cancel.t -> Heap_file.t ->
  key:(bytes -> float * float) -> mem_pages:int -> Heap_file.t
(** Sequential columnar decorated sort, the batch engine's counterpart of
    {!sort}: run formation decodes each record's [(support lo, support hi)]
    key exactly once into unboxed float columns and sorts an index
    permutation over them (runs are produced directly from the columns), so
    the comparator never touches record bytes; the k-way merge decorates
    cursor heads the same way and compares floats lexicographically. The
    record multiset and key order are identical to {!sort} with the
    corresponding record comparator — only equal-key ties may land in a
    different order, like {!sort_keyed}. Cancellation is polled once per
    batch of records (1024) rather than per comparison; abort safety and
    trace spans ([run-formation], [k-way-merge]) as for {!sort}. *)
