type t = {
  deadline : float;  (** absolute seconds; [infinity] = none *)
  flag : bool Atomic.t;
  mutable why : string;
  mutable countdown : int;
      (** checks until the next deadline clock read; racy across the domains
          of a parallel batch, which only makes the poll slightly more or
          less frequent *)
}

exception Cancelled of string

let poll_period = 64

let create ?(deadline = Float.infinity) () =
  { deadline; flag = Atomic.make false; why = ""; countdown = 0 }

let with_timeout ~seconds () =
  create ~deadline:(Unix.gettimeofday () +. seconds) ()

let cancel ?(reason = "cancelled") t =
  (* The reason is published before the flag: the Atomic.set is a release
     store, so any checker that observes the flag also observes [why]. The
     first cancel wins. *)
  if not (Atomic.get t.flag) then begin
    t.why <- reason;
    Atomic.set t.flag true
  end

let cancelled t = Atomic.get t.flag
let reason t = t.why

let deadline t = if t.deadline = Float.infinity then None else Some t.deadline

let raise_if_cancelled t =
  if Atomic.get t.flag then raise (Cancelled t.why)
  else if t.deadline < Float.infinity then begin
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then begin
      t.countdown <- poll_period;
      if Unix.gettimeofday () > t.deadline then begin
        cancel ~reason:"deadline exceeded" t;
        raise (Cancelled t.why)
      end
    end
  end

let check = function None -> () | Some t -> raise_if_cancelled t
