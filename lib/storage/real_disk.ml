(* A real on-disk page store: the durable counterpart of [Sim_disk].

   One file, [<dir>/data.fsql]: a 4 KiB header followed by fixed-size
   page slots. Each slot is [page_size] payload bytes plus a 16-byte
   trailer [u32 crc | u64 lsn | u32 trailer-magic]; the CRC covers the
   payload, the page id and the LSN, so a page blitted to the wrong slot,
   a torn write, or any single corrupted byte is detected on read as a
   typed [Checksum_mismatch] — never returned as garbage rows.

   I/O is lseek+read/write under a per-handle mutex (OCaml's [Unix] has
   no pread/pwrite); writes are not individually fsynced — durability
   points are the WAL's job, and [sync] (fsync) is called at
   checkpoints. The free list is in-memory only: recovery rebuilds it
   from the WAL manifest as the complement of live pages. *)

let header_size = 4096
let file_magic = "FSQLDB01"
let trailer_size = 16
let trailer_magic = 0x52545047 (* "GPTR" little-endian: guarded page trailer *)
let data_file = "data.fsql"

exception Checksum_mismatch of { page : int; stored : int32; computed : int32 }

exception Bad_header of string

let () =
  Printexc.register_printer (function
    | Checksum_mismatch { page; stored; computed } ->
        Some
          (Printf.sprintf "Real_disk.Checksum_mismatch(page %d: stored %08lx, computed %08lx)"
             page stored computed)
    | Bad_header msg -> Some (Printf.sprintf "Real_disk.Bad_header(%s)" msg)
    | _ -> None)

type t = {
  dir : string;
  path : string;
  mutable fd : Unix.file_descr option;
  readonly : bool;
  page_size : int;
  slot : int;  (** page_size + trailer *)
  stats : Iostats.t;
  lock : Mutex.t;
  mutable pages : int;  (** high-water mark, like [Sim_disk.num_pages] *)
  mutable free_list : int list;
  mutable n_free : int;
  mutable fault : Fault.t option;
}

let page_size t = t.page_size
let stats t = t.stats
let dir t = t.dir
let path t = t.path
let set_fault t f = t.fault <- f
let fault t = t.fault

let fd_exn t =
  match t.fd with Some fd -> fd | None -> invalid_arg "Real_disk: closed"

let set_u32 b off v =
  for k = 0 to 3 do
    Bytes.set_uint8 b (off + k) ((v lsr (8 * k)) land 0xff)
  done

let set_u64 = Bytes.set_int64_le

let get_u32 b off =
  let v = ref 0 in
  for k = 3 downto 0 do
    v := (!v lsl 8) lor Bytes.get_uint8 b (off + k)
  done;
  !v

(* CRC over payload ++ LE64(page) ++ LE64(lsn): binds content to slot. *)
let slot_crc ~page ~lsn payload =
  let aux = Bytes.create 16 in
  set_u64 aux 0 (Int64.of_int page);
  set_u64 aux 8 (Int64.of_int lsn);
  Crc32.update (Crc32.bytes payload) aux ~pos:0 ~len:16

let slot_off t page = header_size + (page * t.slot)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

let rec read_all fd buf pos len =
  if len > 0 then
    match Unix.read fd buf pos len with
    | 0 -> failwith "Real_disk: short read"
    | n -> read_all fd buf (pos + n) (len - n)
    (* EINTR is a signal interruption, not EOF: retry the same range. *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd buf pos len

(* pwrite/pread emulation: seek + full transfer, under the handle lock. *)
let pwrite t ~off buf pos len =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let fd = fd_exn t in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      write_all fd buf pos len)

let pread t ~off buf pos len =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let fd = fd_exn t in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      read_all fd buf pos len)

let check_page t page =
  if page < 0 || page >= t.pages then
    raise (Sim_disk.Bad_page { page; num_pages = t.pages })

(* Build the full slot image (payload + trailer) for a write. *)
let encode_slot t ~page ~lsn payload =
  let slot = Bytes.create t.slot in
  Bytes.blit payload 0 slot 0 t.page_size;
  let crc = slot_crc ~page ~lsn payload in
  set_u32 slot t.page_size (Int32.to_int crc land 0xffffffff);
  set_u64 slot (t.page_size + 4) (Int64.of_int lsn);
  set_u32 slot (t.page_size + 12) trailer_magic;
  slot

let write_slot t ~page ~lsn payload =
  let slot = encode_slot t ~page ~lsn payload in
  pwrite t ~off:(slot_off t page) slot 0 t.slot

let write ?(lsn = 0) t page buf =
  check_page t page;
  if Bytes.length buf <> t.page_size then
    raise
      (Sim_disk.Write_size
         { page; expected = t.page_size; got = Bytes.length buf });
  if t.readonly then invalid_arg "Real_disk.write: read-only handle";
  Fault.on_write t.fault ~page (fun () ->
      (* Torn write: persist only the first half of the slot image — the
         stale trailer left behind makes the tear detectable on read. *)
      let slot = encode_slot t ~page ~lsn buf in
      pwrite t ~off:(slot_off t page) slot 0 (t.slot / 2));
  write_slot t ~page ~lsn buf;
  Iostats.record_write t.stats

let read_with_lsn t page =
  check_page t page;
  Fault.on_read t.fault ~page;
  let slot = Bytes.create t.slot in
  pread t ~off:(slot_off t page) slot 0 t.slot;
  Iostats.record_read t.stats;
  let payload = Bytes.sub slot 0 t.page_size in
  let stored = Int32.of_int (get_u32 slot t.page_size) in
  let lsn = Int64.to_int (Bytes.get_int64_le slot (t.page_size + 4)) in
  let tmagic = get_u32 slot (t.page_size + 12) in
  let computed = slot_crc ~page ~lsn payload in
  if tmagic <> trailer_magic || stored <> computed then
    raise (Checksum_mismatch { page; stored; computed });
  (payload, lsn)

let read t page = fst (read_with_lsn t page)

(* Unchecked raw slot read, for recovery diagnostics. *)
let read_raw t page =
  check_page t page;
  let slot = Bytes.create t.slot in
  pread t ~off:(slot_off t page) slot 0 t.slot;
  Bytes.sub slot 0 t.page_size

let verify t page =
  match read_with_lsn t page with
  | _ -> Ok ()
  | exception Checksum_mismatch { stored; computed; _ } -> Error (stored, computed)

(* Grow the file so pages [0, n) exist, zero-filled with valid trailers.
   Used on alloc growth and by recovery before redo. Uncounted I/O. *)
let extend_to t n =
  if t.readonly then invalid_arg "Real_disk.extend: read-only handle";
  let zero = Bytes.make t.page_size '\000' in
  for page = t.pages to n - 1 do
    let slot = encode_slot t ~page ~lsn:0 zero in
    pwrite t ~off:(slot_off t page) slot 0 t.slot
  done;
  if n > t.pages then t.pages <- n

let ensure_pages t n = extend_to t n

let alloc t =
  Fault.on_alloc t.fault;
  match t.free_list with
  | page :: rest ->
      t.free_list <- rest;
      t.n_free <- t.n_free - 1;
      (* Recycled pages are re-zeroed, matching [Sim_disk.alloc]'s
         contract: a previously torn page cannot poison its next user. *)
      write_slot t ~page ~lsn:0 (Bytes.make t.page_size '\000');
      page
  | [] ->
      let page = t.pages in
      extend_to t (page + 1);
      page

let free t pages =
  List.iter (fun p -> check_page t p) pages;
  t.free_list <- pages @ t.free_list;
  t.n_free <- t.n_free + List.length pages

let reset_free t pages =
  List.iter (fun p -> check_page t p) pages;
  t.free_list <- pages;
  t.n_free <- List.length pages

let num_pages t = t.pages
let free_pages t = t.n_free
let live_pages t = t.pages - t.n_free

let sync t =
  if not t.readonly then Unix.fsync (fd_exn t)

let close t =
  match t.fd with
  | Some fd ->
      Unix.close fd;
      t.fd <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Creation / opening *)

let path_of dir = Filename.concat dir data_file

let write_header fd page_size =
  let h = Bytes.make header_size '\000' in
  Bytes.blit_string file_magic 0 h 0 (String.length file_magic);
  set_u32 h 8 page_size;
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  write_all fd h 0 header_size;
  Unix.fsync fd

let make ~dir ~fd ~readonly ~page_size stats =
  {
    dir;
    path = path_of dir;
    fd = Some fd;
    readonly;
    page_size;
    slot = page_size + trailer_size;
    stats;
    lock = Mutex.create ();
    pages = 0;
    free_list = [];
    n_free = 0;
    fault = None;
  }

(* The WAL frames heap-append offsets and record counts as u16, so a
   durable page must fit in 65536 bytes or redo offsets would silently
   truncate. *)
let max_page_size = 65536

let create ?(page_size = 8192) ~dir stats =
  if page_size <= 0 || page_size > max_page_size then
    invalid_arg "Real_disk.create: page_size must be in [1, 65536]";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = path_of dir in
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_header fd page_size;
  make ~dir ~fd ~readonly:false ~page_size stats

let open_existing ?(readonly = false) ~dir stats =
  let path = path_of dir in
  let flags = if readonly then [ Unix.O_RDONLY ] else [ Unix.O_RDWR ] in
  let fd = Unix.openfile path flags 0o644 in
  let ok, page_size, len =
    try
      let len = (Unix.fstat fd).Unix.st_size in
      if len < header_size then (false, 0, len)
      else begin
        let h = Bytes.create header_size in
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        read_all fd h 0 header_size;
        let m = Bytes.sub_string h 0 (String.length file_magic) in
        (m = file_magic, get_u32 h 8, len)
      end
    with e ->
      Unix.close fd;
      raise e
  in
  if not ok then begin
    Unix.close fd;
    raise (Bad_header (Printf.sprintf "%s: not a fsql data file" path))
  end;
  if page_size <= 0 || page_size > max_page_size then begin
    Unix.close fd;
    raise (Bad_header (Printf.sprintf "%s: bad page size" path))
  end;
  let t = make ~dir ~fd ~readonly ~page_size stats in
  (* A torn partial slot at the tail (crash mid-extend) falls off the
     floor division; a complete-but-torn one is caught by its CRC. *)
  t.pages <- (len - header_size) / t.slot;
  t

let exists ~dir = Sys.file_exists (path_of dir)
