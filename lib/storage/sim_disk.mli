(** Simulated disk: a growable array of fixed-size pages.

    Stands in for the SPARC/IPC workstation disk of the paper's experiments.
    Every page transfer is recorded in an {!Iostats.t}, which is how the
    benchmark harness reproduces the I/O columns of Section 9.

    A {!Fault.t} plane may be attached with {!set_fault}; when present it
    is consulted on every [read]/[write]/[alloc] and may raise
    {!Fault.Injected} (or sleep, for latency rules) before the operation
    touches disk state. A failed read returns no data; a failed write
    leaves the page untouched, except for torn writes which persist the
    first half of the buffer before failing. *)

type t

exception Bad_page of { page : int; num_pages : int }
(** Page id out of range — a programming error, never injected.
    [num_pages] is the disk size at the time of the access. *)

exception Write_size of { page : int; expected : int; got : int }
(** [write] called with a buffer whose length differs from the disk's
    page size — a programming error, never injected. *)

val create : ?page_size:int -> Iostats.t -> t
(** Default page size is 8192 bytes — the paper's "one buffer page
    (8 k-bytes)". Raises [Invalid_argument] if [page_size <= 0]. *)

val page_size : t -> int
val stats : t -> Iostats.t

val set_fault : t -> Fault.t option -> unit
(** Attach (or clear) the fault-injection plane. *)

val fault : t -> Fault.t option

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its page id. Allocation itself does
    not count as I/O (the write that follows does). Pages recycled from the
    free list are zeroed again, so a page torn by an injected fault cannot
    poison a later query that reuses it. May raise {!Fault.Injected}
    ([Alloc_fault]) with disk state unchanged. *)

val read : t -> int -> bytes
(** Copy of the page contents; counts one page read. Raises {!Bad_page}
    on out-of-range ids, or {!Fault.Injected} ([Read_fault]). *)

val write : t -> int -> bytes -> unit
(** Counts one page write. Raises {!Bad_page} on out-of-range ids,
    {!Write_size} on wrong-size buffers, or {!Fault.Injected}
    ([Write_fault] with the page untouched; [Torn_write] with the first
    half of the buffer persisted). *)

val num_pages : t -> int
(** Total pages ever allocated (the high-water mark; never decreases). *)

val live_pages : t -> int
(** Pages currently allocated and not on the free list. This is the
    figure leak regression tests compare against a baseline: it drops
    back when temporary pages are freed. *)

val free_pages : t -> int
(** Pages on the free list, available for reuse. *)

val free : t -> int list -> unit
(** Return pages to the free list for reuse (e.g. temporary sort runs).
    Raises {!Bad_page} if any id is out of range. *)
