(** Simulated disk: a growable array of fixed-size pages.

    Stands in for the SPARC/IPC workstation disk of the paper's experiments.
    Every page transfer is recorded in an {!Iostats.t}, which is how the
    benchmark harness reproduces the I/O columns of Section 9. *)

type t

val create : ?page_size:int -> Iostats.t -> t
(** Default page size is 8192 bytes — the paper's "one buffer page
    (8 k-bytes)". *)

val page_size : t -> int
val stats : t -> Iostats.t

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its page id. Allocation itself does
    not count as I/O (the write that follows does). *)

val read : t -> int -> bytes
(** Copy of the page contents; counts one page read. *)

val write : t -> int -> bytes -> unit
(** Counts one page write. Raises [Invalid_argument] on wrong-size buffers or
    bad ids. *)

val num_pages : t -> int

val free : t -> int list -> unit
(** Return pages to the free list for reuse (e.g. temporary sort runs). *)
