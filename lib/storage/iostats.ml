type phase = Sort | Merge | Join | Other

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable fuzzy : int;
  mutable compares : int;
  mutable sort_s : float;
  mutable merge_s : float;
  mutable join_s : float;
  mutable other_s : float;
  mutable sort_io : int;
  mutable merge_io : int;
  mutable join_io : int;
  mutable other_io : int;
  mutable active : phase option;  (** innermost running phase *)
}

let create () =
  {
    reads = 0;
    writes = 0;
    fuzzy = 0;
    compares = 0;
    sort_s = 0.0;
    merge_s = 0.0;
    join_s = 0.0;
    other_s = 0.0;
    sort_io = 0;
    merge_io = 0;
    join_io = 0;
    other_io = 0;
    active = None;
  }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.fuzzy <- 0;
  t.compares <- 0;
  t.sort_s <- 0.0;
  t.merge_s <- 0.0;
  t.join_s <- 0.0;
  t.other_s <- 0.0;
  t.sort_io <- 0;
  t.merge_io <- 0;
  t.join_io <- 0;
  t.other_io <- 0;
  t.active <- None

let set_phase t phase = t.active <- phase

let charge_phase_io t =
  match t.active with
  | Some Sort -> t.sort_io <- t.sort_io + 1
  | Some Merge -> t.merge_io <- t.merge_io + 1
  | Some Join -> t.join_io <- t.join_io + 1
  | Some Other | None -> t.other_io <- t.other_io + 1

let record_read t =
  t.reads <- t.reads + 1;
  charge_phase_io t

let record_write t =
  t.writes <- t.writes + 1;
  charge_phase_io t
let record_fuzzy_op t = t.fuzzy <- t.fuzzy + 1
let record_comparison t = t.compares <- t.compares + 1
let record_fuzzy_ops t n = t.fuzzy <- t.fuzzy + n
let record_comparisons t n = t.compares <- t.compares + n
let page_reads t = t.reads
let page_writes t = t.writes
let total_ios t = t.reads + t.writes
let fuzzy_ops t = t.fuzzy
let comparisons t = t.compares

let add_phase t phase s =
  match phase with
  | Sort -> t.sort_s <- t.sort_s +. s
  | Merge -> t.merge_s <- t.merge_s +. s
  | Join -> t.join_s <- t.join_s +. s
  | Other -> t.other_s <- t.other_s +. s

let timed t phase f =
  let outer = t.active in
  let start = Unix.gettimeofday () in
  t.active <- Some phase;
  let finish () =
    let elapsed = Unix.gettimeofday () -. start in
    t.active <- outer;
    add_phase t phase elapsed;
    (* Remove the nested time from the enclosing phase so buckets are
       exclusive. *)
    match outer with Some p -> add_phase t p (-.elapsed) | None -> ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let cpu_seconds t = t.sort_s +. t.merge_s +. t.join_s +. t.other_s

let phase_ios t = function
  | Sort -> t.sort_io
  | Merge -> t.merge_io
  | Join -> t.join_io
  | Other -> t.other_io

let phase_seconds t = function
  | Sort -> t.sort_s
  | Merge -> t.merge_s
  | Join -> t.join_s
  | Other -> t.other_s

let response_time t ~io_latency =
  cpu_seconds t +. (float_of_int (total_ios t) *. io_latency)

let add_into acc t =
  acc.reads <- acc.reads + t.reads;
  acc.writes <- acc.writes + t.writes;
  acc.fuzzy <- acc.fuzzy + t.fuzzy;
  acc.compares <- acc.compares + t.compares;
  acc.sort_s <- acc.sort_s +. t.sort_s;
  acc.merge_s <- acc.merge_s +. t.merge_s;
  acc.join_s <- acc.join_s +. t.join_s;
  acc.other_s <- acc.other_s +. t.other_s;
  acc.sort_io <- acc.sort_io + t.sort_io;
  acc.merge_io <- acc.merge_io + t.merge_io;
  acc.join_io <- acc.join_io + t.join_io;
  acc.other_io <- acc.other_io + t.other_io

let pp ppf t =
  Format.fprintf ppf
    "reads=%d writes=%d fuzzy_ops=%d compares=%d cpu=%.3fs (sort %.3fs, merge \
     %.3fs, join %.3fs, other %.3fs)"
    t.reads t.writes t.fuzzy t.compares (cpu_seconds t) t.sort_s t.merge_s
    t.join_s t.other_s
