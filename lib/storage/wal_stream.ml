(* WAL shipping primitives: a positioned read cursor over a live log
   (primary side), an incremental commit-boundary parser over received
   bytes (replica side), and a raw byte appender that keeps the replica's
   log a byte-prefix of the primary's.

   The shipping invariant is byte identity: the sender reads raw frames
   through its own fd and the applier appends them verbatim, so replica
   LSNs coincide with primary LSNs and every frame re-validates locally
   (CRC + offset stamp). Only bytes up to the primary's commit point are
   drained into the replica's file, so the replica log is clean-ended at
   all times and a read-only [Wal.open_existing] succeeds whenever the
   applier is between batches. *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

(* ------------------------------------------------------------------ *)
(* Cursor: primary-side reader *)

module Cursor = struct
  type t = {
    path : string;
    mutable fd : Unix.file_descr;
    mutable pos : int;
  }

  let open_at ~path ~pos =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0o644 in
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    { path; fd; pos }

  let pos t = t.pos

  (* A checkpoint rewrites the log via tmp+rename: the path then names a
     new inode and every LSN this cursor knows is meaningless. The
     sender checks this before each batch and forces subscribers through
     a snapshot resync. *)
  let rotated t =
    try
      let on_disk = Unix.stat t.path and open_file = Unix.fstat t.fd in
      on_disk.Unix.st_ino <> open_file.Unix.st_ino
      || on_disk.Unix.st_dev <> open_file.Unix.st_dev
    with Unix.Unix_error _ -> true

  let reopen t ~pos =
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.fd <- Unix.openfile t.path [ Unix.O_RDONLY ] 0o644;
    ignore (Unix.lseek t.fd pos Unix.SEEK_SET);
    t.pos <- pos

  (* Read up to [max] bytes, never past [upto] (the primary's current
     shippable end). Returns [Bytes.empty] when already caught up. *)
  let read t ~upto ~max =
    let want = min max (upto - t.pos) in
    if want <= 0 then Bytes.empty
    else begin
      let buf = Bytes.create want in
      let got = ref 0 in
      let eof = ref false in
      while (not !eof) && !got < want do
        match Unix.read t.fd buf !got (want - !got) with
        | 0 -> eof := true
        | n -> got := !got + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      t.pos <- t.pos + !got;
      if !got = want then buf else Bytes.sub buf 0 !got
    end

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Tail: replica-side incremental parser *)

module Tail = struct
  type t = {
    mutable buf : bytes;
    mutable len : int;  (** live bytes in [buf] *)
    mutable base : int;  (** file offset of [buf.[0]] *)
  }

  let create ~start_lsn = { buf = Bytes.create 4096; len = 0; base = start_lsn }
  let expected t = t.base + t.len

  let feed t data =
    let n = Bytes.length data in
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (max 4096 (2 * Bytes.length t.buf)) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end;
    Bytes.blit data 0 t.buf t.len n;
    t.len <- t.len + n

  type drained = {
    records : (int * Wal.record) list;  (** (end-LSN, record), in order *)
    bytes : bytes;  (** the raw frames behind [records], verbatim *)
    new_end : int;  (** end LSN of the drained prefix *)
  }

  (* Hand back the longest prefix of buffered bytes that ends at a
     commit point; everything behind a [Commit]/[Checkpoint] boundary is
     safe to append + fsync locally because it can never be truncated by
     the primary's recovery. Returns [Ok None] when no boundary is
     buffered yet. *)
  let drain t =
    let records, consumed, status =
      Wal.parse_stream t.buf ~len:t.len ~base:t.base
    in
    match status with
    | Wal.Stream_bad ->
        Error
          (Printf.sprintf "corrupt WAL stream at lsn %d" (t.base + consumed))
    | Wal.Stream_ok -> (
        let boundary =
          List.fold_left
            (fun acc (end_lsn, r) ->
              match r with
              | Wal.Commit | Wal.Checkpoint _ -> end_lsn
              | _ -> acc)
            t.base records
        in
        if boundary = t.base then Ok None
        else begin
          let nbytes = boundary - t.base in
          let bytes = Bytes.sub t.buf 0 nbytes in
          let records =
            List.filter (fun (end_lsn, _) -> end_lsn <= boundary) records
          in
          Bytes.blit t.buf nbytes t.buf 0 (t.len - nbytes);
          t.len <- t.len - nbytes;
          t.base <- boundary;
          Ok (Some { records; bytes; new_end = boundary })
        end)

  (* Drop buffered bytes (resync: the stream restarts elsewhere). *)
  let reset t ~start_lsn =
    t.len <- 0;
    t.base <- start_lsn
end

(* ------------------------------------------------------------------ *)
(* Appender: replica-side raw writer *)

module Appender = struct
  type t = { fd : Unix.file_descr; mutable end_lsn : int }

  let open_at ~path =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
    let end_lsn = (Unix.fstat fd).Unix.st_size in
    { fd; end_lsn }

  let end_lsn t = t.end_lsn

  let append t data =
    write_all t.fd data 0 (Bytes.length data);
    t.end_lsn <- t.end_lsn + Bytes.length data

  let fsync t = Unix.fsync t.fd
  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Committed state of an on-disk log (no Wal.t needed) *)

(* (committed_end, epoch) of the log at [path]: the last commit-point
   boundary and the maximum epoch at or before it. Tolerates a torn tail
   (ignored, exactly as recovery would truncate it). *)
let committed_state ~path =
  let s = Wal.scan path in
  if s.Wal.scan_bad_header then Error (path ^ ": unreadable WAL header")
  else begin
    let boundary =
      List.fold_left
        (fun acc (end_lsn, r) ->
          match r with
          | Wal.Commit | Wal.Checkpoint _ -> end_lsn
          | _ -> acc)
        Wal.header_size s.Wal.scan_records
    in
    (* An [Epoch] bump binds only once a later commit point covers it —
       a crash before that commit truncates the bump away. *)
    let epoch =
      List.fold_left
        (fun acc (end_lsn, r) ->
          if end_lsn > boundary then acc
          else
            match r with
            | Wal.Checkpoint { epoch = e; _ } | Wal.Epoch { epoch = e } ->
                max acc e
            | _ -> acc)
        0 s.Wal.scan_records
    in
    Ok (boundary, epoch)
  end
