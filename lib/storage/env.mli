(** A storage environment bundles the simulated disk, its buffer pool, and
    the statistics they report into. One environment per experiment run. *)

type t = {
  stats : Iostats.t;
  disk : Sim_disk.t;
  pool : Buffer_pool.t;
}

val create : ?page_size:int -> ?pool_pages:int -> unit -> t
(** Defaults: 8 KB pages, 256-page (2 MB) pool — the configuration of the
    paper's experiments. *)

val page_size : t -> int

val set_fault : t -> Fault.t option -> unit
(** Attach (or clear) a fault-injection plane on the environment's disk.
    Attach it only after catalogs are loaded, so data loading itself
    cannot fault. *)

val fault : t -> Fault.t option

val reset_stats : t -> unit
(** Zero the counters and drop the buffer pool so a measurement starts
    cold. *)
