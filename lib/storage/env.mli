(** A storage environment bundles a backend disk, its buffer pool, and
    the statistics they report into. One environment per experiment run
    (simulated) or per data directory (durable).

    Durable environments additionally carry a {!Wal} and a second,
    always-simulated disk/pool pair for {e temporary} pages: sort runs
    and materialised intermediates are rebuilt on restart anyway, so
    they stay unlogged and in memory ("temp pages stay unlogged"). In a
    simulated environment [temp_disk]/[temp_pool] are the main
    disk/pool themselves, so pre-durability behaviour is unchanged. *)

type t = {
  stats : Iostats.t;
  disk : Disk.t;
  pool : Buffer_pool.t;
  temp_disk : Disk.t;  (** where unlogged temporary pages live *)
  temp_pool : Buffer_pool.t;
  wal : Wal.t option;  (** present iff the environment is durable *)
  recovery : Recovery.report option;
      (** what {!open_durable} had to replay (writable opens only) *)
}

val create : ?page_size:int -> ?pool_pages:int -> unit -> t
(** Simulated environment. Defaults: 8 KB pages, 256-page (2 MB) pool —
    the configuration of the paper's experiments. *)

val open_durable :
  ?page_size:int ->
  ?pool_pages:int ->
  ?wal_sync:Wal.sync_mode ->
  ?readonly:bool ->
  dir:string ->
  unit ->
  t
(** Durable environment over [dir] (created if missing), running crash
    recovery first when the last shutdown was unclean. With
    [~readonly:true] no recovery is attempted — the log must already be
    clean (raises {!Wal.Needs_recovery} otherwise) and all mutation
    raises; this is how daemon workers share a directory the
    coordinator has already recovered. [page_size] applies to fresh
    directories only. *)

val is_durable : t -> bool
val page_size : t -> int

val set_fault : t -> Fault.t option -> unit
(** Attach (or clear) a fault-injection plane on the environment's main
    disk. Attach it only after catalogs are loaded, so data loading
    itself cannot fault. *)

val fault : t -> Fault.t option
val wal : t -> Wal.t option
val recovery : t -> Recovery.report option

val manifest : t -> (int * bytes * int array) list
(** Durable files as [(fid, meta blob, pages)]; [[]] when simulated.
    {!Relational.Catalog.load_durable} rebuilds relations from this. *)

val flush : t -> unit
(** Write every dirty page back to the backend (WAL rule respected),
    keeping the frames cached. The safe prelude to anything that reads
    the disk behind the pool's back. *)

val commit : t -> unit
(** Flush the pool and force a durable commit point (no-op WAL-wise on
    simulated environments). After [commit] returns, all preceding
    mutations survive a crash. *)

val checkpoint : t -> unit
(** Flush, fsync the data file, rewrite the log as a manifest snapshot
    and reset page-LSNs — bounds replay at the next restart to zero. *)

val reset_stats : t -> unit
(** Zero the counters and {e drop} the buffer pool so a measurement
    starts cold. Dropping flushes dirty pages first ({!Buffer_pool.drop}
    never discards writes), so this is safe on durable environments
    too; it does {e not} commit — call {!commit} for a durability
    point. Use {!flush} when you only need pages written back without
    losing the cache. *)

val close : t -> unit
(** Clean shutdown: checkpoint (writable durable environments), then
    close WAL and data file. Recovery at the next open is a no-op. *)

val crash : t -> unit
(** Simulate a crash: close the underlying fds {e without} flushing the
    pool or the WAL's buffered records. The next {!open_durable} must
    recover. Test/bench hook. *)
