(** Write-ahead log: append-only redo log with LSN-stamped, CRC-32
    checksummed records, group-commit batching, and the durable catalog
    ("manifest") embedded in checkpoint records.

    {2 LSNs}

    An LSN is a byte offset: a record's LSN is the file offset just past
    its last byte, so "flushed up to LSN [l]" means exactly "the first
    [l] bytes of the log are durable". {!Buffer_pool} stamps each dirty
    frame with the LSN of the last record that touched it and calls
    {!ensure_committed} before writing the frame back — the WAL rule: no
    page reaches the data file before its log records.

    {2 Commit points}

    [Commit] (and [Checkpoint]) records mark durability points.
    {!Recovery} replays only up to the last valid commit point, and
    because {!ensure_committed} forces a commit before any logged page
    is written back, the data file never holds effects from beyond a
    commit point: the restart state is {e exactly} the last committed
    state — redo-only, no undo pass needed.

    {2 Torn-page defence}

    The first post-checkpoint touch of a page that already existed at
    checkpoint time logs a full [Page_image] before the delta, so redo
    reconstructs every touched page from the log alone and never reads a
    possibly-torn page from the data file. Pages allocated after the
    checkpoint start from zeroes ({!Sim_disk.alloc}'s contract).

    {2 Sync modes}

    [Always] fsyncs on every commit; [Group] batches concurrent
    committers behind one leader fsync (the {!commits}/{!fsyncs}
    counters let [bench wal] report the batching factor); [Never] hands
    records to the kernel without fsync (crash durability is then up to
    the OS — still torn-proof, but recent commits may be lost). *)

val header_size : int
(** Bytes of file magic before the first record; the LSN of an empty
    log. *)

type sync_mode = Always | Group | Never

val sync_mode_name : sync_mode -> string
val sync_mode_of_string : string -> sync_mode option

type record =
  | Alloc of { fid : int; page : int }
      (** durable file [fid] allocated [page] (zeroed) *)
  | Page_image of { page : int; data : bytes }
      (** full before-use image; first post-checkpoint touch *)
  | Heap_append of { page : int; off : int; count : int; data : bytes }
      (** record bytes [data] at [off]; page record count becomes [count] *)
  | Free of { fid : int }  (** durable file destroyed; pages reusable *)
  | Define of { fid : int; meta : bytes }
      (** catalog entry: opaque metadata blob (schema) for [fid] *)
  | Commit  (** durability point *)
  | Checkpoint of {
      next_fid : int;
      files : (int * bytes * int array) list;
      epoch : int;
    }
      (** manifest snapshot: (fid, meta, pages) per durable file, plus
          the replication epoch in force (0 on pre-replication logs) *)
  | Epoch of { epoch : int }
      (** replication epoch bump — appended at promotion so a restarted
          node (and any tailing replica) learns the new epoch without
          waiting for a checkpoint *)

type t

exception Read_only of string
(** Mutation attempted through a read-only handle. *)

exception Needs_recovery of string
(** {!open_existing} found a torn tail or an uncommitted suffix — run
    {!Recovery.recover} first. *)

val create : path:string -> mode:sync_mode -> t
(** Create (or truncate) the log at [path]; writes and fsyncs the header. *)

val open_existing : path:string -> mode:sync_mode -> readonly:bool -> t
(** Open a {e clean} log — every record valid and the last one a commit
    point — rebuilding the manifest from its records. Raises
    {!Needs_recovery} otherwise. *)

val close : t -> unit
(** Flush buffered records (writable handles) and close the fd. *)

val crash : t -> unit
(** Close, {e discarding} buffered unwritten records — the in-process
    crash simulation used by recovery tests and benches. *)

(** {2 Appending} *)

val append : t -> record -> int
(** Append one record (buffered; not yet on disk) and return its LSN.
    Updates the in-memory manifest. Raises {!Read_only}. *)

val commit : t -> unit
(** Append a [Commit] (if anything is uncommitted) and make it durable
    per the sync mode. Safe from multiple threads; in [Group] mode
    concurrent callers share fsyncs. *)

val ensure_committed : t -> int -> unit
(** [ensure_committed t lsn] — the WAL-rule hook: guarantee a commit
    point at or past [lsn] exists durably before the caller writes the
    page stamped [lsn] to the data file. Forces a commit if needed. *)

(** {2 Logged operations} (called by {!Heap_file}) *)

val new_file : t -> int
(** Reserve a fresh durable-file id. *)

val log_alloc : t -> fid:int -> page:int -> int
val log_define : t -> fid:int -> meta:bytes -> unit
val log_free : t -> fid:int -> unit

val log_heap_append :
  t -> page:int -> off:int -> count:int -> data:bytes -> image:(unit -> bytes) -> int
(** Log one heap-page append; calls [image] to capture and log the full
    page before-image first when this is the page's first
    post-checkpoint touch. Returns the delta record's LSN (the page's
    new page-LSN). *)

val checkpoint : t -> unit
(** Rewrite the log as a single manifest-snapshot record. The caller
    must already have flushed and fsynced the data file — afterwards
    replay length is zero. Resets the fresh-page set, so subsequent
    first touches log new page images. *)

(** {2 Manifest} *)

val manifest : t -> (int * bytes * int array) list
(** Durable files as [(fid, meta, pages)], sorted by fid. [meta] is the
    opaque blob from the last [Define] (empty if none). *)

(** {2 Scanning} (recovery) *)

type scan = {
  scan_records : (int * record) list;  (** (end-LSN, record), log order *)
  scan_valid_end : int;  (** offset just past the last valid record *)
  scan_file_len : int;
  scan_bad_header : bool;  (** missing file or unrecognisable header *)
}

val scan : string -> scan
(** Parse the log at a path, stopping at the first invalid frame (bad
    CRC, wrong offset stamp, short tail). Never raises on torn input. *)

type stream_status =
  | Stream_ok  (** stopped at an incomplete trailing frame — feed more *)
  | Stream_bad
      (** stopped at a fully-present but invalid frame (bad CRC, wrong
          offset stamp, undecodable body) — the stream is corrupt *)

val parse_stream :
  ?off:int ->
  ?len:int ->
  bytes ->
  base:int ->
  (int * record) list * int * stream_status
(** [parse_stream data ~base] decodes consecutive frames from
    [data.[off .. off+len)], whose first byte lives at file offset
    [base]; returns [(end-LSN, record)] pairs in order, the bytes
    consumed, and why parsing stopped. The incremental parser behind the
    replication tail ({!Wal_stream.Tail}); {!scan} is the whole-file
    special case. *)

(** {2 Introspection} *)

val path : t -> string
val mode : t -> sync_mode
val readonly : t -> bool

val size : t -> int
(** End LSN — total log bytes including buffered records. *)

val committed_end : t -> int
(** LSN of the last commit point. *)

val durable_lsn : t -> int
val commits : t -> int
val fsyncs : t -> int
val appended : t -> int

val is_fresh_page : t -> int -> bool
(** Whether [page] was allocated or imaged since the last checkpoint
    (no before-image needed on next touch). *)

(** {2 Replication} *)

val epoch : t -> int
(** Replication epoch in force — the maximum over every [Epoch] and
    [Checkpoint] record seen (0 when the log predates replication). *)

val written_lsn : t -> int
(** Bytes handed to the kernel — the prefix of the file that is safe to
    read through an independent fd (buffered records are not yet
    visible there). The WAL sender ships
    [min (committed_end t) (written_lsn t)]. *)

val log_epoch : t -> int -> unit
(** Append an [Epoch] record (promotion). The caller should {!commit}
    right after so the log stays clean-ended. *)
