(** Durable page store over a data-directory file.

    The on-disk layout is [<dir>/data.fsql]: a 4 KiB header (magic +
    page size) followed by fixed-size page slots, each [page_size]
    payload bytes plus a 16-byte trailer holding a CRC-32, the LSN of
    the last logged write, and a trailer magic. The CRC covers the
    payload {e and} the page id {e and} the LSN, so misdirected writes,
    torn writes and bit rot all surface as a typed
    {!Checksum_mismatch} on read — never as garbage rows.

    Mirrors the {!Sim_disk} API (same [Bad_page]/[Write_size]
    exceptions, same alloc-zeroes contract, same {!Iostats} accounting)
    so {!Disk} can dispatch between them; adds LSN-aware reads/writes
    for the WAL rule and [sync]/[extend] hooks for checkpointing and
    recovery. Individual writes are {e not} fsynced — durability points
    belong to {!Wal}; {!sync} is called at checkpoints.

    The free list is in-memory only: after a crash, {!Recovery} rebuilds
    it from the WAL manifest as the complement of live pages. *)

type t

exception Checksum_mismatch of { page : int; stored : int32; computed : int32 }
(** A page failed trailer validation on read. Always raised instead of
    returning corrupt payload bytes. *)

exception Bad_header of string
(** The data file's header is missing or malformed. *)

val create : ?page_size:int -> dir:string -> Iostats.t -> t
(** Create (or truncate) [<dir>/data.fsql]; creates [dir] if missing.
    Default page size 8192, as {!Sim_disk.create}; raises
    [Invalid_argument] unless [0 < page_size <= 65536] (the WAL encodes
    in-page offsets as u16). *)

val open_existing : ?readonly:bool -> dir:string -> Iostats.t -> t
(** Open an existing data file, validating its header (raises
    {!Bad_header}). With [~readonly:true] all mutation raises
    [Invalid_argument] — the mode daemon workers use after recovery. *)

val exists : dir:string -> bool
val dir : t -> string

val path : t -> string
(** The data file's path ([<dir>/data.fsql]). *)

val path_of : string -> string
(** The data file's path inside a directory, without opening it —
    replication's snapshot sender and applier name the file before any
    handle exists. *)

val page_size : t -> int
val stats : t -> Iostats.t
val set_fault : t -> Fault.t option -> unit
val fault : t -> Fault.t option

val alloc : t -> int
(** As {!Sim_disk.alloc}: returns a zeroed page (recycled pages are
    re-zeroed on disk), allocation itself uncounted as I/O. *)

val read : t -> int -> bytes
(** Page payload after trailer validation; counts one read. Raises
    {!Checksum_mismatch}, {!Sim_disk.Bad_page}, or {!Fault.Injected}. *)

val read_with_lsn : t -> int -> bytes * int
(** [read] plus the LSN stamped at the last logged write. *)

val read_raw : t -> int -> bytes
(** Payload without trailer validation — recovery diagnostics only. *)

val verify : t -> int -> (unit, int32 * int32) result
(** Check one page's trailer: [Error (stored, computed)] on mismatch. *)

val write : ?lsn:int -> t -> int -> bytes -> unit
(** Write a page with its WAL LSN stamped in the trailer (default 0 for
    unlogged pages); counts one write, no fsync. Raises
    {!Sim_disk.Bad_page}, {!Sim_disk.Write_size}, or {!Fault.Injected}
    ([Torn_write] persists the first half of the slot, leaving a
    detectable stale trailer). *)

val ensure_pages : t -> int -> unit
(** Grow the file so pages [0, n) exist (zeroed, valid trailers). Used
    by recovery before redo. *)

val num_pages : t -> int
val live_pages : t -> int
val free_pages : t -> int
val free : t -> int list -> unit

val reset_free : t -> int list -> unit
(** Replace the in-memory free list wholesale (recovery: complement of
    the manifest's live pages). *)

val sync : t -> unit
(** fsync the data file — a checkpoint's durability point. *)

val close : t -> unit
