exception Bad_page of { page : int; num_pages : int }
exception Write_size of { page : int; expected : int; got : int }

let () =
  Printexc.register_printer (function
    | Bad_page { page; num_pages } ->
        Some
          (Printf.sprintf "Sim_disk.Bad_page(page %d, disk has %d pages)" page
             num_pages)
    | Write_size { page; expected; got } ->
        Some
          (Printf.sprintf
             "Sim_disk.Write_size(page %d, expected %d bytes, got %d)" page
             expected got)
    | _ -> None)

type t = {
  page_size : int;
  stats : Iostats.t;
  mutable pages : bytes array;
  mutable used : int;
  mutable free_list : int list;
  mutable n_free : int;
  mutable fault : Fault.t option;
}

let create ?(page_size = 8192) stats =
  if page_size <= 0 then invalid_arg "Sim_disk.create: page_size";
  {
    page_size;
    stats;
    pages = Array.make 64 Bytes.empty;
    used = 0;
    free_list = [];
    n_free = 0;
    fault = None;
  }

let page_size t = t.page_size
let stats t = t.stats
let set_fault t f = t.fault <- f
let fault t = t.fault

let grow t =
  let cap = Array.length t.pages in
  if t.used >= cap then begin
    let bigger = Array.make (cap * 2) Bytes.empty in
    Array.blit t.pages 0 bigger 0 cap;
    t.pages <- bigger
  end

let alloc t =
  Fault.on_alloc t.fault;
  match t.free_list with
  | id :: rest ->
      t.free_list <- rest;
      t.n_free <- t.n_free - 1;
      Bytes.fill t.pages.(id) 0 t.page_size '\000';
      id
  | [] ->
      grow t;
      let id = t.used in
      t.pages.(id) <- Bytes.make t.page_size '\000';
      t.used <- t.used + 1;
      id

let check_id t id =
  if id < 0 || id >= t.used then raise (Bad_page { page = id; num_pages = t.used })

let read t id =
  check_id t id;
  Fault.on_read t.fault ~page:id;
  Iostats.record_read t.stats;
  Bytes.copy t.pages.(id)

let write t id buf =
  check_id t id;
  if Bytes.length buf <> t.page_size then
    raise (Write_size { page = id; expected = t.page_size; got = Bytes.length buf });
  Fault.on_write t.fault ~page:id (fun () ->
      Bytes.blit buf 0 t.pages.(id) 0 (t.page_size / 2));
  Iostats.record_write t.stats;
  Bytes.blit buf 0 t.pages.(id) 0 t.page_size

let num_pages t = t.used
let free_pages t = t.n_free
let live_pages t = t.used - t.n_free

let free t ids =
  List.iter (fun id -> check_id t id) ids;
  t.free_list <- ids @ t.free_list;
  t.n_free <- t.n_free + List.length ids
