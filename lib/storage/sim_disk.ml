type t = {
  page_size : int;
  stats : Iostats.t;
  mutable pages : bytes array;
  mutable used : int;
  mutable free_list : int list;
}

let create ?(page_size = 8192) stats =
  if page_size <= 0 then invalid_arg "Sim_disk.create: page_size";
  { page_size; stats; pages = Array.make 64 Bytes.empty; used = 0; free_list = [] }

let page_size t = t.page_size
let stats t = t.stats

let grow t =
  let cap = Array.length t.pages in
  if t.used >= cap then begin
    let bigger = Array.make (cap * 2) Bytes.empty in
    Array.blit t.pages 0 bigger 0 cap;
    t.pages <- bigger
  end

let alloc t =
  match t.free_list with
  | id :: rest ->
      t.free_list <- rest;
      Bytes.fill t.pages.(id) 0 t.page_size '\000';
      id
  | [] ->
      grow t;
      let id = t.used in
      t.pages.(id) <- Bytes.make t.page_size '\000';
      t.used <- t.used + 1;
      id

let check_id t id =
  if id < 0 || id >= t.used then invalid_arg "Sim_disk: bad page id"

let read t id =
  check_id t id;
  Iostats.record_read t.stats;
  Bytes.copy t.pages.(id)

let write t id buf =
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Sim_disk.write: buffer size mismatch";
  Iostats.record_write t.stats;
  Bytes.blit buf 0 t.pages.(id) 0 t.page_size

let num_pages t = t.used

let free t ids =
  List.iter (fun id -> check_id t id) ids;
  t.free_list <- ids @ t.free_list
