type t = {
  domains : int;
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable shutting_down : bool;
}

let domains t = t.domains

(* Workers block on [work_available]; a [None] wakeup with [shutting_down]
   set is the exit signal. Jobs never raise: {!run_list} wraps them. *)
let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.lock;
    let rec take () =
      match Queue.take_opt pool.queue with
      | Some job -> Some job
      | None ->
          if pool.shutting_down then None
          else begin
            Condition.wait pool.work_available pool.lock;
            take ()
          end
    in
    let job = take () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some job ->
        job ();
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Task_pool.create: domains < 1";
  let pool =
    {
      domains;
      workers = [||];
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      shutting_down = false;
    }
  in
  (* Never run more domains than the hardware can schedule: oversubscribed
     domains only add stop-the-world minor-GC synchronisation (every
     collection must context-switch through all of them), which on a machine
     with fewer cores than [domains] costs far more than the parallelism
     returns. The pool keeps its requested width — [run_list] callers still
     partition their work [domains] ways — and the coordinator executes
     whatever the capped worker set does not pick up. *)
  let hw = Int.max 1 (Domain.recommended_domain_count ()) in
  let spawned = Int.min (domains - 1) (hw - 1) in
  pool.workers <-
    Array.init spawned (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let run_list pool jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let wrap i () =
      let r =
        try Ok (jobs.(i) ())
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock pool.lock;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast pool.batch_done;
      Mutex.unlock pool.lock
    in
    Mutex.lock pool.lock;
    for i = 1 to n - 1 do
      Queue.add (wrap i) pool.queue
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    (* The coordinator runs the first job, then helps drain the queue and
       finally sleeps until in-flight worker jobs signal completion. *)
    wrap 0 ();
    let rec help () =
      Mutex.lock pool.lock;
      let job = Queue.take_opt pool.queue in
      Mutex.unlock pool.lock;
      match job with
      | Some job ->
          job ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock pool.lock;
    while !remaining > 0 do
      Condition.wait pool.batch_done pool.lock
    done;
    Mutex.unlock pool.lock;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end

(* Traced batches: each job gets a forked collector (lane = job index + 1;
   lane 0 is the coordinator) wrapped in one span, and the forks are grafted
   back under the caller's open span after the batch joins. With [?trace]
   absent this is [run_list] with every job applied to [None] — no
   allocation beyond the closure list. *)
let run_list_traced ?trace ?(label = "task") pool jobs =
  match trace with
  | None -> run_list pool (List.map (fun job () -> job None) jobs)
  | Some tr ->
      let forks =
        Array.init (List.length jobs) (fun i -> Trace.fork tr ~lane:(i + 1))
      in
      let wrapped =
        List.mapi
          (fun i job () ->
            let ft = Some forks.(i) in
            Trace.with_span ft
              (Printf.sprintf "%s-%d" label i)
              (fun () -> job ft))
          jobs
      in
      let results = run_list pool wrapped in
      Array.iter (fun ft -> Trace.graft tr ft) forks;
      results

let map_array pool ~f arr =
  Array.of_list (run_list pool (List.map (fun x () -> f x) (Array.to_list arr)))

let shutdown pool =
  Mutex.lock pool.lock;
  pool.shutting_down <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let with_pool ~domains f =
  let pool = create ~domains in
  match f pool with
  | v ->
      shutdown pool;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown pool;
      Printexc.raise_with_backtrace e bt
