(** Cooperative cancellation tokens with optional deadlines.

    A token is shared between the party that may cancel a computation (a
    server connection handler reacting to a client's cancel frame, or the
    admission layer that stamped a deadline on the request) and the
    computation itself, which polls {!check} at operator boundaries — the
    merge-join sweep loop, the sort comparator, the blocked nested-loop scan.
    Polling a token is one atomic load on the fast path; the deadline clock
    is only consulted every {!poll_period} checks, so a check is cheap
    enough for per-tuple call sites.

    Tokens may be cancelled from any domain or thread; the computation
    observes the flag at its next check and unwinds with {!Cancelled}. Under
    a multi-domain {!Task_pool} batch every parallel job polls the same
    token, and {!Task_pool.run_list} re-raises the exception on the
    coordinator once the batch has joined. *)

type t

exception Cancelled of string
(** Raised by {!check} (and {!raise_if_cancelled}) once the token is
    cancelled or its deadline has passed. The payload is the reason
    ([deadline exceeded], [cancelled by client], ...). *)

val create : ?deadline:float -> unit -> t
(** A fresh token. [deadline] is an absolute [Unix.gettimeofday] instant
    after which {!check} raises; omitted means no deadline. *)

val with_timeout : seconds:float -> unit -> t
(** [create] with a deadline [seconds] from now. *)

val cancel : ?reason:string -> t -> unit
(** Request cancellation (default reason ["cancelled"]). Idempotent — the
    first reason wins — and safe to call from any domain or thread. *)

val cancelled : t -> bool
(** Has the token been cancelled (explicitly or by a previous deadline
    check)? Does not itself consult the clock. *)

val reason : t -> string
(** The cancellation reason ([""] while the token is live). *)

val deadline : t -> float option
(** The absolute deadline, if any. *)

val check : t option -> unit
(** Poll the token: raise {!Cancelled} if it has been cancelled, or mark it
    cancelled and raise if its deadline has passed. [None] is the no-op
    token — execution paths thread a [t option] exactly like
    {!Trace.t option}, and the disabled path costs one branch. *)

val raise_if_cancelled : t -> unit
(** {!check} on a known-present token. *)

val poll_period : int
(** Number of {!check} calls between deadline clock reads (the cancel flag
    itself is read on every call). *)
