(** I/O and CPU accounting for the simulated storage engine.

    The paper's experiments (Section 9) report response time, CPU time, the
    percentage of time spent sorting, and the number of I/Os. On modern
    hardware with an in-memory simulated disk the actual wall-clock is CPU
    only, so response time is modelled as
    [cpu_seconds + (page_reads + page_writes) * io_latency] — the same events
    a 1995 disk serialized, charged at a configurable per-page latency. *)

type phase = Sort | Merge | Join | Other

type t

val create : unit -> t
val reset : t -> unit

val record_read : t -> unit
val record_write : t -> unit
val record_fuzzy_op : t -> unit
(** One satisfaction-degree computation ("call to the fuzzy library
    functions" in the paper's Fig. 3 discussion). *)

val record_comparison : t -> unit
(** One tuple comparison during sort/merge/join. *)

val record_fuzzy_ops : t -> int -> unit
val record_comparisons : t -> int -> unit
(** Bulk variants used by the batch kernels: one call charges a whole
    column pass, so the counters stay comparable with the scalar engine
    without a field increment inside the hot loop. *)

val page_reads : t -> int
val page_writes : t -> int
val total_ios : t -> int
val fuzzy_ops : t -> int
val comparisons : t -> int

val timed : t -> phase -> (unit -> 'a) -> 'a
(** Accumulates wall-clock of [f] into the phase's CPU bucket. Nested calls
    attribute time to the innermost phase only. *)

val set_phase : t -> phase option -> unit
(** Tag the record so subsequent page transfers are charged to the given
    phase's I/O bucket {e without} starting a timer. This is how a
    {!Task_pool} job's private record attributes its I/O correctly: the
    parallel sort sets [Some Sort] on each worker's record (and on the
    sorter's scratch environments), the parallel sweep sets [Some Merge],
    so after {!add_into} the shared record's per-phase I/O counts match the
    sequential engine's instead of landing in [Other]. Do not use on a
    record that is inside a {!timed} call — [timed] restores its own phase
    on exit. *)

val cpu_seconds : t -> float
(** Total across phases. *)

val phase_seconds : t -> phase -> float

val phase_ios : t -> phase -> int
(** Page transfers recorded while the given phase was innermost-active
    (transfers outside any [timed] call count as [Other]). *)

val response_time : t -> io_latency:float -> float
(** [cpu_seconds + total_ios * io_latency]. *)

val add_into : t -> t -> unit
(** [add_into acc t] accumulates [t]'s counters and timers into [acc].

    A record is single-threaded: concurrent [record_*] calls on one [t]
    race. The parallel operators therefore give every {!Task_pool} job a
    private record and merge it into the shared one with this function
    after the batch joins — counter totals stay exact, and since jobs never
    run inside [timed], the shared record's phase timers remain the
    coordinator's wall clock. Each job's private record is phase-tagged
    with {!set_phase} so worker page transfers are charged to the phase
    that caused them (parallel sort I/O counts as [Sort], parallel sweep
    I/O as [Merge]) rather than all landing in [Other]. *)

val pp : Format.formatter -> t -> unit
