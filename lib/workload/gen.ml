open Relational
open Fuzzy

type spec = {
  n : int;
  tuple_bytes : int;
  groups : int;
  fuzzy_fraction : float;
  max_spread : float;
  random_degrees : bool;
}

let default_spec =
  {
    n = 1000;
    tuple_bytes = 128;
    groups = 100;
    fuzzy_fraction = 0.5;
    max_spread = 40.0;
    random_degrees = false;
  }

let grid_pitch = 200.0

let schema ~name =
  Schema.make ~name
    [ ("ID", Schema.TNum); ("X", Schema.TNum); ("W", Schema.TNum) ]

let join_value rng spec =
  let group = Random.State.int rng spec.groups in
  let center = float_of_int group *. grid_pitch in
  if Random.State.float rng 1.0 < spec.fuzzy_fraction then begin
    (* A random trapezoid around the grid point, support within
       [center - max_spread, center + max_spread]. *)
    let spread = 1.0 +. Random.State.float rng (Float.max 1.0 (spec.max_spread -. 1.0)) in
    let a = center -. spread in
    let d = center +. spread in
    let b = a +. Random.State.float rng (spread /. 2.0) in
    let c = d -. Random.State.float rng (spread /. 2.0) in
    let b = Float.min b c and c = Float.max b c in
    Value.Fuzzy (Possibility.trap (Trapezoid.make a b c d))
  end
  else Value.crisp_num center

let make_tuple rng spec id =
  let x = join_value rng spec in
  let w = Value.crisp_num (Random.State.float rng 1000.0) in
  let d =
    if spec.random_degrees then 0.01 +. Random.State.float rng 0.99 else 1.0
  in
  Ftuple.make [| Value.Int id; x; w |] d

let relation env ~seed ~name spec =
  if spec.max_spread *. 2.0 >= grid_pitch then
    invalid_arg "Gen.relation: max_spread too large for the join grid";
  let rng = Random.State.make [| seed |] in
  let rel = Relation.create ~pad_to:spec.tuple_bytes env (schema ~name) in
  for id = 0 to spec.n - 1 do
    Relation.insert rel (make_tuple rng spec id)
  done;
  Storage.Buffer_pool.flush env.Storage.Env.pool;
  rel

let join_pair env ~seed ~outer ~inner =
  let r = relation env ~seed ~name:"R" outer in
  let s = relation env ~seed:(seed + 7919) ~name:"S" inner in
  (r, s)

let random_trapezoid rng ~lo ~hi =
  let p () = lo +. Random.State.float rng (hi -. lo) in
  match List.sort Float.compare [ p (); p (); p (); p () ] with
  | [ a; b; c; d ] -> Trapezoid.make a b c d
  | _ -> assert false

let random_possibility rng ~lo ~hi =
  match Random.State.int rng 4 with
  | 0 -> Possibility.crisp (lo +. Random.State.float rng (hi -. lo))
  | 1 | 2 -> Possibility.trap (random_trapezoid rng ~lo ~hi)
  | _ ->
      let n = 1 + Random.State.int rng 4 in
      Possibility.discrete
        (List.init n (fun _ ->
             ( lo +. Random.State.float rng (hi -. lo),
               0.1 +. Random.State.float rng 0.9 )))
