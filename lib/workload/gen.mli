(** Workload generators for the Section 9 experiments.

    The paper's setup: randomly generated relations; a tuple of one relation
    joins, on average, [C] tuples of the other; tuple sizes are fixed
    (128-2048 bytes); join-attribute intervals are kept small ("data may be
    imprecise but not very vague").

    Generation scheme: join values sit on a coarse grid whose pitch exceeds
    twice the maximum spread, so only same-grid-point values can join; the
    average fan-out is then [n_inner / groups], and fuzziness only affects
    the join degree, not the match structure. *)

type spec = {
  n : int;  (** number of tuples *)
  tuple_bytes : int;  (** on-disk size of every tuple (paper: 128-2048) *)
  groups : int;  (** number of distinct join-grid points *)
  fuzzy_fraction : float;  (** fraction of fuzzy (vs crisp) join values *)
  max_spread : float;  (** maximum half-width of a fuzzy value's support *)
  random_degrees : bool;  (** tuple membership degrees uniform in (0,1] *)
}

val default_spec : spec
(** 1000 tuples, 128 bytes, 100 groups, 50% fuzzy, spread <= 40,
    degrees = 1. *)

val schema : name:string -> Relational.Schema.t
(** Generated relations have schema (ID: num, X: num, W: num): ID is a unique
    crisp key, X the join attribute, W an independent numeric attribute for
    selection predicates. *)

val relation :
  Storage.Env.t -> seed:int -> name:string -> spec -> Relational.Relation.t

val join_pair :
  Storage.Env.t -> seed:int -> outer:spec -> inner:spec ->
  Relational.Relation.t * Relational.Relation.t
(** Generate relations R and S sharing a join grid; with equal [groups] the
    average fan-out of R against S is [inner.n / groups]. *)

val grid_pitch : float
(** Distance between join-grid points (200.0); [max_spread] must stay below
    half of it for the fan-out accounting to be exact. *)

val random_trapezoid :
  Random.State.t -> lo:float -> hi:float -> Fuzzy.Trapezoid.t
(** A random trapezoid with support inside [lo, hi] (for property tests). *)

val random_possibility :
  Random.State.t -> lo:float -> hi:float -> Fuzzy.Possibility.t
(** Random trapezoidal, crisp, or discrete distribution inside [lo, hi]. *)
