(** Umbrella module: the public API of the nested-fuzzy-SQL reproduction.

    {1 Layers}
    - {!Fuzzy}: possibility distributions, satisfaction degrees, fuzzy
      arithmetic, linguistic terms (Section 2 of the paper).
    - {!Storage}: simulated paged disk, buffer pool, external sort, and the
      I/O statistics that power the Section 9 reproduction.
    - {!Relational}: fuzzy relations, algebra, and the two join algorithms of
      Section 3 (extended merge-join, block nested loop).
    - {!Fuzzysql}: the Fuzzy SQL language — parser, analyzer, bound queries.
    - {!Unnest}: classification of nested queries (types N, J, JX, JA, JALL,
      chains), the naive evaluator, and the unnesting executors
      (Sections 4-8).
    - {!Workload}: generators for the experiment workloads of Section 9.
    - {!Server}: the fsqld serving layer — TCP daemon, wire protocol,
      admission control, deadlines/cancellation, and the client library.

    {1 Quick start}
    {[
      let env = Frepro.Storage.Env.create () in
      let catalog = Frepro.Relational.Catalog.create env in
      (* ... register relations ... *)
      let answer =
        Frepro.Unnest.Planner.run_string ~catalog ~terms:Frepro.Fuzzy.Term.paper
          "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
           (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
      in
      Format.printf "%a" Frepro.Relational.Relation.pp answer
    ]} *)

module Fuzzy = Fuzzy
module Storage = Storage
module Relational = Relational
module Fuzzysql = Fuzzysql
module Unnest = Unnest
module Workload = Workload
module Server = Server
