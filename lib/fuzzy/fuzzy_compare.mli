(** Satisfaction degrees of fuzzy comparison predicates.

    Implements [d(X theta Y) = sup_{x,y} min (mu_X x) (mu_Y y) (mu_theta x y)]
    from Section 2.2 of the paper, for the six binary comparators and for
    user-supplied similarity relations. Analytic closed forms are used for
    trapezoid/trapezoid comparisons; discrete distributions are evaluated by
    exhaustive sup-min. [Oracle] provides an independent exact reference
    implementation (breakpoint enumeration) used by the property tests. *)

type op = Eq | Ne | Lt | Le | Gt | Ge

val op_to_string : op -> string
val flip : op -> op
(** [flip op] is the comparator with operands swapped: [d(X op Y) =
    d(Y (flip op) X)]. *)

val negate : op -> op
(** Logical complement of the comparator symbol ([Eq] <-> [Ne], [Lt] <-> [Ge],
    ...). Note that in fuzzy logic [d(X negate-op Y)] is generally NOT
    [1 - d(X op Y)]; this is only the syntactic complement. *)

val degree : op -> Possibility.t -> Possibility.t -> Degree.t
(** [degree op u v] is the possibility of [u op v]. *)

val similarity :
  ?samples:int -> (float -> float -> Degree.t) -> Possibility.t ->
  Possibility.t -> Degree.t
(** [similarity mu_theta u v] evaluates a non-binary comparator given by a
    similarity relation [mu_theta] (Section 2.2 allows these), by sup-min over
    a grid of [samples] points per support (default 128). Exact for discrete
    distributions. *)

module Oracle : sig
  val degree : op -> Possibility.t -> Possibility.t -> Degree.t
  (** Reference implementation: enumerates all breakpoints and pairwise edge
      crossings of the piecewise-linear membership functions, hence exact for
      trapezoids, and exhaustive for discrete distributions. Slower than
      [degree]; intended as the test oracle. *)
end
