(** Linguistic hedges: "very" (concentration) and "somewhat" (dilation).

    In fuzzy-set theory, "very F" is classically µ_F² and "somewhat F" is
    µ_F^0.5. Powers of trapezoids are not trapezoids, so the continuous case
    uses the standard piecewise-linear approximation that preserves the core
    and scales the edge widths (halved for "very", doubled for "somewhat");
    discrete distributions use the exact powers. Hedges stack:
    "very very young" applies the concentration twice. *)

type t = Very | Somewhat

val apply : t -> Possibility.t -> Possibility.t

val strip : string -> t list * string
(** [strip "very very young"] = ([Very; Very], "young"); recognised prefixes
    are case-insensitive "very" and "somewhat"/"fairly". *)

val lookup : Term.t -> string -> Possibility.t option
(** Like {!Term.lookup}, but when the exact phrase is absent, strips hedge
    prefixes and applies them (outermost last) to the base term. *)
