type op = Eq | Ne | Lt | Le | Gt | Ge

let op_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let flip = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

open Possibility

(* [sup_{x >= y} mem u x] as a function of [y]: 1 up to the core end, then
   the falling edge, then 0. *)
let ge_envelope tr y =
  let c = Interval.hi (Trapezoid.core tr) in
  if y <= c then 1.0 else Trapezoid.mem tr y

(* [sup_{y <= x} mem v y] as a function of [x]: 0 before the support, the
   rising edge, then 1 from the core start on. *)
let le_envelope tr x =
  let b = Interval.lo (Trapezoid.core tr) in
  if x >= b then 1.0 else Trapezoid.mem tr x

let max_over pts f =
  List.fold_left (fun acc p -> Degree.disj acc (f p)) Degree.zero pts

let eq_discrete a b =
  max_over a (fun (x, dx) ->
      max_over b (fun (y, dy) -> if x = y then Degree.conj dx dy else 0.0))

let rec degree op u v =
  match (op, u, v) with
  | Le, _, _ -> degree Ge v u
  | Lt, _, _ -> degree Gt v u
  | Eq, Trap a, Trap b -> Trapezoid.eq_height a b
  | Eq, Discrete a, Discrete b -> eq_discrete a b
  | Eq, Trap a, Discrete b | Eq, Discrete b, Trap a ->
      max_over b (fun (x, dx) -> Degree.conj dx (Trapezoid.mem a x))
  | Ne, Trap a, Trap b -> Trapezoid.ne_height a b
  | Ne, Discrete a, Discrete b ->
      max_over a (fun (x, dx) ->
          max_over b (fun (y, dy) -> if x <> y then Degree.conj dx dy else 0.0))
  | Ne, Trap a, Discrete b | Ne, Discrete b, Trap a -> (
      match Possibility.crisp_value (Trap a) with
      | None ->
          (* A non-degenerate continuous distribution reaches its height at
             points distinct from any given [y], so only the discrete side
             constrains the supremum. *)
          Possibility.height (Discrete b)
      | Some v0 -> max_over b (fun (y, dy) -> if y <> v0 then dy else 0.0))
  | Ge, Trap a, Trap b -> Trapezoid.ge_height a b
  | Ge, Discrete a, Discrete b ->
      max_over a (fun (x, dx) ->
          max_over b (fun (y, dy) -> if x >= y then Degree.conj dx dy else 0.0))
  | Ge, Trap a, Discrete b ->
      max_over b (fun (y, dy) -> Degree.conj dy (ge_envelope a y))
  | Ge, Discrete a, Trap b ->
      max_over a (fun (x, dx) -> Degree.conj dx (le_envelope b x))
  | Gt, Trap a, Trap b -> Trapezoid.gt_height a b
  | Gt, Discrete a, Discrete b ->
      max_over a (fun (x, dx) ->
          max_over b (fun (y, dy) -> if x > y then Degree.conj dx dy else 0.0))
  | Gt, Trap a, Discrete _ -> (
      match Possibility.crisp_value (Trap a) with
      | Some v0 -> degree Gt (Discrete [ (v0, 1.0) ]) v
      | None -> degree Ge u v)
  | Gt, Discrete _, Trap b -> (
      match Possibility.crisp_value (Trap b) with
      | Some v0 -> degree Gt u (Discrete [ (v0, 1.0) ])
      | None -> degree Ge u v)

let sample_points ?(samples = 128) = function
  | Discrete pts -> List.map fst pts
  | Trap tr ->
      let s = Trapezoid.support tr and c = Trapezoid.core tr in
      let lo = Interval.lo s and hi = Interval.hi s in
      let n = Int.max 2 samples in
      let grid =
        List.init n (fun i ->
            lo +. (float_of_int i *. (hi -. lo) /. float_of_int (n - 1)))
      in
      Interval.lo c :: Interval.hi c :: grid

let similarity ?samples mu_theta u v =
  let xs = sample_points ?samples u and ys = sample_points ?samples v in
  List.fold_left
    (fun acc x ->
      let mx = Possibility.mem u x in
      if mx <= acc then acc
      else
        List.fold_left
          (fun acc y ->
            Degree.disj acc
              (Degree.conj mx (Degree.conj (Possibility.mem v y) (mu_theta x y))))
          acc ys)
    Degree.zero xs

let production_degree = degree

module Oracle = struct
  (* A piece is a linear segment [mu(x) = m*x + q] valid on [lo, hi]. *)
  type piece = { lo : float; hi : float; m : float; q : float }

  let pieces_of_trap (tr : Trapezoid.t) =
    let a = Interval.lo (Trapezoid.support tr)
    and d = Interval.hi (Trapezoid.support tr) in
    let b = Interval.lo (Trapezoid.core tr)
    and c = Interval.hi (Trapezoid.core tr) in
    let core = { lo = b; hi = c; m = 0.0; q = 1.0 } in
    let rising =
      if b > a then [ { lo = a; hi = b; m = 1.0 /. (b -. a); q = -.a /. (b -. a) } ]
      else []
    in
    let falling =
      if d > c then [ { lo = c; hi = d; m = -1.0 /. (d -. c); q = d /. (d -. c) } ]
      else []
    in
    rising @ (core :: falling)

  (* Pieces of the non-decreasing envelope sup_{y <= x} mu(y), truncated to
     [cap] on the right. *)
  let pieces_of_le_envelope (tr : Trapezoid.t) ~cap =
    let a = Interval.lo (Trapezoid.support tr) in
    let b = Interval.lo (Trapezoid.core tr) in
    let rising =
      if b > a then [ { lo = a; hi = b; m = 1.0 /. (b -. a); q = -.a /. (b -. a) } ]
      else []
    in
    if cap >= b then rising @ [ { lo = b; hi = cap; m = 0.0; q = 1.0 } ]
    else rising

  let eval_pieces pieces x =
    List.fold_left
      (fun acc p -> if p.lo <= x && x <= p.hi then Float.max acc (p.m *. x +. p.q) else acc)
      0.0 pieces

  let candidates ps qs =
    let breaks =
      List.concat_map (fun p -> [ p.lo; p.hi ]) ps
      @ List.concat_map (fun p -> [ p.lo; p.hi ]) qs
    in
    let crossings =
      List.concat_map
        (fun p ->
          List.filter_map
            (fun q ->
              if p.m = q.m then None
              else
                let x = (q.q -. p.q) /. (p.m -. q.m) in
                if x >= p.lo && x <= p.hi && x >= q.lo && x <= q.hi then Some x
                else None)
            qs)
        ps
    in
    breaks @ crossings

  let sup_min ps qs =
    List.fold_left
      (fun acc x -> Float.max acc (Float.min (eval_pieces ps x) (eval_pieces qs x)))
      0.0 (candidates ps qs)

  let rec degree op u v =
    match (op, u, v) with
    | Le, _, _ -> degree Ge v u
    | Lt, _, _ -> degree Gt v u
    | Eq, Trap a, Trap b ->
        Degree.of_float (sup_min (pieces_of_trap a) (pieces_of_trap b))
    | Ge, Trap a, Trap b ->
        let cap =
          Float.max
            (Interval.hi (Trapezoid.support a))
            (Interval.hi (Trapezoid.support b))
          +. 1.0
        in
        Degree.of_float (sup_min (pieces_of_trap a) (pieces_of_le_envelope b ~cap))
    | Gt, Trap a, Trap b when Trapezoid.is_crisp a && Trapezoid.is_crisp b ->
        if Interval.lo (Trapezoid.support a) > Interval.lo (Trapezoid.support b)
        then 1.0
        else 0.0
    | Gt, Trap _, Trap _ -> degree Ge u v
    | (Eq | Ne | Gt | Ge), _, _ ->
        (* Discrete and mixed cases are already exhaustive sup-min in the
           main implementation; reuse it for the oracle. *)
        production_degree op u v
end
