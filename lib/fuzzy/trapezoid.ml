type t = { a : float; b : float; c : float; d : float }

let make a b c d =
  if Float.is_nan a || Float.is_nan b || Float.is_nan c || Float.is_nan d then
    invalid_arg "Trapezoid.make: NaN bound";
  if not (a <= b && b <= c && c <= d) then
    invalid_arg
      (Printf.sprintf "Trapezoid.make: need a <= b <= c <= d, got (%g,%g,%g,%g)"
         a b c d);
  { a; b; c; d }

let triangle a peak d = make a peak peak d

let about v ~spread =
  if spread < 0.0 then invalid_arg "Trapezoid.about: negative spread";
  triangle (v -. spread) v (v +. spread)

let crisp v = make v v v v
let is_crisp t = t.a = t.d
let support t = Interval.make t.a t.d
let core t = Interval.make t.b t.c

let alpha_cut t alpha =
  if alpha > 1.0 then None
  else if alpha <= 0.0 then Some (support t)
  else
    (* Left bound: where the rising edge reaches [alpha]; right bound: where
       the falling edge drops to [alpha]. *)
    let lo = t.a +. (alpha *. (t.b -. t.a)) in
    let hi = t.d -. (alpha *. (t.d -. t.c)) in
    Some (Interval.make lo hi)

let mem t x =
  if x < t.a || x > t.d then 0.0
  else if t.b <= x && x <= t.c then 1.0
  else if x < t.b then (x -. t.a) /. (t.b -. t.a)
  else (t.d -. x) /. (t.d -. t.c)

(* Height of the crossing between [u]'s falling edge (over [u.c, u.d]) and
   [v]'s rising edge (over [v.a, v.b]). Precondition: [u.c < v.b], i.e. the
   cores are disjoint with [u] strictly to the left. *)
let cross_height u v =
  if u.d <= v.a then 0.0
  else if u.c = u.d then mem v u.d (* u falls vertically at its core end *)
  else if v.a = v.b then mem u v.a (* v rises vertically at its core start *)
  else
    let p = u.d -. u.c and q = v.b -. v.a in
    Degree.of_float ((u.d -. v.a) /. (p +. q))

let eq_height u v =
  (* cores [u.b, u.c] and [v.b, v.c] overlap *)
  if u.b <= v.c && v.b <= u.c then 1.0
  else if u.c < v.b then cross_height u v
  else cross_height v u

let ge_height u v = if u.c >= v.b then 1.0 else cross_height u v
let le_height u v = ge_height v u

let gt_height u v =
  if is_crisp u && is_crisp v then if u.a > v.a then 1.0 else 0.0
  else ge_height u v

let lt_height u v = gt_height v u

let ne_height u v =
  if is_crisp u && is_crisp v then if u.a = v.a then 0.0 else 1.0 else 1.0

let shift t x = make (t.a +. x) (t.b +. x) (t.c +. x) (t.d +. x)

let scale t k =
  if k >= 0.0 then make (t.a *. k) (t.b *. k) (t.c *. k) (t.d *. k)
  else make (t.d *. k) (t.c *. k) (t.b *. k) (t.a *. k)

let add u v = make (u.a +. v.a) (u.b +. v.b) (u.c +. v.c) (u.d +. v.d)
let sub u v = make (u.a -. v.d) (u.b -. v.c) (u.c -. v.b) (u.d -. v.a)

let interval_mul (lo1, hi1) (lo2, hi2) =
  let p1 = lo1 *. lo2 and p2 = lo1 *. hi2 and p3 = hi1 *. lo2
  and p4 = hi1 *. hi2 in
  ( Float.min (Float.min p1 p2) (Float.min p3 p4),
    Float.max (Float.max p1 p2) (Float.max p3 p4) )

let mul u v =
  let a, d = interval_mul (u.a, u.d) (v.a, v.d) in
  let b, c = interval_mul (u.b, u.c) (v.b, v.c) in
  make a b c d

let div u v =
  if v.a <= 0.0 && v.d >= 0.0 then None
  else
    let inv = make (1.0 /. v.d) (1.0 /. v.c) (1.0 /. v.b) (1.0 /. v.a) in
    Some (mul u inv)

let equal u v = u.a = v.a && u.b = v.b && u.c = v.c && u.d = v.d

let compare_structural u v =
  match Float.compare u.a v.a with
  | 0 -> (
      match Float.compare u.b v.b with
      | 0 -> (
          match Float.compare u.c v.c with
          | 0 -> Float.compare u.d v.d
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf t =
  if is_crisp t then Format.fprintf ppf "%g" t.a
  else Format.fprintf ppf "trap(%g,%g,%g,%g)" t.a t.b t.c t.d
