let core_center p =
  match p with
  | Possibility.Trap tr ->
      let c = Trapezoid.core tr in
      (Interval.lo c +. Interval.hi c) /. 2.0
  | Possibility.Discrete pts ->
      let h = Possibility.height p in
      let maximal = List.filter (fun (_, d) -> d = h) pts in
      let sum = List.fold_left (fun acc (v, _) -> acc +. v) 0.0 maximal in
      sum /. float_of_int (List.length maximal)

(* Exact integrals of x * mu(x) and mu(x) over one linear piece
   mu(x) = m*x + q on [x1, x2]. *)
let piece_moments x1 x2 m q =
  let area = (m *. ((x2 *. x2) -. (x1 *. x1)) /. 2.0) +. (q *. (x2 -. x1)) in
  let moment =
    (m *. ((x2 *. x2 *. x2) -. (x1 *. x1 *. x1)) /. 3.0)
    +. (q *. ((x2 *. x2) -. (x1 *. x1)) /. 2.0)
  in
  (area, moment)

let centroid p =
  match p with
  | Possibility.Trap tr when Trapezoid.is_crisp tr ->
      Interval.lo (Trapezoid.support tr)
  | Possibility.Trap tr ->
      let a = Interval.lo (Trapezoid.support tr)
      and d = Interval.hi (Trapezoid.support tr) in
      let b = Interval.lo (Trapezoid.core tr)
      and c = Interval.hi (Trapezoid.core tr) in
      let pieces =
        List.concat
          [
            (if b > a then [ (a, b, 1.0 /. (b -. a), -.a /. (b -. a)) ] else []);
            (if c > b then [ (b, c, 0.0, 1.0) ] else []);
            (if d > c then [ (c, d, -1.0 /. (d -. c), d /. (d -. c)) ] else []);
          ]
      in
      let area, moment =
        List.fold_left
          (fun (a_acc, m_acc) (x1, x2, m, q) ->
            let ar, mo = piece_moments x1 x2 m q in
            (a_acc +. ar, m_acc +. mo))
          (0.0, 0.0) pieces
      in
      if area = 0.0 then core_center p else moment /. area
  | Possibility.Discrete pts ->
      let wsum = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 pts in
      let msum = List.fold_left (fun acc (v, d) -> acc +. (v *. d)) 0.0 pts in
      if wsum = 0.0 then core_center p else msum /. wsum

let compare_by_core_center p1 p2 =
  match Float.compare (core_center p1) (core_center p2) with
  | 0 -> Possibility.compare_structural p1 p2
  | c -> c
