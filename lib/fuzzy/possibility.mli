(** Possibility distributions over a numeric domain.

    The paper restricts attention to trapezoidal distributions (Section 2.1)
    because they are typical in practice; the Appendix also discusses
    discrete distributions such as [1/y1 + 0.8/y2]. Both forms are supported:
    the relational engine works with either, while the extended merge-join
    requires the continuous (trapezoidal) form, exactly as in the paper. *)

type t =
  | Trap of Trapezoid.t  (** continuous, trapezoid-shaped *)
  | Discrete of (float * Degree.t) list
      (** finite support: value [v] is possible to degree [d]; normalised to
          be sorted by value, with strictly positive degrees and no duplicate
          values *)

val trap : Trapezoid.t -> t
val crisp : float -> t
val triangle : float -> float -> float -> t
val about : float -> spread:float -> t

val discrete : (float * float) list -> t
(** Normalises: drops non-positive degrees, merges duplicate values by [max],
    sorts by value. Raises [Invalid_argument] on an empty result or invalid
    degrees. *)

val is_crisp : t -> bool
val crisp_value : t -> float option

val support : t -> Interval.t
(** 0-cut hull: the interval [b(v), e(v)] used by Definition 3.1 and the
    merge-join. For a discrete distribution, the hull of its points. *)

val core_start : t -> float
(** Smallest domain point with membership 1 (for discrete: smallest point of
    maximal degree). *)

val mem : t -> float -> Degree.t

val height : t -> Degree.t
(** [sup_x mem t x]; 1.0 for trapezoids, the max degree for discrete. *)

val is_continuous : t -> bool

val equal : t -> t -> bool
(** Structural equality (used for duplicate elimination). *)

val compare_structural : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
