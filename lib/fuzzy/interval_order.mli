(** The linear order on fuzzy values used by the extended merge-join.

    Definition 3.1 of the paper: each value [v] represents the interval
    [b(v), e(v)] where its membership is positive (a crisp value [v] is
    [v, v]); values are ordered lexicographically by (start, end). *)

val compare : Possibility.t -> Possibility.t -> int
(** Definition 3.1's [<=] as a comparator; a total preorder on values (values
    with equal supports compare equal even if shaped differently). *)

val precedes_strictly : Possibility.t -> Possibility.t -> bool
(** [precedes_strictly u v] iff [e(u) < b(v)]: [u]'s interval lies entirely
    before [v]'s, so [d(u = v) = 0] and — once the scan of a sorted inner
    relation reaches [v] — no later inner tuple can join [u] either. *)

val may_join : Possibility.t -> Possibility.t -> bool
(** Supports overlap, the necessary condition for a nonzero equality
    degree. *)

val begins_after : Possibility.t -> Possibility.t -> bool
(** [begins_after v u] iff [b(v) > e(u)]: the condition that terminates the
    inner scan for outer value [u] (every sorted successor of [v] also begins
    after [e(u)]). *)
