(** Trapezoidal possibility distributions.

    A trapezoid [(a, b, c, d)] with [a <= b <= c <= d] has membership 0
    outside [a, d] (the support / 0-cut), membership 1 on [b, c] (the core /
    1-cut), and linear edges in between. Triangles ([b = c]) and crisp points
    ([a = b = c = d]) are special cases, exactly as in Section 2.1 of the
    paper. All distributions are normal (height 1). *)

type t = private { a : float; b : float; c : float; d : float }

val make : float -> float -> float -> float -> t
(** [make a b c d]; raises [Invalid_argument] unless [a <= b <= c <= d] and
    no bound is NaN. *)

val triangle : float -> float -> float -> t
(** [triangle a peak d] = [make a peak peak d]. *)

val about : float -> spread:float -> t
(** [about v ~spread] = symmetric triangle peaking at [v] with support
    [v - spread, v + spread]; models "about v" terms. *)

val crisp : float -> t
(** Degenerate trapezoid for a crisp value: possibility 1 at [v], 0
    elsewhere. *)

val is_crisp : t -> bool

val support : t -> Interval.t
(** The 0-cut [a, d] — the interval written [b(v), e(v)] in Section 3. *)

val core : t -> Interval.t
(** The 1-cut [b, c]. *)

val alpha_cut : t -> float -> Interval.t option
(** [alpha_cut t alpha] is the closed interval where membership >= alpha,
    or [None] when [alpha > 1]. For [alpha = 0] returns the support. *)

val mem : t -> float -> float
(** [mem t x] is the membership degree of [x]. Vertical edges take the core
    value at their boundary point. *)

val eq_height : t -> t -> Degree.t
(** [eq_height u v] = [sup_x min (mem u x) (mem v x)]: the satisfaction
    degree of the fuzzy equality [U = V], the "height of the highest
    intersection point" of Section 2.2. *)

val ge_height : t -> t -> Degree.t
(** Possibility of [U >= V]: [sup_{x >= y} min (mem u x) (mem v y)]. *)

val gt_height : t -> t -> Degree.t
(** Possibility of [U > V]. Coincides with [ge_height] for continuous
    distributions; differs only when both operands are crisp. *)

val le_height : t -> t -> Degree.t
val lt_height : t -> t -> Degree.t

val ne_height : t -> t -> Degree.t
(** Possibility of [U <> V]: [sup_{x <> y} min (mem u x) (mem v y)]. *)

val shift : t -> float -> t
val scale : t -> float -> t
(** [scale t k] multiplies all four abscissae by [k] (for [k < 0] the
    trapezoid is mirrored and re-normalised). *)

val add : t -> t -> t
(** Fuzzy addition: interval addition on 0- and 1-cuts (Section 6). *)

val sub : t -> t -> t
val mul : t -> t -> t
(** Fuzzy multiplication approximated by interval products of the cuts;
    exact for same-sign supports, conservative otherwise. *)

val div : t -> t -> t option
(** [None] when the divisor's support contains 0. *)

val equal : t -> t -> bool
(** Structural equality of the four abscissae (used for duplicate
    elimination of fuzzy values). *)

val compare_structural : t -> t -> int
val pp : Format.formatter -> t -> unit
