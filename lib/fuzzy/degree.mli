(** Satisfaction / membership degrees in [0, 1].

    The paper uses the single-measure (possibility-only) system: every
    predicate evaluates to one degree, conjunctions combine by [min]
    (fuzzy AND), duplicate answers combine by [max] (fuzzy OR) and negation
    is [1 - d]. This module centralises those combinators so that the
    relational engine and the query executor share one semantics. *)

type t = float
(** Invariant: [0.0 <= d <= 1.0]. Enforced by [of_float]; operations on
    already-valid degrees preserve the invariant. *)

val zero : t
val one : t

val of_float : float -> t
(** Clamps into [0, 1]; raises [Invalid_argument] on NaN. *)

val is_valid : t -> bool

val conj : t -> t -> t
(** Fuzzy AND: [min]. *)

val disj : t -> t -> t
(** Fuzzy OR: [max]. *)

val neg : t -> t
(** Fuzzy NOT: [1 - d]. *)

val conj_list : t list -> t
(** [min] of the list; [one] for the empty list (empty conjunction). *)

val disj_list : t list -> t
(** [max] of the list; [zero] for the empty list (empty disjunction). *)

val meets_threshold : threshold:t -> t -> bool
(** [meets_threshold ~threshold d] implements the [WITH D >= z] clause. *)

val positive : t -> bool
(** [d > 0]: tuple membership test of the fuzzy-set model. *)

val equal : ?eps:float -> t -> t -> bool
(** Equality up to [eps] (default 1e-9); used by the equivalence tests of
    Theorems 4.1-8.1 where both sides compute the same reals in different
    orders. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
