module M = Map.Make (String)

type t = Possibility.t M.t

let normalise s = String.lowercase_ascii (String.trim s)
let empty = M.empty
let register t name p = M.add (normalise name) p t
let lookup t name = M.find_opt (normalise name) t
let names t = List.map fst (M.bindings t)

(* Parameters are pinned by the degrees printed in the paper:
   - mu_medium_young(24) = 0.8, (23) = 0.6 and d(about35 = medium_young) =
     0.5 fix "medium young" = trap(20,25,30,35) and "about 35" = tri(30,35,40)
     (Fig. 1).
   - Example 4.1 needs d(middle_age = medium_young) = 0.7 (Betty's answer
     degree): the crossing with medium young's falling edge (35-x)/5 at
     height 0.7 happens at x = 31.5, so middle age's rising edge must pass
     through (31.5, 0.7); with support start 31 that forces core start
     31 + 5/7.
   - d(about50 = middle_age) = 0.4 (tuple 202 enters T with 0.4): about 50 =
     tri(45,50,55) rising edge (x-45)/5 crosses middle age's falling edge at
     height 0.4, so the falling edge runs from (44,1) to (49,0).
   - d(about29 = middle_age) = 0 (Carl excluded from T): about 29's support
     must end at middle age's support start, hence tri(27,29,31).
   - Ann(101)'s answer degree 0.3 = min(0.5, d(about60K IN T)) needs
     d(about60K = high) = 0.3: about 60K's falling edge (70-x)/10 crosses
     high's rising edge at height 0.3, so high rises from (64,0) to (74,1).
   - Ann(102)'s degree 0.7 needs d(medium_high = high) = 0.7: medium high's
     falling edge from (65,1) to (85,0) crosses high's rising edge at
     x = 71, height 0.7.
   - "about 40K" = tri(30,40,50) keeps d(about60K = about40K) = 0 and
     d(medium_high = about40K) = 0, so those minimums do not interfere. *)
let paper =
  let t = Trapezoid.make and tri = Trapezoid.triangle in
  List.fold_left
    (fun acc (name, p) -> register acc name p)
    empty
    [
      ("medium young", Possibility.trap (t 20. 25. 30. 35.));
      ("about 35", Possibility.trap (tri 30. 35. 40.));
      ("young", Possibility.trap (t 16. 18. 25. 30.));
      ("middle age", Possibility.trap (t 31. (31. +. (5. /. 7.)) 44. 49.));
      ("about 50", Possibility.trap (tri 45. 50. 55.));
      ("about 29", Possibility.trap (tri 27. 29. 31.));
      ("low", Possibility.trap (t 0. 0. 15. 25.));
      ("medium low", Possibility.trap (t 20. 28. 35. 45.));
      ("about 25K", Possibility.trap (tri 18. 25. 32.));
      ("about 40K", Possibility.trap (tri 30. 40. 50.));
      ("about 60K", Possibility.trap (tri 50. 60. 70.));
      ("medium high", Possibility.trap (t 55. 60. 65. 85.));
      ("high", Possibility.trap (t 64. 74. 200. 200.));
    ]

let plot ?(width = 72) ?(height = 12) ?from_x ?to_x curves =
  let lo, hi =
    match (from_x, to_x) with
    | Some lo, Some hi -> (lo, hi)
    | _ ->
        List.fold_left
          (fun (lo, hi) (_, p) ->
            let s = Possibility.support p in
            (Float.min lo (Interval.lo s), Float.max hi (Interval.hi s)))
          (infinity, neg_infinity) curves
  in
  let lo = Option.value from_x ~default:lo
  and hi = Option.value to_x ~default:hi in
  let grid = Array.make_matrix (height + 1) width ' ' in
  let marks = [| '*'; '+'; 'o'; 'x'; '#'; '@' |] in
  List.iteri
    (fun ci (_, p) ->
      let mark = marks.(ci mod Array.length marks) in
      for col = 0 to width - 1 do
        let x = lo +. (float_of_int col *. (hi -. lo) /. float_of_int (width - 1)) in
        let m = Possibility.mem p x in
        if Degree.positive m then begin
          let row = height - int_of_float (Float.round (m *. float_of_int height)) in
          if grid.(row).(col) = ' ' then grid.(row).(col) <- mark
          else if grid.(row).(col) <> mark then grid.(row).(col) <- '%'
        end
      done)
    curves;
  let buf = Buffer.create ((height + 3) * (width + 10)) in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then "1.0 |"
        else if row = height then "0.0 |"
        else if 2 * row = height then "0.5 |"
        else "    |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (Array.get line));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("    +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf (Printf.sprintf "     %-10g%*g\n" lo (width - 10) hi);
  List.iteri
    (fun ci (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "     %c %s\n" marks.(ci mod Array.length marks) name))
    curves;
  Buffer.contents buf
