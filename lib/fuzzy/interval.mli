(** Closed real intervals [lo, hi].

    Every possibility distribution in this system has an interval support
    (the 0-cut) and an interval core (the 1-cut); the extended merge-join of
    Section 3 of the paper orders tuples by their support intervals. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi] is the interval [lo, hi]. Raises [Invalid_argument] if
    [lo > hi] or either bound is NaN. *)

val point : float -> t
(** [point v] is the degenerate interval [v, v]. *)

val lo : t -> float
val hi : t -> float

val width : t -> float

val is_point : t -> bool

val contains : t -> float -> bool

val overlaps : t -> t -> bool
(** [overlaps i j] is true iff the intervals share at least one point. *)

val intersect : t -> t -> t option

val hull : t -> t -> t
(** Smallest interval containing both. *)

val shift : t -> float -> t

val equal : t -> t -> bool

val compare_lex : t -> t -> int
(** Lexicographic order on (lo, hi): exactly Definition 3.1 of the paper
    ([v1 < v2] iff [b(v1) < b(v2)], or [b(v1) = b(v2)] and [e(v1) < e(v2)]). *)

val pp : Format.formatter -> t -> unit
