type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point v = make v v
let lo i = i.lo
let hi i = i.hi
let width i = i.hi -. i.lo
let is_point i = i.lo = i.hi
let contains i x = i.lo <= x && x <= i.hi
let overlaps i j = i.lo <= j.hi && j.lo <= i.hi

let intersect i j =
  if overlaps i j then Some (make (Float.max i.lo j.lo) (Float.min i.hi j.hi))
  else None

let hull i j = make (Float.min i.lo j.lo) (Float.max i.hi j.hi)
let shift i d = make (i.lo +. d) (i.hi +. d)
let equal i j = i.lo = j.lo && i.hi = j.hi

let compare_lex i j =
  match Float.compare i.lo j.lo with 0 -> Float.compare i.hi j.hi | c -> c

let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
