let compare u v =
  Interval.compare_lex (Possibility.support u) (Possibility.support v)

let precedes_strictly u v =
  Interval.hi (Possibility.support u) < Interval.lo (Possibility.support v)

let may_join u v =
  Interval.overlaps (Possibility.support u) (Possibility.support v)

let begins_after v u =
  Interval.lo (Possibility.support v) > Interval.hi (Possibility.support u)
