type t = Very | Somewhat

let apply_trap hedge tr =
  let a = Interval.lo (Trapezoid.support tr)
  and d = Interval.hi (Trapezoid.support tr) in
  let b = Interval.lo (Trapezoid.core tr) and c = Interval.hi (Trapezoid.core tr) in
  match hedge with
  | Very -> Trapezoid.make ((a +. b) /. 2.0) b c ((c +. d) /. 2.0)
  | Somewhat -> Trapezoid.make (a -. (b -. a)) b c (d +. (d -. c))

let apply hedge = function
  | Possibility.Trap tr -> Possibility.Trap (apply_trap hedge tr)
  | Possibility.Discrete pts ->
      Possibility.discrete
        (List.map
           (fun (v, deg) ->
             ( v,
               match hedge with
               | Very -> deg *. deg
               | Somewhat -> Float.sqrt deg ))
           pts)

let strip phrase =
  let words =
    String.split_on_char ' ' (String.trim phrase)
    |> List.filter (fun w -> w <> "")
  in
  let rec go hedges = function
    | w :: rest -> (
        match String.lowercase_ascii w with
        | "very" -> go (Very :: hedges) rest
        | "somewhat" | "fairly" -> go (Somewhat :: hedges) rest
        | _ -> (List.rev hedges, String.concat " " (w :: rest)))
    | [] -> (List.rev hedges, "")
  in
  go [] words

let lookup terms phrase =
  match Term.lookup terms phrase with
  | Some _ as found -> found
  | None -> (
      match strip phrase with
      | [], _ -> None
      | hedges, base -> (
          match Term.lookup terms base with
          | None -> None
          | Some p ->
              (* innermost hedge (closest to the base term) first *)
              Some (List.fold_right apply hedges p)))
