type t = {
  name : string;
  conj : Degree.t -> Degree.t -> Degree.t;
  disj : Degree.t -> Degree.t -> Degree.t;
}

let zadeh = { name = "zadeh"; conj = Degree.conj; disj = Degree.disj }

let product =
  {
    name = "product";
    conj = (fun a b -> a *. b);
    disj = (fun a b -> a +. b -. (a *. b));
  }

let lukasiewicz =
  {
    name = "lukasiewicz";
    conj = (fun a b -> Float.max 0.0 (a +. b -. 1.0));
    disj = (fun a b -> Float.min 1.0 (a +. b));
  }

let conj_list t l = List.fold_left t.conj Degree.one l
let disj_list t l = List.fold_left t.disj Degree.zero l
