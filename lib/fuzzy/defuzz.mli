(** Defuzzification.

    Section 6 of the paper defines MIN and MAX aggregates "by using a
    defuzzification method which allows fuzzy values to be sorted based on
    the center of their 1-cuts"; [core_center] is that method. [centroid]
    (center of gravity) is provided as an alternative for applications. *)

val core_center : Possibility.t -> float
(** Midpoint of the 1-cut (for discrete distributions: mean of the points of
    maximal degree). *)

val centroid : Possibility.t -> float
(** Center of gravity of the membership function (degree-weighted mean for
    discrete distributions). *)

val compare_by_core_center : Possibility.t -> Possibility.t -> int
(** Total preorder used by MIN/MAX aggregation; ties broken by the
    structural order so sorting is deterministic. *)
