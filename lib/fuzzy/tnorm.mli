(** Triangular norms and conorms.

    The paper's Fuzzy SQL combines predicate degrees with min/max (Zadeh
    connectives); this module also provides the product and Lukasiewicz
    families so the engine's combination semantics can be swapped for
    ablation experiments. *)

type t = {
  name : string;
  conj : Degree.t -> Degree.t -> Degree.t;  (** t-norm (fuzzy AND) *)
  disj : Degree.t -> Degree.t -> Degree.t;  (** dual t-conorm (fuzzy OR) *)
}

val zadeh : t
(** min / max — the semantics used throughout the paper. *)

val product : t
(** a*b / a+b-ab. *)

val lukasiewicz : t
(** max(0, a+b-1) / min(1, a+b). *)

val conj_list : t -> Degree.t list -> Degree.t
val disj_list : t -> Degree.t list -> Degree.t
