let possibility = Fuzzy_compare.degree

let necessity op u v =
  Degree.neg (Fuzzy_compare.degree (Fuzzy_compare.negate op) u v)

type measured = { poss : Degree.t; nec : Degree.t }

let both op u v = { poss = possibility op u v; nec = necessity op u v }

let pp_measured ppf { poss; nec } =
  Format.fprintf ppf "Poss=%a Nec=%a" Degree.pp poss Degree.pp nec
