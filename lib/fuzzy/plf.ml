type t = (float * float) array
(* breakpoints, strictly increasing x, ordinates in [0,1] *)

let of_breakpoints pts =
  if pts = [] then invalid_arg "Plf.of_breakpoints: empty";
  let arr = Array.of_list pts in
  Array.iteri
    (fun i (x, m) ->
      if Float.is_nan x || Float.is_nan m then
        invalid_arg "Plf.of_breakpoints: NaN";
      if m < 0.0 || m > 1.0 then
        invalid_arg "Plf.of_breakpoints: ordinate outside [0,1]";
      if i > 0 && fst arr.(i - 1) >= x then
        invalid_arg "Plf.of_breakpoints: abscissae must strictly increase")
    arr;
  if not (Array.exists (fun (_, m) -> m > 0.0) arr) then
    invalid_arg "Plf.of_breakpoints: all-zero membership";
  arr

let breakpoints t = Array.to_list t

let of_trapezoid tr =
  let a = Interval.lo (Trapezoid.support tr)
  and d = Interval.hi (Trapezoid.support tr) in
  let b = Interval.lo (Trapezoid.core tr) and c = Interval.hi (Trapezoid.core tr) in
  let raw = [ (a, 0.0); (b, 1.0); (c, 1.0); (d, 0.0) ] in
  (* collapse coincident abscissae, keeping the larger ordinate *)
  let rec dedup = function
    | (x1, m1) :: (x2, m2) :: rest when x1 = x2 ->
        dedup ((x1, Float.max m1 m2) :: rest)
    | p :: rest -> p :: dedup rest
    | [] -> []
  in
  of_breakpoints (dedup raw)

let of_possibility = function
  | Possibility.Trap tr -> Some (of_trapezoid tr)
  | Possibility.Discrete _ -> None

let mem t x =
  let n = Array.length t in
  if x < fst t.(0) || x > fst t.(n - 1) then 0.0
  else begin
    (* locate the piece [i, i+1] containing x *)
    let rec find i = if i + 1 >= n || fst t.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let x1, m1 = t.(i) in
    if x = x1 then m1
    else if i + 1 >= n then m1
    else
      let x2, m2 = t.(i + 1) in
      m1 +. ((m2 -. m1) *. (x -. x1) /. (x2 -. x1))
  end

let support t =
  (* hull of the region with positive membership *)
  let n = Array.length t in
  let lo = ref nan and hi = ref nan in
  for i = 0 to n - 1 do
    let x, m = t.(i) in
    let positive_here =
      m > 0.0
      || (i + 1 < n && snd t.(i + 1) > 0.0)
      || (i > 0 && snd t.(i - 1) > 0.0)
    in
    if positive_here then begin
      if Float.is_nan !lo then lo := x;
      hi := x
    end
  done;
  Interval.make !lo !hi

let height t = Array.fold_left (fun acc (_, m) -> Float.max acc m) 0.0 t

let core_center t =
  let h = height t in
  let lo = ref nan and hi = ref nan in
  Array.iter
    (fun (x, m) ->
      if m >= h -. 1e-12 then begin
        if Float.is_nan !lo then lo := x;
        hi := x
      end)
    t;
  (!lo +. !hi) /. 2.0

(* Linear segments of the function (plus implicit zero outside). *)
let segments t =
  let n = Array.length t in
  let rec go i acc =
    if i + 1 >= n then List.rev acc
    else
      let x1, m1 = t.(i) and x2, m2 = t.(i + 1) in
      go (i + 1) ((x1, m1, x2, m2) :: acc)
  in
  go 0 []

let candidates u v =
  let breaks = Array.to_list (Array.map fst u) @ Array.to_list (Array.map fst v) in
  let crossings =
    List.concat_map
      (fun (x1, m1, x2, m2) ->
        List.filter_map
          (fun (y1, n1, y2, n2) ->
            let su = (m2 -. m1) /. (x2 -. x1) and sv = (n2 -. n1) /. (y2 -. y1) in
            if su = sv then None
            else
              let qu = m1 -. (su *. x1) and qv = n1 -. (sv *. y1) in
              let x = (qv -. qu) /. (su -. sv) in
              if x >= x1 && x <= x2 && x >= y1 && x <= y2 then Some x else None)
          (segments v))
      (segments u)
  in
  breaks @ crossings

let sup_min u v =
  List.fold_left
    (fun acc x -> Float.max acc (Float.min (mem u x) (mem v x)))
    0.0 (candidates u v)

(* Nondecreasing envelope sup_{y <= x} mem v y, as a Plf extended flat to
   [cap] on the right. *)
let le_envelope v ~cap =
  let pts = ref [] in
  let push x m =
    match !pts with
    | (x', _) :: _ when x' = x -> ()
    | _ -> pts := (x, m) :: !pts
  in
  let running = ref (snd v.(0)) in
  push (fst v.(0)) !running;
  Array.iteri
    (fun i (x2, m2) ->
      if i > 0 then begin
        let x1, m1 = v.(i - 1) in
        if m2 > !running then begin
          (* the piece rises above the running max: flat until it crosses,
             then follow it *)
          if m1 < !running then begin
            let xc = x1 +. ((!running -. m1) *. (x2 -. x1) /. (m2 -. m1)) in
            push xc !running
          end;
          push x2 m2;
          running := m2
        end
        else push x2 !running
      end)
    v;
  let last_x = fst v.(Array.length v - 1) in
  if cap > last_x then push cap !running;
  of_breakpoints (List.rev !pts)

let poss_ge u v =
  let cap =
    Float.max (fst u.(Array.length u - 1)) (fst v.(Array.length v - 1)) +. 1.0
  in
  sup_min u (le_envelope v ~cap)

let power ?(samples_per_piece = 8) t p =
  if p <= 0.0 then invalid_arg "Plf.power: exponent must be positive";
  let pts = ref [] in
  let push x m = pts := (x, Float.max 0.0 (Float.min 1.0 (m ** p))) :: !pts in
  let n = Array.length t in
  for i = 0 to n - 1 do
    let x1, m1 = t.(i) in
    push x1 m1;
    if i + 1 < n then begin
      let x2, m2 = t.(i + 1) in
      if m1 <> m2 then
        for k = 1 to samples_per_piece - 1 do
          let f = float_of_int k /. float_of_int samples_per_piece in
          let x = x1 +. (f *. (x2 -. x1)) in
          push x (m1 +. (f *. (m2 -. m1)))
        done
    end
  done;
  of_breakpoints (List.rev !pts)

let scale_x t k =
  if k = 0.0 then invalid_arg "Plf.scale_x: zero factor";
  let mapped = Array.map (fun (x, m) -> (x *. k, m)) t in
  if k < 0.0 then begin
    let n = Array.length mapped in
    of_breakpoints (List.init n (fun i -> mapped.(n - 1 - i)))
  end
  else of_breakpoints (Array.to_list mapped)

let shift_x t d = of_breakpoints (Array.to_list (Array.map (fun (x, m) -> (x +. d, m)) t))

let equal u v =
  Array.length u = Array.length v
  && Array.for_all2 (fun (x1, m1) (x2, m2) -> x1 = x2 && m1 = m2) u v

let pp ppf t =
  Format.fprintf ppf "plf[%s]"
    (String.concat "; "
       (List.map (fun (x, m) -> Printf.sprintf "(%g, %g)" x m) (Array.to_list t)))
