(** Necessity degrees — the double-measure system the paper deliberately does
    NOT use (Section 2.2, Discussion).

    Prade & Testemale's framework measures each comparison twice:
    [Poss(X θ F) = sup min(µ_X x, µ_F y, µ_θ (x,y))] and
    [Nec(X θ F) = 1 − Poss(X ¬θ F)], the "impossibility for the opposite
    comparison to be successful". With convex normal distributions
    [Nec <= Poss] always holds (property-tested).

    The paper rejects this system for query processing because each algebraic
    operation would produce two answer relations, so operations cannot be
    composed and nested queries cannot be unnested. This module exists (a) to
    document that trade-off executably, and (b) for applications that want
    the certainty measure on *final* answers, where composition is no longer
    needed. *)

val possibility :
  Fuzzy_compare.op -> Possibility.t -> Possibility.t -> Degree.t
(** Same as {!Fuzzy_compare.degree}; named for symmetry. *)

val necessity : Fuzzy_compare.op -> Possibility.t -> Possibility.t -> Degree.t
(** [Nec(u op v) = 1 - Poss(u (negate op) v)]. For two genuinely fuzzy
    values under [=] this is typically 0 (it is fully possible that they
    differ) — the "double negation" the paper calls unintuitive. *)

type measured = { poss : Degree.t; nec : Degree.t }

val both : Fuzzy_compare.op -> Possibility.t -> Possibility.t -> measured

val pp_measured : Format.formatter -> measured -> unit
