type t = float

let zero = 0.0
let one = 1.0

let of_float d =
  if Float.is_nan d then invalid_arg "Degree.of_float: NaN";
  Float.max 0.0 (Float.min 1.0 d)

let is_valid d = (not (Float.is_nan d)) && 0.0 <= d && d <= 1.0
let conj a b = Float.min a b
let disj a b = Float.max a b
let neg d = 1.0 -. d
let conj_list l = List.fold_left conj one l
let disj_list l = List.fold_left disj zero l
let meets_threshold ~threshold d = d >= threshold
let positive d = d > 0.0
let equal ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
let compare = Float.compare
let pp ppf d = Format.fprintf ppf "%.4g" d
