(** General piecewise-linear membership functions.

    The paper restricts data to trapezoids "because they are typical in
    practice"; this module lifts the kernel's analytic machinery to arbitrary
    piecewise-linear shapes (LR fuzzy numbers, skewed or multi-modal
    profiles, exact hedge powers sampled to any precision). Satisfaction
    degrees are computed exactly by breakpoint-and-crossing enumeration —
    the same technique as {!Fuzzy_compare.Oracle}, generalised.

    A value is represented by its breakpoints [(x_i, mu_i)] with strictly
    increasing [x_i]; the membership is linear between consecutive
    breakpoints and 0 outside [x_0, x_n]. *)

type t

val of_breakpoints : (float * float) list -> t
(** Validates: at least one point, strictly increasing abscissae, ordinates
    within [0, 1], at least one positive ordinate. Raises
    [Invalid_argument] otherwise. *)

val breakpoints : t -> (float * float) list

val of_trapezoid : Trapezoid.t -> t

val of_possibility : Possibility.t -> t option
(** [None] for discrete distributions. *)

val mem : t -> float -> Degree.t

val support : t -> Interval.t
(** Hull of the positive region. *)

val height : t -> Degree.t

val core_center : t -> float
(** Midpoint of the region where membership equals the height. *)

val sup_min : t -> t -> Degree.t
(** [sup_x min (mem u x) (mem v x)] — the fuzzy-equality satisfaction
    degree; exact. *)

val poss_ge : t -> t -> Degree.t
(** [sup_{x >= y} min (mem u x) (mem v y)] — possibility of [u >= v];
    exact via the nondecreasing envelope. *)

val power : ?samples_per_piece:int -> t -> float -> t
(** [power t p] raises the membership function to the [p]-th power
    (concentration for [p > 1], dilation for [p < 1]), sampling each linear
    piece with [samples_per_piece] extra breakpoints (default 8) to track
    the curvature. *)

val scale_x : t -> float -> t
val shift_x : t -> float -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
