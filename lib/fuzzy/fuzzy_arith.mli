(** Fuzzy arithmetic on possibility distributions (Section 6 of the paper).

    For trapezoidal values the operations act on the 0-cut and 1-cut
    intervals ("Fuzzy arithmetic operations take two values and determine the
    two intervals of the resulting value"). Discrete distributions are
    combined by the sup-min extension principle. Mixing a discrete with a
    non-crisp continuous value is not defined by the paper and raises
    [Unsupported]. *)

exception Unsupported of string

val add : Possibility.t -> Possibility.t -> Possibility.t
val sub : Possibility.t -> Possibility.t -> Possibility.t
val mul : Possibility.t -> Possibility.t -> Possibility.t

val div : Possibility.t -> Possibility.t -> Possibility.t option
(** [None] when the divisor's support contains zero. *)

val scale : Possibility.t -> float -> Possibility.t
(** Multiplication by a crisp constant (used by AVG = SUM scaled by 1/n). *)

val neg : Possibility.t -> Possibility.t

val sum : Possibility.t list -> Possibility.t option
(** Fuzzy SUM of a list of values; [None] on the empty list (the paper's SUM
    of an empty fuzzy set is NULL). *)

val avg : Possibility.t list -> Possibility.t option
(** Fuzzy AVG: [sum] scaled by [1/n]; [None] on the empty list. *)
