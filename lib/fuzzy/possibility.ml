type t = Trap of Trapezoid.t | Discrete of (float * Degree.t) list

let trap tr = Trap tr
let crisp v = Trap (Trapezoid.crisp v)
let triangle a peak d = Trap (Trapezoid.triangle a peak d)
let about v ~spread = Trap (Trapezoid.about v ~spread)

let discrete points =
  let valid =
    List.filter
      (fun (v, d) ->
        if Float.is_nan v || not (Degree.is_valid d) then
          invalid_arg "Possibility.discrete: invalid point";
        Degree.positive d)
      points
  in
  if valid = [] then
    invalid_arg "Possibility.discrete: no point with positive degree";
  let sorted = List.sort (fun (v1, _) (v2, _) -> Float.compare v1 v2) valid in
  let rec merge = function
    | (v1, d1) :: (v2, d2) :: rest when v1 = v2 ->
        merge ((v1, Degree.disj d1 d2) :: rest)
    | p :: rest -> p :: merge rest
    | [] -> []
  in
  Discrete (merge sorted)

let is_crisp = function
  | Trap tr -> Trapezoid.is_crisp tr
  | Discrete [ (_, d) ] -> d = 1.0
  | Discrete _ -> false

let crisp_value = function
  | Trap tr when Trapezoid.is_crisp tr -> Some (Interval.lo (Trapezoid.support tr))
  | Discrete [ (v, 1.0) ] -> Some v
  | Trap _ | Discrete _ -> None

let support = function
  | Trap tr -> Trapezoid.support tr
  | Discrete pts ->
      let vs = List.map fst pts in
      Interval.make (List.fold_left Float.min infinity vs)
        (List.fold_left Float.max neg_infinity vs)

let height = function
  | Trap _ -> 1.0
  | Discrete pts -> Degree.disj_list (List.map snd pts)

let core_start = function
  | Trap tr -> Interval.lo (Trapezoid.core tr)
  | Discrete pts ->
      let h = Degree.disj_list (List.map snd pts) in
      fst (List.find (fun (_, d) -> d = h) pts)

let mem t x =
  match t with
  | Trap tr -> Trapezoid.mem tr x
  | Discrete pts -> (
      match List.assoc_opt x pts with Some d -> d | None -> 0.0)

let is_continuous = function Trap _ -> true | Discrete _ -> false

let equal t1 t2 =
  match (t1, t2) with
  | Trap a, Trap b -> Trapezoid.equal a b
  | Discrete a, Discrete b ->
      List.length a = List.length b
      && List.for_all2 (fun (v1, d1) (v2, d2) -> v1 = v2 && d1 = d2) a b
  | Trap _, Discrete _ | Discrete _, Trap _ -> false

let compare_structural t1 t2 =
  match (t1, t2) with
  | Trap a, Trap b -> Trapezoid.compare_structural a b
  | Discrete a, Discrete b -> Stdlib.compare a b
  | Trap _, Discrete _ -> -1
  | Discrete _, Trap _ -> 1

let hash = Hashtbl.hash

let pp ppf = function
  | Trap tr -> Trapezoid.pp ppf tr
  | Discrete pts ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
           (fun ppf (v, d) -> Format.fprintf ppf "%g/%g" d v))
        pts
