exception Unsupported of string

open Possibility

let lift2 name trap_op disc_op u v =
  match (u, v) with
  | Trap a, Trap b -> Trap (trap_op a b)
  | Discrete a, Discrete b -> disc_op a b
  | Trap a, Discrete pts when Trapezoid.is_crisp a ->
      disc_op [ (Interval.lo (Trapezoid.support a), 1.0) ] pts
  | Discrete pts, Trap b when Trapezoid.is_crisp b ->
      disc_op pts [ (Interval.lo (Trapezoid.support b), 1.0) ]
  | Trap _, Discrete _ | Discrete _, Trap _ ->
      raise
        (Unsupported
           (Printf.sprintf
              "Fuzzy_arith.%s: mixing a non-crisp continuous value with a \
               discrete distribution"
              name))

let extension_principle f a b =
  Possibility.discrete
    (List.concat_map
       (fun (x, dx) -> List.map (fun (y, dy) -> (f x y, Degree.conj dx dy)) b)
       a)

let add u v = lift2 "add" Trapezoid.add (extension_principle ( +. )) u v
let sub u v = lift2 "sub" Trapezoid.sub (extension_principle ( -. )) u v
let mul u v = lift2 "mul" Trapezoid.mul (extension_principle ( *. )) u v

let div u v =
  let s = Possibility.support v in
  if Interval.contains s 0.0 then None
  else
    Some
      (lift2 "div"
         (fun a b ->
           match Trapezoid.div a b with
           | Some r -> r
           | None -> assert false (* support checked above *))
         (extension_principle ( /. ))
         u v)

let scale u k =
  match u with
  | Trap tr -> Trap (Trapezoid.scale tr k)
  | Discrete pts ->
      Possibility.discrete (List.map (fun (v, d) -> (v *. k, d)) pts)

let neg u = scale u (-1.0)

let sum = function
  | [] -> None
  | v :: rest -> Some (List.fold_left add v rest)

let avg vs =
  match sum vs with
  | None -> None
  | Some s -> Some (scale s (1.0 /. float_of_int (List.length vs)))
