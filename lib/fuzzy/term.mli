(** Linguistic-term dictionaries.

    A term dictionary maps vocabulary words such as "medium young" or
    "about 35" to possibility distributions. The [paper] dictionary contains
    the terms of Figs. 1 and 2 with parameters chosen to reproduce every
    degree printed in the paper's running example (Example 4.1): see the
    implementation for the constraint derivation. *)

type t

val empty : t
val register : t -> string -> Possibility.t -> t
(** Case-insensitive; later registrations shadow earlier ones. *)

val lookup : t -> string -> Possibility.t option
val names : t -> string list

val paper : t
(** The dictionary of the paper's running example. AGE terms are in years,
    INCOME terms in thousands of dollars:
    - "medium young"  = trap(20,25,30,35)     (Fig. 1)
    - "about 35"      = tri(30,35,40)         (Fig. 1)
    - "young"         = trap(16,18,25,30)
    - "middle age"    = trap(31, 31+5/7, 44, 49)
    - "about 50"      = tri(45,50,55)
    - "about 29"      = tri(27,29,31)
    - "low"           = trap(0,0,15,25)
    - "medium low"    = trap(20,28,35,45)
    - "about 25K"     = tri(18,25,32)
    - "about 40K"     = tri(30,40,50)
    - "about 60K"     = tri(50,60,70)
    - "medium high"   = trap(55,60,65,85)
    - "high"          = trap(64,74,200,200) *)

val plot :
  ?width:int -> ?height:int -> ?from_x:float -> ?to_x:float ->
  (string * Possibility.t) list -> string
(** ASCII rendering of membership functions (used to regenerate Figs. 1-2 in
    the bench harness). *)
