(* WAL-shipped replication: a primary-side sender that streams raw log
   bytes to subscribers, and a replica-side applier that catches up from
   a snapshot, tails the log, applies page effects, and acks applied
   LSNs.

   Correctness rests on three invariants:

   - {e Byte identity}: the replica's log file is at all times a
     byte-prefix of some committed prefix of the primary's log. The
     sender reads raw frames through its own fd and the applier appends
     them verbatim (never re-framing), so LSNs coincide and every frame
     re-validates locally.

   - {e Commit-boundary draining}: the applier makes bytes durable only
     through the last [Commit]/[Checkpoint] boundary received
     ({!Storage.Wal_stream.Tail}), so nothing the primary's own recovery
     could truncate ever reaches the replica's disk, and the replica's
     log is clean-ended whenever the applier is between batches — a
     read-only worker can open it at any such moment.

   - {e Epoch fencing}: a monotone epoch is persisted in the manifest
     ([Epoch] records + every checkpoint). Promotion bumps it. A sender
     whose subscriber presents a newer epoch refuses the stream
     ([Rep_fence]) and counts itself fenced; an applier rejects any
     hello/batch carrying an older epoch. A zombie primary can therefore
     never feed bytes to a promoted replica, and a replica can never
     resubscribe to a stale primary — divergence is structurally
     impossible, not just unlikely.

   Snapshot catch-up is taken online, without pausing the primary: copy
   the data file first, then the log up to a commit boundary captured
   {e after} the data copy. Any page being written concurrently was, by
   the WAL rule, touched since the last checkpoint, so the shipped log
   prefix contains its full [Page_image] and redo rebuilds it from the
   log alone — a torn read of the data file is harmless. Pages untouched
   since the last checkpoint are never written concurrently. The replica
   replays the pair with {!Storage.Recovery.recover ~checkpoint:false},
   which keeps the log byte-identical. *)

module Wal = Storage.Wal
module Wal_stream = Storage.Wal_stream
module Recovery = Storage.Recovery
module Real_disk = Storage.Real_disk

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

(* A writer-preference readers/writer lock: replica query workers read
   while the applier (and promotion) writes. Writer preference keeps a
   steady query load from starving the apply loop. *)
module Rw = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable waiting : int;
  }

  let create () =
    {
      m = Mutex.create ();
      c = Condition.create ();
      readers = 0;
      writer = false;
      waiting = 0;
    }

  let read_acquire t =
    Mutex.lock t.m;
    while t.writer || t.waiting > 0 do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m

  let read_release t =
    Mutex.lock t.m;
    t.readers <- t.readers - 1;
    if t.readers = 0 then Condition.broadcast t.c;
    Mutex.unlock t.m

  let write_acquire t =
    Mutex.lock t.m;
    t.waiting <- t.waiting + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.waiting <- t.waiting - 1;
    t.writer <- true;
    Mutex.unlock t.m

  let write_release t =
    Mutex.lock t.m;
    t.writer <- false;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let with_read t f =
    read_acquire t;
    Fun.protect ~finally:(fun () -> read_release t) f

  let with_write t f =
    write_acquire t;
    Fun.protect ~finally:(fun () -> write_release t) f
end

let chunk_bytes = 1 lsl 20
let batch_bytes = 256 * 1024
let heartbeat_s = 0.2

(* The stream id names the log {e file generation}: a checkpoint
   rewrites the log via tmp+rename, resetting every LSN, so a subscriber
   must never splice offsets across generations. Deriving the id from
   the inode (plus device) makes it stable across subscribers and
   changes it exactly at rotation, with no shared counter. *)
let stream_id_of_path path =
  try
    let st = Unix.stat path in
    Int64.logor
      (Int64.shift_left (Int64.of_int st.Unix.st_dev) 48)
      (Int64.logand (Int64.of_int st.Unix.st_ino) 0xFFFFFFFFFFFFL)
  with Unix.Unix_error _ -> 0L

(* ------------------------------------------------------------------ *)
(* Sender (primary side) *)

module Sender = struct
  type source =
    | Live of Wal.t  (** a writable primary's open log *)
    | Static of { static_end : int; static_epoch : int }
        (** a promoted (or load-complete) node's quiescent log *)

  type sub = {
    sub_id : int;
    sub_send : Wire.reply -> unit;  (** serialised per connection; raises
                                        when the peer is gone *)
    sub_from : int;
    sub_stream : int64;
    mutable sub_acked : int;
    mutable sub_alive : bool;
  }

  type t = {
    wal_path : string;
    data_path : string;
    page_size : int;
    source : source;
    lock : Mutex.t;
    subs : (int, sub) Hashtbl.t;
    mutable next_sub : int;
    mutable fenced : int;
        (** subscribe attempts that presented a newer epoch — each one
            is proof this sender is a zombie *)
    mutable snapshots_sent : int;
    mutable stopped : bool;
    mutable listen_fd : Unix.file_descr option;
    mutable conns : Unix.file_descr list;
        (** accepted replication connections — shut down on {!stop} so
            reader threads blocked on an idle replica unblock *)
    mutable threads : Thread.t list;
  }

  let epoch t =
    match t.source with
    | Live wal -> Wal.epoch wal
    | Static { static_epoch; _ } -> static_epoch

  (* The shippable end: a commit boundary whose bytes are visible in the
     file. [committed_end] can briefly exceed [written_lsn] mid-commit
     (records buffered, fsync pending); wait the gap out rather than
     shipping a non-boundary prefix. *)
  let shippable_end t =
    match t.source with
    | Static { static_end; _ } -> static_end
    | Live wal ->
        let rec settle tries =
          let c = Wal.committed_end wal in
          if Wal.written_lsn wal >= c || tries > 500 then c
          else begin
            Unix.sleepf 0.002;
            settle (tries + 1)
          end
        in
        settle 0

  let make ~wal_path ~data_path ~page_size ~source =
    {
      wal_path;
      data_path;
      page_size;
      source;
      lock = Mutex.create ();
      subs = Hashtbl.create 4;
      next_sub = 1;
      fenced = 0;
      snapshots_sent = 0;
      stopped = false;
      listen_fd = None;
      conns = [];
      threads = [];
    }

  (* A primary that has never been part of a replicated pair carries
     epoch 0; adopt epoch 1 on first use so "epoch 0" always reads as
     "replication never enabled" in metrics, and the first promotion
     lands on 2. *)
  let create ~env =
    match (Storage.Env.wal env, Storage.Disk.as_real env.Storage.Env.disk) with
    | Some wal, Some disk ->
        if (not (Wal.readonly wal)) && Wal.epoch wal = 0 then begin
          Wal.log_epoch wal 1;
          Wal.commit wal
        end;
        make ~wal_path:(Wal.path wal) ~data_path:(Real_disk.path disk)
          ~page_size:(Real_disk.page_size disk) ~source:(Live wal)
    | _ -> invalid_arg "Replication.Sender.create: environment not durable"

  let create_for_dir ~dir =
    let wal_path = Recovery.wal_path_of dir in
    match Wal_stream.committed_state ~path:wal_path with
    | Error msg -> invalid_arg ("Replication.Sender.create_for_dir: " ^ msg)
    | Ok (static_end, static_epoch) ->
        let stats = Storage.Iostats.create () in
        let disk = Real_disk.open_existing ~readonly:true ~dir stats in
        let page_size = Real_disk.page_size disk in
        let data_path = Real_disk.path disk in
        Real_disk.close disk;
        make ~wal_path ~data_path ~page_size
          ~source:(Static { static_end; static_epoch })

  let stream_id t = stream_id_of_path t.wal_path

  let sub_dead t sub =
    with_lock t.lock (fun () -> sub.sub_alive <- false)

  (* Stream one file region as snapshot chunks through [send]. *)
  let send_chunks sub ~kind ~path ~upto =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Bytes.create chunk_bytes in
        let rec go off =
          if off < upto then begin
            let want = min chunk_bytes (upto - off) in
            let got =
              let rec read_some () =
                try Unix.read fd buf 0 want
                with Unix.Unix_error (Unix.EINTR, _, _) -> read_some ()
              in
              read_some ()
            in
            if got = 0 then
              failwith (Printf.sprintf "%s shrank below %d" path upto);
            sub.sub_send
              (Wire.Rep_chunk
                 {
                   kind;
                   off;
                   data = Bytes.sub_string buf 0 got;
                 });
            go (off + got)
          end
        in
        go 0)

  (* One subscriber's streaming session. Runs on its own thread; every
     [sub_send] failure (peer gone) or sender stop ends it. *)
  let rec session t sub ~first =
    let sid = stream_id t in
    let e = shippable_end t in
    if
      first && Int64.equal sub.sub_stream sid
      && sub.sub_from >= Wal.header_size
      && sub.sub_from <= e
    then begin
      (* The subscriber tailed this very file generation before: resume
         without a snapshot. *)
      sub.sub_send
        (Wire.Rep_hello
           {
             epoch = epoch t;
             stream_id = sid;
             page_size = t.page_size;
             snapshot = false;
             start_lsn = sub.sub_from;
             data_len = 0;
           });
      tail t sub ~pos:sub.sub_from
    end
    else snapshot t sub ~sid

  and snapshot t sub ~sid =
    with_lock t.lock (fun () -> t.snapshots_sent <- t.snapshots_sent + 1);
    let data_len =
      try (Unix.stat t.data_path).Unix.st_size with Unix.Unix_error _ -> 0
    in
    sub.sub_send
      (Wire.Rep_hello
         {
           epoch = epoch t;
           stream_id = sid;
           page_size = t.page_size;
           snapshot = true;
           start_lsn = 0;
           data_len;
         });
    (* Data first, then the log up to a boundary captured AFTER the data
       copy: every page racing the copy is then covered by a full image
       in the shipped log prefix (see the module comment). *)
    if data_len > 0 then
      send_chunks sub ~kind:Wire.Data_chunk ~path:t.data_path ~upto:data_len;
    if not (Int64.equal (stream_id t) sid) then
      (* rotated mid-copy: every LSN we were about to ship is dead *)
      session t sub ~first:false
    else begin
      let e = shippable_end t in
      send_chunks sub ~kind:Wire.Wal_chunk ~path:t.wal_path ~upto:e;
      if not (Int64.equal (stream_id t) sid) then session t sub ~first:false
      else begin
        (* Empty batch = snapshot-complete marker; its [start_lsn] tells
           the applier where the tail begins. *)
        sub.sub_send
          (Wire.Rep_wal
             { epoch = epoch t; start_lsn = e; primary_end = e; data = "" });
        tail t sub ~pos:e
      end
    end

  and tail t sub ~pos =
    let cur = Wal_stream.Cursor.open_at ~path:t.wal_path ~pos in
    let restart =
      Fun.protect
        ~finally:(fun () -> Wal_stream.Cursor.close cur)
        (fun () ->
          let last_sent = ref (Unix.gettimeofday ()) in
          let rec loop pos =
            if t.stopped || not sub.sub_alive then false
            else if Wal_stream.Cursor.rotated cur then true
            else begin
              let e = shippable_end t in
              if pos < e then begin
                let data = Wal_stream.Cursor.read cur ~upto:e ~max:batch_bytes in
                let n = Bytes.length data in
                if n = 0 then begin
                  (* written_lsn advanced but the kernel shows less than
                     we expected — only possible across a rotation *)
                  Unix.sleepf 0.005;
                  Wal_stream.Cursor.rotated cur
                end
                else begin
                  sub.sub_send
                    (Wire.Rep_wal
                       {
                         epoch = epoch t;
                         start_lsn = pos;
                         primary_end = e;
                         data = Bytes.unsafe_to_string data;
                       });
                  last_sent := Unix.gettimeofday ();
                  loop (pos + n)
                end
              end
              else begin
                let now = Unix.gettimeofday () in
                if now -. !last_sent >= heartbeat_s then begin
                  sub.sub_send
                    (Wire.Rep_wal
                       { epoch = epoch t; start_lsn = pos; primary_end = e; data = "" });
                  last_sent := now
                end;
                Unix.sleepf 0.01;
                loop pos
              end
            end
          in
          loop pos)
    in
    if restart && (not t.stopped) && sub.sub_alive then
      session t sub ~first:false

  (* Handle one [Rep_subscribe]: returns [Some sub_id] and starts the
     streaming thread, or [None] after fencing the subscriber (its epoch
     is newer — we are the zombie). *)
  let serve t ~epoch:sub_epoch ~stream_id:sub_stream ~from_lsn ~send =
    let my_epoch = epoch t in
    if sub_epoch > my_epoch then begin
      with_lock t.lock (fun () -> t.fenced <- t.fenced + 1);
      (try send (Wire.Rep_fence { epoch = my_epoch })
       with _ -> ());
      None
    end
    else begin
      let sub =
        with_lock t.lock (fun () ->
            let id = t.next_sub in
            t.next_sub <- id + 1;
            let sub =
              {
                sub_id = id;
                sub_send = send;
                sub_from = from_lsn;
                sub_stream;
                sub_acked = 0;
                sub_alive = true;
              }
            in
            Hashtbl.replace t.subs id sub;
            sub)
      in
      let th =
        Thread.create
          (fun () ->
            (try session t sub ~first:true with
            | Wire.Connection_closed | Unix.Unix_error _ | Sys_error _
            | Failure _ ->
                ());
            sub_dead t sub)
          ()
      in
      with_lock t.lock (fun () -> t.threads <- th :: t.threads);
      Some sub.sub_id
    end

  let ack t ~id ~applied_lsn =
    with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.subs id with
        | Some sub -> if applied_lsn > sub.sub_acked then sub.sub_acked <- applied_lsn
        | None -> ())

  let drop t ~id =
    with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.subs id with
        | Some sub ->
            sub.sub_alive <- false;
            Hashtbl.remove t.subs id
        | None -> ())

  let connected t =
    with_lock t.lock (fun () ->
        Hashtbl.fold
          (fun _ sub n -> if sub.sub_alive then n + 1 else n)
          t.subs 0)

  (* Worst-case acked LSN over live subscribers (min), for the lag
     gauge; [None] with no live subscriber. *)
  let min_acked t =
    with_lock t.lock (fun () ->
        Hashtbl.fold
          (fun _ sub acc ->
            if not sub.sub_alive then acc
            else
              match acc with
              | None -> Some sub.sub_acked
              | Some a -> Some (min a sub.sub_acked))
          t.subs None)

  let max_acked t =
    with_lock t.lock (fun () ->
        Hashtbl.fold
          (fun _ sub acc -> max acc sub.sub_acked)
          t.subs 0)

  let lag_bytes t =
    match min_acked t with
    | None -> 0
    | Some a -> max 0 (shippable_end t - a)

  let fenced t = with_lock t.lock (fun () -> t.fenced)
  let snapshots_sent t = with_lock t.lock (fun () -> t.snapshots_sent)

  (* Semi-synchronous commit: block until some replica has applied (and
     fsynced) through [lsn]. The chaos harness acks its writer's
     progress only after this returns, which is what makes
     "zero acknowledged-commit loss" a theorem rather than a race. *)
  let wait_applied t ~lsn ~timeout_s =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      if max_acked t >= lsn then true
      else if Unix.gettimeofday () >= deadline || t.stopped then false
      else begin
        Unix.sleepf 0.002;
        go ()
      end
    in
    go ()

  (* A minimal replication-only accept loop, for primaries that are not
     full daemons (the chaos harness's forked child). Handles
     [Rep_subscribe] / [Rep_ack] / [Promote]-free traffic only. *)
  let listen ?(host = "127.0.0.1") ~port t =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 16;
    let actual_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    t.listen_fd <- Some fd;
    let conn_loop cfd =
      let wlock = Mutex.create () in
      let send r = with_lock wlock (fun () -> Wire.write_reply cfd r) in
      let sub = ref None in
      (try
         while not t.stopped do
           match Wire.read_request cfd with
           | Wire.Rep_subscribe { epoch; stream_id; from_lsn } ->
               sub := serve t ~epoch ~stream_id ~from_lsn ~send
           | Wire.Rep_ack { epoch = _; applied_lsn } -> (
               match !sub with
               | Some id -> ack t ~id ~applied_lsn
               | None -> ())
           | _ -> ()
         done
       with
      | Wire.Connection_closed | Wire.Protocol_error _ | Unix.Unix_error _ ->
          ());
      (match !sub with Some id -> drop t ~id | None -> ());
      with_lock t.lock (fun () ->
          t.conns <- List.filter (fun fd -> fd != cfd) t.conns);
      try Unix.close cfd with Unix.Unix_error _ -> ()
    in
    let accept_loop () =
      let rec loop () =
        if not t.stopped then
          match Unix.accept fd with
          | cfd, _ ->
              with_lock t.lock (fun () -> t.conns <- cfd :: t.conns);
              let th = Thread.create conn_loop cfd in
              with_lock t.lock (fun () -> t.threads <- th :: t.threads);
              loop ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
              loop ()
          | exception Unix.Unix_error _ -> ()
      in
      loop ()
    in
    let th = Thread.create accept_loop () in
    with_lock t.lock (fun () -> t.threads <- th :: t.threads);
    actual_port

  let stop t =
    t.stopped <- true;
    (match t.listen_fd with
    | Some fd ->
        t.listen_fd <- None;
        (* unblock accept *)
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    let subs = with_lock t.lock (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.subs []) in
    List.iter (fun s -> s.sub_alive <- false) subs;
    (* Unblock reader threads parked on idle replicas: without this a
       stop racing a quiet subscriber would deadlock the join below. *)
    let conns = with_lock t.lock (fun () -> t.conns) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let threads = with_lock t.lock (fun () -> t.threads) in
    List.iter (fun th -> try Thread.join th with _ -> ()) threads
end

(* ------------------------------------------------------------------ *)
(* Replica (applier side) *)

module Replica = struct
  exception Fenced of int
  (** the stream carried epoch [e] older than ours — stale primary *)

  exception Resync
  (** stream discontinuity — drop the connection, subscribe afresh *)

  type t = {
    dir : string;
    host : string;
    port : int;
    stats : Storage.Iostats.t;
    rw : Rw.t;
    lock : Mutex.t;
    mutable epoch : int;
    mutable applied : int;  (** applied + fsynced through this LSN *)
    mutable primary_end : int;  (** last shippable end heard *)
    mutable generation : int;
        (** bumped per applied batch (and at promotion): workers rebuild
            their environments when it moves *)
    mutable last_caught_up : float;  (** 0.0 = never *)
    mutable connected : bool;
    mutable synced : bool;  (** first catch-up complete *)
    mutable fenced_rejects : int;
        (** frames/hellos rejected for carrying an older epoch *)
    mutable snapshots : int;
    mutable stream : int64;  (** last stream generation tailed *)
    mutable stopping : bool;
    mutable promoted : bool;
    mutable client : Client.t option;
    mutable thread : Thread.t option;
    mutable disk : Real_disk.t option;  (** writable apply handle *)
    mutable appender : Wal_stream.Appender.t option;
  }

  let create ~dir ~primary () =
    let host, port =
      match String.rindex_opt primary ':' with
      | None ->
          invalid_arg
            ("Replication.Replica.create: expected HOST:PORT, got " ^ primary)
      | Some i -> (
          let host = String.sub primary 0 i in
          let port_s =
            String.sub primary (i + 1) (String.length primary - i - 1)
          in
          match int_of_string_opt port_s with
          | Some p when p > 0 && p < 65536 ->
              ((if host = "" then "127.0.0.1" else host), p)
          | _ ->
              invalid_arg
                ("Replication.Replica.create: bad port in " ^ primary))
    in
    {
      dir;
      host;
      port;
      stats = Storage.Iostats.create ();
      rw = Rw.create ();
      lock = Mutex.create ();
      epoch = 0;
      applied = 0;
      primary_end = 0;
      generation = 0;
      last_caught_up = 0.0;
      connected = false;
      synced = false;
      fenced_rejects = 0;
      snapshots = 0;
      stream = 0L;
      stopping = false;
      promoted = false;
      client = None;
      thread = None;
      disk = None;
      appender = None;
    }

  let close_handles t =
    (match t.appender with
    | Some a ->
        Wal_stream.Appender.close a;
        t.appender <- None
    | None -> ());
    match t.disk with
    | Some d ->
        (try Real_disk.close d with _ -> ());
        t.disk <- None
    | None -> ()

  (* Bring the local directory to a clean, applied state and open the
     apply handles. Returns the local committed boundary. Runs with
     [~checkpoint:false]: the local log must stay a byte-prefix of the
     primary's. *)
  let open_local t =
    close_handles t;
    let disk, wal, _report =
      Recovery.recover ~checkpoint:false ~dir:t.dir t.stats
    in
    let boundary = Wal.committed_end wal in
    let epoch = Wal.epoch wal in
    Wal.close wal;
    t.disk <- Some disk;
    t.appender <- Some (Wal_stream.Appender.open_at ~path:(Recovery.wal_path_of t.dir));
    with_lock t.lock (fun () ->
        if epoch > t.epoch then t.epoch <- epoch;
        t.applied <- boundary);
    boundary

  let zero_page psize = Bytes.make psize '\000'

  (* Redo one shipped record against the replica's data file. Identical
     in spirit to {!Recovery.redo}, but incremental: pages already
     reflect every earlier record, so deltas apply in place. *)
  let apply_record t disk psize = function
    | Wal.Alloc { page; _ } ->
        Real_disk.ensure_pages disk (page + 1);
        Real_disk.write ~lsn:0 disk page (zero_page psize)
    | Wal.Page_image { page; data } ->
        Real_disk.ensure_pages disk (page + 1);
        let b = zero_page psize in
        Bytes.blit data 0 b 0 (min (Bytes.length data) psize);
        Real_disk.write ~lsn:0 disk page b
    | Wal.Heap_append { page; off; count; data } ->
        let len = Bytes.length data in
        if off < 2 || off + len > psize then
          failwith
            (Printf.sprintf "replica: heap append outside page (page %d)" page);
        let img = Real_disk.read disk page in
        Bytes.blit data 0 img off len;
        Bytes.set_uint8 img 0 (count land 0xff);
        Bytes.set_uint8 img 1 ((count lsr 8) land 0xff);
        Real_disk.write ~lsn:0 disk page img
    | Wal.Epoch { epoch } ->
        with_lock t.lock (fun () -> if epoch > t.epoch then t.epoch <- epoch)
    | Wal.Free _ | Wal.Define _ | Wal.Commit | Wal.Checkpoint _ -> ()

  (* Apply one drained batch under the write lock: log bytes first
     (append + fsync — the durability point the ack reports), then the
     page effects. A crash between the two is safe: local recovery
     replays the freshly-appended records. *)
  let apply_batch t (d : Wal_stream.Tail.drained) =
    let disk =
      match t.disk with
      | Some d -> d
      | None -> failwith "replica: no disk handle"
    in
    let appender =
      match t.appender with
      | Some a -> a
      | None -> failwith "replica: no appender"
    in
    let psize = Real_disk.page_size disk in
    Rw.with_write t.rw (fun () ->
        Wal_stream.Appender.append appender d.Wal_stream.Tail.bytes;
        Wal_stream.Appender.fsync appender;
        List.iter
          (fun (_, r) -> apply_record t disk psize r)
          d.Wal_stream.Tail.records);
    with_lock t.lock (fun () ->
        t.applied <- d.Wal_stream.Tail.new_end;
        t.generation <- t.generation + 1;
        t.synced <- true)

  (* Snapshot reception state: the two .sync files being filled. *)
  type snap = {
    mutable d_fd : Unix.file_descr option;
    mutable d_off : int;
    mutable w_fd : Unix.file_descr option;
    mutable w_off : int;
  }

  let snap_close s =
    (match s.d_fd with
    | Some fd -> ( (try Unix.close fd with Unix.Unix_error _ -> ()); s.d_fd <- None)
    | None -> ());
    match s.w_fd with
    | Some fd -> ( (try Unix.close fd with Unix.Unix_error _ -> ()); s.w_fd <- None)
    | None -> ()

  let fsync_dir dir =
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()

  (* Swap the received snapshot into place and replay it. Under the
     write lock so no reader sees the directory mid-swap; readers hold
     fds on the old files, which rename leaves intact. *)
  let finish_snapshot t snap ~tail_start =
    let data_path = Real_disk.path_of t.dir in
    let wal_path = Recovery.wal_path_of t.dir in
    (match (snap.d_fd, snap.w_fd) with
    | Some dfd, Some wfd ->
        Unix.fsync dfd;
        Unix.fsync wfd
    | _ -> raise Resync);
    snap_close snap;
    if snap.w_off <> tail_start then raise Resync;
    Rw.with_write t.rw (fun () ->
        close_handles t;
        Unix.rename (data_path ^ ".sync") data_path;
        Unix.rename (wal_path ^ ".sync") wal_path;
        fsync_dir t.dir);
    let boundary = open_local t in
    if boundary <> tail_start then raise Resync;
    with_lock t.lock (fun () ->
        t.generation <- t.generation + 1;
        t.synced <- true;
        t.snapshots <- t.snapshots + 1)

  let send_ack t fd =
    let epoch, applied = with_lock t.lock (fun () -> (t.epoch, t.applied)) in
    Wire.write_request fd (Wire.Rep_ack { epoch; applied_lsn = applied })

  let note_progress t ~primary_end =
    with_lock t.lock (fun () ->
        t.primary_end <- max t.primary_end primary_end;
        t.connected <- true;
        if t.applied >= t.primary_end then t.last_caught_up <- Unix.gettimeofday ())

  (* One connection's lifetime: subscribe, then process the stream until
     it ends. Raises [Fenced]/[Resync]/[Wire.Connection_closed]. *)
  let session t =
    let have_local =
      Sys.file_exists (Recovery.wal_path_of t.dir) && Real_disk.exists ~dir:t.dir
    in
    let boundary = if have_local then open_local t else 0 in
    let client =
      Client.connect ~host:t.host ~timeout_ms:2000 ~port:t.port ()
    in
    t.client <- Some client;
    let fd = Client.fd client in
    Fun.protect
      ~finally:(fun () ->
        t.client <- None;
        Client.close client)
      (fun () ->
        let epoch, stream = with_lock t.lock (fun () -> (t.epoch, t.stream)) in
        Wire.write_request fd
          (Wire.Rep_subscribe
             { epoch; stream_id = stream; from_lsn = (if have_local then boundary else 0) });
        let mode = ref `Hello in
        let tail = ref None in
        let rec loop () =
          if t.stopping || t.promoted then ()
          else begin
            (match Wire.read_reply fd with
            | Wire.Rep_fence { epoch = their_epoch } ->
                with_lock t.lock (fun () ->
                    t.fenced_rejects <- t.fenced_rejects + 1);
                raise (Fenced their_epoch)
            | Wire.Rep_hello { epoch; stream_id; snapshot; _ } ->
                if epoch < with_lock t.lock (fun () -> t.epoch) then begin
                  with_lock t.lock (fun () ->
                      t.fenced_rejects <- t.fenced_rejects + 1);
                  raise (Fenced epoch)
                end;
                with_lock t.lock (fun () ->
                    if epoch > t.epoch then t.epoch <- epoch;
                    t.stream <- stream_id);
                if snapshot then begin
                  let data_path = Real_disk.path_of t.dir in
                  let wal_path = Recovery.wal_path_of t.dir in
                  if not (Sys.file_exists t.dir) then Unix.mkdir t.dir 0o755;
                  let flags = [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] in
                  mode :=
                    `Snap
                      {
                        d_fd = Some (Unix.openfile (data_path ^ ".sync") flags 0o644);
                        d_off = 0;
                        w_fd = Some (Unix.openfile (wal_path ^ ".sync") flags 0o644);
                        w_off = 0;
                      }
                end
                else begin
                  if not have_local then raise Resync;
                  tail := Some (Wal_stream.Tail.create ~start_lsn:boundary);
                  mode := `Tail
                end
            | Wire.Rep_chunk { kind; off; data } -> (
                match !mode with
                | `Snap s -> (
                    let write fd_opt expected =
                      match fd_opt with
                      | Some fd when off = expected ->
                          let b = Bytes.unsafe_of_string data in
                          let rec w pos len =
                            if len > 0 then begin
                              let n =
                                try Unix.write fd b pos len
                                with Unix.Unix_error (Unix.EINTR, _, _) -> 0
                              in
                              w (pos + n) (len - n)
                            end
                          in
                          w 0 (String.length data)
                      | _ -> raise Resync
                    in
                    match kind with
                    | Wire.Data_chunk ->
                        write s.d_fd s.d_off;
                        s.d_off <- s.d_off + String.length data
                    | Wire.Wal_chunk ->
                        write s.w_fd s.w_off;
                        s.w_off <- s.w_off + String.length data)
                | _ -> raise Resync)
            | Wire.Rep_wal { epoch; start_lsn; primary_end; data } ->
                if epoch < with_lock t.lock (fun () -> t.epoch) then begin
                  with_lock t.lock (fun () ->
                      t.fenced_rejects <- t.fenced_rejects + 1);
                  raise (Fenced epoch)
                end;
                with_lock t.lock (fun () ->
                    if epoch > t.epoch then t.epoch <- epoch);
                (match !mode with
                | `Snap s ->
                    (* first batch = snapshot-complete marker *)
                    finish_snapshot t s ~tail_start:start_lsn;
                    tail := Some (Wal_stream.Tail.create ~start_lsn);
                    mode := `Tail;
                    send_ack t fd
                | `Tail -> ()
                | `Hello -> raise Resync);
                (match !tail with
                | None -> raise Resync
                | Some tl ->
                    if String.length data > 0 then begin
                      if start_lsn <> Wal_stream.Tail.expected tl then
                        raise Resync;
                      Wal_stream.Tail.feed tl (Bytes.of_string data);
                      match Wal_stream.Tail.drain tl with
                      | Error msg -> failwith msg
                      | Ok None -> ()
                      | Ok (Some d) ->
                          apply_batch t d;
                          send_ack t fd
                    end);
                note_progress t ~primary_end
            | _ -> raise Resync);
            loop ()
          end
        in
        loop ())

  let applier t =
    let backoff = ref 0.1 in
    while not (t.stopping || t.promoted) do
      (match session t with
      | () -> ()
      | exception Fenced _ ->
          (* A stale primary: keep retrying slowly — it may get
             restarted as a replica of the new primary, and meanwhile
             every attempt re-proves the fence for observability. *)
          backoff := 1.0
      | exception Resync ->
          (* force a snapshot next time *)
          with_lock t.lock (fun () -> t.stream <- 0L);
          backoff := min 1.0 (!backoff *. 2.0)
      | exception
          ( Wire.Connection_closed | Wire.Protocol_error _
          | Unix.Unix_error _ | Client.Connect_timeout | Sys_error _
          | Failure _ ) ->
          backoff := min 1.0 (!backoff *. 2.0));
      with_lock t.lock (fun () -> t.connected <- false);
      if not (t.stopping || t.promoted) then begin
        Unix.sleepf !backoff;
        (* successful sessions reset the backoff on next connect *)
        if !backoff > 0.8 then backoff := 0.5
      end
    done;
    with_lock t.lock (fun () -> t.connected <- false)

  let start t =
    match t.thread with
    | Some _ -> ()
    | None -> t.thread <- Some (Thread.create applier t)

  let wait_synced ?(timeout_s = 30.0) t =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      if with_lock t.lock (fun () -> t.synced) then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Unix.sleepf 0.01;
        go ()
      end
    in
    go ()

  let dir t = t.dir
  let generation t = with_lock t.lock (fun () -> t.generation)
  let applied_lsn t = with_lock t.lock (fun () -> t.applied)
  let epoch t = with_lock t.lock (fun () -> t.epoch)
  let connected t = with_lock t.lock (fun () -> t.connected)
  let fenced_rejects t = with_lock t.lock (fun () -> t.fenced_rejects)
  let snapshots t = with_lock t.lock (fun () -> t.snapshots)

  let lag_bytes t =
    with_lock t.lock (fun () -> max 0 (t.primary_end - t.applied))

  (* Milliseconds since the replica last observed itself caught up to
     the primary's shippable end. Heartbeats refresh it every ~200 ms
     while connected and idle, so a healthy replica reads near zero;
     infinity before the first catch-up. *)
  let stale_ms t =
    with_lock t.lock (fun () ->
        if t.promoted then 0.0
        else if t.last_caught_up = 0.0 then infinity
        else (Unix.gettimeofday () -. t.last_caught_up) *. 1000.0)

  let with_read t f = Rw.with_read t.rw f

  let stop_applier t =
    t.stopping <- true;
    (match t.client with
    | Some c -> (
        try Unix.shutdown (Client.fd c) Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
    | None -> ());
    (match t.thread with
    | Some th ->
        (try Thread.join th with _ -> ());
        t.thread <- None
    | None -> ())

  (* Promotion: stop tailing, make the local state a self-sufficient
     primary. Recovery truncates any torn tail (there is never an
     unapplied committed one — drains stop at boundaries), replays, and
     checkpoints; then the epoch bump is committed. After this returns,
     the old primary's frames carry a stale epoch and are rejected
     everywhere — it is fenced. *)
  let promote t =
    let already = with_lock t.lock (fun () -> t.promoted) in
    if already then with_lock t.lock (fun () -> t.epoch)
    else begin
      stop_applier t;
      let new_epoch =
        Rw.with_write t.rw (fun () ->
            close_handles t;
            let disk, wal, _report = Recovery.recover ~dir:t.dir t.stats in
            let e = Wal.epoch wal + 1 in
            Wal.log_epoch wal e;
            Wal.commit wal;
            Wal.close wal;
            Real_disk.close disk;
            e)
      in
      with_lock t.lock (fun () ->
          t.epoch <- new_epoch;
          t.promoted <- true;
          t.synced <- true;
          t.generation <- t.generation + 1);
      new_epoch
    end

  let promoted t = with_lock t.lock (fun () -> t.promoted)

  let stop t =
    stop_applier t;
    Rw.with_write t.rw (fun () -> close_handles t)
end
