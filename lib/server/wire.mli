(** The fsqld wire protocol: length-prefixed binary frames over TCP.

    Every frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is a tag, the rest is the message
    body. Integers are big-endian; strings and string lists are
    length-prefixed. Floats travel as their IEEE-754 bit patterns, so a
    membership degree received by a client is bit-identical to the degree
    the server computed — the equality notion of the unnesting theorems
    survives the network hop.

    Frame I/O works directly on the file descriptor with EINTR-safe
    read/write loops: a signal delivered mid-syscall restarts the
    operation instead of killing the session thread, and a peer that
    vanishes — clean EOF, a short read mid-frame, EPIPE or ECONNRESET —
    raises the single {!Connection_closed} exception.

    Requests (client to server): [Query] (request ID, deadline, per-query
    execution parallelism, SQL text), [Cancel] (cancel the in-flight query
    on this connection), [Metrics] (dump the server's metrics registry),
    [Trace_get] (fetch one request's Chrome trace by ID from the server's
    ring of recent traces), [Top] (a rendered snapshot of the windowed
    serving metrics).

    Replies (server to client) for one query, in order: one [Header]
    (column names), zero or more [Row]s, and exactly one terminal frame —
    [Done] on success, [Error] (parse / semantic / fatal execution
    error), [Retryable] (transient fault; a fresh attempt may succeed),
    [Overloaded] (admission queue full or circuit breaker open),
    [Rejected] (the admission-time static analyzer found errors; carries
    the primary [FSQL0xx] code and the rendered diagnostics), or
    [Cancelled] (deadline exceeded, client cancel, or disconnect).
    [Metrics_json] answers a [Metrics] request, [Trace_json] a
    [Trace_get], [Top_text] a [Top].

    {1 Protocol revisions}

    Rev 1 (PR 3) had no request IDs; its query tag was ['Q']. Rev 2 adds
    the client-generated request ID under the distinct tag ['q'], keeping
    both directions compatible: a rev-1 ['Q'] frame still decodes (the
    [request_id] comes back [""] and the server assigns one), and a query
    {e without} an ID encodes as a byte-identical rev-1 frame — so a new
    client that leaves [request_id = ""] interoperates with an old server,
    which never sees an unknown tag. Round-trip tests pin both
    directions.

    Rev 3 (this revision) adds WAL-shipped replication and admin
    promotion. Requests: [Rep_subscribe] (a replica asks the primary to
    stream its log from an LSN, presenting its current epoch and the
    stream ID it last saw), [Rep_ack] (applied-LSN progress, flowing
    back on the same connection), [Promote] (bump the epoch and start
    serving as primary). Replies: [Rep_hello] (stream parameters;
    whether a full snapshot precedes the tail), [Rep_chunk] (snapshot
    bytes of the data file or WAL prefix), [Rep_wal] (a batch of raw
    log bytes — empty batches are heartbeats carrying the primary's
    end LSN), [Rep_fence] (the receiver's epoch is newer: the
    subscriber — or the sender — is a fenced zombie), [Promoted] (the
    new epoch). Compatibility is again by construction: rev 3 only
    introduces new tags, so every rev-2 frame is byte-identical under
    rev 3 and a rev-2 client can never elicit a rev-3 reply. *)

exception Protocol_error of string
(** Malformed frame: bad tag, truncated body, or an over-sized length
    prefix (the frame cap guards against garbage on the port). *)

exception Connection_closed
(** The peer closed the connection: clean EOF before a frame, a short
    read mid-frame, or a write to a closed socket. *)

val protocol_rev : int
(** The protocol revision this build speaks (3). Informational — the
    protocol negotiates nothing; compatibility is carried by the frame
    tags as described above. *)

type request =
  | Query of {
      request_id : string;
      deadline_ms : int;
      domains : int;
      sql : string;
    }
      (** [request_id = ""] means the client did not supply one (rev-1
          client, or a rev-2 client opting out) and the server assigns
          one; [deadline_ms = 0] means no client deadline (the server
          default, if any, still applies); [domains = 0] means the
          server's configured per-query parallelism. *)
  | Cancel
  | Metrics
  | Trace_get of string
      (** fetch the Chrome trace of one past request by its ID *)
  | Top  (** rendered snapshot of the windowed serving metrics *)
  | Rep_subscribe of { epoch : int; stream_id : int64; from_lsn : int }
      (** replica asks for the log from [from_lsn]; [stream_id] is the
          last stream it tailed ([0L] = none) — a sender whose current
          stream differs answers with a snapshot resync *)
  | Rep_ack of { epoch : int; applied_lsn : int }
      (** applied + fsynced through [applied_lsn]; sent on the
          subscribe connection *)
  | Promote  (** admin: bump the epoch, fence the old primary *)

type chunk_kind = Data_chunk | Wal_chunk

type reply =
  | Header of string list  (** column names of the answer schema *)
  | Row of { degree_bits : int64; values : string list }
      (** one answer tuple: degree as IEEE-754 bits, values printed *)
  | Done of { rows : int; elapsed_s : float }
      (** terminal: row count and server-side wall time (admission to
          last row) *)
  | Error of string  (** terminal: query error or fatal execution error *)
  | Retryable of string
      (** terminal: the query failed on a transient fault after the
          server exhausted its own retries (or had no deadline budget
          left to retry); the query is read-only, so resubmitting is
          always safe and may succeed *)
  | Overloaded
  | Rejected of { code : string; diagnostics : string }
      (** terminal: the static analyzer rejected the query at admission —
          [code] is the primary [FSQL0xx] error code, [diagnostics] the
          full caret-rendered report (tag ['S'], rev 2) *)
  | Cancelled of string  (** terminal: why the query was cancelled *)
  | Metrics_json of string
  | Trace_json of string option
      (** [None] when the requested ID has fallen out of the server's
          trace ring (or never existed) *)
  | Top_text of string  (** server-rendered, ready to print *)
  | Rep_hello of {
      epoch : int;
      stream_id : int64;
      page_size : int;
      snapshot : bool;
      start_lsn : int;
      data_len : int;
    }
      (** stream opening: when [snapshot] is true, [data_len] bytes of
          data file and a WAL prefix up to [start_lsn] arrive as
          [Rep_chunk]s before the tail starts at [start_lsn] *)
  | Rep_chunk of { kind : chunk_kind; off : int; data : string }
      (** snapshot bytes at offset [off] of the data file
          ([Data_chunk]) or the WAL ([Wal_chunk]) *)
  | Rep_wal of { epoch : int; start_lsn : int; primary_end : int; data : string }
      (** raw log bytes [start_lsn, start_lsn + length data); empty
          [data] is a heartbeat; [primary_end] is the primary's
          shippable end, letting the replica compute its own lag *)
  | Rep_fence of { epoch : int }
      (** the peer's epoch [epoch] is newer than the frame it rejected
          — whoever received this is fenced *)
  | Promoted of { epoch : int }  (** answer to [Promote] *)

val max_frame : int
(** Frames above this size (64 MB) raise {!Protocol_error} on read. *)

val write_request : Unix.file_descr -> request -> unit
(** Encode, frame, write. The frame is built in one buffer and written
    by a single EINTR-safe loop, so concurrent writers interleave only
    if they share a connection without serialising. Raises
    {!Connection_closed} if the peer is gone. *)

val write_reply : Unix.file_descr -> reply -> unit

val read_request : Unix.file_descr -> request
(** Blocks for a full frame. Raises {!Connection_closed} on EOF or a
    short read mid-frame, {!Protocol_error} on garbage. *)

val read_reply : Unix.file_descr -> reply
