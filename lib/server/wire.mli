(** The fsqld wire protocol: length-prefixed binary frames over TCP.

    Every frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is a tag, the rest is the message
    body. Integers are big-endian; strings and string lists are
    length-prefixed. Floats travel as their IEEE-754 bit patterns, so a
    membership degree received by a client is bit-identical to the degree
    the server computed — the equality notion of the unnesting theorems
    survives the network hop.

    Frame I/O works directly on the file descriptor with EINTR-safe
    read/write loops: a signal delivered mid-syscall restarts the
    operation instead of killing the session thread, and a peer that
    vanishes — clean EOF, a short read mid-frame, EPIPE or ECONNRESET —
    raises the single {!Connection_closed} exception.

    Requests (client to server): [Query] (deadline, per-query execution
    parallelism, SQL text), [Cancel] (cancel the in-flight query on this
    connection), [Metrics] (dump the server's metrics registry).

    Replies (server to client) for one query, in order: one [Header]
    (column names), zero or more [Row]s, and exactly one terminal frame —
    [Done] on success, [Error] (parse / semantic / fatal execution
    error), [Retryable] (transient fault; a fresh attempt may succeed),
    [Overloaded] (admission queue full or circuit breaker open), or
    [Cancelled] (deadline exceeded, client cancel, or disconnect).
    [Metrics_json] answers a [Metrics] request. *)

exception Protocol_error of string
(** Malformed frame: bad tag, truncated body, or an over-sized length
    prefix (the frame cap guards against garbage on the port). *)

exception Connection_closed
(** The peer closed the connection: clean EOF before a frame, a short
    read mid-frame, or a write to a closed socket. *)

type request =
  | Query of { deadline_ms : int; domains : int; sql : string }
      (** [deadline_ms = 0] means no client deadline (the server default,
          if any, still applies); [domains = 0] means the server's
          configured per-query parallelism. *)
  | Cancel
  | Metrics

type reply =
  | Header of string list  (** column names of the answer schema *)
  | Row of { degree_bits : int64; values : string list }
      (** one answer tuple: degree as IEEE-754 bits, values printed *)
  | Done of { rows : int; elapsed_s : float }
      (** terminal: row count and server-side wall time (admission to
          last row) *)
  | Error of string  (** terminal: query error or fatal execution error *)
  | Retryable of string
      (** terminal: the query failed on a transient fault after the
          server exhausted its own retries (or had no deadline budget
          left to retry); the query is read-only, so resubmitting is
          always safe and may succeed *)
  | Overloaded
  | Cancelled of string  (** terminal: why the query was cancelled *)
  | Metrics_json of string

val max_frame : int
(** Frames above this size (64 MB) raise {!Protocol_error} on read. *)

val write_request : Unix.file_descr -> request -> unit
(** Encode, frame, write. The frame is built in one buffer and written
    by a single EINTR-safe loop, so concurrent writers interleave only
    if they share a connection without serialising. Raises
    {!Connection_closed} if the peer is gone. *)

val write_reply : Unix.file_descr -> reply -> unit

val read_request : Unix.file_descr -> request
(** Blocks for a full frame. Raises {!Connection_closed} on EOF or a
    short read mid-frame, {!Protocol_error} on garbage. *)

val read_reply : Unix.file_descr -> reply
