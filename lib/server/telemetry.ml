(* Production telemetry for the serving path: request IDs, a bounded ring
   of recent request traces, SQL shape normalization, a rotating JSONL
   query log, Prometheus text exposition, and the tiny HTTP listener that
   serves it. Pure plumbing — no engine types leak in here, so the
   subsystem is reusable by any later serving tier (scatter-gather,
   caches) that wants the same observability spine. *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Request IDs *)

let gen_request_id rng =
  (* 64 random bits as 16 hex chars: short enough to read aloud, wide
     enough that a busy server won't collide within a trace-ring
     lifetime. *)
  let b = Buffer.create 16 in
  for _ = 1 to 4 do
    Buffer.add_string b (Printf.sprintf "%04x" (Random.State.int rng 0x10000))
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Trace ring: the last [capacity] completed requests' Chrome traces,
   keyed by request ID. Bounded memory; old entries are overwritten in
   arrival order. Thread-safe (workers insert, conn threads look up). *)

module Ring = struct
  type entry = { e_id : string; e_json : string }

  type t = {
    lock : Mutex.t;
    slots : entry option array;
    mutable next : int;  (* next slot to overwrite *)
    mutable stored : int;  (* lifetime inserts, for tests *)
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Telemetry.Ring.create: capacity";
    {
      lock = Mutex.create ();
      slots = Array.make capacity None;
      next = 0;
      stored = 0;
    }

  let capacity t = Array.length t.slots

  let add t ~id ~json =
    with_lock t.lock (fun () ->
        t.slots.(t.next) <- Some { e_id = id; e_json = json };
        t.next <- (t.next + 1) mod Array.length t.slots;
        t.stored <- t.stored + 1)

  let find t id =
    with_lock t.lock (fun () ->
        (* Scan backwards from the most recent insert so a duplicated ID
           (client retry reusing one) resolves to the latest trace. *)
        let n = Array.length t.slots in
        let rec go i =
          if i >= n then None
          else
            let slot = (t.next - 1 - i + (2 * n)) mod n in
            match t.slots.(slot) with
            | Some e when String.equal e.e_id id -> Some e.e_json
            | _ -> go (i + 1)
        in
        go 0)

  let ids t =
    with_lock t.lock (fun () ->
        let n = Array.length t.slots in
        let acc = ref [] in
        for i = 0 to n - 1 do
          let slot = (t.next - 1 - i + (2 * n)) mod n in
          (* i = 0 is the most recent insert; prepending as we walk
             backwards leaves the list oldest-first. *)
          match t.slots.(slot) with
          | Some e -> acc := e.e_id :: !acc
          | None -> ()
        done;
        !acc)

  let length t =
    with_lock t.lock (fun () ->
        Array.fold_left
          (fun n -> function Some _ -> n + 1 | None -> n)
          0 t.slots)

  let stored t = with_lock t.lock (fun () -> t.stored)
end

(* ------------------------------------------------------------------ *)
(* SQL shape normalization: literals become [?], whitespace collapses,
   so the query log groups structurally identical statements without
   storing user data.

   The shape is rebuilt from the real lexer's token stream, so it stays
   in lockstep with the grammar (a new literal form can never leak user
   data because anything the lexer calls STRING/NUMBER becomes [?]).
   Statements the lexer refuses still need a shape — the log records
   rejected requests too — so those fall back to the old character-level
   scrubber below. *)

let normalize_fallback sql =
  let b = Buffer.create (String.length sql) in
  let n = String.length sql in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let last_space = ref true (* collapse leading space too *) in
  let emit c =
    if c = ' ' then (if not !last_space then Buffer.add_char b ' ')
    else Buffer.add_char b c;
    last_space := c = ' '
  in
  let i = ref 0 in
  while !i < n do
    let c = sql.[!i] in
    if c = '\'' then begin
      (* string literal, '' escapes a quote *)
      emit '?';
      incr i;
      let stop = ref false in
      while (not !stop) && !i < n do
        if sql.[!i] = '\'' then
          if !i + 1 < n && sql.[!i + 1] = '\'' then i := !i + 2
          else begin
            stop := true;
            incr i
          end
        else incr i
      done
    end
    else if
      (c >= '0' && c <= '9')
      && ((!i = 0) || not (is_ident sql.[!i - 1]))
    then begin
      (* numeric literal (int or decimal), but not a digit inside an
         identifier like t1 *)
      emit '?';
      while
        !i < n
        && ((sql.[!i] >= '0' && sql.[!i] <= '9') || sql.[!i] = '.')
      do
        incr i
      done
    end
    else begin
      emit (if c = '\n' || c = '\t' || c = '\r' then ' ' else c);
      incr i
    end
  done;
  (* trim trailing space *)
  let s = Buffer.contents b in
  let len = String.length s in
  if len > 0 && s.[len - 1] = ' ' then String.sub s 0 (len - 1) else s

let normalize_sql sql =
  match Fuzzysql.Lexer.tokenize sql with
  | exception Fuzzysql.Lexer.Error _ -> normalize_fallback sql
  | tokens ->
      let module T = Fuzzysql.Token in
      let text = function
        | T.IDENT s -> s
        | T.STRING _ | T.NUMBER _ -> "?"
        | T.OP op -> Fuzzy.Fuzzy_compare.op_to_string op
        | t -> T.to_string t
      in
      let no_space_before = function
        | T.RPAREN | T.COMMA | T.COLON -> true
        | _ -> false
      in
      let no_space_after = function
        | T.LPAREN | T.COLON -> true
        | _ -> false
      in
      let b = Buffer.create (String.length sql) in
      let rec go prev = function
        | [] | T.EOF :: _ -> ()
        | T.STRING _ :: rest
          when match prev with Some (T.STRING _) -> true | _ -> false ->
            (* the lexer splits ['O''Brien'] at the doubled quote; both
               halves are one literal, one [?] *)
            go prev rest
        | tok :: rest ->
            (match prev with
            | Some p when not (no_space_after p || no_space_before tok) ->
                Buffer.add_char b ' '
            | _ -> ());
            Buffer.add_string b (text tok);
            go (Some tok) rest
      in
      go None tokens;
      Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Query log: one JSON object per line per finished request, with size
   rotation (file -> file.1) so an unattended server never fills the
   disk. [slow_ms] filters at the source: 0 logs everything. *)

module Query_log = struct
  type record = {
    ts : float;
    request_id : string;
    shape : string;
    engine : string;
    queue_wait_s : float;
    exec_s : float;
    page_reads : int;
    page_writes : int;
    comparisons : int;
    fuzzy_ops : int;
    rows : int;
    retries : int;
    outcome : string;
  }

  type t = {
    path : string;
    max_bytes : int;
    slow_ms : float;
    lock : Mutex.t;
    mutable oc : out_channel;
    mutable bytes : int;
    mutable written : int;
    mutable closed : bool;
  }

  let open_out_at path =
    open_out_gen [ Open_append; Open_creat ] 0o644 path

  let create ?(max_bytes = 64 * 1024 * 1024) ?(slow_ms = 0.0) path =
    let oc = open_out_at path in
    {
      path;
      max_bytes;
      slow_ms;
      lock = Mutex.create ();
      oc;
      bytes = out_channel_length oc;
      written = 0;
      closed = false;
    }

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let render r =
    Printf.sprintf
      "{\"ts\":%.6f,\"request_id\":\"%s\",\"shape\":\"%s\",\"engine\":\"%s\",\
       \"queue_wait_s\":%.6f,\"exec_s\":%.6f,\"page_reads\":%d,\
       \"page_writes\":%d,\"comparisons\":%d,\"fuzzy_ops\":%d,\"rows\":%d,\
       \"retries\":%d,\"outcome\":\"%s\"}"
      r.ts (json_escape r.request_id) (json_escape r.shape)
      (json_escape r.engine) r.queue_wait_s r.exec_s r.page_reads
      r.page_writes r.comparisons r.fuzzy_ops r.rows r.retries
      (json_escape r.outcome)

  let rotate t =
    (* fsync the outgoing file before it becomes [.1]: rotation must not
       turn a crash into lost records that [log] already acknowledged by
       returning. *)
    flush t.oc;
    (try Unix.fsync (Unix.descr_of_out_channel t.oc)
     with Unix.Unix_error _ | Sys_error _ -> ());
    close_out_noerr t.oc;
    (try Sys.rename t.path (t.path ^ ".1") with Sys_error _ -> ());
    t.oc <- open_out_at t.path;
    t.bytes <- 0

  (* Logrotate compatibility: after an external rename, reopening at the
     configured path starts a fresh file; records keep flowing with none
     lost in between (the swap happens under the log's lock). *)
  let reopen t =
    with_lock t.lock (fun () ->
        if not t.closed then begin
          flush t.oc;
          close_out_noerr t.oc;
          t.oc <- open_out_at t.path;
          t.bytes <- out_channel_length t.oc
        end)

  let log t r =
    if r.exec_s *. 1000.0 >= t.slow_ms then
      with_lock t.lock (fun () ->
          if not t.closed then begin
            if t.bytes >= t.max_bytes then rotate t;
            let line = render r in
            output_string t.oc line;
            output_char t.oc '\n';
            flush t.oc;
            t.bytes <- t.bytes + String.length line + 1;
            t.written <- t.written + 1
          end)

  let written t = with_lock t.lock (fun () -> t.written)

  let close t =
    with_lock t.lock (fun () ->
        if not t.closed then begin
          t.closed <- true;
          close_out_noerr t.oc
        end)
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4). Counters map to counters,
   gauges to gauges, lifetime histograms and window snapshots to
   summaries (quantile-labelled series) — the log2-bucket layout is ours,
   so we export computed quantiles rather than raw buckets. *)

let prom_name name =
  let b = Buffer.create (String.length name + 6) in
  Buffer.add_string b "fsqld_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let render_prometheus metrics ~now =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun c ->
      let n = prom_name (Storage.Metrics.counter_name c) in
      line "# TYPE %s counter" n;
      line "%s %d" n (Storage.Metrics.counter_value c))
    (Storage.Metrics.counters metrics);
  List.iter
    (fun g ->
      let n = prom_name (Storage.Metrics.gauge_name g) in
      line "# TYPE %s gauge" n;
      line "%s %s" n (prom_float (Storage.Metrics.gauge_value g)))
    (Storage.Metrics.gauges metrics);
  List.iter
    (fun h ->
      let n = prom_name (Storage.Metrics.hist_name h) in
      line "# TYPE %s summary" n;
      List.iter
        (fun q ->
          line "%s{quantile=\"%g\"} %s" n q
            (prom_float (Storage.Metrics.hist_quantile h q)))
        [ 0.5; 0.95; 0.99 ];
      line "%s_sum %s" n (prom_float (Storage.Metrics.hist_sum h));
      line "%s_count %d" n (Storage.Metrics.hist_count h))
    (Storage.Metrics.histograms metrics);
  List.iter
    (fun w ->
      let n = prom_name (Storage.Metrics.window_name w) ^ "_window" in
      line "# TYPE %s summary" n;
      List.iter
        (fun q ->
          line "%s{quantile=\"%g\"} %s" n q
            (prom_float (Storage.Metrics.window_quantile w ~now q)))
        [ 0.5; 0.99 ];
      line "%s_sum %s" n (prom_float (Storage.Metrics.window_sum w ~now));
      line "%s_count %d" n (Storage.Metrics.window_count w ~now);
      line "# TYPE %s_rate gauge" n;
      line "%s_rate %s" n (prom_float (Storage.Metrics.window_rate w ~now)))
    (Storage.Metrics.window_histograms metrics);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* \top rendering: a terminal snapshot of the windowed serving state.
   Rendered server-side so old/new clients need no JSON parser. *)

let render_top metrics ~now =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let fnum v = if Float.is_nan v then "-" else Printf.sprintf "%.3g" v in
  let gauges = Storage.Metrics.gauges metrics in
  if gauges <> [] then begin
    line "gauges:";
    List.iter
      (fun g ->
        line "  %-28s %s"
          (Storage.Metrics.gauge_name g)
          (fnum (Storage.Metrics.gauge_value g)))
      gauges
  end;
  let windows = Storage.Metrics.window_histograms metrics in
  if windows <> [] then begin
    line "last %gs:" (Storage.Metrics.window_span_s (List.hd windows));
    line "  %-28s %8s %8s %8s %8s %8s" "window" "count" "rate/s" "p50" "p99"
      "max";
    List.iter
      (fun w ->
        line "  %-28s %8d %8s %8s %8s %8s"
          (Storage.Metrics.window_name w)
          (Storage.Metrics.window_count w ~now)
          (fnum (Storage.Metrics.window_rate w ~now))
          (fnum (Storage.Metrics.window_quantile w ~now 0.5))
          (fnum (Storage.Metrics.window_quantile w ~now 0.99))
          (fnum (Storage.Metrics.window_max w ~now)))
      windows
  end;
  let counters = Storage.Metrics.counters metrics in
  if counters <> [] then begin
    line "lifetime:";
    List.iter
      (fun c ->
        line "  %-28s %d"
          (Storage.Metrics.counter_name c)
          (Storage.Metrics.counter_value c))
      counters
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HTTP listener: one thread, one request per connection, HTTP/1.0 with
   Connection: close. Deliberately minimal — it serves two read-only
   endpoints to a scraper on a trusted port, not the internet. *)

module Http = struct
  type t = {
    fd : Unix.file_descr;
    port : int;
    mutable alive : bool;
    mutable thread : Thread.t option;
  }

  let respond fd status content_type body =
    let reason = match status with
      | 200 -> "OK"
      | 404 -> "Not Found"
      | 503 -> "Service Unavailable"
      | _ -> "Error"
    in
    let head =
      Printf.sprintf
        "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
         Connection: close\r\n\r\n"
        status reason content_type (String.length body)
    in
    let payload = Bytes.of_string (head ^ body) in
    let rec write off len =
      if len > 0 then
        match Unix.write fd payload off len with
        | n -> write (off + n) (len - n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off len
    in
    try write 0 (Bytes.length payload)
    with Unix.Unix_error _ -> ()

  let read_request_path fd =
    (* Read until the end of headers or 8 KB, then parse the request
       line. Anything malformed is just a closed connection. *)
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 512 in
    let rec go () =
      if Buffer.length buf < 8192 then
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            let s = Buffer.contents buf in
            let have_headers =
              let rec scan i =
                i + 3 < String.length s
                && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                     && s.[i + 3] = '\n')
                   || scan (i + 1))
              in
              scan 0
            in
            if not have_headers then go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> ()
    in
    go ();
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some eol -> (
        let first = String.trim (String.sub s 0 eol) in
        match String.split_on_char ' ' first with
        | meth :: path :: _ when String.uppercase_ascii meth = "GET" ->
            Some path
        | _ -> None)

  let serve_conn handler fd =
    (match read_request_path fd with
    | Some path -> (
        match handler path with
        | Some (status, content_type, body) ->
            respond fd status content_type body
        | None -> respond fd 404 "text/plain" "not found\n")
    | None -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

  let start ~port handler =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let t = { fd; port; alive = true; thread = None } in
    let loop () =
      let rec go () =
        match Unix.accept t.fd with
        | conn, _ ->
            if t.alive then begin
              serve_conn handler conn;
              go ()
            end
            else (try Unix.close conn with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> if t.alive then go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ();
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    in
    t.thread <- Some (Thread.create loop ());
    t

  let port t = t.port

  let stop t =
    if t.alive then begin
      t.alive <- false;
      (* Wake the accept loop with a throwaway connection so it observes
         [alive = false] and exits, closing the listener itself. *)
      (try
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
          with Unix.Unix_error _ -> ());
         Unix.close fd
       with Unix.Unix_error _ -> ());
      match t.thread with
      | Some th -> Thread.join th
      | None -> ()
    end

  (* A one-shot GET for tests and tooling: status code and body. *)
  let get ~port path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" path
        in
        let payload = Bytes.of_string req in
        let rec write off len =
          if len > 0 then
            match Unix.write fd payload off len with
            | n -> write (off + n) (len - n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off len
        in
        write 0 (Bytes.length payload);
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec read () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              read ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read ()
        in
        read ();
        let s = Buffer.contents buf in
        let status =
          match String.split_on_char ' ' s with
          | _ :: code :: _ -> ( try int_of_string code with Failure _ -> 0)
          | _ -> 0
        in
        let body =
          let rec find i =
            if i + 3 < String.length s then
              if
                s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                && s.[i + 3] = '\n'
              then String.sub s (i + 4) (String.length s - i - 4)
              else find (i + 1)
            else ""
          in
          find 0
        in
        (status, body))
end
