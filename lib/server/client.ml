type t = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (** [cancel] may write while [query] reads *)
  rng : Random.State.t;  (** request IDs + jitter for the opt-in retry *)
  mutable last_request_id : string;
  mutable closed : bool;
}

type row = { values : string list; degree : float }

type reply =
  | Answer of { columns : string list; rows : row list; server_elapsed_s : float }
  | Failed of string
  | Retryable of string
  | Overloaded
  | Rejected of { code : string; diagnostics : string }
  | Cancelled of string

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg ("Client.connect: unknown host " ^ host))

exception Connect_timeout

let () =
  Printexc.register_printer (function
    | Connect_timeout -> Some "Client.Connect_timeout"
    | _ -> None)

(* Deadline-bounded connect: flip the socket non-blocking, start the
   connect, wait for writability with [select], then read the pending
   error with [SO_ERROR] — a refused connection reports ECONNREFUSED
   here, not on a later write. The socket goes back to blocking mode
   before use. *)
let connect_deadline fd addr timeout_ms =
  Unix.set_nonblock fd;
  let finish_by_select () =
    let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
    let rec wait () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then raise Connect_timeout;
      match Unix.select [] [ fd ] [] remaining with
      | [], [], [] -> raise Connect_timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some err -> raise (Unix.Unix_error (err, "connect", "")))
    in
    wait ()
  in
  (match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> finish_by_select ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> finish_by_select ());
  Unix.clear_nonblock fd

let connect ?(host = "127.0.0.1") ?timeout_ms ~port () =
  (* A server that vanishes mid-write must surface as
     [Wire.Connection_closed], not kill the client process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr = Unix.ADDR_INET (resolve host, port) in
     match timeout_ms with
     | Some ms when ms > 0 -> connect_deadline fd addr ms
     | _ -> Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    wlock = Mutex.create ();
    rng = Random.State.make_self_init ();
    last_request_id = "";
    closed = false;
  }

let of_addr ?timeout_ms addr =
  match String.rindex_opt addr ':' with
  | None -> invalid_arg ("Client.of_addr: expected HOST:PORT, got " ^ addr)
  | Some i -> (
      let host = String.sub addr 0 i in
      let port_s = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port > 0 && port < 65536 ->
          connect
            ~host:(if host = "" then "127.0.0.1" else host)
            ?timeout_ms ~port ()
      | _ -> invalid_arg ("Client.of_addr: bad port in " ^ addr))

let write t req =
  Mutex.lock t.wlock;
  (match Wire.write_request t.fd req with
  | () -> Mutex.unlock t.wlock
  | exception e ->
      Mutex.unlock t.wlock;
      raise e)

let query_once ?(deadline_ms = 0) ?(domains = 0) t sql =
  (* Fresh ID per attempt: each server-side span tree (and query-log
     record) then corresponds to exactly one wire-level attempt, so a
     retried query never aliases its failed predecessor in the trace
     ring. *)
  let request_id = Telemetry.gen_request_id t.rng in
  t.last_request_id <- request_id;
  write t (Wire.Query { request_id; deadline_ms; domains; sql });
  let columns = ref [] in
  let rows = ref [] in
  let rec read () =
    match Wire.read_reply t.fd with
    | Wire.Header cols ->
        columns := cols;
        read ()
    | Wire.Row { degree_bits; values } ->
        rows := { values; degree = Int64.float_of_bits degree_bits } :: !rows;
        read ()
    | Wire.Done { rows = _; elapsed_s } ->
        Answer
          {
            columns = !columns;
            rows = List.rev !rows;
            server_elapsed_s = elapsed_s;
          }
    | Wire.Error m -> Failed m
    | Wire.Retryable m -> Retryable m
    | Wire.Overloaded -> Overloaded
    | Wire.Rejected { code; diagnostics } -> Rejected { code; diagnostics }
    | Wire.Cancelled reason -> Cancelled reason
    | Wire.Metrics_json _ | Wire.Trace_json _ | Wire.Top_text _
    | Wire.Rep_hello _ | Wire.Rep_chunk _ | Wire.Rep_wal _ | Wire.Rep_fence _
    | Wire.Promoted _ ->
        raise (Wire.Protocol_error "unexpected admin frame in query reply")
  in
  read ()

let last_request_id t = t.last_request_id

let query ?deadline_ms ?domains ?retry t sql =
  match retry with
  | None -> query_once ?deadline_ms ?domains t sql
  | Some policy ->
      (* Queries are read-only, so resending after [Overloaded] or
         [Retryable] is always safe; back off between attempts so a
         struggling server gets air. *)
      let rec go attempt =
        match query_once ?deadline_ms ?domains t sql with
        | (Overloaded | Retryable _) as r ->
            if attempt >= policy.Retry.max_attempts then r
            else begin
              ignore (Retry.sleep (Retry.delay_for policy ~rng:t.rng ~attempt));
              go (attempt + 1)
            end
        | r -> r
      in
      go 1

let cancel t = write t Wire.Cancel

let metrics_json t =
  write t Wire.Metrics;
  match Wire.read_reply t.fd with
  | Wire.Metrics_json json -> json
  | _ -> raise (Wire.Protocol_error "expected a metrics frame")

let trace_json t id =
  write t (Wire.Trace_get id);
  match Wire.read_reply t.fd with
  | Wire.Trace_json r -> r
  | _ -> raise (Wire.Protocol_error "expected a trace frame")

let top_text t =
  write t Wire.Top;
  match Wire.read_reply t.fd with
  | Wire.Top_text s -> s
  | _ -> raise (Wire.Protocol_error "expected a top frame")

let promote t =
  write t Wire.Promote;
  match Wire.read_reply t.fd with
  | Wire.Promoted { epoch } -> Ok epoch
  | Wire.Error m -> Error m
  | _ -> raise (Wire.Protocol_error "expected a promoted frame")

let fd t = t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
