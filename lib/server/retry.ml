type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
}

let default =
  { max_attempts = 3; base_delay_s = 0.01; max_delay_s = 0.5; jitter = 0.25 }

let delay_for policy ~rng ~attempt =
  let attempt = Int.max 1 attempt in
  let exp = policy.base_delay_s *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min policy.max_delay_s exp in
  let j = Float.max 0.0 (Float.min 1.0 policy.jitter) in
  let factor =
    if j = 0.0 then 1.0 else 1.0 -. j +. Random.State.float rng (2.0 *. j)
  in
  Float.max 0.0 (capped *. factor)

(* Sleep in ~2ms slices so a cancellation (explicit or deadline) observed
   mid-backoff aborts promptly instead of burning the rest of the delay. *)
let sleep ?cancel delay =
  let until = Unix.gettimeofday () +. delay in
  let rec go () =
    let cancelled =
      match cancel with
      | Some c -> Storage.Cancel.cancelled c
      | None -> false
    in
    if cancelled then `Cancelled
    else
      let remaining = until -. Unix.gettimeofday () in
      if remaining <= 0.0 then `Slept
      else begin
        Unix.sleepf (Float.min 0.002 remaining);
        go ()
      end
  in
  go ()
