(** WAL-shipped replication: primary-side log streaming ({!Sender}) and
    the replica-side applier ({!Replica}), with epoch-fenced failover.

    The replica's log file is kept a {e byte-prefix} of a committed
    prefix of the primary's: the sender ships raw frames read through
    its own fd, the applier appends them verbatim and makes them durable
    only through [Commit]/[Checkpoint] boundaries. LSNs therefore
    coincide on both sides and every shipped frame re-validates locally
    (CRC-32 + offset stamp), so the committed prefix is bit-identical by
    construction — the property the failover chaos bench asserts.

    Fencing: a monotone replication epoch lives in the WAL manifest
    ([Epoch] records, echoed by every checkpoint). Promotion bumps it.
    A sender refuses a subscriber presenting a {e newer} epoch
    ([Rep_fence] — the sender is the zombie); an applier rejects any
    hello or log batch carrying an {e older} one. A deposed primary can
    therefore never feed bytes past a promotion, even where its log
    bytes would parse at identical offsets. *)

(** A writer-preference readers/writer lock. Replica query workers hold
    the read side while the applier (and promotion) takes the write
    side; writer preference keeps a steady query load from starving the
    apply loop. *)
module Rw : sig
  type t

  val create : unit -> t
  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a
end

(** Primary side: stream the log to subscribers, track their applied
    LSNs. *)
module Sender : sig
  type t

  val create : env:Storage.Env.t -> t
  (** Serve a live writable environment's log. If the log has never
      carried an epoch (epoch 0), logs and commits epoch 1 first, so a
      first promotion lands on 2 and "epoch 0" always means
      "replication never enabled". Raises [Invalid_argument] on a
      non-durable environment. *)

  val create_for_dir : dir:string -> t
  (** Serve a quiescent data directory (no live writer) — the fencing
      drill runs a deposed primary's sender this way. The log must be
      clean at its last committed boundary. *)

  val serve :
    t ->
    epoch:int ->
    stream_id:int64 ->
    from_lsn:int ->
    send:(Wire.reply -> unit) ->
    int option
  (** Handle one [Rep_subscribe]: either fence the subscriber (its
      epoch is newer; returns [None] after sending [Rep_fence]) or
      start a streaming thread and return its subscriber id. [send]
      must be safe to call from that thread (serialise per connection)
      and must raise when the peer is gone — that ends the stream. If
      [stream_id]/[from_lsn] match the current log generation the
      stream resumes with a tail; otherwise a full snapshot (data file
      first, then the log prefix) precedes it. *)

  val ack : t -> id:int -> applied_lsn:int -> unit
  (** Record a subscriber's [Rep_ack]. *)

  val drop : t -> id:int -> unit
  (** Forget a subscriber whose connection closed. *)

  val epoch : t -> int

  val stream_id : t -> int64
  (** Identity of the current log file generation (device/inode derived);
      changes exactly when a checkpoint rotates the log. *)

  val shippable_end : t -> int
  (** The latest commit boundary whose bytes are visible in the log
      file — what tails stream up to. *)

  val connected : t -> int
  (** Live subscriber count. *)

  val lag_bytes : t -> int
  (** Worst-case replica lag: shippable end minus the minimum acked LSN
      over live subscribers; 0 with none connected. *)

  val fenced : t -> int
  (** Subscribe attempts refused for presenting a newer epoch — each is
      proof this sender is a deposed zombie. *)

  val snapshots_sent : t -> int

  val wait_applied : t -> lsn:int -> timeout_s:float -> bool
  (** Semi-synchronous commit: block until some subscriber has acked
      (applied + fsynced) through [lsn], or the timeout passes. *)

  val listen : ?host:string -> port:int -> t -> int
  (** Start a minimal replication-only accept loop (subscribe/ack
      frames) — for primaries that are not full daemons, like the chaos
      harness's forked child. [port = 0] binds an ephemeral port; the
      bound port is returned. *)

  val stop : t -> unit
  (** Stop the listener and all streaming threads; joins them. *)
end

(** Replica side: catch up (snapshot or local recovery), tail the log,
    apply page effects, ack progress; serve read-only queries under
    {!Rw}; promote on demand. *)
module Replica : sig
  type t

  val create : dir:string -> primary:string -> unit -> t
  (** [primary] is ["HOST:PORT"]. Nothing touches the network until
      {!start}. [Invalid_argument] on a malformed address. *)

  val start : t -> unit
  (** Start the applier thread: recover the local directory (without
      checkpointing, preserving the byte-prefix), subscribe, apply,
      ack; reconnect with bounded backoff forever until {!stop} or
      {!promote}. *)

  val wait_synced : ?timeout_s:float -> t -> bool
  (** Block until the first catch-up completes (local state reflects
      some committed prefix of the primary). *)

  val with_read : t -> (unit -> 'a) -> 'a
  (** Run [f] under the read side of the replica's lock: the applier
      will not swap files or write pages while it runs. *)

  val dir : t -> string

  val generation : t -> int
  (** Bumped after every applied batch, snapshot swap, and promotion —
      workers rebuild their read-only environments when it moves. *)

  val applied_lsn : t -> int
  val epoch : t -> int
  val connected : t -> bool
  val promoted : t -> bool

  val lag_bytes : t -> int
  (** Primary's last advertised end minus the applied LSN. *)

  val stale_ms : t -> float
  (** Milliseconds since the replica last observed itself caught up
      (heartbeats refresh this every ~200 ms while connected and idle);
      [infinity] before the first catch-up, [0.0] after promotion. The
      daemon's max-staleness admission check compares against this. *)

  val fenced_rejects : t -> int
  (** Hellos/batches rejected for carrying an older epoch — evidence a
      stale primary tried to feed this (possibly promoted) replica. *)

  val snapshots : t -> int
  (** Full snapshot resyncs performed. *)

  val promote : t -> int
  (** Stop the applier, recover + checkpoint the local directory
      (truncating any torn tail), bump and commit the epoch; returns
      the new epoch. Idempotent. After this, the old primary is fenced:
      its frames carry a stale epoch and are rejected everywhere. The
      caller swaps in a {!Sender.create_for_dir} (or reopens writable)
      to serve as primary. *)

  val stop : t -> unit
  (** Stop the applier thread and close local handles. *)
end
