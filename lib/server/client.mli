(** A thin blocking client for {!Daemon} — used by [fsql --connect], the
    load and chaos benches, and the server tests.

    One query may be in flight per connection. {!query} blocks until the
    terminal frame; {!cancel} only writes and may be called from another
    thread while a {!query} is blocked on the same connection (writes are
    serialised by a mutex; the cancelled query still receives its
    terminal [Cancelled] frame through the blocked {!query}). *)

type t

type row = { values : string list; degree : float }
(** One answer tuple: printed attribute values and the membership degree,
    bit-identical to the degree the server computed (it travels as
    IEEE-754 bits). *)

type reply =
  | Answer of { columns : string list; rows : row list; server_elapsed_s : float }
  | Failed of string  (** parse / semantic / fatal execution error *)
  | Retryable of string
      (** transient server-side fault; resubmitting may succeed *)
  | Overloaded  (** admission queue full or circuit breaker open *)
  | Rejected of { code : string; diagnostics : string }
      (** the admission-time static analyzer found errors; never retried
          (resubmitting the same text cannot succeed). [code] is the
          primary [FSQL0xx] code, [diagnostics] the rendered report *)
  | Cancelled of string  (** deadline exceeded or explicit cancel *)

exception Connect_timeout
(** {!connect}'s [?timeout_ms] deadline passed without the connection
    completing. *)

val connect : ?host:string -> ?timeout_ms:int -> port:int -> unit -> t
(** Default host ["127.0.0.1"]. Raises [Unix.Unix_error] on failure.
    With [?timeout_ms > 0] the connect is non-blocking and bounded:
    an unreachable or blackholed host raises {!Connect_timeout} after
    the deadline instead of hanging for the kernel's SYN-retry budget
    (minutes). Ignores SIGPIPE process-wide so a vanished server
    surfaces as {!Wire.Connection_closed} instead of killing the
    process. *)

val of_addr : ?timeout_ms:int -> string -> t
(** ["HOST:PORT"]. [Invalid_argument] on a malformed address. *)

val query :
  ?deadline_ms:int -> ?domains:int -> ?retry:Retry.policy -> t -> string ->
  reply
(** Send one statement and block for the full reply. [deadline_ms = 0]
    (default) defers to the server's default deadline, if any;
    [domains = 0] (default) defers to the server's configured per-query
    parallelism. With [?retry], a terminal [Overloaded] or [Retryable]
    reply is retried with exponential backoff + jitter, up to
    [max_attempts] total attempts — safe because queries are read-only;
    the last reply is returned if every attempt is shed. Raises
    {!Wire.Connection_closed} if the server goes away mid-reply,
    {!Wire.Protocol_error} on a malformed stream. *)

val last_request_id : t -> string
(** The request ID sent with the most recent {!query} attempt on this
    connection ([""] before the first). Every attempt gets a fresh ID, so
    after a retried query this is the ID of the attempt whose reply was
    returned — print it next to errors and feed it to {!trace_json}. *)

val cancel : t -> unit
(** Ask the server to cancel this connection's in-flight query. No-op
    (server-side) when none is running. *)

val metrics_json : t -> string
(** Fetch the server's metrics registry as JSON. Do not call concurrently
    with {!query} on the same connection. *)

val trace_json : t -> string -> string option
(** Fetch the Chrome trace of one completed request by its request ID;
    [None] once it has left the server's bounded ring. Same concurrency
    rule as {!metrics_json}. *)

val top_text : t -> string
(** Fetch the server-rendered [\top] snapshot (windowed qps/p50/p99/max,
    gauges, lifetime counters). Same concurrency rule as
    {!metrics_json}. *)

val promote : t -> (int, string) result
(** Ask a replica daemon to promote itself to primary; returns the new
    replication epoch. [Error _] when the peer is not a replica. Same
    concurrency rule as {!metrics_json}. *)

val fd : t -> Unix.file_descr
(** The underlying socket — the replication applier drives its
    subscribe connection's frames directly. *)

val close : t -> unit
(** Close the socket; idempotent. *)
