type t = {
  lock : Mutex.t;
  outcomes : bool array;
  threshold : float;
  min_samples : int;
  cooldown_s : float;
  mutable filled : int;
  mutable idx : int;
  mutable failures : int;
  mutable open_until : float;
  mutable opened : int;
}

let create ?(window = 32) ?(threshold = 0.5) ?(min_samples = 8)
    ?(cooldown_s = 1.0) () =
  if window < 1 then invalid_arg "Breaker.create: window";
  if min_samples < 1 then invalid_arg "Breaker.create: min_samples";
  {
    lock = Mutex.create ();
    outcomes = Array.make window true;
    threshold;
    min_samples;
    cooldown_s;
    filled = 0;
    idx = 0;
    failures = 0;
    open_until = 0.0;
    opened = 0;
  }

let with_lock t fn =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) fn

let allow t ~now = with_lock t (fun () -> now >= t.open_until)
let is_open t ~now = not (allow t ~now)
let opened_count t = with_lock t (fun () -> t.opened)

let failure_rate t =
  with_lock t (fun () ->
      if t.filled = 0 then 0.0
      else float_of_int t.failures /. float_of_int t.filled)

let record t ~now ~ok =
  with_lock t (fun () ->
      let window = Array.length t.outcomes in
      if t.filled = window then begin
        if not t.outcomes.(t.idx) then t.failures <- t.failures - 1
      end
      else t.filled <- t.filled + 1;
      t.outcomes.(t.idx) <- ok;
      if not ok then t.failures <- t.failures + 1;
      t.idx <- (t.idx + 1) mod window;
      if
        now >= t.open_until
        && t.filled >= t.min_samples
        && float_of_int t.failures /. float_of_int t.filled >= t.threshold
      then begin
        t.open_until <- now +. t.cooldown_s;
        t.opened <- t.opened + 1;
        (* Start the post-cooldown judgement from a clean window rather
           than re-tripping on the burst that opened the breaker. *)
        t.filled <- 0;
        t.idx <- 0;
        t.failures <- 0;
        `Opened
      end
      else `Stayed)
