open Relational
module Cancel = Storage.Cancel
module Trace = Storage.Trace
module Metrics = Storage.Metrics

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  lock : Mutex.t;  (** guards [oc] writes and the mutable fields *)
  mutable busy : bool;  (** a query admitted, terminal frame pending *)
  mutable current : Cancel.t option;
  mutable alive : bool;  (** false once the peer is gone: writes no-op *)
}

type job = {
  sql : string;
  job_domains : int;
  cancel : Cancel.t;
  enqueued_at : float;
  trace : Trace.t;
      (** created at admission so its time origin covers the queue wait;
          handed off through the queue's mutex (single-threaded use) *)
  conn : conn;
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  host : string;
  n_workers : int;
  query_domains : int;
  default_deadline_ms : int option;
  mem_pages : int;
  terms : Fuzzy.Term.t;
  setup : Storage.Env.t -> Catalog.t -> unit;
  on_trace : (Trace.t -> unit) option;
  queue : job Bounded_queue.t;
  metrics : Metrics.t;
  mlock : Mutex.t;  (** the registry is single-threaded; workers share it *)
  pool : Storage.Task_pool.t;
  mutable draining : bool;
  mutable runner : Thread.t option;
  mutable acceptor : Thread.t option;
  conns : (conn * Thread.t) list ref;
  conns_lock : Mutex.t;
}

let port t = t.bound_port
let workers t = t.n_workers
let queue_length t = Bounded_queue.length t.queue

let count ?(by = 1) t name =
  with_lock t.mlock (fun () -> Metrics.incr ~by (Metrics.counter t.metrics name))

let observe t name v =
  with_lock t.mlock (fun () -> Metrics.observe (Metrics.histogram t.metrics name) v)

let counter_value t name =
  with_lock t.mlock (fun () -> Metrics.counter_value (Metrics.counter t.metrics name))

let metrics_json t = with_lock t.mlock (fun () -> Metrics.to_json t.metrics)

(* Frame writes are serialised per connection and silently dropped once
   the peer is gone — a disconnected client must not take its worker down
   (SIGPIPE is ignored at [start]; the resulting EPIPE surfaces here as a
   [Sys_error]). *)
let send conn reply =
  with_lock conn.lock (fun () ->
      if conn.alive then
        try Wire.write_reply conn.oc reply
        with Sys_error _ | Unix.Unix_error _ -> conn.alive <- false)

(* ------------------------------------------------------------------ *)
(* Worker side *)

(* The terminal frame of a request must be written in the same critical
   section that clears [busy]: a prompt client pipelines its next query
   right after reading the terminal frame, and if [busy] were cleared
   after the write the connection thread could reject that query as
   still-in-flight. *)
let send_terminal conn reply =
  with_lock conn.lock (fun () ->
      conn.busy <- false;
      conn.current <- None;
      if conn.alive then
        try Wire.write_reply conn.oc reply
        with Sys_error _ | Unix.Unix_error _ -> conn.alive <- false)

let stream_answer conn answer ~elapsed_s =
  let schema = Relation.schema answer in
  let cols = Array.to_list (Array.map fst (Schema.attrs schema)) in
  let arity = Schema.arity schema in
  send conn (Wire.Header cols);
  let rows = ref 0 in
  Relation.iter answer (fun tup ->
      incr rows;
      send conn
        (Wire.Row
           {
             degree_bits = Int64.bits_of_float (Ftuple.degree tup);
             values =
               List.init arity (fun i -> Value.to_string (Ftuple.value tup i));
           }));
  send_terminal conn (Wire.Done { rows = !rows; elapsed_s })

let handle_job t ~env ~catalog job =
  let dequeued = Unix.gettimeofday () in
  let tr = Some job.trace in
  let outcome =
    try
      Trace.with_span tr "request" (fun () ->
          Trace.add_timed_span tr "queue-wait" ~start_s:job.enqueued_at
            ~dur_s:(dequeued -. job.enqueued_at);
          Cancel.raise_if_cancelled job.cancel;
          let q =
            Trace.with_span tr "plan" (fun () ->
                Fuzzysql.Analyzer.bind_string ~catalog ~terms:t.terms job.sql)
          in
          let stats = env.Storage.Env.stats in
          let answer =
            Trace.with_span tr ~stats "exec" (fun () ->
                Unnest.Planner.run ~mem_pages:t.mem_pages
                  ~domains:job.job_domains ~trace:job.trace ~cancel:job.cancel
                  q)
          in
          let elapsed_s = Unix.gettimeofday () -. job.enqueued_at in
          stream_answer job.conn answer ~elapsed_s;
          Relation.destroy answer;
          `Ok)
    with
    | Cancel.Cancelled reason -> `Cancelled reason
    | Fuzzysql.Parser.Error m -> `Error ("parse error: " ^ m)
    | Fuzzysql.Lexer.Error (m, pos) ->
        `Error (Printf.sprintf "lex error at offset %d: %s" pos m)
    | Fuzzysql.Analyzer.Error m -> `Error ("semantic error: " ^ m)
    | Unnest.Planner.Unsupported m -> `Error ("unsupported: " ^ m)
    | e -> `Error ("internal error: " ^ Printexc.to_string e)
  in
  (match outcome with
  | `Ok -> count t "requests_completed"
  | `Cancelled reason ->
      send_terminal job.conn (Wire.Cancelled reason);
      count t "requests_cancelled"
  | `Error m ->
      send_terminal job.conn (Wire.Error m);
      count t "requests_failed");
  let now = Unix.gettimeofday () in
  observe t "queue_wait_s" (dequeued -. job.enqueued_at);
  observe t "exec_s" (now -. dequeued);
  observe t "latency_s" (now -. job.enqueued_at);
  match t.on_trace with Some f -> f job.trace | None -> ()

let worker_loop t () =
  (* Shared-nothing: a private environment and catalog per worker domain
     (the storage layer is single-threaded by design). *)
  let env = Storage.Env.create ~pool_pages:t.mem_pages () in
  let catalog = Catalog.create env in
  t.setup env catalog;
  let rec loop () =
    match Bounded_queue.pop t.queue with
    | None -> ()
    | Some job ->
        handle_job t ~env ~catalog job;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection side *)

let admit t conn ~deadline_ms ~domains sql =
  let now = Unix.gettimeofday () in
  let deadline_ms =
    if deadline_ms > 0 then Some deadline_ms else t.default_deadline_ms
  in
  let cancel =
    match deadline_ms with
    | Some ms -> Cancel.create ~deadline:(now +. (float_of_int ms /. 1000.0)) ()
    | None -> Cancel.create ()
  in
  let job =
    {
      sql;
      job_domains = (if domains >= 1 then domains else t.query_domains);
      cancel;
      enqueued_at = now;
      trace = Trace.create ();
      conn;
    }
  in
  let verdict =
    with_lock conn.lock (fun () ->
        if conn.busy then `Busy
        else if t.draining then `Draining
        else if Bounded_queue.try_push t.queue job then begin
          conn.busy <- true;
          conn.current <- Some cancel;
          `Accepted
        end
        else `Full)
  in
  match verdict with
  | `Accepted -> count t "requests_accepted"
  | `Full ->
      count t "requests_rejected_overload";
      send conn Wire.Overloaded
  | `Busy ->
      send conn (Wire.Error "a query is already in flight on this connection")
  | `Draining -> send conn (Wire.Error "server is shutting down")

let conn_loop t conn =
  (try
     let rec loop () =
       (match Wire.read_request conn.ic with
       | Wire.Query { deadline_ms; domains; sql } ->
           admit t conn ~deadline_ms ~domains sql
       | Wire.Cancel -> (
           match with_lock conn.lock (fun () -> conn.current) with
           | Some c -> Cancel.cancel ~reason:"cancelled by client" c
           | None -> ())
       | Wire.Metrics -> send conn (Wire.Metrics_json (metrics_json t)));
       loop ()
     in
     loop ()
   with End_of_file | Sys_error _ | Unix.Unix_error _ | Wire.Protocol_error _
   -> ());
  (* Peer gone (or the daemon shut the socket down): cancel any in-flight
     query so its worker frees up, wait for the terminal no-op send, and
     only then close the descriptor — closing while a worker still writes
     would race the fd number. *)
  with_lock conn.lock (fun () ->
      conn.alive <- false;
      match conn.current with
      | Some c -> Cancel.cancel ~reason:"client disconnected" c
      | None -> ());
  while with_lock conn.lock (fun () -> conn.busy) do
    Thread.yield ();
    Thread.delay 0.002
  done;
  close_out_noerr conn.oc;
  close_in_noerr conn.ic

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
        if t.draining then () else loop ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | fd, _addr ->
        if t.draining then Unix.close fd (* the stop wake-up; exit *)
        else begin
          let conn =
            {
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
              lock = Mutex.create ();
              busy = false;
              current = None;
              alive = true;
            }
          in
          let th = Thread.create (conn_loop t) conn in
          with_lock t.conns_lock (fun () -> t.conns := (conn, th) :: !(t.conns));
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg ("Daemon.start: unknown host " ^ host))

let start ?(host = "127.0.0.1") ?(port = 0) ?(workers = 2)
    ?(queue_capacity = 16) ?default_deadline_ms ?(domains = 1)
    ?(mem_pages = Unnest.Planner.default_mem_pages)
    ?(terms = Fuzzy.Term.paper) ?on_trace ~setup () =
  if workers < 1 then invalid_arg "Daemon.start: workers < 1";
  if domains < 1 then invalid_arg "Daemon.start: domains < 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (resolve host, port));
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      listen_fd;
      bound_port;
      host;
      n_workers = workers;
      query_domains = domains;
      default_deadline_ms;
      mem_pages;
      terms;
      setup;
      on_trace;
      queue = Bounded_queue.create ~capacity:queue_capacity;
      metrics = Metrics.create ();
      mlock = Mutex.create ();
      pool = Storage.Task_pool.create ~domains:workers;
      draining = false;
      runner = None;
      acceptor = None;
      conns = ref [];
      conns_lock = Mutex.create ();
    }
  in
  (* The worker pool: [workers] long-running jobs on the task pool. The
     dispatcher thread is the pool's coordinator (it runs job 0 itself),
     so a 1-worker server spawns no domain at all. *)
  t.runner <-
    Some
      (Thread.create
         (fun () ->
           ignore
             (Storage.Task_pool.run_list t.pool
                (List.init workers (fun _ -> worker_loop t))))
         ());
  t.acceptor <- Some (Thread.create accept_loop t);
  t

let stop t =
  if not t.draining then begin
    t.draining <- true;
    (* Wake the accept thread with a throw-away connection. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.bound_port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (* Drain: admitted jobs are still popped and answered; then the
       workers see [None] and exit, and the dispatcher joins. *)
    Bounded_queue.close t.queue;
    Option.iter Thread.join t.runner;
    t.runner <- None;
    Storage.Task_pool.shutdown t.pool;
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Unblock every connection reader and join the threads (each closes
       its own descriptor on the way out). *)
    let conns = with_lock t.conns_lock (fun () -> !(t.conns)) in
    List.iter
      (fun (conn, _) ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns
  end
