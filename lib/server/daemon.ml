open Relational
module Cancel = Storage.Cancel
module Trace = Storage.Trace
module Metrics = Storage.Metrics
module Fault = Storage.Fault

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

type conn = {
  fd : Unix.file_descr;
  lock : Mutex.t;  (** guards [fd] writes and the mutable fields *)
  mutable busy : bool;  (** a query admitted, terminal frame pending *)
  mutable current : Cancel.t option;
  mutable alive : bool;  (** false once the peer is gone: writes no-op *)
}

type job = {
  request_id : string;
      (** client-generated, or server-assigned ([srv-] prefix) for rev-1
          clients — every span tree in the trace ring has exactly one *)
  sql : string;
  job_domains : int;
  cancel : Cancel.t;
  enqueued_at : float;
  trace : Trace.t;
      (** created at admission so its time origin covers the queue wait;
          handed off through the queue's mutex (single-threaded use) *)
  conn : conn;
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  host : string;
  n_workers : int;
  query_domains : int;
  query_batch : bool;
  default_deadline_ms : int option;
  mem_pages : int;
  terms : Fuzzy.Term.t;
  make_env : unit -> Storage.Env.t;
      (** storage factory for worker and admission environments; the
          default builds simulated envs, [fsqld --data-dir] passes
          read-only durable opens of a recovered directory *)
  setup : Storage.Env.t -> Catalog.t -> unit;
  check : Fuzzysql.Check.ctx;
      (** admission-side static analysis context, over a private
          env + catalog built once at [start] with [setup] *)
  check_lock : Mutex.t;
      (** the admission catalog's storage is single-threaded; connection
          threads take this around every static check *)
  on_trace : (Trace.t -> unit) option;
  queue : job Bounded_queue.t;
  metrics : Metrics.t;
  mlock : Mutex.t;  (** the registry is single-threaded; workers share it *)
  trace_ring : Telemetry.Ring.t;
  query_log : Telemetry.Query_log.t option;
  id_rng : Random.State.t;  (** server-assigned request IDs; under mlock *)
  inflight : int ref;  (** jobs between dequeue and terminal; under mlock *)
  pool : Storage.Task_pool.t;
  retry : Retry.policy;
  breaker : Breaker.t;
  fault_spec : Fault.spec option;
  fault_seed : int;
  replica : Replication.Replica.t option;
      (** replica mode: workers serve read-only under the replica's lock
          and rebuild their environments as batches apply *)
  max_staleness_ms : int option;
      (** replica mode: admission rejects (retryably) when the applied
          state is staler than this *)
  mutable sender : Replication.Sender.t option;
      (** primary mode (or a promoted replica): serves [Rep_subscribe] *)
  promote_lock : Mutex.t;
  mutable draining : bool;
  mutable http : Telemetry.Http.t option;
  mutable runner : Thread.t option;
  mutable acceptor : Thread.t option;
  conns : (conn * Thread.t) list ref;
  conns_lock : Mutex.t;
}

let port t = t.bound_port
let workers t = t.n_workers
let queue_length t = Bounded_queue.length t.queue

let count ?(by = 1) t name =
  with_lock t.mlock (fun () -> Metrics.incr ~by (Metrics.counter t.metrics name))

let observe t name v =
  with_lock t.mlock (fun () -> Metrics.observe (Metrics.histogram t.metrics name) v)

let counter_value t name =
  with_lock t.mlock (fun () -> Metrics.counter_value (Metrics.counter t.metrics name))

let observe_window t name v =
  let now = Unix.gettimeofday () in
  with_lock t.mlock (fun () ->
      Metrics.observe_window (Metrics.window_histogram t.metrics name) ~now v)

(* Gauges are point-in-time: refresh them at every snapshot (metrics
   dump, Prometheus scrape, \top) rather than on every state change. Call
   under [mlock]. *)
let refresh_gauges t =
  let now = Unix.gettimeofday () in
  Metrics.set_gauge
    (Metrics.gauge t.metrics "queue_depth")
    (float_of_int (Bounded_queue.length t.queue));
  Metrics.set_gauge
    (Metrics.gauge t.metrics "busy_workers")
    (float_of_int !(t.inflight));
  Metrics.set_gauge
    (Metrics.gauge t.metrics "breaker_open")
    (if Breaker.is_open t.breaker ~now then 1.0 else 0.0);
  let g name v = Metrics.set_gauge (Metrics.gauge t.metrics name) v in
  (match t.replica with
  | Some r ->
      let lag = float_of_int (Replication.Replica.lag_bytes r) in
      g "replication_epoch" (float_of_int (Replication.Replica.epoch r));
      g "replica_connected" (if Replication.Replica.connected r then 1.0 else 0.0);
      g "replication_lag_bytes" lag;
      (* LSNs are byte offsets into the shipped log, so LSN lag and byte
         lag coincide; both names are exposed for dashboards. *)
      g "replication_lag_lsn" lag;
      g "replication_applied_lsn"
        (float_of_int (Replication.Replica.applied_lsn r));
      g "replication_staleness_ms"
        (let s = Replication.Replica.stale_ms r in
         if Float.is_finite s then s else -1.0);
      g "replication_fenced_rejects"
        (float_of_int (Replication.Replica.fenced_rejects r))
  | None -> ());
  match t.sender with
  | Some s ->
      let lag = float_of_int (Replication.Sender.lag_bytes s) in
      g "replication_epoch" (float_of_int (Replication.Sender.epoch s));
      g "replication_subscribers"
        (float_of_int (Replication.Sender.connected s));
      g "replication_lag_bytes" lag;
      g "replication_lag_lsn" lag;
      g "replication_fenced" (float_of_int (Replication.Sender.fenced s));
      if Option.is_none t.replica then
        g "replica_connected" (float_of_int (Replication.Sender.connected s))
  | None -> ()

let metrics_json t =
  with_lock t.mlock (fun () ->
      refresh_gauges t;
      Metrics.to_json t.metrics)

let top_text t =
  let now = Unix.gettimeofday () in
  with_lock t.mlock (fun () ->
      refresh_gauges t;
      Telemetry.render_top t.metrics ~now)

let prometheus_text t =
  let now = Unix.gettimeofday () in
  with_lock t.mlock (fun () ->
      refresh_gauges t;
      Telemetry.render_prometheus t.metrics ~now)

let trace_json t id = Telemetry.Ring.find t.trace_ring id
let trace_ring t = t.trace_ring
let query_log_written t = Option.map Telemetry.Query_log.written t.query_log
let metrics_port t = Option.map Telemetry.Http.port t.http
let sender t = t.sender

let reopen_query_log t =
  Option.iter Telemetry.Query_log.reopen t.query_log

let healthz_json t =
  let now = Unix.gettimeofday () in
  let open_ = Breaker.is_open t.breaker ~now in
  let depth = Bounded_queue.length t.queue in
  let busy = with_lock t.mlock (fun () -> !(t.inflight)) in
  let ok = (not open_) && not t.draining in
  ( ok,
    Printf.sprintf
      "{\"status\":\"%s\",\"breaker_open\":%b,\"queue_depth\":%d,\
       \"busy_workers\":%d,\"draining\":%b}"
      (if ok then "ok" else "unavailable")
      open_ depth busy t.draining )

(* Frame writes are serialised per connection and silently dropped once
   the peer is gone — a disconnected client must not take its worker down
   (SIGPIPE is ignored at [start]; [Wire] surfaces the peer vanishing as
   [Connection_closed]). *)
let send conn reply =
  with_lock conn.lock (fun () ->
      if conn.alive then
        try Wire.write_reply conn.fd reply
        with Wire.Connection_closed | Unix.Unix_error _ -> conn.alive <- false)

(* ------------------------------------------------------------------ *)
(* Worker side *)

(* The terminal frame of a request must be written in the same critical
   section that clears [busy]: a prompt client pipelines its next query
   right after reading the terminal frame, and if [busy] were cleared
   after the write the connection thread could reject that query as
   still-in-flight. *)
let send_terminal conn reply =
  with_lock conn.lock (fun () ->
      conn.busy <- false;
      conn.current <- None;
      if conn.alive then
        try Wire.write_reply conn.fd reply
        with Wire.Connection_closed | Unix.Unix_error _ -> conn.alive <- false)

(* Materialise the answer into wire rows. This reads relation pages
   through the buffer pool, so under fault injection it can fault — which
   is exactly why it runs inside the retried attempt, before any frame is
   sent: a retry must never follow a half-streamed answer. *)
let collect_answer answer =
  let schema = Relation.schema answer in
  let cols = Array.to_list (Array.map fst (Schema.attrs schema)) in
  let arity = Schema.arity schema in
  let rows = ref [] in
  Relation.iter answer (fun tup ->
      rows :=
        ( Int64.bits_of_float (Ftuple.degree tup),
          List.init arity (fun i -> Value.to_string (Ftuple.value tup i)) )
        :: !rows);
  (cols, List.rev !rows)

let feed_breaker t ~ok =
  match Breaker.record t.breaker ~now:(Unix.gettimeofday ()) ~ok with
  | `Opened -> count t "breaker_opened"
  | `Stayed -> ()

(* One admitted query: plan + execute + collect under the retry loop,
   then stream the collected rows. Returns [true] when the worker's
   environment must be respawned (a fatal fault or an unclassified
   exception left it suspect). *)
(* "deadline exceeded" is set by [Storage.Cancel]'s deadline check;
   "cancelled by client" / "client disconnected" by the connection side.
   The split keeps the books honest: a latency SLO breach and a user
   pressing ^C are different operational signals. *)
let deadline_reason reason =
  let sub = "deadline" and n = String.length reason in
  let m = String.length sub in
  let rec go i = i + m <= n && (String.sub reason i m = sub || go (i + 1)) in
  go 0

exception Invalid_query of string
(** rendered diagnostics; raised inside an attempt by the worker-side
    backstop check (admission normally rejects these queries first) *)

let handle_job t ~env ~check ~plane ~rng job =
  let dequeued = Unix.gettimeofday () in
  let tr = Some job.trace in
  let faults_before = match plane with Some p -> Fault.injected p | None -> 0 in
  let stats = env.Storage.Env.stats in
  let reads0 = Storage.Iostats.page_reads stats in
  let writes0 = Storage.Iostats.page_writes stats in
  let cmps0 = Storage.Iostats.comparisons stats in
  let fops0 = Storage.Iostats.fuzzy_ops stats in
  let retries_used = ref 0 in
  let attempt () =
    Cancel.raise_if_cancelled job.cancel;
    let q =
      Trace.with_span tr "plan" (fun () ->
          (* The same static analysis that guards admission, against this
             worker's private catalog. Statically-invalid queries normally
             never get here; when one does (or the exception backstops
             below fire), the reply renders the full diagnostics. *)
          match Fuzzysql.Check.check_string check job.sql with
          | Some q, _ -> q
          | None, diags ->
              let prefix =
                match Fuzzysql.Diagnostic.errors diags with
                | { Fuzzysql.Diagnostic.code = "FSQL001"; _ } :: _ ->
                    "lex error"
                | { Fuzzysql.Diagnostic.code = "FSQL002"; _ } :: _ ->
                    "parse error"
                | _ -> "semantic error"
              in
              raise
                (Invalid_query
                   (prefix ^ ":\n"
                   ^ Fuzzysql.Diagnostic.render_all ~source:job.sql diags)))
    in
    let stats = env.Storage.Env.stats in
    Trace.with_span tr ~stats "exec" (fun () ->
        let answer =
          Unnest.Planner.run ~mem_pages:t.mem_pages ~domains:job.job_domains
            ~batch:t.query_batch ~trace:job.trace ~cancel:job.cancel q
        in
        Fun.protect
          ~finally:(fun () -> Relation.destroy answer)
          (fun () -> collect_answer answer))
  in
  let rec attempts n =
    match attempt () with
    | v -> `Ok v
    | exception Cancel.Cancelled reason -> `Cancelled reason
    | exception Invalid_query m -> `Bad_query m
    | exception Fuzzysql.Parser.Error m -> `Bad_query ("parse error: " ^ m)
    | exception Fuzzysql.Lexer.Error (m, pos) ->
        `Bad_query (Printf.sprintf "lex error at offset %d: %s" pos m)
    | exception Fuzzysql.Analyzer.Error m -> `Bad_query ("semantic error: " ^ m)
    | exception Unnest.Planner.Unsupported m -> `Bad_query ("unsupported: " ^ m)
    | exception (Fault.Injected { severity = Fault.Transient; _ } as e) ->
        let m = Printexc.to_string e in
        Trace.add_timed_span tr ("fault " ^ m) ~start_s:(Unix.gettimeofday ())
          ~dur_s:0.0;
        if n >= t.retry.Retry.max_attempts then
          `Gave_up ("transient fault, retries exhausted: " ^ m)
        else begin
          let delay = Retry.delay_for t.retry ~rng ~attempt:n in
          let now = Unix.gettimeofday () in
          let budget_ok =
            (* A retry must never start when the remaining deadline budget
               is smaller than the backoff sleep. *)
            match Cancel.deadline job.cancel with
            | Some d -> now +. delay <= d
            | None -> true
          in
          if not budget_ok then
            `Gave_up ("transient fault, no deadline budget left to retry: " ^ m)
          else begin
            count t "retries";
            incr retries_used;
            observe t "retry_backoff_s" delay;
            Trace.add_timed_span tr "retry-backoff" ~start_s:now ~dur_s:delay;
            match Retry.sleep ~cancel:job.cancel delay with
            | `Cancelled -> `Cancelled (Cancel.reason job.cancel)
            | `Slept -> attempts (n + 1)
          end
        end
    | exception (Fault.Injected { severity = Fault.Fatal; _ } as e) ->
        `Fatal ("fatal storage fault: " ^ Printexc.to_string e)
    | exception e ->
        (* Typed storage errors (Sim_disk.Bad_page, Write_size,
           Buffer_pool.All_frames_pinned) and anything unclassified: the
           environment is suspect, answer and respawn. *)
        `Fatal ("internal error: " ^ Printexc.to_string e)
  in
  let respawn = ref false in
  let outcome = ref "ok" in
  let answer_rows = ref 0 in
  (* ALL bookkeeping — counters, breaker, histograms, trace ring, query
     log — lands before the terminal frame goes out (the one exception:
     [inflight], decremented by the caller). A client that reads its
     reply and immediately scrapes /metrics, fetches the trace, or tails
     the log must see this request already booked. *)
  let terminal = ref None in
  Trace.with_span tr "request" (fun () ->
      Trace.add_timed_span tr "queue-wait" ~start_s:job.enqueued_at
        ~dur_s:(dequeued -. job.enqueued_at);
      match attempts 1 with
      | `Ok (cols, rows) ->
          send job.conn (Wire.Header cols);
          List.iter
            (fun (degree_bits, values) ->
              send job.conn (Wire.Row { degree_bits; values }))
            rows;
          let elapsed_s = Unix.gettimeofday () -. job.enqueued_at in
          answer_rows := List.length rows;
          count t "requests_completed";
          feed_breaker t ~ok:true;
          terminal := Some (Wire.Done { rows = List.length rows; elapsed_s })
      | `Cancelled reason ->
          (* The aggregate stays (the books-balance identity and existing
             dashboards read it); the split attributes it. *)
          count t "requests_cancelled";
          if deadline_reason reason then begin
            count t "requests_cancelled_deadline";
            outcome := "cancelled_deadline"
          end
          else begin
            count t "requests_cancelled_client";
            outcome := "cancelled_client"
          end;
          terminal := Some (Wire.Cancelled reason)
      | `Bad_query m ->
          (* The client's mistake, not server health: keep it out of the
             breaker's error budget. *)
          count t "requests_failed";
          outcome := "error";
          terminal := Some (Wire.Error m)
      | `Gave_up m ->
          count t "requests_failed_transient";
          outcome := "failed_transient";
          feed_breaker t ~ok:false;
          terminal := Some (Wire.Retryable m)
      | `Fatal m ->
          count t "requests_failed";
          outcome := "error";
          feed_breaker t ~ok:false;
          respawn := true;
          terminal := Some (Wire.Error m));
  (match plane with
  | Some p ->
      let d = Fault.injected p - faults_before in
      if d > 0 then count ~by:d t "faults_injected"
  | None -> ());
  let now = Unix.gettimeofday () in
  let queue_wait_s = dequeued -. job.enqueued_at in
  let exec_s = now -. dequeued in
  observe t "queue_wait_s" queue_wait_s;
  observe t "exec_s" exec_s;
  observe t "latency_s" (now -. job.enqueued_at);
  observe_window t "queue_wait_s" queue_wait_s;
  observe_window t "exec_s" exec_s;
  observe_window t "latency_s" (now -. job.enqueued_at);
  (match t.on_trace with Some f -> f job.trace | None -> ());
  Telemetry.Ring.add t.trace_ring ~id:job.request_id
    ~json:(Trace.to_chrome_json job.trace);
  (match t.query_log with
  | Some log ->
      Telemetry.Query_log.log log
        {
          Telemetry.Query_log.ts = now;
          request_id = job.request_id;
          shape = Telemetry.normalize_sql job.sql;
          engine = (if t.query_batch then "batch" else "scalar");
          queue_wait_s;
          exec_s;
          page_reads = Storage.Iostats.page_reads stats - reads0;
          page_writes = Storage.Iostats.page_writes stats - writes0;
          comparisons = Storage.Iostats.comparisons stats - cmps0;
          fuzzy_ops = Storage.Iostats.fuzzy_ops stats - fops0;
          rows = !answer_rows;
          retries = !retries_used;
          outcome = !outcome;
        }
  | None -> ());
  (match !terminal with
  | Some reply -> send_terminal job.conn reply
  | None -> ());
  !respawn

let worker_loop t widx () =
  (* Shared-nothing: a private environment and catalog per worker domain
     (the storage layer is single-threaded by design). The fault plane is
     attached only after [setup] has loaded the catalog, so data loading
     itself never faults; each worker's plane gets its own seed stream. *)
  let build () =
    let env = t.make_env () in
    let catalog = Catalog.create env in
    t.setup env catalog;
    (* The static-analysis context scans every relation once; built before
       the fault plane attaches, so the scan itself never faults. *)
    let check = Fuzzysql.Check.ctx ~catalog ~terms:t.terms in
    let plane =
      Option.map
        (fun spec -> Fault.create ~seed:(t.fault_seed + widx) spec)
        t.fault_spec
    in
    Storage.Env.set_fault env plane;
    (env, check, plane)
  in
  let rng = Random.State.make [| 0xB0FF; t.fault_seed; widx |] in
  let state = ref (build ()) in
  let gen =
    ref (match t.replica with
        | Some r -> Replication.Replica.generation r
        | None -> 0)
  in
  (* In replica mode a query runs under the read side of the replica's
     lock, so the applier never swaps files or writes pages mid-query;
     when the apply generation has moved, the worker first rebuilds its
     environment (closing the old one — its fds point at applied-over or
     renamed-away files). *)
  let run_job job =
    match t.replica with
    | None ->
        let env, check, plane = !state in
        handle_job t ~env ~check ~plane ~rng job
    | Some r ->
        Replication.Replica.with_read r (fun () ->
            let g = Replication.Replica.generation r in
            if g <> !gen then begin
              let env, _, _ = !state in
              (try Storage.Env.close env with _ -> ());
              state := build ();
              gen := g
            end;
            let env, check, plane = !state in
            handle_job t ~env ~check ~plane ~rng job)
  in
  let rec loop () =
    match Bounded_queue.pop t.queue with
    | None -> ()
    | Some job ->
        with_lock t.mlock (fun () -> incr t.inflight);
        let finally () = with_lock t.mlock (fun () -> decr t.inflight) in
        let respawn =
          try Fun.protect ~finally (fun () -> run_job job)
          with e ->
            (* handle_job classifies everything; if it still raised (a
               poisoned query broke an invariant), answer the query and
               rebuild rather than letting the worker die. *)
            send_terminal job.conn
              (Wire.Error ("internal error: " ^ Printexc.to_string e));
            count t "requests_failed";
            feed_breaker t ~ok:false;
            true
        in
        if respawn then begin
          count t "workers_respawned";
          state := build ()
        end;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection side *)

(* A statically-invalid query never reaches the worker queue: the check
   runs on the connection thread against the admission catalog (built
   once at [start]), and the rejection is terminal and non-retryable —
   resubmitting the same text cannot succeed. Only Error-severity
   diagnostics reject; satisfiability warnings ride along in the
   rendered report of a rejected query but never reject on their own. *)
let static_reject t sql =
  let diags =
    with_lock t.check_lock (fun () ->
        snd (Fuzzysql.Check.check_string t.check sql))
  in
  match Fuzzysql.Diagnostic.errors diags with
  | [] -> None
  | { Fuzzysql.Diagnostic.code; _ } :: _ ->
      Some (code, Fuzzysql.Diagnostic.render_all ~source:sql diags)

let admit t conn ~request_id ~deadline_ms ~domains sql =
  let now = Unix.gettimeofday () in
  let request_id =
    (* Rev-1 clients send no ID; assign one so the trace ring and query
       log still have a handle for every request. The [srv-] prefix makes
       the provenance visible in the log. *)
    if request_id <> "" then request_id
    else
      "srv-" ^ with_lock t.mlock (fun () -> Telemetry.gen_request_id t.id_rng)
  in
  (* Cheap connection-state verdicts first; the static check (a parse
     plus catalog lookups) runs only for queries that could be admitted.
     [admit] is the only writer of [busy] and runs on the one connection
     thread, so the state cannot flip between these sections. *)
  let pre =
    with_lock conn.lock (fun () ->
        if conn.busy then `Busy else if t.draining then `Draining else `Go)
  in
  let pre =
    (* Replica-mode staleness admission: a replica that has fallen more
       than [max_staleness_ms] behind (or is still in its first catch-up)
       rejects retryably — clients with a retry policy ride it out, and a
       promoted replica never rejects. *)
    match (pre, t.replica, t.max_staleness_ms) with
    | `Go, Some r, Some max_ms when not (Replication.Replica.promoted r) ->
        let s = Replication.Replica.stale_ms r in
        if s > float_of_int max_ms then `Stale s else `Go
    | _ -> pre
  in
  match pre with
  | `Busy ->
      send conn (Wire.Error "a query is already in flight on this connection")
  | `Draining -> send conn (Wire.Error "server is shutting down")
  | `Stale s ->
      count t "requests_rejected_stale";
      send conn
        (Wire.Retryable
           (if Float.is_finite s then
              Printf.sprintf
                "replica is %.0f ms stale (max-staleness %d ms); retry" s
                (Option.value t.max_staleness_ms ~default:0)
            else "replica has not completed its first catch-up; retry"))
  | `Go -> (
      match static_reject t sql with
      | Some (code, diagnostics) ->
          count t "requests_rejected_static";
          (match t.query_log with
          | Some log ->
              Telemetry.Query_log.log log
                {
                  Telemetry.Query_log.ts = now;
                  request_id;
                  shape = Telemetry.normalize_sql sql;
                  engine = (if t.query_batch then "batch" else "scalar");
                  queue_wait_s = 0.;
                  exec_s = 0.;
                  page_reads = 0;
                  page_writes = 0;
                  comparisons = 0;
                  fuzzy_ops = 0;
                  rows = 0;
                  retries = 0;
                  outcome = "rejected_static";
                }
          | None -> ());
          send conn (Wire.Rejected { code; diagnostics })
      | None -> (
          let deadline_ms =
            if deadline_ms > 0 then Some deadline_ms else t.default_deadline_ms
          in
          let cancel =
            match deadline_ms with
            | Some ms ->
                Cancel.create ~deadline:(now +. (float_of_int ms /. 1000.0)) ()
            | None -> Cancel.create ()
          in
          let job =
            {
              request_id;
              sql;
              job_domains = (if domains >= 1 then domains else t.query_domains);
              cancel;
              enqueued_at = now;
              trace = Trace.create ();
              conn;
            }
          in
          let verdict =
            with_lock conn.lock (fun () ->
                if t.draining then `Draining
                else if not (Breaker.allow t.breaker ~now) then `Shed
                else if Bounded_queue.try_push t.queue job then begin
                  conn.busy <- true;
                  conn.current <- Some cancel;
                  `Accepted
                end
                else `Full)
          in
          match verdict with
          | `Accepted -> count t "requests_accepted"
          | `Full ->
              count t "requests_rejected_overload";
              send conn Wire.Overloaded
          | `Shed ->
              (* Error budget exhausted: shed before the queue, same reply
                 as a full queue so clients back off identically. *)
              count t "requests_shed_breaker";
              send conn Wire.Overloaded
          | `Draining -> send conn (Wire.Error "server is shutting down")))

(* A replication subscriber's stream is written by a sender thread; it
   must fail loudly (ending the stream) when the peer is gone, unlike
   [send] which drops silently on behalf of workers. *)
let rep_send conn reply =
  with_lock conn.lock (fun () ->
      if not conn.alive then raise Wire.Connection_closed;
      Wire.write_reply conn.fd reply)

(* Promotion is idempotent and serialised: bump the replica's epoch, then
   stand up a sender over the promoted directory so further replicas can
   chain off the new primary. *)
let promote t =
  match t.replica with
  | None -> Error "this server is not a replica"
  | Some r ->
      let epoch =
        with_lock t.promote_lock (fun () ->
            let e = Replication.Replica.promote r in
            (match t.sender with
            | None ->
                t.sender <-
                  Some
                    (Replication.Sender.create_for_dir
                       ~dir:(Replication.Replica.dir r))
            | Some _ -> ());
            e)
      in
      count t "promotions";
      Ok epoch

let conn_loop t conn =
  let rep_sub = ref None in
  (try
     let rec loop () =
       (match Wire.read_request conn.fd with
       | Wire.Query { request_id; deadline_ms; domains; sql } ->
           admit t conn ~request_id ~deadline_ms ~domains sql
       | Wire.Cancel -> (
           match with_lock conn.lock (fun () -> conn.current) with
           | Some c -> Cancel.cancel ~reason:"cancelled by client" c
           | None -> ())
       | Wire.Metrics -> send conn (Wire.Metrics_json (metrics_json t))
       | Wire.Trace_get id -> send conn (Wire.Trace_json (trace_json t id))
       | Wire.Top -> send conn (Wire.Top_text (top_text t))
       | Wire.Promote -> (
           match promote t with
           | Ok epoch -> send conn (Wire.Promoted { epoch })
           | Error m -> send conn (Wire.Error m))
       | Wire.Rep_subscribe { epoch; stream_id; from_lsn } -> (
           match t.sender with
           | None -> send conn (Wire.Error "replication is not enabled")
           | Some s ->
               rep_sub :=
                 Replication.Sender.serve s ~epoch ~stream_id ~from_lsn
                   ~send:(rep_send conn))
       | Wire.Rep_ack { epoch = _; applied_lsn } -> (
           match (t.sender, !rep_sub) with
           | Some s, Some id -> Replication.Sender.ack s ~id ~applied_lsn
           | _ -> ()));
       loop ()
     in
     loop ()
   with
  | Wire.Connection_closed | Unix.Unix_error _ | Wire.Protocol_error _ -> ());
  (match (t.sender, !rep_sub) with
  | Some s, Some id -> Replication.Sender.drop s ~id
  | _ -> ());
  (* Peer gone (or the daemon shut the socket down): cancel any in-flight
     query so its worker frees up, wait for the terminal no-op send, and
     only then close the descriptor — closing while a worker still writes
     would race the fd number. *)
  with_lock conn.lock (fun () ->
      conn.alive <- false;
      match conn.current with
      | Some c -> Cancel.cancel ~reason:"client disconnected" c
      | None -> ());
  while with_lock conn.lock (fun () -> conn.busy) do
    Thread.yield ();
    Thread.delay 0.002
  done;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* The accept thread must be unkillable short of [stop]: every transient
   accept(2) failure — a signal (EINTR), a connection that died in the
   backlog (ECONNABORTED), fd exhaustion (EMFILE/ENFILE) or a spurious
   wakeup (EAGAIN) — is counted and retried, with a bounded sleep when
   the failure is resource exhaustion so the retry doesn't spin while
   the situation persists. Anything else (EBADF after [stop] closes the
   socket, EINVAL) is terminal for the loop. *)
let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
        if t.draining then ()
        else begin
          count t "accept_errors";
          loop ()
        end
    | exception
        Unix.Unix_error ((EMFILE | ENFILE | EAGAIN | EWOULDBLOCK), _, _) ->
        if t.draining then ()
        else begin
          count t "accept_errors";
          Thread.delay 0.05;
          loop ()
        end
    | exception Unix.Unix_error (_, _, _) -> ()
    | fd, _addr ->
        if t.draining then Unix.close fd (* the stop wake-up; exit *)
        else begin
          let conn =
            { fd; lock = Mutex.create (); busy = false; current = None;
              alive = true }
          in
          let th = Thread.create (conn_loop t) conn in
          with_lock t.conns_lock (fun () -> t.conns := (conn, th) :: !(t.conns));
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> invalid_arg ("Daemon.start: unknown host " ^ host))

let start ?(host = "127.0.0.1") ?(port = 0) ?(workers = 2)
    ?(queue_capacity = 16) ?default_deadline_ms ?(domains = 1)
    ?(batch = false) ?(mem_pages = Unnest.Planner.default_mem_pages)
    ?(terms = Fuzzy.Term.paper) ?on_trace ?(retry = Retry.default) ?breaker
    ?fault_spec ?(fault_seed = 0) ?metrics_port ?query_log ?slow_ms
    ?(trace_ring_capacity = 64) ?make_env ?sender ?replica ?max_staleness_ms
    ~setup () =
  if workers < 1 then invalid_arg "Daemon.start: workers < 1";
  if domains < 1 then invalid_arg "Daemon.start: domains < 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (resolve host, port));
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (* The admission-side static-analysis context: a private environment
     loaded with the same [setup] the workers use, scanned once. No fault
     plane is ever attached to it — admission must stay deterministic. *)
  let make_env =
    match make_env with
    | Some f -> fun () -> f ~pool_pages:mem_pages
    | None -> fun () -> Storage.Env.create ~pool_pages:mem_pages ()
  in
  let build_check () =
    let env = make_env () in
    let catalog = Catalog.create env in
    setup env catalog;
    Fuzzysql.Check.ctx ~catalog ~terms
  in
  (* In replica mode the admission environment opens the files the
     applier is writing; take the read side so the open never races a
     batch apply or a snapshot swap. *)
  let check =
    match replica with
    | Some r -> Replication.Replica.with_read r build_check
    | None -> build_check ()
  in
  let t =
    {
      listen_fd;
      bound_port;
      host;
      n_workers = workers;
      query_domains = domains;
      query_batch = batch;
      default_deadline_ms;
      mem_pages;
      terms;
      make_env;
      setup;
      check;
      check_lock = Mutex.create ();
      on_trace;
      queue = Bounded_queue.create ~capacity:queue_capacity;
      metrics = Metrics.create ();
      mlock = Mutex.create ();
      trace_ring = Telemetry.Ring.create trace_ring_capacity;
      query_log =
        Option.map (fun path -> Telemetry.Query_log.create ?slow_ms path)
          query_log;
      id_rng = Random.State.make [| 0x5EED; fault_seed; bound_port |];
      inflight = ref 0;
      pool = Storage.Task_pool.create ~domains:workers;
      retry;
      breaker = (match breaker with Some b -> b | None -> Breaker.create ());
      fault_spec;
      fault_seed;
      replica;
      max_staleness_ms;
      sender;
      promote_lock = Mutex.create ();
      draining = false;
      http = None;
      runner = None;
      acceptor = None;
      conns = ref [];
      conns_lock = Mutex.create ();
    }
  in
  (* The worker pool: [workers] long-running jobs on the task pool. The
     dispatcher thread is the pool's coordinator (it runs job 0 itself),
     so a 1-worker server spawns no domain at all. *)
  t.runner <-
    Some
      (Thread.create
         (fun () ->
           ignore
             (Storage.Task_pool.run_list t.pool
                (List.init workers (fun i -> worker_loop t i))))
         ());
  t.acceptor <- Some (Thread.create accept_loop t);
  (match metrics_port with
  | None -> ()
  | Some mport ->
      let handler path =
        match path with
        | "/metrics" ->
            Some (200, "text/plain; version=0.0.4", prometheus_text t)
        | "/healthz" ->
            let ok, body = healthz_json t in
            Some ((if ok then 200 else 503), "application/json", body)
        | _ -> None
      in
      t.http <- Some (Telemetry.Http.start ~port:mport handler));
  t

let stop t =
  if not t.draining then begin
    t.draining <- true;
    (* Wake the accept thread with a throw-away connection. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.bound_port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (* Drain: admitted jobs are still popped and answered; then the
       workers see [None] and exit, and the dispatcher joins. *)
    Bounded_queue.close t.queue;
    Option.iter Thread.join t.runner;
    t.runner <- None;
    Storage.Task_pool.shutdown t.pool;
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Unblock every connection reader and join the threads (each closes
       its own descriptor on the way out). *)
    let conns = with_lock t.conns_lock (fun () -> !(t.conns)) in
    List.iter
      (fun (conn, _) ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    (* Telemetry last: the final requests' log records and traces land
       before the log closes and the scrape endpoint disappears. *)
    (match t.http with
    | Some h ->
        Telemetry.Http.stop h;
        t.http <- None
    | None -> ());
    Option.iter Telemetry.Query_log.close t.query_log
  end
