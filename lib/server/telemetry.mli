(** Production telemetry for the serving path.

    Five independent pieces, all wired through {!Daemon} and exposed by
    [fsqld]/[fsql]:

    - {b request IDs} ({!gen_request_id}) correlate a client's query with
      its server-side span tree across the wire;
    - {b trace ring} ({!Ring}): the Chrome traces of the last N completed
      requests, keyed by request ID, fetchable over the wire
      ([Wire.Trace_get] / [fsql \trace ID]);
    - {b query log} ({!Query_log}): one JSONL record per finished request
      — id, normalized SQL shape, engine, queue wait, exec time, I/O and
      fuzzy-op counts, retries, outcome — with size rotation and a
      slow-query threshold;
    - {b Prometheus exposition} ({!render_prometheus}) over the metrics
      registry, served by the {!Http} listener on [fsqld --metrics-port]
      ([/metrics] and [/healthz]);
    - {b top rendering} ({!render_top}): the server-side plain-text
      snapshot behind [fsql \top].

    Everything here is engine-agnostic plumbing: it depends only on
    {!Storage.Metrics} and Unix, so later serving tiers (scatter-gather,
    result caches) can report through the same spine. *)

val gen_request_id : Random.State.t -> string
(** 16 lowercase hex chars (64 random bits) from the caller's RNG — the
    client generates IDs so a query is attributable before the server
    ever sees it. *)

val normalize_sql : string -> string
(** The statement's {e shape}: string and numeric literals replaced by
    [?], whitespace collapsed. Groups structurally identical queries in
    the log without recording user data. Rebuilt from the real
    {!Fuzzysql.Lexer} token stream so it tracks the grammar exactly;
    statements the lexer refuses (which the log still records, as
    admission rejections) fall back to a character-level scrub with the
    same [?] guarantees. *)

(** Bounded ring of recent request traces, keyed by request ID.
    Thread-safe; memory is bounded by [capacity] (old traces are
    overwritten in completion order). *)
module Ring : sig
  type t

  val create : int -> t
  (** [capacity] must be positive. *)

  val capacity : t -> int

  val add : t -> id:string -> json:string -> unit

  val find : t -> string -> string option
  (** Most-recent-first, so a reused ID resolves to its latest trace. *)

  val ids : t -> string list
  (** Live IDs, oldest first. *)

  val length : t -> int
  (** Live entries (≤ capacity). *)

  val stored : t -> int
  (** Lifetime inserts — for the books-balance check in tests. *)
end

(** Rotating JSONL query log. Writes are serialised internally; when the
    file exceeds [max_bytes] it is renamed to [path ^ ".1"] (replacing a
    previous rotation) and a fresh file is started. *)
module Query_log : sig
  type record = {
    ts : float;  (** completion time, [Unix.gettimeofday] *)
    request_id : string;
    shape : string;  (** {!normalize_sql} of the statement *)
    engine : string;  (** ["scalar"] or ["batch"] *)
    queue_wait_s : float;
    exec_s : float;
    page_reads : int;
    page_writes : int;
    comparisons : int;
    fuzzy_ops : int;
    rows : int;
    retries : int;  (** server-side attempts beyond the first *)
    outcome : string;
        (** ["ok"], ["error"], ["cancelled_deadline"],
            ["cancelled_client"], ["failed_transient"], ... *)
  }

  type t

  val create : ?max_bytes:int -> ?slow_ms:float -> string -> t
  (** Opens (appending) the file at the given path. [slow_ms] drops
      records whose [exec_s] is below the threshold; the default [0.]
      logs every request. Default [max_bytes] is 64 MB. *)

  val log : t -> record -> unit
  (** Flushes per record, so a crashed server's log is complete up to
      the last finished request. *)

  val written : t -> int
  (** Records actually written (post-[slow_ms] filter). *)

  val reopen : t -> unit
  (** Close and reopen the file at the configured path — the SIGHUP
      handshake with logrotate: after an external rename, this starts a
      fresh file; records logged concurrently are never lost (the swap
      happens under the log's lock). Size-based self-rotation also
      fsyncs the outgoing file before renaming it to [.1], so a crash
      right after rotation cannot lose acknowledged records. *)

  val close : t -> unit
end

val render_prometheus : Storage.Metrics.t -> now:float -> string
(** Prometheus text format 0.0.4: counters and gauges verbatim,
    histograms and window snapshots as quantile-labelled summaries (the
    log2-bucket layout is ours, so computed quantiles are exported, not
    raw buckets). Names are prefixed [fsqld_] and sanitised. Empty
    quantiles render as [NaN], which Prometheus accepts. *)

val render_top : Storage.Metrics.t -> now:float -> string
(** The plain-text snapshot behind [fsql \top]: gauges, windowed
    count/rate/p50/p99/max per window histogram, lifetime counters.
    Rendered server-side so clients need no JSON parser. *)

(** Minimal single-threaded HTTP/1.0 listener for the metrics port. One
    request per connection, loopback only, GET only — it serves a
    scraper on a trusted port, not the internet. *)
module Http : sig
  type t

  val start : port:int -> (string -> (int * string * string) option) -> t
  (** [start ~port handler] binds loopback:[port] ([0] picks an
      ephemeral port — read it back with {!port}) and serves each GET by
      calling [handler path], which returns
      [Some (status, content_type, body)] or [None] for 404. The handler
      runs on the listener thread; keep it fast. *)

  val port : t -> int
  val stop : t -> unit

  val get : port:int -> string -> int * string
  (** One-shot GET against loopback:[port]: [(status, body)]. For tests
      and tooling. *)
end
