(** Error-budget circuit breaker for admission control.

    Tracks a sliding window of recent query outcomes; when the failure
    rate over a full-enough window crosses the threshold, the breaker
    opens for a cooldown period during which admission sheds new queries
    with [Overloaded] instead of feeding them to workers that are likely
    to fail them. Opening clears the window, so after the cooldown the
    judgement restarts fresh rather than re-tripping on the old burst.

    Only genuine execution failures should be recorded — query errors
    (parse/semantic) and cancellations say nothing about server health.
    All operations are thread-safe; callers pass [now] so tests can
    drive the clock. *)

type t

val create :
  ?window:int ->
  ?threshold:float ->
  ?min_samples:int ->
  ?cooldown_s:float ->
  unit ->
  t
(** Defaults: 32-outcome window, 0.5 failure-rate threshold, 8 minimum
    samples before the breaker may open, 1 s cooldown. *)

val allow : t -> now:float -> bool
(** May a new query be admitted at [now]? *)

val is_open : t -> now:float -> bool

val record : t -> now:float -> ok:bool -> [ `Stayed | `Opened ]
(** Record one query outcome; returns [`Opened] at the transition. *)

val opened_count : t -> int
(** How many times the breaker has opened since creation. *)

val failure_rate : t -> float
(** Current failure rate over the window ([0.0] when empty). *)
