(** Bounded exponential backoff with jitter, shared by the daemon's
    per-query transient-fault retries and the client's opt-in
    retry-on-[Overloaded].

    The paper's queries are read-only and the engine is bit-deterministic,
    so replaying a failed query is always safe — the only questions are
    how many times and how long to wait, which a {!policy} answers. *)

type policy = {
  max_attempts : int;  (** total attempts including the first; >= 1 *)
  base_delay_s : float;  (** backoff before the first retry *)
  max_delay_s : float;  (** cap on the exponential growth *)
  jitter : float;
      (** 0..1: each delay is scaled by a uniform factor in
          [1 - jitter, 1 + jitter] to de-correlate retrying clients *)
}

val default : policy
(** 3 attempts, 10 ms base, 500 ms cap, 0.25 jitter. *)

val delay_for : policy -> rng:Random.State.t -> attempt:int -> float
(** Backoff before retry number [attempt] (1-based):
    [base * 2^(attempt-1)], capped at [max_delay_s], jittered.
    Deterministic given the rng state. *)

val sleep : ?cancel:Storage.Cancel.t -> float -> [ `Slept | `Cancelled ]
(** Sleep for the given duration in ~2 ms slices, polling [cancel]
    between slices so an explicit cancellation aborts the backoff
    promptly (returning [`Cancelled]) rather than after the full delay. *)
