(** The fsqld daemon: a TCP Fuzzy SQL server with admission control,
    per-query deadlines, cooperative cancellation, fault-tolerant
    execution, and graceful shutdown.

    {1 Architecture}

    One {e accept thread} takes connections; each connection gets a
    {e connection thread} that reads {!Wire} request frames. A [Query]
    frame is admitted into a bounded queue (or rejected with
    [Overloaded] when the queue is full — producers never block) and
    picked up by one of a fixed set of {e worker domains}, which are run
    as long-lived jobs on a {!Storage.Task_pool} so queries execute in
    parallel, not merely concurrently. The worker materialises the
    answer, then streams it ([Header], [Row]s, [Done]) to the client's
    socket.

    Workers are shared-nothing: each builds a private
    {!Storage.Env} + {!Relational.Catalog} with the [~setup] callback at
    startup, because the storage layer (buffer pool, Iostats) is
    single-threaded by design. The effective number of parallel workers
    is capped by the machine
    ([min (workers) (Domain.recommended_domain_count ())]) — the pool
    never oversubscribes cores.

    {1 Deadlines and cancellation}

    Each query runs under a {!Storage.Cancel} token whose deadline is
    [admission time + deadline_ms] (the client's, or [default_deadline_ms]
    when the client sends none). The engine polls the token at operator
    boundaries — sort comparators, sweep loops, nested-loop scans, chain
    cascade steps — so a deadline or an explicit [Cancel] frame (or a
    client disconnect) unwinds the query with a [Cancelled] reply within
    one poll period and frees the worker; the executors destroy their
    temporaries on the way out, so the worker's environment is clean for
    the next query.

    {1 Fault tolerance}

    With [?fault_spec], every worker attaches a seeded {!Storage.Fault}
    plane to its private environment (seed [fault_seed + worker index],
    attached after [~setup] so catalog loading never faults). A query
    that raises a {e transient} {!Storage.Fault.Injected} is retried with
    bounded exponential backoff + jitter ([?retry]) — but only while the
    remaining deadline budget exceeds the backoff sleep, and a [Cancel]
    observed during the sleep aborts it promptly. Queries are read-only
    and the engine is bit-deterministic, so a retried attempt that
    succeeds returns exactly the fault-free answer; nothing is streamed
    until an attempt has fully materialised its rows, so a retry never
    follows a half-sent answer. When retries are exhausted (or the budget
    is gone) the client gets [Retryable]. A {e fatal} fault or an
    unclassified exception answers [Error] and {e respawns} the worker's
    environment — the daemon never crashes on a poisoned query.

    Admission consults an error-budget circuit {!Breaker} fed by genuine
    execution outcomes (query errors and cancellations don't count): when
    the recent failure rate crosses the threshold the breaker opens and
    admission sheds queries with [Overloaded] for the cooldown period.

    {1 Observability}

    Every request carries one {!Storage.Trace} collector rooted at a
    [request] span with [queue-wait] (timed at admission), [plan], and
    [exec] children (the planner's own operator spans nest under [exec]);
    injected faults add zero-width [fault ...] spans and each backoff a
    [retry-backoff] span. The [?on_trace] callback receives each
    completed trace — fsqld uses it to write Chrome trace files. A
    {!Storage.Metrics} registry (one per daemon, so servers don't leak
    counters into each other) counts requests and histograms queue-wait,
    execution, retry-backoff, and end-to-end latency.

    PR 7 adds the production telemetry plane ({!Telemetry}):

    - every request is keyed by a {e request ID} — the client's
      ([Wire.Query.request_id]) or a server-assigned [srv-...] one for
      rev-1 clients — and its completed span tree enters a bounded
      {!Telemetry.Ring} of Chrome traces, fetchable over the wire
      ([Wire.Trace_get] / {!trace_json});
    - queue-wait, exec, and latency are also observed into {e sliding
      windows} ({!Storage.Metrics.window_histogram}, 12 x 5 s), so
      [\top] and the Prometheus endpoint report last-minute p50/p99/max
      and rates next to lifetime totals, plus point-in-time gauges
      [queue_depth], [busy_workers], [breaker_open];
    - with [?metrics_port] a loopback HTTP listener serves [/metrics]
      (Prometheus text) and [/healthz] (JSON; 503 when the breaker is
      open or the server is draining);
    - with [?query_log] every finished request appends one JSONL record
      (see {!Telemetry.Query_log.record}); [?slow_ms] keeps only slow
      ones. Logging observes the finished request from outside the
      execution path, so answers remain bit-identical with it on.

    {1 Shutdown}

    {!stop} drains: no new connections or queries are admitted, queries
    already in the queue or in flight run to completion and their replies
    are delivered, then workers, the accept loop, and the connection
    threads are joined. Idempotent. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?default_deadline_ms:int ->
  ?domains:int ->
  ?batch:bool ->
  ?mem_pages:int ->
  ?terms:Fuzzy.Term.t ->
  ?on_trace:(Storage.Trace.t -> unit) ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.t ->
  ?fault_spec:Storage.Fault.spec ->
  ?fault_seed:int ->
  ?metrics_port:int ->
  ?query_log:string ->
  ?slow_ms:float ->
  ?trace_ring_capacity:int ->
  ?make_env:(pool_pages:int -> Storage.Env.t) ->
  ?sender:Replication.Sender.t ->
  ?replica:Replication.Replica.t ->
  ?max_staleness_ms:int ->
  setup:(Storage.Env.t -> Relational.Catalog.t -> unit) ->
  unit ->
  t
(** Bind, listen, spawn the workers, and return immediately. Defaults:
    host ["127.0.0.1"], port [0] (ephemeral — read it back with {!port}),
    [workers = 2], [queue_capacity = 16], no default deadline,
    [domains = 1] (per-query merge-join parallelism on a pool the query
    creates privately), [batch = false] (set to run every query on the
    vectorized columnar engine — same answers and degree bits, see
    {!Unnest.Planner.run}), [mem_pages = Unnest.Planner.default_mem_pages],
    the paper's term vocabulary, [retry = Retry.default], a default
    {!Breaker.create}, no fault injection, [fault_seed = 0]. [~setup]
    runs once per worker on the worker's own domain (and again on each
    respawn). [?make_env] overrides how worker (and admission)
    environments are built — default simulated
    ([Storage.Env.create ~pool_pages:mem_pages ()]); it receives the
    daemon's [mem_pages] as [~pool_pages] so overriding the backend
    never silently changes buffer-pool sizing. [fsqld --data-dir]
    passes read-only durable opens of a directory the main process has
    already recovered, so each shared-nothing worker gets its own fds
    over the same data. [?on_trace] runs on the worker that executed the
    request, after the terminal frame is sent — it must be thread-safe.

    Telemetry options: [?metrics_port] starts the HTTP exposition
    listener on loopback ([0] picks an ephemeral port — read it back
    with {!metrics_port}); [?query_log] opens the JSONL query log at
    that path, [?slow_ms] logging only requests at least that slow;
    [?trace_ring_capacity] (default 64) bounds the ring of recent
    request traces. *)

val port : t -> int
(** The bound port (useful with [~port:0]). *)

val queue_length : t -> int
(** Queries admitted but not yet picked up by a worker. *)

val workers : t -> int

val counter_value : t -> string -> int
(** Read one metrics counter; 0 when it has not been touched yet.
    Counters: [requests_accepted], [requests_rejected_static] (the
    admission-time static analyzer found errors; the client saw
    [Rejected] and the query never reached the worker queue),
    [requests_rejected_overload], [requests_shed_breaker],
    [requests_cancelled], [requests_failed], [requests_failed_transient]
    (gave up on a transient fault; the client saw [Retryable]),
    [requests_completed], [faults_injected], [retries],
    [workers_respawned], [breaker_opened]. Every accepted request is
    counted by exactly one of [requests_completed] /
    [requests_cancelled] / [requests_failed] /
    [requests_failed_transient] — the books balance, which is how the
    chaos harness proves no worker leaked a query. [requests_cancelled]
    splits further into [requests_cancelled_deadline] (the
    {!Storage.Cancel} deadline fired) + [requests_cancelled_client]
    (explicit [Cancel] frame or disconnect) — a latency SLO breach and a
    user abort are different signals, and the split sums back to the
    aggregate. *)

val metrics_json : t -> string
(** JSON dump of the daemon's metrics registry (also available over the
    wire with a [Metrics] frame). Gauges are refreshed at dump time. *)

val trace_json : t -> string -> string option
(** The Chrome trace of one completed request by ID, [None] once it has
    fallen out of the ring (also over the wire: [Wire.Trace_get]). *)

val trace_ring : t -> Telemetry.Ring.t
(** The ring itself, for tests asserting ring/log agreement. *)

val top_text : t -> string
(** The rendered [\top] snapshot (also over the wire: [Wire.Top]). *)

val metrics_port : t -> int option
(** The bound exposition port, when [?metrics_port] was given. *)

val sender : t -> Replication.Sender.t option
(** The replication sender serving [Rep_subscribe] — present when the
    daemon was started with [?sender] (primary mode) or after a
    successful {!promote}. *)

val promote : t -> (int, string) result
(** Promote a replica-mode daemon to primary (also over the wire:
    [Wire.Promote], [fsql \promote]): bump and commit the replication
    epoch — fencing the old primary — and stand up a sender over the
    promoted directory. Returns the new epoch; [Error _] when the
    daemon is not a replica. Idempotent. *)

val reopen_query_log : t -> unit
(** Close and reopen the JSONL query log at its configured path —
    [fsqld] calls this on SIGHUP so logrotate's rename-and-signal works
    without losing records. No-op without [?query_log]. *)

val query_log_written : t -> int option
(** Records written to the query log so far, when [?query_log] was
    given. *)

val stop : t -> unit
(** Graceful shutdown: drain admitted queries, deliver their replies,
    join every thread and worker domain, close every socket. Blocks until
    done; idempotent. In-flight queries still run to completion — pair a
    deadline or client cancel with [stop] to bound the drain time. *)
