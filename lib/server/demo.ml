open Relational

let term name =
  Value.Fuzzy (Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper name))

let tuple vs d = Ftuple.make (Array.of_list vs) d

let person_schema name =
  Schema.make ~name
    [ ("ID", Schema.TNum); ("NAME", Schema.TStr); ("AGE", Schema.TNum);
      ("INCOME", Schema.TNum) ]

let load_dating ?durable env catalog =
  Catalog.add catalog
    (Relation.of_list ?durable env (person_schema "F")
       [
         tuple [ Value.Int 101; Value.Str "Ann"; term "about 35"; term "about 60K" ] 1.0;
         tuple [ Value.Int 102; Value.Str "Ann"; term "medium young"; term "medium high" ] 1.0;
         tuple [ Value.Int 103; Value.Str "Betty"; term "middle age"; term "high" ] 1.0;
         tuple [ Value.Int 104; Value.Str "Cathy"; term "about 50"; term "low" ] 1.0;
       ]);
  Catalog.add catalog
    (Relation.of_list ?durable env (person_schema "M")
       [
         tuple [ Value.Int 201; Value.Str "Allen"; Value.crisp_num 24.0; term "about 25K" ] 1.0;
         tuple [ Value.Int 202; Value.Str "Allen"; term "about 50"; term "about 40K" ] 1.0;
         tuple [ Value.Int 203; Value.Str "Bill"; term "middle age"; term "high" ] 1.0;
         tuple [ Value.Int 204; Value.Str "Carl"; term "about 29"; term "medium low" ] 1.0;
       ])

let load_generated ?(seed = 7) ?(n = 500) ?(groups = 50) env catalog =
  let spec = { Workload.Gen.default_spec with n; groups } in
  let r, s = Workload.Gen.join_pair env ~seed ~outer:spec ~inner:spec in
  Catalog.add catalog r;
  Catalog.add catalog s

(* Random crisp-or-trapezoid values over [0, 50]; deterministic in the
   seed. Trapezoids are localised (support <= 5 wide) so fuzzy joins stay
   selective — domain-wide supports would make every join all-pairs and a
   3-block chain quadratic in practice. *)
let rand_value rng =
  match Random.State.int rng 4 with
  | 0 -> Value.crisp_num (float_of_int (Random.State.int rng 50))
  | _ ->
      let c = Random.State.float rng 45.0 in
      Value.Fuzzy
        (Fuzzy.Possibility.trap
           (Workload.Gen.random_trapezoid rng ~lo:c ~hi:(c +. 5.0)))

let rand_degree rng = 0.125 *. float_of_int (1 + Random.State.int rng 8)

let load_nested ?durable ?(seed = 11) ?(n_r = 120) ?(n_s = 120) ?(n_t = 60) env catalog
    =
  let rng = Random.State.make [| seed |] in
  let rel name n attrs =
    let schema =
      Schema.make ~name
        (("ID", Schema.TNum) :: List.map (fun a -> (a, Schema.TNum)) attrs)
    in
    let tuples =
      List.init n (fun i ->
          tuple
            (Value.Int i :: List.map (fun _ -> rand_value rng) attrs)
            (rand_degree rng))
    in
    Catalog.add catalog (Relation.of_list ?durable env schema tuples)
  in
  rel "R" n_r [ "Y"; "U" ];
  rel "S" n_s [ "Z"; "V" ];
  rel "T" n_t [ "W"; "P" ]

let server_setup ?durable ?seed ?n_r ?n_s ?n_t () env catalog =
  load_dating ?durable env catalog;
  load_nested ?durable ?seed ?n_r ?n_s ?n_t env catalog
