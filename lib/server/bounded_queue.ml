type 'a t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  capacity : int;
  items : 'a Queue.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    capacity;
    items = Queue.create ();
    closed = false;
  }

let try_push t x =
  Mutex.lock t.lock;
  let ok = (not t.closed) && Queue.length t.items < t.capacity in
  if ok then begin
    Queue.add x t.items;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  ok

let pop t =
  Mutex.lock t.lock;
  let rec take () =
    match Queue.take_opt t.items with
    | Some x -> Some x
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.not_empty t.lock;
          take ()
        end
  in
  let r = take () in
  Mutex.unlock t.lock;
  r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.items in
  Mutex.unlock t.lock;
  n
