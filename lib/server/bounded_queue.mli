(** A bounded multi-producer / multi-consumer queue — the server's
    admission queue. Producers (connection threads) never block:
    {!try_push} fails immediately when the queue is at capacity, which the
    daemon turns into an [Overloaded] rejection. Consumers (worker
    domains) block in {!pop} until an item or {!close}.

    Safe across domains and threads (a mutex and a condition variable;
    OCaml 5 mutexes synchronise domains the same as systhreads). *)

type 'a t

val create : capacity:int -> 'a t
(** [Invalid_argument] if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** False when the queue is full or closed — never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available. After {!close}, drains the
    remaining items and then returns [None] — items admitted before the
    close are never lost, which is what lets the daemon shut down
    gracefully (drain, then stop). *)

val close : 'a t -> unit
(** Idempotent. Wakes every blocked consumer. *)

val length : 'a t -> int
