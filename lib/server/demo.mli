(** Seeded demo databases, shared by [fsql] (local mode), [fsqld] worker
    setup, the server tests, and the load bench.

    Three building blocks:
    - {!load_dating}: the paper's Example 4.1 dating-service relations
      F and M (4 tuples each, fuzzy AGE / INCOME terms);
    - {!load_generated}: a Section 9 workload pair R / S from
      {!Workload.Gen.join_pair} (schema (ID, X, W));
    - {!load_nested}: deterministic relations R(ID, Y, U), S(ID, Z, V),
      T(ID, W, P) with random fuzzy values — the attribute shapes the
      nested-query test templates (types N / J / JX / JA / JALL / chain)
      are written against.

    Every generator is a pure function of its seed: two processes calling
    the same loader with the same seed build bit-identical relations,
    which is what lets a load-bench client verify server answers against
    a locally computed expectation.

    [?durable] (default [false]) builds the relations durably on the
    environment's real-disk backend ([fsqld --data-dir] initialising a
    fresh directory); remember to {!Storage.Env.commit} or
    {!Storage.Env.checkpoint} afterwards. *)

val load_dating : ?durable:bool -> Storage.Env.t -> Relational.Catalog.t -> unit

val load_generated :
  ?seed:int -> ?n:int -> ?groups:int ->
  Storage.Env.t -> Relational.Catalog.t -> unit
(** Defaults: [seed = 7], [n = 500], [groups = 50] — the fsql banner's
    "R, S (generated, 500 tuples)". *)

val load_nested :
  ?durable:bool -> ?seed:int -> ?n_r:int -> ?n_s:int -> ?n_t:int ->
  Storage.Env.t -> Relational.Catalog.t -> unit
(** Defaults: [seed = 11], [n_r = 120], [n_s = 120], [n_t = 60]. Values
    are crisp numbers or random trapezoids in [0, 50]; degrees are
    multiples of 1/8 in (0, 1]. *)

val server_setup :
  ?durable:bool -> ?seed:int -> ?n_r:int -> ?n_s:int -> ?n_t:int -> unit ->
  Storage.Env.t -> Relational.Catalog.t -> unit
(** The default [fsqld] worker database: {!load_dating} (F, M) plus
    {!load_nested} (R, S, T). Partially applied, it is the [~setup]
    argument of {!Daemon.start}. *)
