exception Protocol_error of string
exception Connection_closed

let protocol_rev = 3

type request =
  | Query of {
      request_id : string;
      deadline_ms : int;
      domains : int;
      sql : string;
    }
  | Cancel
  | Metrics
  | Trace_get of string
  | Top
  | Rep_subscribe of { epoch : int; stream_id : int64; from_lsn : int }
  | Rep_ack of { epoch : int; applied_lsn : int }
  | Promote

type chunk_kind = Data_chunk | Wal_chunk

type reply =
  | Header of string list
  | Row of { degree_bits : int64; values : string list }
  | Done of { rows : int; elapsed_s : float }
  | Error of string
  | Retryable of string
  | Overloaded
  | Rejected of { code : string; diagnostics : string }
  | Cancelled of string
  | Metrics_json of string
  | Trace_json of string option
  | Top_text of string
  | Rep_hello of {
      epoch : int;
      stream_id : int64;
      page_size : int;
      snapshot : bool;
      start_lsn : int;
      data_len : int;
    }
  | Rep_chunk of { kind : chunk_kind; off : int; data : string }
  | Rep_wal of { epoch : int; start_lsn : int; primary_end : int; data : string }
  | Rep_fence of { epoch : int }
  | Promoted of { epoch : int }

let max_frame = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Primitive encoders (big-endian) on a Buffer / decoders on a string. *)

let add_u32 buf n =
  if n < 0 then invalid_arg "Wire.add_u32: negative";
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let add_u64 buf (n : int64) =
  for shift = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * shift)) 0xFFL)))
  done

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_strs buf ss =
  add_u32 buf (List.length ss);
  List.iter (add_str buf) ss

let get_u32 s pos =
  if !pos + 4 > String.length s then raise (Protocol_error "truncated u32");
  let b i = Char.code s.[!pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  pos := !pos + 4;
  v

let get_u64 s pos =
  if !pos + 8 > String.length s then raise (Protocol_error "truncated u64");
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[!pos + i]))
  done;
  pos := !pos + 8;
  !v

let get_str s pos =
  let n = get_u32 s pos in
  if !pos + n > String.length s then raise (Protocol_error "truncated string");
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let get_strs s pos =
  let n = get_u32 s pos in
  List.init n (fun _ -> get_str s pos)

(* ------------------------------------------------------------------ *)
(* Framing, directly over the file descriptor.

   Both loops restart on EINTR (a signal delivered mid-syscall must not
   kill a session thread), and both map the peer vanishing — EOF or a
   short read mid-frame, EPIPE/ECONNRESET on write — to the single
   [Connection_closed] exception so callers have one case to handle. *)

let rec write_all fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Connection_closed

let read_exact fd buf off len =
  let rec go off len =
    if len > 0 then
      match Unix.read fd buf off len with
      | 0 -> raise Connection_closed
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          raise Connection_closed
  in
  go off len

let write_frame fd payload =
  let n = String.length payload in
  (* One buffer, one write-loop: header and payload never interleave with
     another thread's frame as long as callers serialise per-connection. *)
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

let read_frame fd =
  let hdr = Bytes.create 4 in
  read_exact fd hdr 0 4;
  let b i = Char.code (Bytes.get hdr i) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n > max_frame then raise (Protocol_error "oversized frame");
  if n = 0 then raise (Protocol_error "empty frame");
  let payload = Bytes.create n in
  read_exact fd payload 0 n;
  Bytes.unsafe_to_string payload

(* ------------------------------------------------------------------ *)
(* Messages *)

(* Protocol revisions. Rev 1 had no request IDs and used tag ['Q'] for
   queries. Rev 2 adds the client-generated request ID under the new tag
   ['q'] (plus ['G'] trace fetch and ['P'] stats snapshot), and keeps both
   directions of compatibility:

   - old client / new server: rev-1 ['Q'] frames still decode, yielding
     [request_id = ""] (the server assigns one);
   - new client / old server: a query with [request_id = ""] encodes as a
     byte-identical rev-1 ['Q'] frame, so a client that doesn't opt into
     IDs speaks pure rev 1 and an old server never sees an unknown tag.

   Rev 3 adds replication (['r'] subscribe / ['a'] ack, with the
   streaming replies ['h'] hello, ['c'] snapshot chunk, ['w'] WAL batch,
   ['f'] fence) and admin promotion (['U'] / ['u']). Compatibility is by
   construction: rev 3 only introduces new tags, so every rev-2 frame
   encodes and decodes byte-identically under rev 3, and a rev-2 client
   that never sends the new tags cannot elicit one in response. *)
let encode_request r =
  let buf = Buffer.create 64 in
  (match r with
  | Query { request_id = ""; deadline_ms; domains; sql } ->
      Buffer.add_char buf 'Q';
      add_u32 buf deadline_ms;
      add_u32 buf domains;
      add_str buf sql
  | Query { request_id; deadline_ms; domains; sql } ->
      Buffer.add_char buf 'q';
      add_str buf request_id;
      add_u32 buf deadline_ms;
      add_u32 buf domains;
      add_str buf sql
  | Cancel -> Buffer.add_char buf 'X'
  | Metrics -> Buffer.add_char buf 'M'
  | Trace_get id ->
      Buffer.add_char buf 'G';
      add_str buf id
  | Top -> Buffer.add_char buf 'P'
  | Rep_subscribe { epoch; stream_id; from_lsn } ->
      Buffer.add_char buf 'r';
      add_u32 buf epoch;
      add_u64 buf stream_id;
      add_u64 buf (Int64.of_int from_lsn)
  | Rep_ack { epoch; applied_lsn } ->
      Buffer.add_char buf 'a';
      add_u32 buf epoch;
      add_u64 buf (Int64.of_int applied_lsn)
  | Promote -> Buffer.add_char buf 'U');
  Buffer.contents buf

let decode_request payload =
  let pos = ref 1 in
  match payload.[0] with
  | 'Q' ->
      let deadline_ms = get_u32 payload pos in
      let domains = get_u32 payload pos in
      let sql = get_str payload pos in
      Query { request_id = ""; deadline_ms; domains; sql }
  | 'q' ->
      let request_id = get_str payload pos in
      let deadline_ms = get_u32 payload pos in
      let domains = get_u32 payload pos in
      let sql = get_str payload pos in
      Query { request_id; deadline_ms; domains; sql }
  | 'X' -> Cancel
  | 'M' -> Metrics
  | 'G' -> Trace_get (get_str payload pos)
  | 'P' -> Top
  | 'r' ->
      let epoch = get_u32 payload pos in
      let stream_id = get_u64 payload pos in
      let from_lsn = Int64.to_int (get_u64 payload pos) in
      Rep_subscribe { epoch; stream_id; from_lsn }
  | 'a' ->
      let epoch = get_u32 payload pos in
      let applied_lsn = Int64.to_int (get_u64 payload pos) in
      Rep_ack { epoch; applied_lsn }
  | 'U' -> Promote
  | c -> raise (Protocol_error (Printf.sprintf "unknown request tag %C" c))

let encode_reply r =
  let buf = Buffer.create 128 in
  (match r with
  | Header cols ->
      Buffer.add_char buf 'H';
      add_strs buf cols
  | Row { degree_bits; values } ->
      Buffer.add_char buf 'R';
      add_u64 buf degree_bits;
      add_strs buf values
  | Done { rows; elapsed_s } ->
      Buffer.add_char buf 'D';
      add_u32 buf rows;
      add_u64 buf (Int64.bits_of_float elapsed_s)
  | Error msg ->
      Buffer.add_char buf 'E';
      add_str buf msg
  | Retryable msg ->
      Buffer.add_char buf 'T';
      add_str buf msg
  | Overloaded -> Buffer.add_char buf 'O'
  | Rejected { code; diagnostics } ->
      Buffer.add_char buf 'S';
      add_str buf code;
      add_str buf diagnostics
  | Cancelled reason ->
      Buffer.add_char buf 'C';
      add_str buf reason
  | Metrics_json json ->
      Buffer.add_char buf 'J';
      add_str buf json
  | Trace_json None -> Buffer.add_string buf "F\x00"
  | Trace_json (Some json) ->
      Buffer.add_string buf "F\x01";
      add_str buf json
  | Top_text text ->
      Buffer.add_char buf 'V';
      add_str buf text
  | Rep_hello { epoch; stream_id; page_size; snapshot; start_lsn; data_len } ->
      Buffer.add_char buf 'h';
      add_u32 buf epoch;
      add_u64 buf stream_id;
      add_u32 buf page_size;
      Buffer.add_char buf (if snapshot then '\x01' else '\x00');
      add_u64 buf (Int64.of_int start_lsn);
      add_u64 buf (Int64.of_int data_len)
  | Rep_chunk { kind; off; data } ->
      Buffer.add_char buf 'c';
      Buffer.add_char buf (match kind with Data_chunk -> 'D' | Wal_chunk -> 'W');
      add_u64 buf (Int64.of_int off);
      add_str buf data
  | Rep_wal { epoch; start_lsn; primary_end; data } ->
      Buffer.add_char buf 'w';
      add_u32 buf epoch;
      add_u64 buf (Int64.of_int start_lsn);
      add_u64 buf (Int64.of_int primary_end);
      add_str buf data
  | Rep_fence { epoch } ->
      Buffer.add_char buf 'f';
      add_u32 buf epoch
  | Promoted { epoch } ->
      Buffer.add_char buf 'u';
      add_u32 buf epoch);
  Buffer.contents buf

let decode_reply payload =
  let pos = ref 1 in
  match payload.[0] with
  | 'H' -> Header (get_strs payload pos)
  | 'R' ->
      let degree_bits = get_u64 payload pos in
      let values = get_strs payload pos in
      Row { degree_bits; values }
  | 'D' ->
      let rows = get_u32 payload pos in
      let elapsed_s = Int64.float_of_bits (get_u64 payload pos) in
      Done { rows; elapsed_s }
  | 'E' -> Error (get_str payload pos)
  | 'T' -> Retryable (get_str payload pos)
  | 'O' -> Overloaded
  | 'S' ->
      let code = get_str payload pos in
      let diagnostics = get_str payload pos in
      Rejected { code; diagnostics }
  | 'C' -> Cancelled (get_str payload pos)
  | 'J' -> Metrics_json (get_str payload pos)
  | 'F' -> (
      if String.length payload < 2 then
        raise (Protocol_error "truncated trace reply");
      match payload.[1] with
      | '\x00' -> Trace_json None
      | '\x01' ->
          pos := 2;
          Trace_json (Some (get_str payload pos))
      | c -> raise (Protocol_error (Printf.sprintf "bad trace presence %C" c)))
  | 'V' -> Top_text (get_str payload pos)
  | 'h' ->
      let epoch = get_u32 payload pos in
      let stream_id = get_u64 payload pos in
      let page_size = get_u32 payload pos in
      if !pos >= String.length payload then
        raise (Protocol_error "truncated rep hello");
      let snapshot =
        match payload.[!pos] with
        | '\x00' -> false
        | '\x01' -> true
        | c -> raise (Protocol_error (Printf.sprintf "bad snapshot flag %C" c))
      in
      incr pos;
      let start_lsn = Int64.to_int (get_u64 payload pos) in
      let data_len = Int64.to_int (get_u64 payload pos) in
      Rep_hello { epoch; stream_id; page_size; snapshot; start_lsn; data_len }
  | 'c' ->
      if String.length payload < 2 then
        raise (Protocol_error "truncated rep chunk");
      let kind =
        match payload.[1] with
        | 'D' -> Data_chunk
        | 'W' -> Wal_chunk
        | c -> raise (Protocol_error (Printf.sprintf "bad chunk kind %C" c))
      in
      pos := 2;
      let off = Int64.to_int (get_u64 payload pos) in
      let data = get_str payload pos in
      Rep_chunk { kind; off; data }
  | 'w' ->
      let epoch = get_u32 payload pos in
      let start_lsn = Int64.to_int (get_u64 payload pos) in
      let primary_end = Int64.to_int (get_u64 payload pos) in
      let data = get_str payload pos in
      Rep_wal { epoch; start_lsn; primary_end; data }
  | 'f' -> Rep_fence { epoch = get_u32 payload pos }
  | 'u' -> Promoted { epoch = get_u32 payload pos }
  | c -> raise (Protocol_error (Printf.sprintf "unknown reply tag %C" c))

let write_request fd r = write_frame fd (encode_request r)
let write_reply fd r = write_frame fd (encode_reply r)
let read_request fd = decode_request (read_frame fd)
let read_reply fd = decode_reply (read_frame fd)
