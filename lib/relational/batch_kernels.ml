open Fuzzy

(* Scalar-parameter replicas of the [Trapezoid] height arithmetic: same
   expressions, same branch structure, same IEEE-754 operations — only the
   record indirection is gone, so the batch loops below stay allocation-free.
   Bit-identity with the boxed path is enforced by the qcheck suite. *)

let mem_s a b c d x =
  if x < a || x > d then 0.0
  else if b <= x && x <= c then 1.0
  else if x < b then (x -. a) /. (b -. a)
  else (d -. x) /. (d -. c)

(* [Degree.of_float] without the NaN check: the callers below divide by a
   provably positive denominator, exactly like [Trapezoid.cross_height]. *)
let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let cross_s ua ub uc ud va vb vc vd =
  if ud <= va then 0.0
  else if uc = ud then mem_s va vb vc vd ud
  else if va = vb then mem_s ua ub uc ud va
  else
    let p = ud -. uc and q = vb -. va in
    clamp01 ((ud -. va) /. (p +. q))

let eq_s ua ub uc ud va vb vc vd =
  if ub <= vc && vb <= uc then 1.0
  else if uc < vb then cross_s ua ub uc ud va vb vc vd
  else cross_s va vb vc vd ua ub uc ud

let ge_s ua ub uc ud va vb vc vd =
  if uc >= vb then 1.0 else cross_s ua ub uc ud va vb vc vd

let gt_s ua ub uc ud va vb vc vd =
  if ua = ud && va = vd then (if ua > va then 1.0 else 0.0)
  else ge_s ua ub uc ud va vb vc vd

(* [ne_height]: only crisp-vs-crisp can defeat "somewhere different". *)
let ne_s ua _ub _uc ud va _vb _vc vd =
  if ua = ud && va = vd then (if ua = va then 0.0 else 1.0) else 1.0

let cmp op ua ub uc ud va vb vc vd =
  match (op : Fuzzy_compare.op) with
  | Fuzzy_compare.Eq -> eq_s ua ub uc ud va vb vc vd
  | Fuzzy_compare.Ne -> ne_s ua ub uc ud va vb vc vd
  | Fuzzy_compare.Ge -> ge_s ua ub uc ud va vb vc vd
  | Fuzzy_compare.Le -> ge_s va vb vc vd ua ub uc ud
  | Fuzzy_compare.Gt -> gt_s ua ub uc ud va vb vc vd
  | Fuzzy_compare.Lt -> gt_s va vb vc vd ua ub uc ud

(* Indices come from the sweep's selection vectors, which are in bounds by
   construction; the unchecked loads matter at ~1 call per window pair. *)
let cmp_at op (u : Batch.col) i (v : Batch.col) j =
  cmp op
    (Array.unsafe_get u.Batch.ta i)
    (Array.unsafe_get u.Batch.tb i)
    (Array.unsafe_get u.Batch.tc i)
    (Array.unsafe_get u.Batch.td i)
    (Array.unsafe_get v.Batch.ta j)
    (Array.unsafe_get v.Batch.tb j)
    (Array.unsafe_get v.Batch.tc j)
    (Array.unsafe_get v.Batch.td j)

(* ---- column passes ---- *)

let mem_into (tr : Trapezoid.t) ~xs ~n ~dst =
  let a = tr.Trapezoid.a and b = tr.Trapezoid.b in
  let c = tr.Trapezoid.c and d = tr.Trapezoid.d in
  for i = 0 to n - 1 do
    Array.unsafe_set dst i (mem_s a b c d (Array.unsafe_get xs i))
  done

let conj_into ~src ~dst ~n =
  for i = 0 to n - 1 do
    Array.unsafe_set dst i
      (Float.min (Array.unsafe_get dst i) (Array.unsafe_get src i))
  done

let disj_reduce ~xs ~n =
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (Array.unsafe_get xs i)
  done;
  !m

let select_positive ~xs ~n ~sel =
  let k = ref 0 in
  for i = 0 to n - 1 do
    if Array.unsafe_get xs i > 0.0 then begin
      Array.unsafe_set sel !k i;
      incr k
    end
  done;
  !k
