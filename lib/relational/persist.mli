(** Saving and loading fuzzy relations on the host filesystem.

    The file layout is a small header (magic, schema, optional fixed tuple
    size) followed by length-prefixed {!Codec} records. This lets example
    databases and generated workloads be reused across runs and lets the
    [fsql] shell persist its session. *)

exception Format_error of string

val save : Relation.t -> path:string -> unit
(** Writes the relation's schema and all tuples; overwrites [path]. *)

val load : Storage.Env.t -> path:string -> Relation.t
(** Recreates the relation inside [env]. Raises [Format_error] on a
    malformed file and [Sys_error] on I/O failure. *)

val save_catalog : Catalog.t -> dir:string -> unit
(** Saves every relation of the catalog as [dir/<name>.frel] (creates
    [dir] if missing). *)

val load_catalog : Storage.Env.t -> dir:string -> Catalog.t
(** Loads every [*.frel] file of the directory into a fresh catalog. *)
