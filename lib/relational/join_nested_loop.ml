open Storage
open Fuzzy

let iter_blocks ~outer ~inner ~mem_pages ~f =
  if mem_pages < 2 then invalid_arg "Join_nested_loop: mem_pages < 2";
  let env = Relation.env outer in
  let outer_file = Relation.file outer in
  Buffer_pool.flush (Heap_file.pool outer_file);
  Buffer_pool.flush (Heap_file.pool (Relation.file inner));
  Iostats.timed env.Env.stats Iostats.Join (fun () ->
      let outer_block = mem_pages - 1 in
      (* Scoped pools sit over each scanned file's own backend — durable
         relations and temporary intermediates may live on different
         disks of the same environment. *)
      let outer_pool =
        Buffer_pool.create (Heap_file.disk outer_file) ~capacity:outer_block
      in
      let inner_pool =
        Buffer_pool.create (Heap_file.disk (Relation.file inner)) ~capacity:1
      in
      let n_outer_pages = Heap_file.num_pages outer_file in
      let rec blocks start =
        if start < n_outer_pages then begin
          let stop = Int.min n_outer_pages (start + outer_block) in
          (* Load and decode the current outer block. *)
          let block = ref [] in
          for p = start to stop - 1 do
            List.iter
              (fun r -> block := Codec.decode r :: !block)
              (Heap_file.page_records_via outer_pool outer_file p)
          done;
          let block = Array.of_list (List.rev !block) in
          let scan_inner g = Relation.iter_via inner_pool inner g in
          f block scan_inner;
          blocks stop
        end
      in
      blocks 0)

let iter_pairs ~outer ~inner ~mem_pages ~f =
  iter_blocks ~outer ~inner ~mem_pages ~f:(fun block scan_inner ->
      scan_inner (fun s -> Array.iter (fun r -> f r s) block))

let join ?name ~outer ~inner ~mem_pages ~on ?residual () =
  let env = Relation.env outer in
  let stats = env.Env.stats in
  let out_schema =
    Schema.concat
      ~name:(Option.value name ~default:"join")
      (Relation.schema outer) (Relation.schema inner)
  in
  let out = Relation.create env out_schema in
  iter_pairs ~outer ~inner ~mem_pages ~f:(fun r s ->
      let d_on =
        Degree.conj_list
          (List.map
             (fun (ri, op, si) ->
               Iostats.record_fuzzy_op stats;
               Value.compare_degree op (Ftuple.value r ri) (Ftuple.value s si))
             on)
      in
      let d_res = match residual with None -> Degree.one | Some f -> f r s in
      let d =
        Degree.conj_list [ Ftuple.degree r; Ftuple.degree s; d_on; d_res ]
      in
      if Degree.positive d then Relation.insert out (Ftuple.concat r s d));
  out
