type ty = TNum | TStr

type t = { name : string; attrs : (string * ty) array }

let make ~name attrs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a, _) ->
      if Hashtbl.mem seen a then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" a);
      Hashtbl.add seen a ())
    attrs;
  { name; attrs = Array.of_list attrs }

let name t = t.name
let with_name t name = { t with name }
let arity t = Array.length t.attrs
let attrs t = t.attrs

let split_qualified s =
  match String.index_opt s '.' with
  | Some i -> (Some (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1))
  | None -> (None, s)

let index_of t attr =
  let qualifier, bare = split_qualified attr in
  let matches (name, _) =
    match qualifier with
    | Some q ->
        (q = t.name && name = bare)
        (* Attributes of concatenated schemas are stored pre-qualified. *)
        || name = attr
    | None ->
        name = bare
        || (match split_qualified name with _, b -> b = bare)
  in
  let found = ref None in
  Array.iteri
    (fun i a -> if !found = None && matches a then found := Some i)
    t.attrs;
  !found

let ty_of t i = snd t.attrs.(i)
let attr_name t i = fst t.attrs.(i)

let qualify prefix (name, ty) =
  match split_qualified name with
  | Some _, _ -> (name, ty) (* already qualified *)
  | None, _ -> (prefix ^ "." ^ name, ty)

let concat ~name a b =
  {
    name;
    attrs =
      Array.append
        (Array.map (qualify a.name) a.attrs)
        (Array.map (qualify b.name) b.attrs);
  }

let pp ppf t =
  Format.fprintf ppf "%s(%s)" t.name
    (String.concat ", " (Array.to_list (Array.map fst t.attrs)))
