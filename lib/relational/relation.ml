open Storage

type t = {
  schema : Schema.t;
  env : Env.t;
  file : Heap_file.t;
  pad_to : int option;
}

(* Catalog metadata blob for durable relations, stored in the WAL's
   manifest ([Define] records): schema name, pad_to, typed attributes.
   Same shape as the Persist .frel header, encoded into bytes. *)
let encode_meta schema pad_to =
  let b = Buffer.create 64 in
  let u16 v =
    Buffer.add_uint8 b (v land 0xff);
    Buffer.add_uint8 b ((v lsr 8) land 0xff)
  in
  let str s =
    u16 (String.length s);
    Buffer.add_string b s
  in
  str (Schema.name schema);
  u16 (match pad_to with Some p -> p | None -> 0xffff);
  u16 (Schema.arity schema);
  Array.iter
    (fun (name, ty) ->
      str name;
      Buffer.add_uint8 b (match ty with Schema.TNum -> 0 | Schema.TStr -> 1))
    (Schema.attrs schema);
  Buffer.to_bytes b

exception Bad_meta of string

let decode_meta meta =
  let pos = ref 0 in
  let fail msg = raise (Bad_meta msg) in
  let u16 () =
    if !pos + 2 > Bytes.length meta then fail "truncated metadata";
    let v =
      Bytes.get_uint8 meta !pos lor (Bytes.get_uint8 meta (!pos + 1) lsl 8)
    in
    pos := !pos + 2;
    v
  in
  let str () =
    let len = u16 () in
    if !pos + len > Bytes.length meta then fail "truncated metadata";
    let s = Bytes.sub_string meta !pos len in
    pos := !pos + len;
    s
  in
  let name = str () in
  let pad = u16 () in
  let pad_to = if pad = 0xffff then None else Some pad in
  let arity = u16 () in
  let attrs =
    List.init arity (fun _ ->
        let aname = str () in
        let ty =
          if !pos >= Bytes.length meta then fail "truncated metadata"
          else
            match Bytes.get_uint8 meta !pos with
            | 0 -> Schema.TNum
            | 1 -> Schema.TStr
            | t -> fail (Printf.sprintf "bad type tag %d" t)
        in
        incr pos;
        (aname, ty))
  in
  (Schema.make ~name attrs, pad_to)

let create ?pad_to ?(durable = false) env schema =
  let file = Heap_file.create ~durable env in
  if durable then Heap_file.set_meta file (encode_meta schema pad_to);
  { schema; env; file; pad_to }

let schema t = t.schema
let with_name t name = { t with schema = Schema.with_name t.schema name }
let env t = t.env
let file t = t.file
let pad_to t = t.pad_to
let is_durable t = Heap_file.is_durable t.file

let insert t tup =
  if Fuzzy.Degree.positive (Ftuple.degree tup) then
    Heap_file.append t.file (Codec.encode ?pad_to:t.pad_to tup)

let of_file ?pad_to env schema file = { schema; env; file; pad_to }

let of_list ?pad_to ?durable env schema tuples =
  let t = create ?pad_to ?durable env schema in
  List.iter (insert t) tuples;
  Buffer_pool.flush (Heap_file.pool t.file);
  t

let open_durable env ~fid ~meta ~pages =
  let schema, pad_to = decode_meta meta in
  let file = Heap_file.open_durable env ~fid ~pages in
  { schema; env; file; pad_to }

let cardinality t = Heap_file.num_records t.file
let num_pages t = Heap_file.num_pages t.file
let iter t f = Heap_file.iter t.file (fun r -> f (Codec.decode r))
let fold t ~init ~f = Heap_file.fold t.file ~init ~f:(fun acc r -> f acc (Codec.decode r))
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc tup -> tup :: acc))

let iter_via pool t f =
  for i = 0 to Heap_file.num_pages t.file - 1 do
    List.iter (fun r -> f (Codec.decode r)) (Heap_file.page_records_via pool t.file i)
  done

let destroy t = Heap_file.destroy t.file

module Cursor = struct
  type relation = t
  type t = Heap_file.Cursor.t

  let of_relation ?pool r = Heap_file.Cursor.of_file ?pool r.file
  let peek c = Option.map Codec.decode (Heap_file.Cursor.peek c)
  let next c = Option.map Codec.decode (Heap_file.Cursor.next c)
  let pos = Heap_file.Cursor.pos
  let seek = Heap_file.Cursor.seek
end

let pp ppf t =
  Format.fprintf ppf "%a@." Schema.pp t.schema;
  iter t (fun tup -> Format.fprintf ppf "  %a@." Ftuple.pp tup)
