open Storage

type t = {
  schema : Schema.t;
  env : Env.t;
  file : Heap_file.t;
  pad_to : int option;
}

let create ?pad_to env schema = { schema; env; file = Heap_file.create env; pad_to }
let schema t = t.schema
let with_name t name = { t with schema = Schema.with_name t.schema name }
let env t = t.env
let file t = t.file
let pad_to t = t.pad_to

let insert t tup =
  if Fuzzy.Degree.positive (Ftuple.degree tup) then
    Heap_file.append t.file (Codec.encode ?pad_to:t.pad_to tup)

let of_file ?pad_to env schema file = { schema; env; file; pad_to }

let of_list ?pad_to env schema tuples =
  let t = create ?pad_to env schema in
  List.iter (insert t) tuples;
  Buffer_pool.flush env.Env.pool;
  t

let cardinality t = Heap_file.num_records t.file
let num_pages t = Heap_file.num_pages t.file
let iter t f = Heap_file.iter t.file (fun r -> f (Codec.decode r))
let fold t ~init ~f = Heap_file.fold t.file ~init ~f:(fun acc r -> f acc (Codec.decode r))
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc tup -> tup :: acc))

let iter_via pool t f =
  for i = 0 to Heap_file.num_pages t.file - 1 do
    List.iter (fun r -> f (Codec.decode r)) (Heap_file.page_records_via pool t.file i)
  done

let destroy t = Heap_file.destroy t.file

module Cursor = struct
  type relation = t
  type t = Heap_file.Cursor.t

  let of_relation ?pool r = Heap_file.Cursor.of_file ?pool r.file
  let peek c = Option.map Codec.decode (Heap_file.Cursor.peek c)
  let next c = Option.map Codec.decode (Heap_file.Cursor.next c)
  let pos = Heap_file.Cursor.pos
  let seek = Heap_file.Cursor.seek
end

let pp ppf t =
  Format.fprintf ppf "%a@." Schema.pp t.schema;
  iter t (fun tup -> Format.fprintf ppf "  %a@." Ftuple.pp tup)
