(** The extended merge-join for fuzzy equi-joins (Section 3 of the paper).

    Hash joins are inapplicable in a fuzzy database — tuples with different
    attribute values (e.g. "young" and "about 35") may still join with a
    positive degree. Instead, both relations are sorted by the interval order
    of Definition 3.1 (support start, then support end) and swept: for each
    outer tuple [r], exactly the inner tuples in [Rng(r)] are examined. Inner
    tuples whose support ends before [b(r.X)] are dropped from the window
    permanently (they cannot join any later outer tuple either); the scan for
    [r] stops at the first inner tuple whose support begins after [e(r.X)].
    Dangling tuples inside the window are examined and skipped, as the paper
    describes. Each relation is read once after sorting, giving the
    O(n_R log n_R + n_S log n_S) response time of Section 3.

    Every entry point takes an optional [?pool]. With no pool — or a pool of
    one domain — execution is exactly the sequential algorithm above. With
    [Task_pool.domains pool > 1], sorting uses the domain-parallel
    {!Storage.External_sort.sort_keyed} and the sweep is range-partitioned
    across domains (see {!partition_sweep}); answer tuples and membership
    degrees are identical either way.

    Every entry point also takes an optional [?cancel] token
    ({!Storage.Cancel}): the sort comparators and the per-outer-tuple sweep
    loop poll it, so a deadline or client cancellation unwinds with
    {!Storage.Cancel.Cancelled} within one poll period. The sorted
    temporaries of {!join_eq}/{!with_indicator} are destroyed on that path
    too. [None] costs one branch per poll site. *)

val sort_by :
  ?pool:Storage.Task_pool.t -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t -> ?batch:bool ->
  Relation.t -> attr:int -> mem_pages:int -> Relation.t
(** Sort a relation by the Definition 3.1 order of the given attribute using
    the external sorter (accounted to the [Sort] phase). The result is a
    temporary relation owned by the caller. With [?trace], a
    ["sort <relation>"] span wraps the sorter's own spans. With
    [~batch:true] (and no multi-domain pool, which already decorates) the
    sequential columnar {!Storage.External_sort.sort_support} is used: keys
    are decoded once per record into float columns instead of twice per
    comparison; the key order is identical, only equal-key ties may land in
    a different order. *)

val sweep_batch :
  ?cancel:Storage.Cancel.t -> ?trace:Storage.Trace.t ->
  stats:Storage.Iostats.t -> outer_b:Batch.t -> inner_b:Batch.t ->
  outer_attr:int -> inner_attr:int ->
  emit:(int -> idx:int array -> n:int -> d_eq:float array -> unit) ->
  unit -> unit
(** The columnar window sweep over ⪯-sorted batches: bit-identical window
    membership, comparison / fuzzy-op accounting and per-pair degrees to
    the scalar sweep, with the window kept as a reused selection vector of
    inner row indices. [emit r_i ~idx ~n ~d_eq] fires once per outer row;
    the arrays are reused across rows and must not be retained.
    Cancellation is polled once per {!Batch.batch_rows} outer rows; with
    [?trace] each such chunk records a [batch] child span. Exposed for the
    kernel micro-bench and the bit-identity tests. *)

val partition_sweep :
  domains:int ->
  ('a * Fuzzy.Interval.t) array ->
  ('b * Fuzzy.Interval.t) array ->
  (('a * Fuzzy.Interval.t) array * ('b * Fuzzy.Interval.t) array) array
(** Range-partition a sorted outer/inner pair for the parallel sweep. The
    outer tuples (paired with their join-attribute supports, in Definition
    3.1 order) are cut into [domains] contiguous slices; each slice is paired
    with every inner tuple whose support window can overlap some outer tuple
    of the slice, i.e. [lo(s) <= max hi(r)] and [hi(s) >= min lo(r)] over the
    slice. Inner tuples whose window straddles a cut point are replicated
    into every slice they can reach, so no sweep window is ever split across
    a partition boundary. Pure; exposed for the replication unit test. *)

val sweep_sorted :
  ?pool:Storage.Task_pool.t -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t -> ?batch:bool ->
  ?f_batch:
    (Batch.t -> int -> inner:Batch.t -> idx:int array -> n:int ->
     d_eq:float array -> unit) ->
  outer:Relation.t -> inner:Relation.t -> outer_attr:int -> inner_attr:int ->
  mem_pages:int ->
  f:(Ftuple.t -> (Ftuple.t * Fuzzy.Degree.t) list -> unit) -> unit -> unit
(** Merge phase over relations already sorted on the join attributes:
    [f r rng] is called once per outer tuple in sort order, where [rng] lists
    the window tuples paired with their equality degrees [d(r.X = s.X)]
    (0 for dangling tuples). Every examined pair counts one fuzzy op;
    accounted to the [Merge] phase. The two scoped cursor pools are sized
    from [mem_pages] ([mem_pages / 2] pages each). With a multi-domain
    [?pool], partitions sweep in parallel on private stats (phase-tagged
    [Merge], merged after the batch joins) and [f] still runs on the
    caller's domain in global outer sort order. With [?trace], the
    sequential path records one [sweep] span; the parallel path records
    [scan outer]/[scan inner] spans, one [sweep-k]/[sweep] span per
    partition on its own lane, and an [emit] span for the callback pass.

    With [~batch:true] the sweep runs columnar ({!sweep_batch}) over
    batches decoded once per input — identical answers, degrees and
    operation counts. A handler with a vectorized form can supply
    [?f_batch], called with the window's selection vector instead of an
    [rng] list (sequential path only; the parallel path always bridges
    partition results to [f] on the coordinator). Without [?f_batch] the
    scalar [f] receives the same insertion-ordered [rng] lists either
    way. *)

val join_eq :
  ?name:string -> ?pool:Storage.Task_pool.t -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t -> ?batch:bool ->
  outer:Relation.t -> inner:Relation.t -> outer_attr:int ->
  inner_attr:int -> mem_pages:int ->
  ?residual:(Ftuple.t -> Ftuple.t -> Fuzzy.Degree.t) -> unit -> Relation.t
(** Full extended merge-join: sort both inputs, sweep, and materialise
    matches with degree [min(D_r, D_s, d(r.X = s.X), residual r s)].
    Temporary sorted files are destroyed before returning. *)

val with_indicator :
  ?name:string -> ?pool:Storage.Task_pool.t -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t -> ?batch:bool ->
  outer:Relation.t -> inner:Relation.t -> outer_attr:int ->
  inner_attr:int -> mem_pages:int ->
  ?residual:(Ftuple.t -> Ftuple.t -> Fuzzy.Degree.t) -> unit -> Relation.t
(** Variant with the fuzzy-equality-indicator prefilter of Zhang & Wang
    (reference [42] of the paper): before computing the exact intersection
    height of a candidate pair, a cheap core/support test classifies pairs
    whose degree is certainly 1 or certainly 0, skipping the full
    computation. Results are identical to {!join_eq}. *)
