(** Branch-light array kernels over {!Batch} columns.

    Each kernel replicates the boxed path's IEEE-754 arithmetic exactly —
    same expressions, same branch structure as {!Fuzzy.Trapezoid} /
    {!Fuzzy.Fuzzy_compare} on trapezoid operands — so the batch engine's
    degrees are bit-identical to the scalar engine's (a qcheck property).
    The three hot loops of the merge pipeline use them: fuzzy predicate
    evaluation ({!mem_into}, {!cmp_at}), t-norm / co-norm degree combination
    ({!conj_into}, {!disj_reduce}), and the window sweep's per-pair equality
    degrees ({!cmp_at} from [Join_merge.sweep_batch]). *)

open Fuzzy

val mem_s : float -> float -> float -> float -> float -> float
(** [mem_s a b c d x] = [Trapezoid.mem (make a b c d) x]. *)

val cmp :
  Fuzzy_compare.op ->
  float -> float -> float -> float -> float -> float -> float -> float ->
  float
(** [cmp op ua ub uc ud va vb vc vd] = [Fuzzy_compare.degree op u v] for
    trapezoid operands (crisp [Int]s are the degenerate [a = b = c = d]
    case), bit for bit. *)

val cmp_at : Fuzzy_compare.op -> Batch.col -> int -> Batch.col -> int -> float
(** [cmp_at op u i v j]: [cmp] over rows [i] of [u] and [j] of [v]. Only
    valid where both rows' {!Batch.ok} is set. *)

val mem_into : Trapezoid.t -> xs:float array -> n:int -> dst:float array -> unit
(** Membership of each of the first [n] points of [xs] in the trapezoid:
    the columnar fuzzy-predicate kernel. *)

val conj_into : src:float array -> dst:float array -> n:int -> unit
(** In-place t-norm: [dst.(i) <- min dst.(i) src.(i)] over the first [n]. *)

val disj_reduce : xs:float array -> n:int -> float
(** Co-norm reduction: [max] of the first [n] degrees (0 when [n = 0]). *)

val select_positive : xs:float array -> n:int -> sel:int array -> int
(** Write the indices of the strictly positive entries among the first [n]
    into the selection vector [sel] (which must have capacity [n]); returns
    how many were selected. *)
