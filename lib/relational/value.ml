open Fuzzy

type t = Int of int | Str of string | Fuzzy of Possibility.t

let crisp_num x = Fuzzy (Possibility.crisp x)
let of_trapezoid tr = Fuzzy (Possibility.trap tr)

let to_possibility = function
  | Int i -> Some (Possibility.crisp (float_of_int i))
  | Fuzzy p -> Some p
  | Str _ -> None

let crisp_bool b = if b then Degree.one else Degree.zero

let compare_degree op v1 v2 =
  match (v1, v2) with
  | Str s1, Str s2 ->
      let c = String.compare s1 s2 in
      crisp_bool
        (match op with
        | Fuzzy_compare.Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0)
  | Str _, (Int _ | Fuzzy _) | (Int _ | Fuzzy _), Str _ -> Degree.zero
  | Fuzzy p1, Fuzzy p2 -> Fuzzy_compare.degree op p1 p2
  | Int i, Fuzzy p2 ->
      Fuzzy_compare.degree op (Possibility.crisp (float_of_int i)) p2
  | Fuzzy p1, Int j ->
      Fuzzy_compare.degree op p1 (Possibility.crisp (float_of_int j))
  | Int i, Int j ->
      let c = Int.compare i j in
      crisp_bool
        (match op with
        | Fuzzy_compare.Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0)

let equal a b =
  match (a, b) with
  | Int i, Int j -> i = j
  | Str s, Str t -> String.equal s t
  | Fuzzy p, Fuzzy q -> Possibility.equal p q
  (* An [Int] and the equivalent crisp [Fuzzy] denote the same value. *)
  | Int i, Fuzzy p | Fuzzy p, Int i ->
      (match Possibility.crisp_value p with
      | Some v -> v = float_of_int i
      | None -> false)
  | Str _, (Int _ | Fuzzy _) | (Int _ | Fuzzy _), Str _ -> false

let rank = function Str _ -> 0 | Int _ | Fuzzy _ -> 1

let compare_structural a b =
  if equal a b then 0
  else
    match (a, b) with
    | Str s, Str t -> String.compare s t
    | Int i, Int j -> Int.compare i j
    | Fuzzy p, Fuzzy q -> Possibility.compare_structural p q
    | Int i, Fuzzy q ->
        Possibility.compare_structural (Possibility.crisp (float_of_int i)) q
    | Fuzzy p, Int j ->
        Possibility.compare_structural p (Possibility.crisp (float_of_int j))
    | (Str _ | Int _ | Fuzzy _), _ -> Int.compare (rank a) (rank b)

let support = function
  | Int i -> Interval.point (float_of_int i)
  | Fuzzy p -> Possibility.support p
  | Str s -> Interval.point (float_of_int (Hashtbl.hash s))

let pp ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Str s -> Format.fprintf ppf "%S" s
  | Fuzzy p -> Possibility.pp ppf p

let to_string v = Format.asprintf "%a" pp v
