type t = { values : Value.t array; degree : Fuzzy.Degree.t }

let make values degree = { values; degree }
let value t i = t.values.(i)
let degree t = t.degree
let with_degree t degree = { t with degree }

let concat a b degree = { values = Array.append a.values b.values; degree }

let project t positions =
  { t with values = Array.of_list (List.map (Array.get t.values) positions) }

let values_equal a b =
  Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let compare_values a b =
  let la = Array.length a.values and lb = Array.length b.values in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        match Value.compare_structural a.values.(i) b.values.(i) with
        | 0 -> go (i + 1)
        | c -> c
    in
    go 0

let pp ppf t =
  Format.fprintf ppf "(%s | D=%a)"
    (String.concat ", "
       (Array.to_list (Array.map Value.to_string t.values)))
    Fuzzy.Degree.pp t.degree
