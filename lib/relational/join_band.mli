(** Band joins and interval (valid-time style) joins.

    Section 3 of the paper relates the fuzzy equi-join to two crisp
    relatives: the band join of DeWitt et al. (every value is a point, all
    join intervals have the same fixed length) and the valid-time natural
    join of temporal databases (explicit intervals of arbitrary length).
    Both are special cases of the interval sweep that drives the extended
    merge-join, and both are provided here on top of the same machinery —
    with boolean (degree 0/1) match semantics, since the intervals are crisp.

    These exist both as usable operators and as an executable statement of
    the paper's claim that "fuzzy joins are more general than the two kinds
    of joins". *)

val band_join :
  ?name:string -> outer:Relation.t -> inner:Relation.t -> outer_attr:int ->
  inner_attr:int -> mem_pages:int -> c1:float -> c2:float -> unit -> Relation.t
(** Pairs (r, s) with [r.x - c1 <= s.x <= r.x + c2] (DeWitt et al.'s band
    predicate), evaluated by sorting on the Definition 3.1 order of the
    widened supports and sweeping once. Attributes must be numeric; fuzzy
    values participate through their support centers. Result degree =
    [min(D_r, D_s)]. Raises [Invalid_argument] if [c1] or [c2] is
    negative. *)

val interval_join :
  ?name:string -> outer:Relation.t -> inner:Relation.t -> outer_attr:int ->
  inner_attr:int -> mem_pages:int -> unit -> Relation.t
(** Pairs whose attribute supports intersect — the valid-time natural join
    when the attributes hold [TRAP(b, b, e, e)] intervals. Result degree =
    [min(D_r, D_s)] for overlapping pairs. *)
