(** Fuzzy tuples: attribute values plus the membership degree [D].

    A tuple belongs to its relation iff its degree is positive; the degree of
    an answer tuple is the satisfaction degree of the query condition
    (Section 2.2 of the paper). *)

type t = { values : Value.t array; degree : Fuzzy.Degree.t }

val make : Value.t array -> Fuzzy.Degree.t -> t
val value : t -> int -> Value.t
val degree : t -> Fuzzy.Degree.t
val with_degree : t -> Fuzzy.Degree.t -> t
val concat : t -> t -> Fuzzy.Degree.t -> t
(** Join-result tuple with an explicitly computed degree. *)

val project : t -> int list -> t
(** Keep the listed positions (in order); the degree is preserved — duplicate
    elimination with max happens in {!Algebra.dedup_max}. *)

val values_equal : t -> t -> bool
(** Structural equality of the value vectors, ignoring degrees (the notion of
    "identical pairs of names" used when eliminating duplicates). *)

val compare_values : t -> t -> int
val pp : Format.formatter -> t -> unit
