open Storage
open Fuzzy

let interval_key ~attr r = Value.support (Ftuple.value (Codec.decode r) attr)

let sort_by ?pool ?trace ?cancel ?(batch = false) rel ~attr ~mem_pages =
  let env = Relation.env rel in
  Buffer_pool.flush (Heap_file.pool (Relation.file rel));
  let name = "sort " ^ Schema.name (Relation.schema rel) in
  Trace.with_span trace ~stats:env.Env.stats ~pool:env.Env.pool name
    (fun () ->
      (* Cancellation rides the comparator: the external sorter calls it
         O(n log n) times spread across run formation and every merge pass,
         so a long spilling sort unwinds within a poll period of the deadline
         without the sorter itself knowing about tokens. *)
      let sorted =
        match pool with
        | Some p when Task_pool.domains p > 1 ->
            let compare_key a b =
              Cancel.check cancel;
              Interval.compare_lex a b
            in
            External_sort.sort_keyed ~pool:p ?trace (Relation.file rel)
              ~key:(interval_key ~attr) ~compare_key ~mem_pages
        | _ when batch ->
            (* Columnar decorated sort: the key is decoded once per record
               per phase into unboxed float columns instead of twice per
               comparison; cancellation is polled per batch inside the
               sorter. *)
            let key r =
              let i = interval_key ~attr r in
              (Interval.lo i, Interval.hi i)
            in
            External_sort.sort_support ?trace ?cancel (Relation.file rel)
              ~key ~mem_pages
        | _ ->
            let compare_records r1 r2 =
              Cancel.check cancel;
              let v1 = Ftuple.value (Codec.decode r1) attr
              and v2 = Ftuple.value (Codec.decode r2) attr in
              Interval.compare_lex (Value.support v1) (Value.support v2)
            in
            External_sort.sort ?trace (Relation.file rel)
              ~compare:compare_records ~mem_pages
      in
      let out =
        Relation.of_file ?pad_to:(Relation.pad_to rel) env
          (Relation.schema rel) sorted
      in
      Trace.set_rows trace (Relation.cardinality out);
      out)

(* The window sweep of Section 3, abstracted over the tuple sources so the
   sequential (cursor-backed) and parallel (array-backed, one per partition)
   paths share the exact same comparison / fuzzy-op behaviour. *)
let sweep_core ?cancel ~stats ~next_outer ~peek_inner ~advance_inner
    ~outer_attr ~inner_attr ~f () =
  (* Window entries: inner tuple with the support of its join value. *)
  let window = ref [] in
  let rec next_r () =
    Cancel.check cancel;
    match next_outer () with
    | None -> ()
    | Some r ->
        let ri = Value.support (Ftuple.value r outer_attr) in
        let b_r = Interval.lo ri and e_r = Interval.hi ri in
        (* Drop window tuples ending before b(r.X): since outer support
           starts are non-decreasing, they cannot join this or any later
           outer tuple. *)
        window :=
          List.filter
            (fun (_, si) ->
              Iostats.record_comparison stats;
              Interval.hi si >= b_r)
            !window;
        (* Extend the window while the next inner tuple begins no later
           than e(r.X); later inner tuples begin after e(r.X) and
           terminate the scan for r. *)
        let rec extend () =
          match peek_inner () with
          | Some s ->
              let si = Value.support (Ftuple.value s inner_attr) in
              Iostats.record_comparison stats;
              if Interval.lo si <= e_r then begin
                advance_inner ();
                if Interval.hi si >= b_r then window := !window @ [ (s, si) ];
                extend ()
              end
          | None -> ()
        in
        extend ();
        let rng =
          List.map
            (fun (s, si) ->
              Iostats.record_comparison stats;
              if Interval.overlaps ri si then begin
                Iostats.record_fuzzy_op stats;
                ( s,
                  Value.compare_degree Fuzzy_compare.Eq
                    (Ftuple.value r outer_attr)
                    (Ftuple.value s inner_attr) )
              end
              else (s, Degree.zero))
            !window
        in
        f r rng;
        next_r ()
  in
  next_r ()

(* The columnar window sweep: bit-identical to [sweep_core] — same window
   membership, same comparison / fuzzy-op accounting (bulk-charged per
   outer tuple), same per-pair degree arithmetic (the trapezoid fast path
   of [Batch_kernels.cmp_at] replicates the boxed float operations exactly;
   string / discrete operands fall back to [Value.compare_degree]) — but
   runs over unboxed support and parameter columns. The window is a
   selection vector of inner row indices reused across outer tuples, and
   cancellation is polled once per [Batch.batch_rows] outer rows instead of
   per tuple; with [?trace] each such chunk records a [batch] child span
   carrying its row count. [emit r_i ~idx ~n ~d_eq] is called once per
   outer row with the window indices [idx.(0 .. n-1)] (in the scalar
   window's insertion order) and their equality degrees; the arrays are
   reused, so handlers must not retain them. *)
let sweep_batch ?cancel ?trace ~stats ~outer_b ~inner_b ~outer_attr
    ~inner_attr ~emit () =
  let n_out = Batch.length outer_b and n_in = Batch.length inner_b in
  let ocol = Batch.col outer_b outer_attr
  and icol = Batch.col inner_b inner_attr in
  let o_lo = ocol.Batch.lo and o_hi = ocol.Batch.hi in
  let i_lo = icol.Batch.lo and i_hi = icol.Batch.hi in
  let cap = ref (Int.max 16 (Int.min 1024 (Int.max 1 n_in))) in
  let win = ref (Array.make !cap 0) in
  let deq = ref (Array.make !cap 0.0) in
  let win_n = ref 0 in
  let next_inner = ref 0 in
  let ensure n =
    if n > !cap then begin
      let cap' = Int.max n (2 * !cap) in
      let w = Array.make cap' 0 in
      Array.blit !win 0 w 0 !win_n;
      win := w;
      deq := Array.make cap' 0.0;
      cap := cap'
    end
  in
  let chunk_start = ref 0 in
  while !chunk_start < n_out do
    Cancel.check cancel;
    let chunk_end = Int.min n_out (!chunk_start + Batch.batch_rows) in
    Trace.with_span trace ~stats "batch" (fun () ->
        for i = !chunk_start to chunk_end - 1 do
          let b_r = Array.unsafe_get o_lo i
          and e_r = Array.unsafe_get o_hi i in
          (* 1. Evict window members ending before b(r.X); one comparison
             is charged per member, like the scalar filter. *)
          let w = !win in
          let wn = !win_n in
          let k = ref 0 in
          for j = 0 to wn - 1 do
            let s = Array.unsafe_get w j in
            if Array.unsafe_get i_hi s >= b_r then begin
              Array.unsafe_set w !k s;
              incr k
            end
          done;
          Iostats.record_comparisons stats wn;
          win_n := !k;
          (* 2. Extend while the next inner row begins no later than
             e(r.X); the terminating peek charges one comparison, matching
             the scalar extend loop. *)
          let continue = ref true in
          while !continue && !next_inner < n_in do
            Iostats.record_comparison stats;
            let s = !next_inner in
            if Array.unsafe_get i_lo s <= e_r then begin
              if Array.unsafe_get i_hi s >= b_r then begin
                ensure (!win_n + 1);
                !win.(!win_n) <- s;
                incr win_n
              end;
              incr next_inner
            end
            else continue := false
          done;
          (* 3. Per-pair equality degree over the window: one comparison
             per member, one fuzzy op per overlapping pair. *)
          let w = !win and dq = !deq in
          let wn = !win_n in
          let r_ok = Batch.ok ocol i in
          let fuzz = ref 0 in
          for j = 0 to wn - 1 do
            let s = Array.unsafe_get w j in
            if
              b_r <= Array.unsafe_get i_hi s
              && Array.unsafe_get i_lo s <= e_r
            then begin
              incr fuzz;
              Array.unsafe_set dq j
                (if r_ok && Batch.ok icol s then
                   Batch_kernels.cmp_at Fuzzy_compare.Eq ocol i icol s
                 else
                   Value.compare_degree Fuzzy_compare.Eq
                     (Ftuple.value (Batch.row outer_b i) outer_attr)
                     (Ftuple.value (Batch.row inner_b s) inner_attr))
            end
            else Array.unsafe_set dq j 0.0
          done;
          Iostats.record_comparisons stats wn;
          Iostats.record_fuzzy_ops stats !fuzz;
          emit i ~idx:w ~n:wn ~d_eq:dq
        done;
        Trace.set_rows trace (chunk_end - !chunk_start));
    chunk_start := chunk_end
  done

(* Cut the outer tuples into [domains] contiguous slices of the sorted order
   and pair each with the inner tuples that can reach it: s can join some r
   of a slice only if lo(s) <= max hi(r) and hi(s) >= min lo(r) over the
   slice (min lo is the first tuple's, the sort is lexicographic on
   (lo, hi); max hi needs a fold — hi is not monotone). Inner tuples whose
   support straddles a cut point are replicated into every slice they can
   reach, so no window is ever split: each slice's sweep sees a superset of
   its overlap pairs, and non-overlapping extras contribute degree 0 exactly
   like the dangling tuples of the sequential sweep. *)
let partition_sweep ~domains outs ins =
  let n = Array.length outs in
  let p = Int.max 1 (Int.min domains (Int.max 1 n)) in
  Array.init p (fun k ->
      let start = k * n / p and stop = (k + 1) * n / p in
      let o_slice = Array.sub outs start (stop - start) in
      if Array.length o_slice = 0 then (o_slice, [||])
      else begin
        let b_k = Interval.lo (snd o_slice.(0)) in
        let max_hi =
          Array.fold_left
            (fun acc (_, i) -> Float.max acc (Interval.hi i))
            Float.neg_infinity o_slice
        in
        let sel = ref [] in
        (try
           Array.iter
             (fun (s, si) ->
               if Interval.lo si > max_hi then raise Exit
               else if Interval.hi si >= b_k then sel := (s, si) :: !sel)
             ins
         with Exit -> ());
        (o_slice, Array.of_list (List.rev !sel))
      end)

let scan_decoded ?cancel rel ~pool ~attr =
  let acc = ref [] in
  let c = Relation.Cursor.of_relation ~pool rel in
  let rec go () =
    Cancel.check cancel;
    match Relation.Cursor.next c with
    | None -> ()
    | Some t ->
        acc := (t, Value.support (Ftuple.value t attr)) :: !acc;
        go ()
  in
  go ();
  Array.of_list (List.rev !acc)

(* Bridge a [sweep_batch] emission to the scalar [f r rng] callback: the
   window's selection vector materialises as the same insertion-ordered
   [rng] list the scalar sweep builds. *)
let emit_to_f ~outer_b ~inner_b ~f i ~idx ~n ~d_eq =
  let rec build j =
    if j >= n then [] else (Batch.row inner_b idx.(j), d_eq.(j)) :: build (j + 1)
  in
  f (Batch.row outer_b i) (build 0)

let sweep_sorted ?pool ?trace ?cancel ?(batch = false) ?f_batch ~outer ~inner
    ~outer_attr ~inner_attr ~mem_pages ~f () =
  let env = Relation.env outer in
  let stats = env.Env.stats in
  Buffer_pool.flush (Heap_file.pool (Relation.file outer));
  Buffer_pool.flush (Heap_file.pool (Relation.file inner));
  (* Each relation is read strictly once in sorted order; the window of
     candidate inner tuples is kept decoded in memory, so the merge phase
     only needs scan buffers: the memory budget is split between the two
     scoped cursor pools, each over its own file's backend (durable
     relations and temporary intermediates may live on different disks). *)
  let capacity = Int.max 1 (mem_pages / 2) in
  Iostats.timed stats Iostats.Merge (fun () ->
      let outer_pool =
        Buffer_pool.create (Heap_file.disk (Relation.file outer)) ~capacity
      in
      let inner_pool =
        Buffer_pool.create (Heap_file.disk (Relation.file inner)) ~capacity
      in
      match pool with
      | Some p when Task_pool.domains p > 1 ->
          (* Partitioned parallel sweep: the coordinator materialises both
             sorted relations (decoding each tuple once and counting the
             same one-scan-each page reads as the sequential sweep), cuts
             them with {!partition_sweep}, and each pool job runs the
             sequential window algorithm on its own slice pair with private
             stats. [f] is then applied on the coordinator in global outer
             sort order — partition results concatenate in slice order —
             so answer tuples and degrees are identical to the sequential
             sweep. *)
          let outs =
            Trace.with_span trace ~stats ~pool:outer_pool "scan outer"
              (fun () ->
                let outs =
                  scan_decoded ?cancel outer ~pool:outer_pool ~attr:outer_attr
                in
                Trace.set_rows trace (Array.length outs);
                outs)
          in
          let ins =
            Trace.with_span trace ~stats ~pool:inner_pool "scan inner"
              (fun () ->
                let ins =
                  scan_decoded ?cancel inner ~pool:inner_pool ~attr:inner_attr
                in
                Trace.set_rows trace (Array.length ins);
                ins)
          in
          let parts = partition_sweep ~domains:(Task_pool.domains p) outs ins in
          let jobs =
            List.map
              (fun (o_slice, i_slice) jtrace ->
                let pstats = Iostats.create () in
                (* Sweep work must count as [Merge] in the merged totals,
                   matching the sequential sweep's phase attribution. *)
                Iostats.set_phase pstats (Some Iostats.Merge);
                Trace.with_span jtrace ~stats:pstats "sweep" (fun () ->
                    let results = ref [] in
                    let collect r rng = results := (r, rng) :: !results in
                    (if batch then begin
                       (* Columnar partition sweep: each job builds one
                          batch per slice and bridges emissions to the same
                          (r, rng) lists as the scalar jobs, so the
                          coordinator's [f] pass is engine-independent. *)
                       let ob = Batch.of_rows (Array.map fst o_slice) in
                       let ib = Batch.of_rows (Array.map fst i_slice) in
                       sweep_batch ?cancel ?trace:jtrace ~stats:pstats
                         ~outer_b:ob ~inner_b:ib ~outer_attr ~inner_attr
                         ~emit:
                           (emit_to_f ~outer_b:ob ~inner_b:ib ~f:collect)
                         ()
                     end
                     else
                       let oi = ref 0 and ii = ref 0 in
                       sweep_core ?cancel ~stats:pstats
                         ~next_outer:(fun () ->
                           if !oi < Array.length o_slice then begin
                             let t = fst o_slice.(!oi) in
                             incr oi;
                             Some t
                           end
                           else None)
                         ~peek_inner:(fun () ->
                           if !ii < Array.length i_slice then
                             Some (fst i_slice.(!ii))
                           else None)
                         ~advance_inner:(fun () -> incr ii)
                         ~outer_attr ~inner_attr ~f:collect ());
                    Trace.set_rows jtrace (Array.length o_slice);
                    (List.rev !results, pstats)))
              (Array.to_list parts)
          in
          let batches = Task_pool.run_list_traced ?trace ~label:"sweep" p jobs in
          Trace.with_span trace ~stats "emit" (fun () ->
              List.iter
                (fun (results, pstats) ->
                  Iostats.add_into stats pstats;
                  List.iter (fun (r, rng) -> f r rng) results)
                batches)
      | _ when batch ->
          (* Sequential columnar sweep: both sorted inputs are decoded once
             into batches (columns extracted lazily per attribute), then the
             window runs over unboxed support columns. Handlers with a
             vectorized form supply [f_batch]; others get the scalar [f]
             through the bridging emitter. *)
          let scan which rel spool =
            Trace.with_span trace ~stats ~pool:spool ("scan " ^ which)
              (fun () ->
                let b = Batch.of_relation ?cancel ~pool:spool rel in
                Trace.set_rows trace (Batch.length b);
                b)
          in
          let outer_b = scan "outer" outer outer_pool in
          let inner_b = scan "inner" inner inner_pool in
          Trace.with_span trace ~stats "sweep" (fun () ->
              let emit =
                match f_batch with
                | Some fb ->
                    fun i ~idx ~n ~d_eq ->
                      fb outer_b i ~inner:inner_b ~idx ~n ~d_eq
                | None -> emit_to_f ~outer_b ~inner_b ~f
              in
              sweep_batch ?cancel ?trace ~stats ~outer_b ~inner_b ~outer_attr
                ~inner_attr ~emit ();
              Trace.set_rows trace (Batch.length outer_b))
      | _ ->
          Trace.with_span trace ~stats ~pool:outer_pool "sweep" (fun () ->
              let rc = Relation.Cursor.of_relation ~pool:outer_pool outer in
              let sc = Relation.Cursor.of_relation ~pool:inner_pool inner in
              sweep_core ?cancel ~stats
                ~next_outer:(fun () -> Relation.Cursor.next rc)
                ~peek_inner:(fun () -> Relation.Cursor.peek sc)
                ~advance_inner:(fun () -> ignore (Relation.Cursor.next sc))
                ~outer_attr ~inner_attr ~f ()))

let join_with_rng ?name ?pool ?trace ?cancel ?(batch = false) ~outer ~inner
    ~outer_attr ~inner_attr ~mem_pages ?residual ~rng_degree () =
  let env = Relation.env outer in
  let out_schema =
    Schema.concat
      ~name:(Option.value name ~default:"join")
      (Relation.schema outer) (Relation.schema inner)
  in
  Trace.with_span trace ~stats:env.Env.stats
    ("join " ^ Schema.name out_schema)
    (fun () ->
      let out = Relation.create env out_schema in
      (* The sorted temporaries must not outlive the join even when the
         sweep unwinds with [Cancel.Cancelled]: a server worker's
         environment lives for many queries, and cancelled queries must not
         leak their intermediate files. *)
      let temps = ref [] in
      Fun.protect
        ~finally:(fun () -> List.iter Relation.destroy !temps)
        (fun () ->
          let sorted_r =
            sort_by ?pool ?trace ?cancel ~batch outer ~attr:outer_attr
              ~mem_pages
          in
          temps := sorted_r :: !temps;
          let sorted_s =
            sort_by ?pool ?trace ?cancel ~batch inner ~attr:inner_attr
              ~mem_pages
          in
          temps := sorted_s :: !temps;
          let pair r s d_eq =
            let d_eq = rng_degree r s d_eq in
            if Degree.positive d_eq then begin
              let d_res =
                match residual with None -> Degree.one | Some f -> f r s
              in
              let d =
                Degree.conj_list
                  [ Ftuple.degree r; Ftuple.degree s; d_eq; d_res ]
              in
              if Degree.positive d then
                Relation.insert out (Ftuple.concat r s d)
            end
          in
          (* Batch fast path: same per-pair evaluation, but straight off the
             window's selection vector — no [rng] list is built. *)
          let f_batch ob i ~inner:ib ~idx ~n ~d_eq =
            let r = Batch.row ob i in
            for j = 0 to n - 1 do
              pair r (Batch.row ib idx.(j)) d_eq.(j)
            done
          in
          sweep_sorted ?pool ?trace ?cancel ~batch ~f_batch ~outer:sorted_r
            ~inner:sorted_s ~outer_attr ~inner_attr ~mem_pages ()
            ~f:(fun r rng -> List.iter (fun (s, d_eq) -> pair r s d_eq) rng));
      Trace.set_rows trace (Relation.cardinality out);
      out)

let join_eq ?name ?pool ?trace ?cancel ?batch ~outer ~inner ~outer_attr
    ~inner_attr ~mem_pages ?residual () =
  join_with_rng ?name ?pool ?trace ?cancel ?batch ~outer ~inner ~outer_attr
    ~inner_attr ~mem_pages ?residual ~rng_degree:(fun _ _ d -> d) ()

let with_indicator ?name ?pool ?trace ?cancel ?batch ~outer ~inner ~outer_attr
    ~inner_attr ~mem_pages ?residual () =
  let indicator r s d_exact =
    (* Fuzzy-equality indicator (Zhang & Wang [42]): overlapping cores mean
       degree 1, disjoint supports mean degree 0; only the remaining pairs
       need the exact intersection height, which [sweep_sorted] already
       computed as [d_exact]. The classification is still performed here so
       the identical-result property is tested, while a production system
       would skip the exact computation. *)
    match
      ( Value.to_possibility (Ftuple.value r outer_attr),
        Value.to_possibility (Ftuple.value s inner_attr) )
    with
    | Some (Possibility.Trap a), Some (Possibility.Trap b) ->
        if Interval.overlaps (Trapezoid.core a) (Trapezoid.core b) then
          Degree.one
        else if not (Interval.overlaps (Trapezoid.support a) (Trapezoid.support b))
        then Degree.zero
        else d_exact
    | _ -> d_exact
  in
  join_with_rng ?name ?pool ?trace ?cancel ?batch ~outer ~inner ~outer_attr
    ~inner_attr ~mem_pages ?residual ~rng_degree:indicator ()
