open Storage
open Fuzzy

let sort_by rel ~attr ~mem_pages =
  let env = Relation.env rel in
  Buffer_pool.flush env.Env.pool;
  let compare_records r1 r2 =
    let v1 = Ftuple.value (Codec.decode r1) attr
    and v2 = Ftuple.value (Codec.decode r2) attr in
    Interval.compare_lex (Value.support v1) (Value.support v2)
  in
  let sorted =
    External_sort.sort (Relation.file rel) ~compare:compare_records ~mem_pages
  in
  Relation.of_file ?pad_to:(Relation.pad_to rel) env (Relation.schema rel) sorted

let sweep_sorted ~outer ~inner ~outer_attr ~inner_attr ~mem_pages ~f =
  ignore mem_pages;
  let env = Relation.env outer in
  let stats = env.Env.stats in
  Buffer_pool.flush env.Env.pool;
  Buffer_pool.flush (Relation.env inner).Env.pool;
  Iostats.timed stats Iostats.Merge (fun () ->
      (* Each relation is read strictly once in sorted order; the window of
         candidate inner tuples is kept decoded in memory, so tiny scoped
         pools suffice (the paper's claim: one scan of both R and S). *)
      let outer_pool = Buffer_pool.create env.Env.disk ~capacity:2 in
      let inner_pool =
        Buffer_pool.create (Relation.env inner).Env.disk ~capacity:2
      in
      let rc = Relation.Cursor.of_relation ~pool:outer_pool outer in
      let sc = Relation.Cursor.of_relation ~pool:inner_pool inner in
      (* Window entries: inner tuple with the support of its join value. *)
      let window = ref [] in
      let rec next_r () =
        match Relation.Cursor.next rc with
        | None -> ()
        | Some r ->
            let ri = Value.support (Ftuple.value r outer_attr) in
            let b_r = Interval.lo ri and e_r = Interval.hi ri in
            (* Drop window tuples ending before b(r.X): since outer support
               starts are non-decreasing, they cannot join this or any later
               outer tuple. *)
            window :=
              List.filter
                (fun (_, si) ->
                  Iostats.record_comparison stats;
                  Interval.hi si >= b_r)
                !window;
            (* Extend the window while the next inner tuple begins no later
               than e(r.X); later inner tuples begin after e(r.X) and
               terminate the scan for r. *)
            let rec extend () =
              match Relation.Cursor.peek sc with
              | Some s ->
                  let si = Value.support (Ftuple.value s inner_attr) in
                  Iostats.record_comparison stats;
                  if Interval.lo si <= e_r then begin
                    ignore (Relation.Cursor.next sc);
                    if Interval.hi si >= b_r then window := !window @ [ (s, si) ];
                    extend ()
                  end
              | None -> ()
            in
            extend ();
            let rng =
              List.map
                (fun (s, si) ->
                  Iostats.record_comparison stats;
                  if Interval.overlaps ri si then begin
                    Iostats.record_fuzzy_op stats;
                    ( s,
                      Value.compare_degree Fuzzy_compare.Eq
                        (Ftuple.value r outer_attr)
                        (Ftuple.value s inner_attr) )
                  end
                  else (s, Degree.zero))
                !window
            in
            f r rng;
            next_r ()
      in
      next_r ())

let join_with_rng ?name ~outer ~inner ~outer_attr ~inner_attr ~mem_pages
    ?residual ~rng_degree () =
  let env = Relation.env outer in
  let out_schema =
    Schema.concat
      ~name:(Option.value name ~default:"join")
      (Relation.schema outer) (Relation.schema inner)
  in
  let out = Relation.create env out_schema in
  let sorted_r = sort_by outer ~attr:outer_attr ~mem_pages in
  let sorted_s = sort_by inner ~attr:inner_attr ~mem_pages in
  sweep_sorted ~outer:sorted_r ~inner:sorted_s ~outer_attr ~inner_attr
    ~mem_pages ~f:(fun r rng ->
      List.iter
        (fun (s, d_eq) ->
          let d_eq = rng_degree r s d_eq in
          if Degree.positive d_eq then begin
            let d_res =
              match residual with None -> Degree.one | Some f -> f r s
            in
            let d =
              Degree.conj_list
                [ Ftuple.degree r; Ftuple.degree s; d_eq; d_res ]
            in
            if Degree.positive d then Relation.insert out (Ftuple.concat r s d)
          end)
        rng);
  Relation.destroy sorted_r;
  Relation.destroy sorted_s;
  out

let join_eq ?name ~outer ~inner ~outer_attr ~inner_attr ~mem_pages ?residual () =
  join_with_rng ?name ~outer ~inner ~outer_attr ~inner_attr ~mem_pages
    ?residual ~rng_degree:(fun _ _ d -> d) ()

let with_indicator ?name ~outer ~inner ~outer_attr ~inner_attr ~mem_pages
    ?residual () =
  let indicator r s d_exact =
    (* Fuzzy-equality indicator (Zhang & Wang [42]): overlapping cores mean
       degree 1, disjoint supports mean degree 0; only the remaining pairs
       need the exact intersection height, which [sweep_sorted] already
       computed as [d_exact]. The classification is still performed here so
       the identical-result property is tested, while a production system
       would skip the exact computation. *)
    match
      ( Value.to_possibility (Ftuple.value r outer_attr),
        Value.to_possibility (Ftuple.value s inner_attr) )
    with
    | Some (Possibility.Trap a), Some (Possibility.Trap b) ->
        if Interval.overlaps (Trapezoid.core a) (Trapezoid.core b) then
          Degree.one
        else if not (Interval.overlaps (Trapezoid.support a) (Trapezoid.support b))
        then Degree.zero
        else d_exact
    | _ -> d_exact
  in
  join_with_rng ?name ~outer ~inner ~outer_attr ~inner_attr ~mem_pages
    ?residual ~rng_degree:indicator ()
