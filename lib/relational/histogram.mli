(** Equi-width histograms over fuzzy attributes, for cardinality estimation.

    Fuzzy values are summarised by the centers of their supports plus the
    average support width. Two tuples can equi-join only if their supports
    overlap, i.e. their centers lie within [(w_r + w_s) / 2] of each other;
    the estimator integrates the center histograms over that band. This
    feeds the chain-query join-order search (Section 8's "optimal join order
    may be determined by using, say, a dynamic programming method") and the
    planner's EXPLAIN output. *)

type t

val build : ?buckets:int -> Relation.t -> attr:int -> t
(** Scan the relation once and histogram the support centers of the given
    attribute (default 64 buckets). String attributes hash to their support
    stand-ins, so equality estimation still works. *)

val cardinality : t -> int
val avg_support_width : t -> float

val estimate_eq_join : t -> t -> float
(** Expected number of tuple pairs with overlapping supports — an estimate of
    the fuzzy equi-join's match count (exactly the quantity C x n_R that the
    paper's cost analysis assumes is linear). *)

val estimate_eq_selectivity : t -> Fuzzy.Possibility.t -> float
(** Expected fraction of tuples whose support overlaps the given value's
    support — the reduced-size estimate for [p1]/[p2] pre-selections. *)

val pp : Format.formatter -> t -> unit
