open Fuzzy

let center v =
  let sup = Value.support v in
  (Interval.lo sup +. Interval.hi sup) /. 2.0

(* Extend every tuple of [rel] with one helper attribute computed by [f];
   the helper drives the interval sweep. *)
let with_helper rel f =
  let schema = Relation.schema rel in
  let helper_name = "__SWEEP" in
  let out_schema =
    Schema.make ~name:(Schema.name schema)
      (Array.to_list (Schema.attrs schema) @ [ (helper_name, Schema.TNum) ])
  in
  let out = Relation.create (Relation.env rel) out_schema in
  Relation.iter rel (fun tup ->
      Relation.insert out
        (Ftuple.make
           (Array.append tup.Ftuple.values [| f tup |])
           (Ftuple.degree tup)));
  (out, Schema.arity schema)

(* A rectangular ("crisp-interval") distribution: membership 1 on [lo, hi],
   0 outside — its equality height against another rectangle is 1 exactly
   when they intersect. *)
let rectangle lo hi = Value.Fuzzy (Possibility.trap (Trapezoid.make lo lo hi hi))

let sweep_join ?(name = "band_join") ~outer ~inner ~mem_pages ~outer_helper
    ~inner_helper () =
  let outer2, o_pos = with_helper outer outer_helper in
  let inner2, i_pos = with_helper inner inner_helper in
  let joined =
    Join_merge.join_eq ~name ~outer:outer2 ~inner:inner2 ~outer_attr:o_pos
      ~inner_attr:i_pos ~mem_pages ()
  in
  (* Drop the helper columns (positions o_pos and o_pos + 1 + i_pos of the
     concatenated schema). *)
  let keep =
    List.filter
      (fun p -> p <> o_pos && p <> o_pos + 1 + i_pos)
      (List.init (Schema.arity (Relation.schema joined)) Fun.id)
  in
  let out = Algebra.project_positions ~name joined keep in
  Relation.destroy outer2;
  Relation.destroy inner2;
  Relation.destroy joined;
  out

let band_join ?name ~outer ~inner ~outer_attr ~inner_attr ~mem_pages ~c1 ~c2 () =
  if c1 < 0.0 || c2 < 0.0 then invalid_arg "Join_band.band_join: negative band";
  sweep_join ?name ~outer ~inner ~mem_pages
    ~outer_helper:(fun tup ->
      let c = center (Ftuple.value tup outer_attr) in
      rectangle (c -. c1) (c +. c2))
    ~inner_helper:(fun tup ->
      let c = center (Ftuple.value tup inner_attr) in
      rectangle c c)
    ()

let interval_join ?(name = "interval_join") ~outer ~inner ~outer_attr
    ~inner_attr ~mem_pages () =
  sweep_join ~name ~outer ~inner ~mem_pages
    ~outer_helper:(fun tup ->
      let sup = Value.support (Ftuple.value tup outer_attr) in
      rectangle (Interval.lo sup) (Interval.hi sup))
    ~inner_helper:(fun tup ->
      let sup = Value.support (Ftuple.value tup inner_attr) in
      rectangle (Interval.lo sup) (Interval.hi sup))
    ()
