open Fuzzy

let select ?name r ~pred =
  let schema =
    match name with
    | Some n -> Schema.with_name (Relation.schema r) n
    | None -> Relation.schema r
  in
  let out = Relation.create (Relation.env r) schema in
  Relation.iter r (fun tup ->
      let d = Degree.conj (Ftuple.degree tup) (pred tup) in
      if Degree.positive d then Relation.insert out (Ftuple.with_degree tup d));
  out

module Tuple_map = Map.Make (struct
  type t = Ftuple.t

  let compare = Ftuple.compare_values
end)

let dedup_into_map tuples =
  List.fold_left
    (fun m tup ->
      Tuple_map.update tup
        (function
          | None -> Some tup
          | Some prev ->
              Some
                (Ftuple.with_degree prev
                   (Degree.disj (Ftuple.degree prev) (Ftuple.degree tup))))
        m)
    Tuple_map.empty tuples

let of_map ?name env schema m =
  let schema =
    match name with Some n -> Schema.with_name schema n | None -> schema
  in
  let out = Relation.create env schema in
  Tuple_map.iter (fun _ tup -> Relation.insert out tup) m;
  out

let dedup_max ?name r =
  of_map ?name (Relation.env r) (Relation.schema r)
    (dedup_into_map (Relation.to_list r))

let project_positions ?name r positions =
  let schema = Relation.schema r in
  let attrs = List.map (fun i -> Schema.attrs schema |> fun a -> a.(i)) positions in
  let out_schema =
    Schema.make ~name:(Option.value name ~default:(Schema.name schema)) attrs
  in
  let projected =
    List.map (fun tup -> Ftuple.project tup positions) (Relation.to_list r)
  in
  of_map (Relation.env r) out_schema (dedup_into_map projected)

let project ?name r ~attrs =
  let schema = Relation.schema r in
  let positions =
    List.map
      (fun a ->
        match Schema.index_of schema a with
        | Some i -> i
        | None ->
            invalid_arg
              (Printf.sprintf "Algebra.project: unknown attribute %s in %s" a
                 (Schema.name schema)))
      attrs
  in
  project_positions ?name r positions

let union_max ?name r s =
  if Schema.arity (Relation.schema r) <> Schema.arity (Relation.schema s) then
    invalid_arg "Algebra.union_max: arity mismatch";
  of_map ?name (Relation.env r) (Relation.schema r)
    (dedup_into_map (Relation.to_list r @ Relation.to_list s))

let check_same_arity op r s =
  if Schema.arity (Relation.schema r) <> Schema.arity (Relation.schema s) then
    invalid_arg (Printf.sprintf "Algebra.%s: arity mismatch" op)

let intersect_min ?name r s =
  check_same_arity "intersect_min" r s;
  let s_map = dedup_into_map (Relation.to_list s) in
  let m =
    Tuple_map.filter_map
      (fun key tup ->
        match Tuple_map.find_opt key s_map with
        | Some other ->
            let d = Degree.conj (Ftuple.degree tup) (Ftuple.degree other) in
            if Degree.positive d then Some (Ftuple.with_degree tup d) else None
        | None -> None)
      (dedup_into_map (Relation.to_list r))
  in
  of_map ?name (Relation.env r) (Relation.schema r) m

let difference ?name r s =
  check_same_arity "difference" r s;
  let s_map = dedup_into_map (Relation.to_list s) in
  let m =
    Tuple_map.filter_map
      (fun key tup ->
        let d_s =
          match Tuple_map.find_opt key s_map with
          | Some other -> Ftuple.degree other
          | None -> Degree.zero
        in
        let d = Degree.conj (Ftuple.degree tup) (Degree.neg d_s) in
        if Degree.positive d then Some (Ftuple.with_degree tup d) else None)
      (dedup_into_map (Relation.to_list r))
  in
  of_map ?name (Relation.env r) (Relation.schema r) m

let threshold ?name r z =
  select ?name r ~pred:(fun tup ->
      if Degree.meets_threshold ~threshold:z (Ftuple.degree tup) then Degree.one
      else Degree.zero)

let product ?name r s =
  let out_schema =
    Schema.concat
      ~name:(Option.value name ~default:"product")
      (Relation.schema r) (Relation.schema s)
  in
  let out = Relation.create (Relation.env r) out_schema in
  Relation.iter r (fun rt ->
      Relation.iter s (fun st ->
          let d = Degree.conj (Ftuple.degree rt) (Ftuple.degree st) in
          if Degree.positive d then Relation.insert out (Ftuple.concat rt st d)));
  out

module Key_map = Map.Make (struct
  type t = Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i >= la then 0
        else
          match Value.compare_structural a.(i) b.(i) with 0 -> go (i + 1) | c -> c
      in
      go 0
end)

let group r ~key =
  let m =
    Relation.fold r ~init:Key_map.empty ~f:(fun m tup ->
        let k = Array.of_list (List.map (Ftuple.value tup) key) in
        Key_map.update k
          (function None -> Some [ tup ] | Some l -> Some (tup :: l))
          m)
  in
  Key_map.fold (fun k tuples acc -> (k, List.rev tuples) :: acc) m []
  |> List.rev

let rename r name = Relation.with_name r name
