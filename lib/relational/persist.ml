exception Format_error of string

let magic = "FREPRO-REL-1\n"

let write_u16 oc v =
  output_byte oc (v land 0xff);
  output_byte oc ((v lsr 8) land 0xff)

let write_i32 oc v =
  for k = 0 to 3 do
    output_byte oc ((v lsr (8 * k)) land 0xff)
  done

let write_string oc s =
  write_u16 oc (String.length s);
  output_string oc s

let read_u16 ic =
  let a = input_byte ic in
  let b = input_byte ic in
  a lor (b lsl 8)

let read_i32 ic =
  let v = ref 0 in
  for k = 0 to 3 do
    v := !v lor (input_byte ic lsl (8 * k))
  done;
  (* sign-extend *)
  if !v land 0x80000000 <> 0 then !v - (1 lsl 32) else !v

let read_string ic =
  let len = read_u16 ic in
  really_input_string ic len

let save rel ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let schema = Relation.schema rel in
      write_string oc (Schema.name schema);
      (match Relation.pad_to rel with
      | Some p -> write_i32 oc p
      | None -> write_i32 oc (-1));
      write_u16 oc (Schema.arity schema);
      Array.iter
        (fun (name, ty) ->
          write_string oc name;
          output_byte oc (match ty with Schema.TNum -> 0 | Schema.TStr -> 1))
        (Schema.attrs schema);
      Relation.iter rel (fun tup ->
          let bytes = Codec.encode tup in
          write_i32 oc (Bytes.length bytes);
          output_bytes oc bytes))

let load env ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then raise (Format_error (path ^ ": bad magic"));
      let name = read_string ic in
      let pad = read_i32 ic in
      let pad_to = if pad < 0 then None else Some pad in
      let arity = read_u16 ic in
      let rec read_attrs i acc =
        if i >= arity then List.rev acc
        else begin
          let aname = read_string ic in
          let ty =
            match input_byte ic with
            | 0 -> Schema.TNum
            | 1 -> Schema.TStr
            | t ->
                raise (Format_error (Printf.sprintf "%s: bad type tag %d" path t))
          in
          read_attrs (i + 1) ((aname, ty) :: acc)
        end
      in
      let attrs = read_attrs 0 [] in
      let schema = Schema.make ~name attrs in
      let rel = Relation.create ?pad_to env schema in
      (try
         while true do
           let len = read_i32 ic in
           if len < 0 then raise (Format_error (path ^ ": negative record length"));
           let buf = Bytes.create len in
           really_input ic buf 0 len;
           Relation.insert rel (Codec.decode buf)
         done
       with End_of_file -> ());
      Storage.Buffer_pool.flush env.Storage.Env.pool;
      rel)

let save_catalog catalog ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name ->
      match Catalog.find catalog name with
      | Some rel -> save rel ~path:(Filename.concat dir (name ^ ".frel"))
      | None -> ())
    (Catalog.names catalog)

let load_catalog env ~dir =
  let catalog = Catalog.create env in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".frel" then
        Catalog.add catalog (load env ~path:(Filename.concat dir file)))
    (Sys.readdir dir);
  catalog
