type t = {
  lo : float;  (** left edge of the first bucket *)
  width : float;  (** bucket width; > 0 *)
  counts : float array;
  total : int;
  avg_width : float;  (** mean support width of the summarised values *)
}

let center itv = (Fuzzy.Interval.lo itv +. Fuzzy.Interval.hi itv) /. 2.0

let build ?(buckets = 64) rel ~attr =
  let centers = ref [] and lo = ref infinity and hi = ref neg_infinity in
  let wsum = ref 0.0 and n = ref 0 in
  Relation.iter rel (fun tup ->
      let sup = Value.support (Ftuple.value tup attr) in
      let c = center sup in
      centers := c :: !centers;
      lo := Float.min !lo c;
      hi := Float.max !hi c;
      wsum := !wsum +. Fuzzy.Interval.width sup;
      incr n);
  if !n = 0 then
    { lo = 0.0; width = 1.0; counts = Array.make 1 0.0; total = 0; avg_width = 0.0 }
  else begin
    let span = Float.max (!hi -. !lo) 1e-9 in
    let width = span /. float_of_int buckets in
    let counts = Array.make buckets 0.0 in
    List.iter
      (fun c ->
        let b =
          Int.min (buckets - 1)
            (Int.max 0 (int_of_float ((c -. !lo) /. width)))
        in
        counts.(b) <- counts.(b) +. 1.0)
      !centers;
    { lo = !lo; width; counts; total = !n; avg_width = !wsum /. float_of_int !n }
  end

let cardinality t = t.total
let avg_support_width t = t.avg_width

(* Density of tuples (per unit of domain) around position [x]. *)
let density t x =
  if t.total = 0 then 0.0
  else
    let b = int_of_float ((x -. t.lo) /. t.width) in
    if b < 0 || b >= Array.length t.counts then 0.0
    else t.counts.(b) /. t.width

let estimate_eq_join r s =
  if r.total = 0 || s.total = 0 then 0.0
  else begin
    (* Two tuples may join when their centers are within half the sum of the
       average widths: integrate over r's buckets the s-density in that
       band. *)
    let band = (r.avg_width +. s.avg_width) /. 2.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i cnt ->
        if cnt > 0.0 then begin
          let x = r.lo +. ((float_of_int i +. 0.5) *. r.width) in
          (* crisp-on-crisp matching degenerates to a point band; count the
             coincident bucket mass instead *)
          let matches =
            if band <= 0.0 then density s x *. s.width
            else
              let steps = 8 in
              let h = 2.0 *. band /. float_of_int steps in
              let sum = ref 0.0 in
              for k = 0 to steps - 1 do
                sum := !sum +. (density s (x -. band +. ((float_of_int k +. 0.5) *. h)) *. h)
              done;
              !sum
          in
          acc := !acc +. (cnt *. matches)
        end)
      r.counts;
    !acc
  end

let estimate_eq_selectivity t v =
  if t.total = 0 then 0.0
  else begin
    let sup = Fuzzy.Possibility.support v in
    let c = center sup in
    let band = (t.avg_width +. Fuzzy.Interval.width sup) /. 2.0 in
    let matched =
      if band <= 0.0 then density t c *. t.width
      else
        let steps = 8 in
        let h = 2.0 *. band /. float_of_int steps in
        let sum = ref 0.0 in
        for k = 0 to steps - 1 do
          sum := !sum +. (density t (c -. band +. ((float_of_int k +. 0.5) *. h)) *. h)
        done;
        !sum
    in
    Float.min 1.0 (matched /. float_of_int t.total)
  end

let pp ppf t =
  Format.fprintf ppf "histogram: %d tuples, %d buckets from %g (width %g), avg support width %g"
    t.total (Array.length t.counts) t.lo t.width t.avg_width
