(** Binary serialization of fuzzy tuples for heap-file storage.

    Ill-known data needs more storage than crisp data (a motivation the paper
    gives for why I/O matters more in fuzzy databases): a trapezoid costs
    four doubles where a crisp number costs one. [pad_to] reproduces the
    fixed tuple sizes (128-2048 bytes) of the experiments by padding the
    encoding with zero bytes. *)

val encode : ?pad_to:int -> Ftuple.t -> bytes
(** Raises [Invalid_argument] if the natural encoding exceeds [pad_to]. *)

val decode : bytes -> Ftuple.t

val encoded_size : Ftuple.t -> int
(** Size of [encode ?pad_to:None]. *)
