type t = {
  env : Storage.Env.t;
  rels : (string, Relation.t) Hashtbl.t;
}

let create env = { env; rels = Hashtbl.create 16 }
let env t = t.env
let key name = String.lowercase_ascii name
let add t rel = Hashtbl.replace t.rels (key (Schema.name (Relation.schema rel))) rel
let find t name = Hashtbl.find_opt t.rels (key name)
let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [] |> List.sort compare
