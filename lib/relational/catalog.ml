type t = {
  env : Storage.Env.t;
  rels : (string, Relation.t) Hashtbl.t;
}

let create env = { env; rels = Hashtbl.create 16 }
let env t = t.env
let key name = String.lowercase_ascii name
let add t rel = Hashtbl.replace t.rels (key (Schema.name (Relation.schema rel))) rel
let find t name = Hashtbl.find_opt t.rels (key name)
let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [] |> List.sort compare

(* Rebuild the catalog from a durable environment's WAL manifest.
   Entries without metadata (files created but never [Define]d — e.g. a
   crash between allocation and definition) are skipped: their pages
   are already back on the free list after recovery. *)
let load_durable env =
  let t = create env in
  List.iter
    (fun (fid, meta, pages) ->
      if Bytes.length meta > 0 then
        add t (Relation.open_durable env ~fid ~meta ~pages))
    (Storage.Env.manifest env);
  t
