open Storage
open Fuzzy

let batch_rows = 1024

type col = {
  ok : Bytes.t;
  lo : float array;
  hi : float array;
  ta : float array;
  tb : float array;
  tc : float array;
  td : float array;
}

type t = {
  rows : Ftuple.t array;
  deg : float array;
  mutable cols : (int * col) list;
}

let length t = Array.length t.rows
let row t i = t.rows.(i)
let degrees t = t.deg
let ok c i = Bytes.unsafe_get c.ok i <> '\000'

let of_rows rows =
  { rows; deg = Array.map Ftuple.degree rows; cols = [] }

let of_relation ?cancel ?pool rel =
  let acc = ref [] in
  let n = ref 0 in
  let c = Relation.Cursor.of_relation ?pool rel in
  let rec go () =
    (* One poll per batch of rows, not per tuple: the columnar engine's
       cancellation granularity. *)
    if !n land (batch_rows - 1) = 0 then Cancel.check cancel;
    match Relation.Cursor.next c with
    | None -> ()
    | Some t ->
        incr n;
        acc := t :: !acc;
        go ()
  in
  go ();
  of_rows (Array.of_list (List.rev !acc))

let col t attr =
  match List.assoc_opt attr t.cols with
  | Some c -> c
  | None ->
      let n = Array.length t.rows in
      let c =
        {
          ok = Bytes.make n '\000';
          lo = Array.make n 0.0;
          hi = Array.make n 0.0;
          ta = Array.make n 0.0;
          tb = Array.make n 0.0;
          tc = Array.make n 0.0;
          td = Array.make n 0.0;
        }
      in
      for i = 0 to n - 1 do
        let v = Ftuple.value t.rows.(i) attr in
        (* The support bounds drive the ⪯ window sweep for every value kind,
           exactly like the scalar engine's [Value.support] (strings hash to
           a point, so they sort and window identically). *)
        let s = Value.support v in
        c.lo.(i) <- Interval.lo s;
        c.hi.(i) <- Interval.hi s;
        match v with
        | Value.Int k ->
            let f = float_of_int k in
            c.ta.(i) <- f;
            c.tb.(i) <- f;
            c.tc.(i) <- f;
            c.td.(i) <- f;
            Bytes.set c.ok i '\001'
        | Value.Fuzzy (Possibility.Trap tr) ->
            c.ta.(i) <- tr.Trapezoid.a;
            c.tb.(i) <- tr.Trapezoid.b;
            c.tc.(i) <- tr.Trapezoid.c;
            c.td.(i) <- tr.Trapezoid.d;
            Bytes.set c.ok i '\001'
        | Value.Fuzzy (Possibility.Discrete _) | Value.Str _ -> ()
      done;
      t.cols <- (attr, c) :: t.cols;
      c
