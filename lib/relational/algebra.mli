(** Fuzzy relational algebra.

    These operators implement the composable single-measure semantics of the
    paper (Section 2): selection combines the tuple's membership degree with
    the predicate's satisfaction degree by [min]; duplicate elimination keeps
    the maximal degree among identical value vectors (fuzzy OR); the
    [WITH D >= z] clause is a plain degree threshold on the result. *)

val select :
  ?name:string -> Relation.t -> pred:(Ftuple.t -> Fuzzy.Degree.t) -> Relation.t
(** Output degree = [min (degree tup) (pred tup)]; tuples whose combined
    degree is 0 are dropped (they are not members of the answer). *)

val project : ?name:string -> Relation.t -> attrs:string list -> Relation.t
(** Projection with max-degree duplicate elimination. Raises
    [Invalid_argument] on unknown attribute names. *)

val project_positions : ?name:string -> Relation.t -> int list -> Relation.t

val dedup_max : ?name:string -> Relation.t -> Relation.t
(** Collapse tuples with identical value vectors, keeping the max degree. *)

val union_max : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Fuzzy union: max degree per value vector. Schemas must have equal
    arity. *)

val intersect_min : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Fuzzy intersection: for value vectors present in both operands, the
    [min] of their degrees. Schemas must have equal arity. *)

val difference : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Fuzzy set difference: degree [min(mu_R(t), 1 - mu_S(t))] per value
    vector (tuples absent from [s] keep their degree). Schemas must have
    equal arity. *)

val threshold : ?name:string -> Relation.t -> Fuzzy.Degree.t -> Relation.t
(** [WITH D >= z]. *)

val product : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Cross product; degree = [min] of the operand degrees. *)

val group :
  Relation.t -> key:int list -> (Value.t array * Ftuple.t list) list
(** In-memory grouping by structural equality of the key values (GROUPBY);
    groups are returned in ascending key order. *)

val rename : Relation.t -> string -> Relation.t
(** Change the schema name (FROM-clause aliasing); shares storage. *)
