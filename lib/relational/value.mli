(** Attribute values of the fuzzy relational model.

    Every data value of a numeric attribute carries a possibility
    distribution over the attribute's domain (Section 2.2): a crisp number is
    the degenerate distribution that is 1 at the number and 0 elsewhere.
    Strings are always crisp; integers are kept as a distinct constructor for
    keys and COUNT results. *)

type t =
  | Int of int
  | Str of string
  | Fuzzy of Fuzzy.Possibility.t

val crisp_num : float -> t
val of_trapezoid : Fuzzy.Trapezoid.t -> t

val to_possibility : t -> Fuzzy.Possibility.t option
(** Numeric view; [None] for strings. *)

val compare_degree : Fuzzy.Fuzzy_compare.op -> t -> t -> Fuzzy.Degree.t
(** Satisfaction degree [d(v1 op v2)]. Crisp operands give 0/1; strings
    support all comparators with lexicographic (crisp) semantics; comparing a
    string with a number is unsatisfiable (degree 0). *)

val equal : t -> t -> bool
(** Structural equality, used by duplicate elimination: two fuzzy values are
    the same answer-value only if their distributions coincide. *)

val compare_structural : t -> t -> int
(** Total order consistent with [equal]; arbitrary across constructors. *)

val support : t -> Fuzzy.Interval.t
(** Definition 3.1 interval for sorting (strings get a degenerate interval
    from their hash so the merge sweep remains well-defined for crisp string
    keys). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
