(** Columnar batches for the vectorized executor.

    A batch holds a run of decoded tuples together with their membership
    degrees in an unboxed [float array] and, per referenced attribute, a
    lazily-extracted {e column}: the support bounds [lo, hi] that drive the
    ⪯-ordered window sweep and the four trapezoid abscissae [(a, b, c, d)],
    all as unboxed float arrays, plus an [ok] mask flagging the rows whose
    value is representable as a trapezoid ([Int] as a crisp point,
    [Fuzzy (Trap _)] verbatim). Rows with [ok] unset (strings, discrete
    distributions) keep their support bounds — so windowing is identical to
    the scalar engine — and fall back to the boxed
    {!Value.compare_degree} for degree arithmetic.

    Columns are extracted once per (batch, attribute) and memoized; the
    kernels in {!Batch_kernels} then run branch-light array passes over
    them. Batches are single-domain values: the parallel sweep builds one
    batch per partition slice. *)

val batch_rows : int
(** Processing granularity of the batch engine (1024): cancellation is
    polled and trace spans are attributed once per this many rows. *)

type col = {
  ok : Bytes.t;  (** ['\001'] where the trapezoid columns are valid *)
  lo : float array;  (** support start [b(v)] — Section 3's sort key *)
  hi : float array;  (** support end [e(v)] *)
  ta : float array;
  tb : float array;
  tc : float array;
  td : float array;  (** trapezoid abscissae where [ok], else 0 *)
}

type t

val of_rows : Ftuple.t array -> t
(** Wrap already-decoded rows (the parallel sweep's partition slices). *)

val of_relation :
  ?cancel:Storage.Cancel.t -> ?pool:Storage.Buffer_pool.t -> Relation.t -> t
(** Decode a relation into a batch through the given cursor pool, polling
    the cancel token once per {!batch_rows} rows. *)

val length : t -> int
val row : t -> int -> Ftuple.t
(** The decoded row (no re-decode: rows are kept alongside the columns for
    boxed fallbacks and handler output). *)

val degrees : t -> float array
(** The membership-degree column; aliases the batch's storage. *)

val col : t -> int -> col
(** [col t attr]: the memoized column of attribute [attr]. *)

val ok : col -> int -> bool
(** Whether row [i]'s value has valid trapezoid columns. *)
