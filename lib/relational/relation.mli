(** Fuzzy relations: a schema plus a heap file of encoded fuzzy tuples.

    Insertion enforces the fuzzy-set model: tuples with degree 0 are not
    members and are silently dropped. An optional fixed tuple size ([pad_to])
    reproduces the experiment workloads where every tuple occupies 128-2048
    bytes on disk. *)

type t

exception Bad_meta of string
(** A durable relation's catalog metadata blob failed to decode. *)

val create : ?pad_to:int -> ?durable:bool -> Storage.Env.t -> Schema.t -> t
(** [~durable:true] (durable environments only) places the heap file on
    the durable backend and records the schema in the WAL manifest, so
    the relation survives restart; the default is a temporary relation
    exactly as before. *)

val schema : t -> Schema.t

(** [with_name t n]: same storage under a renamed schema (FROM aliasing). *)
val with_name : t -> string -> t
val env : t -> Storage.Env.t
val file : t -> Storage.Heap_file.t
val pad_to : t -> int option
val is_durable : t -> bool

val insert : t -> Ftuple.t -> unit

val of_list :
  ?pad_to:int -> ?durable:bool -> Storage.Env.t -> Schema.t -> Ftuple.t list -> t

val of_file : ?pad_to:int -> Storage.Env.t -> Schema.t -> Storage.Heap_file.t -> t
(** Wrap an existing heap file of encoded tuples (e.g. the output of the
    external sorter) as a relation. *)

val open_durable : Storage.Env.t -> fid:int -> meta:bytes -> pages:int array -> t
(** Reattach a durable relation from its manifest entry
    ({!Storage.Env.manifest}); raises {!Bad_meta} if the metadata blob
    does not decode. *)

val cardinality : t -> int
val num_pages : t -> int

val iter : t -> (Ftuple.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Ftuple.t -> 'a) -> 'a
val to_list : t -> Ftuple.t list

val iter_via : Storage.Buffer_pool.t -> t -> (Ftuple.t -> unit) -> unit
(** Scan through a caller-supplied buffer pool; the join algorithms use
    scoped pools to model the paper's per-operator buffer allocations. *)

val destroy : t -> unit

module Cursor : sig
  type relation = t
  type t

  val of_relation : ?pool:Storage.Buffer_pool.t -> relation -> t
  val peek : t -> Ftuple.t option
  val next : t -> Ftuple.t option
  val pos : t -> int
  val seek : t -> int -> unit
end

val pp : Format.formatter -> t -> unit
(** Render as a table (for examples and debugging); degrees shown with four
    decimals. *)
