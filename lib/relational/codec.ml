open Fuzzy

(* Tuple encoding:
     u16 value-count
     values: tag u8 followed by
       0: int          (i64 LE)
       1: string       (u16 length + bytes)
       2: crisp float  (f64)
       3: trapezoid    (4 x f64)
       4: discrete     (u16 n + n x (f64 value, f64 degree))
     f64 degree
     padding (zeros), implicit: decode stops after the degree field. *)

let buf_add_u16 b v =
  Buffer.add_uint8 b (v land 0xff);
  Buffer.add_uint8 b ((v lsr 8) land 0xff)

let buf_add_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_value b = function
  | Value.Int i ->
      Buffer.add_uint8 b 0;
      Buffer.add_int64_le b (Int64.of_int i)
  | Value.Str s ->
      Buffer.add_uint8 b 1;
      buf_add_u16 b (String.length s);
      Buffer.add_string b s
  | Value.Fuzzy p -> (
      match p with
      | Possibility.Trap tr when Trapezoid.is_crisp tr ->
          Buffer.add_uint8 b 2;
          buf_add_f64 b (Interval.lo (Trapezoid.support tr))
      | Possibility.Trap tr ->
          Buffer.add_uint8 b 3;
          buf_add_f64 b (Interval.lo (Trapezoid.support tr));
          buf_add_f64 b (Interval.lo (Trapezoid.core tr));
          buf_add_f64 b (Interval.hi (Trapezoid.core tr));
          buf_add_f64 b (Interval.hi (Trapezoid.support tr))
      | Possibility.Discrete pts ->
          Buffer.add_uint8 b 4;
          buf_add_u16 b (List.length pts);
          List.iter
            (fun (v, d) ->
              buf_add_f64 b v;
              buf_add_f64 b d)
            pts)

let encode ?pad_to t =
  let b = Buffer.create 64 in
  buf_add_u16 b (Array.length t.Ftuple.values);
  Array.iter (add_value b) t.Ftuple.values;
  buf_add_f64 b t.Ftuple.degree;
  let natural = Buffer.length b in
  (match pad_to with
  | Some target when target < natural ->
      invalid_arg
        (Printf.sprintf "Codec.encode: tuple needs %d bytes, pad_to=%d" natural
           target)
  | Some target -> Buffer.add_string b (String.make (target - natural) '\000')
  | None -> ());
  Buffer.to_bytes b

let encoded_size t = Bytes.length (encode t)

let get_u16 buf off = Bytes.get_uint8 buf off lor (Bytes.get_uint8 buf (off + 1) lsl 8)
let get_f64 buf off = Int64.float_of_bits (Bytes.get_int64_le buf off)

let decode buf =
  let off = ref 0 in
  let u16 () =
    let v = get_u16 buf !off in
    off := !off + 2;
    v
  in
  let f64 () =
    let v = get_f64 buf !off in
    off := !off + 8;
    v
  in
  let value () =
    let tag = Bytes.get_uint8 buf !off in
    incr off;
    match tag with
    | 0 ->
        let v = Bytes.get_int64_le buf !off in
        off := !off + 8;
        Value.Int (Int64.to_int v)
    | 1 ->
        let len = u16 () in
        let s = Bytes.sub_string buf !off len in
        off := !off + len;
        Value.Str s
    | 2 -> Value.Fuzzy (Possibility.crisp (f64 ()))
    | 3 ->
        let a = f64 () in
        let b = f64 () in
        let c = f64 () in
        let d = f64 () in
        Value.Fuzzy (Possibility.trap (Trapezoid.make a b c d))
    | 4 ->
        let n = u16 () in
        let rec pts i acc =
          if i >= n then List.rev acc
          else
            let v = f64 () in
            let d = f64 () in
            pts (i + 1) ((v, d) :: acc)
        in
        Value.Fuzzy (Possibility.discrete (pts 0 []))
    | t -> invalid_arg (Printf.sprintf "Codec.decode: bad tag %d" t)
  in
  let n = u16 () in
  let values = Array.make n (Value.Int 0) in
  for i = 0 to n - 1 do
    values.(i) <- value ()
  done;
  let degree = f64 () in
  Ftuple.make values degree
