(** Block nested-loop fuzzy join — the baseline the paper measures against.

    Buffer allocation follows Section 9: "one buffer page (8 k-bytes) is
    allocated to the inner relation and the rest to the outer relation in
    order to minimize I/O cost". The outer relation is read once; the inner
    relation is scanned once per outer block, giving
    [b_R + ceil(b_R / (M - 1)) * b_S] page reads and [n_R * n_S] degree
    computations — the O(n_R x n_S) response time of Section 3. *)

val iter_blocks :
  outer:Relation.t -> inner:Relation.t -> mem_pages:int ->
  f:(Ftuple.t array -> ((Ftuple.t -> unit) -> unit) -> unit) -> unit
(** Lower-level interface exposing the block structure: [f block scan_inner]
    is called once per outer block; [scan_inner g] performs exactly one pass
    over the inner relation, calling [g] per inner tuple. The nested-query
    evaluators keep per-outer-tuple accumulators across that single pass. *)

val iter_pairs :
  outer:Relation.t -> inner:Relation.t -> mem_pages:int ->
  f:(Ftuple.t -> Ftuple.t -> unit) -> unit
(** Enumerate every (outer, inner) tuple pair with the block I/O pattern
    above; accounted to the [Join] phase. *)

val join :
  ?name:string -> outer:Relation.t -> inner:Relation.t -> mem_pages:int ->
  on:(int * Fuzzy.Fuzzy_compare.op * int) list ->
  ?residual:(Ftuple.t -> Ftuple.t -> Fuzzy.Degree.t) -> unit -> Relation.t
(** Materialise the fuzzy join: output degree =
    [min(D_r, D_s, min_i d(r.X_i op_i s.Y_i), residual r s)]. Every join
    predicate evaluation is counted as a fuzzy op in the environment
    statistics. *)
