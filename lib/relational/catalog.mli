(** Named relations of a fuzzy database. *)

type t

val create : Storage.Env.t -> t
val env : t -> Storage.Env.t

val add : t -> Relation.t -> unit
(** Registers the relation under its schema name (case-insensitive); replaces
    any previous relation of that name. *)

val find : t -> string -> Relation.t option
val names : t -> string list

val load_durable : Storage.Env.t -> t
(** Rebuild the catalog of a durable environment from its WAL manifest
    ({!Storage.Env.manifest}): one relation per [Define]d file. Files
    with no metadata (allocated but never defined before the last
    commit) are skipped. *)
