open Fuzzy

type t = Count | Sum | Avg | Min | Max

let of_string s =
  match String.uppercase_ascii s with
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

let to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let numeric agg v =
  match Value.to_possibility v with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Aggregate.%s: non-numeric value %s" (to_string agg)
           (Value.to_string v))

let apply agg values =
  match (agg, values) with
  | Count, vs -> Some (Value.Int (List.length vs))
  | _, [] -> None
  | Sum, vs -> Option.map (fun p -> Value.Fuzzy p) (Fuzzy_arith.sum (List.map (numeric Sum) vs))
  | Avg, vs -> Option.map (fun p -> Value.Fuzzy p) (Fuzzy_arith.avg (List.map (numeric Avg) vs))
  | Min, first :: rest ->
      let le v w =
        Defuzz.compare_by_core_center (numeric Min v) (numeric Min w) <= 0
      in
      Some (List.fold_left (fun best v -> if le v best then v else best) first rest)
  | Max, first :: rest ->
      let ge v w =
        Defuzz.compare_by_core_center (numeric Max v) (numeric Max w) >= 0
      in
      Some (List.fold_left (fun best v -> if ge v best then v else best) first rest)

type degree_strategy = Always_one | Average_membership | Weighted_membership

let result_degree ?(strategy = Always_one) degrees =
  match (strategy, degrees) with
  | Always_one, _ | _, [] -> Degree.one
  | Average_membership, ds ->
      List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
  | Weighted_membership, ds ->
      (* Weight each degree by itself: emphasises strong members. *)
      let num = List.fold_left (fun acc d -> acc +. (d *. d)) 0.0 ds in
      let den = List.fold_left ( +. ) 0.0 ds in
      if den = 0.0 then Degree.zero else Degree.of_float (num /. den)
