(** Relation schemas: ordered attribute lists with names.

    Attribute positions are resolved once at planning time; executors work
    with integer indices. The distinguished membership-degree attribute [D]
    of the paper is not part of the schema — it lives on every tuple
    (see {!Ftuple}). *)

type ty = TNum | TStr

type t

val make : name:string -> (string * ty) list -> t
(** Raises [Invalid_argument] on duplicate attribute names. *)

val name : t -> string
val with_name : t -> string -> t
val arity : t -> int
val attrs : t -> (string * ty) array

val index_of : t -> string -> int option
(** Accepts both bare ("AGE") and qualified ("M.AGE") attribute names; a
    qualified name matches only if the qualifier equals the schema name. *)

val ty_of : t -> int -> ty
val attr_name : t -> int -> string

val concat : name:string -> t -> t -> t
(** Schema of a join result: attributes of both inputs, qualified by their
    source schema names to stay unambiguous. *)

val pp : Format.formatter -> t -> unit
