(** Aggregate functions over fuzzy sets of values (Section 6 of the paper).

    - COUNT returns the number of values in the fuzzy set (the caller passes
      the duplicate-eliminated value list).
    - SUM and AVG use fuzzy arithmetic on the 0- and 1-cuts.
    - MIN and MAX defuzzify by the center of the 1-cut and return the extreme
      original value.
    - On an empty set, SUM/AVG/MIN/MAX return NULL ([None]); COUNT returns 0.

    The degree [D(A(r))] attached to an aggregate result is 1 in Fuzzy SQL;
    {!result_degree} also offers the paper's suggested alternatives (average
    or weighted-average membership of the aggregated group). *)

type t = Count | Sum | Avg | Min | Max

val of_string : string -> t option
val to_string : t -> string

val apply : t -> Value.t list -> Value.t option
(** Raises [Invalid_argument] when SUM/AVG/MIN/MAX meet a non-numeric
    value. *)

type degree_strategy = Always_one | Average_membership | Weighted_membership

val result_degree :
  ?strategy:degree_strategy -> Fuzzy.Degree.t list -> Fuzzy.Degree.t
(** Degree of the aggregate result given the membership degrees of the
    aggregated group; default [Always_one] (Fuzzy SQL's choice). *)
