type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  span : Ast.span;
  message : string;
  hint : string option;
}

let make ?hint ~code ~severity ~span message =
  { code; severity; span; message; hint }

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors ds = List.filter is_error ds

let compare_diag a b =
  let c = compare a.span.Ast.sp_lo b.span.Ast.sp_lo in
  if c <> 0 then c
  else
    let c = compare a.code b.code in
    if c <> 0 then c else compare a.message b.message

let sort ds =
  let sorted = List.stable_sort compare_diag ds in
  (* Collapse exact duplicates: the accumulating analyzer may visit one
     offending node through two paths (e.g. typing context + binding). *)
  let rec dedup = function
    | a :: b :: rest
      when a.code = b.code && a.span = b.span && a.message = b.message ->
        dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(* ------------------------------------------------------------------ *)
(* Source positions *)

let position ~source off =
  let n = String.length source in
  let off = max 0 (min off n) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to off - 1 do
    if source.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

(* The line (content, start offset) containing byte [off]. *)
let line_at ~source off =
  let n = String.length source in
  let off = max 0 (min off (max 0 (n - 1))) in
  let rec back i = if i > 0 && source.[i - 1] <> '\n' then back (i - 1) else i in
  let rec fwd i = if i < n && source.[i] <> '\n' then fwd (i + 1) else i in
  let lo = back off in
  let hi = fwd off in
  (String.sub source lo (hi - lo), lo)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let severity_name = function Error -> "error" | Warning -> "warning"

(* Tabs render as single spaces so the caret line (built from spaces)
   stays column-aligned with the source line. *)
let detab s = String.map (function '\t' -> ' ' | c -> c) s

let render ~source d =
  let buf = Buffer.create 160 in
  let line, col = position ~source d.span.Ast.sp_lo in
  Buffer.add_string buf
    (Printf.sprintf "%s[%s]: %s" (severity_name d.severity) d.code d.message);
  if String.length source > 0 then begin
    Buffer.add_string buf (Printf.sprintf "\n  --> line %d, column %d" line col);
    let text, line_lo = line_at ~source d.span.Ast.sp_lo in
    let gutter = Printf.sprintf "%4d | " line in
    Buffer.add_string buf (Printf.sprintf "\n%s%s" gutter (detab text));
    (* Caret run: clamp to the displayed line, at least one caret. *)
    let start = max 0 (d.span.Ast.sp_lo - line_lo) in
    let start = min start (String.length text) in
    let stop = max (start + 1) (min (d.span.Ast.sp_hi - line_lo) (String.length text)) in
    let stop = max stop (start + 1) in
    Buffer.add_string buf
      (Printf.sprintf "\n%s | %s%s"
         (String.make 4 ' ')
         (String.make start ' ')
         (String.make (stop - start) '^'))
  end;
  (match d.hint with
  | Some h -> Buffer.add_string buf (Printf.sprintf "\n  hint: %s" h)
  | None -> ());
  Buffer.contents buf

let render_all ~source ds =
  String.concat "\n\n" (List.map (render ~source) (sort ds))

let summary ds =
  let errs = List.length (errors ds) in
  let warns = List.length ds - errs in
  let plural n = if n = 1 then "" else "s" in
  match (errs, warns) with
  | 0, 0 -> "no issues"
  | 0, w -> Printf.sprintf "%d warning%s" w (plural w)
  | e, 0 -> Printf.sprintf "%d error%s" e (plural e)
  | e, w ->
      Printf.sprintf "%d error%s, %d warning%s" e (plural e) w (plural w)

(* ------------------------------------------------------------------ *)
(* Nearest-name suggestions *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest ~candidates word =
  let w = String.lowercase_ascii word in
  (* A short word tolerates one edit; longer words up to a third. *)
  let budget = max 1 (String.length w / 3) in
  let best =
    List.fold_left
      (fun acc cand ->
        let d = levenshtein w (String.lowercase_ascii cand) in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ when d <= budget -> Some (cand, d)
        | _ -> acc)
      None candidates
  in
  Option.map fst best
