exception Error of string
exception Error_at of string * Ast.span

type state = {
  mutable tokens : (Token.t * (int * int)) list;
  mutable last_end : int;  (** end offset of the last consumed token *)
}

let peek st = match st.tokens with [] -> Token.EOF | (t, _) :: _ -> t

let peek2 st = match st.tokens with _ :: (t, _) :: _ -> t | _ -> Token.EOF

let peek_span st =
  match st.tokens with
  | [] -> { Ast.sp_lo = st.last_end; sp_hi = st.last_end }
  | (_, (lo, hi)) :: _ -> { Ast.sp_lo = lo; sp_hi = hi }

let advance st =
  match st.tokens with
  | [] -> ()
  | (_, (_, hi)) :: rest ->
      st.last_end <- hi;
      st.tokens <- rest

(* Span from a saved start offset to the last consumed token. *)
let span_from st lo = { Ast.sp_lo = lo; sp_hi = max lo st.last_end }

let fail_at span msg = raise (Error_at (msg, span))

let fail st what =
  fail_at (peek_span st)
    (Printf.sprintf "expected %s but found %s" what (Token.to_string (peek st)))

let expect st tok what =
  if peek st = tok then advance st else fail st what

let ident_spanned st =
  match peek st with
  | Token.IDENT s ->
      let sp = peek_span st in
      advance st;
      (s, sp)
  | _ -> fail st "an identifier"

let ident st = fst (ident_spanned st)

let number_spanned st =
  match peek st with
  | Token.NUMBER f ->
      let sp = peek_span st in
      advance st;
      (f, sp)
  | _ -> fail st "a number"

let number st = fst (number_spanned st)

let comma_sep st item =
  let rec more acc =
    if peek st = Token.COMMA then begin
      advance st;
      more (item st :: acc)
    end
    else List.rev acc
  in
  more [ item st ]

let fuzzy_literal st =
  match peek st with
  | Token.TRAP ->
      advance st;
      expect st Token.LPAREN "(";
      let a = number st in
      expect st Token.COMMA ",";
      let b = number st in
      expect st Token.COMMA ",";
      let c = number st in
      expect st Token.COMMA ",";
      let d = number st in
      expect st Token.RPAREN ")";
      Ast.Trap (a, b, c, d)
  | Token.TRI ->
      advance st;
      expect st Token.LPAREN "(";
      let a = number st in
      expect st Token.COMMA ",";
      let p = number st in
      expect st Token.COMMA ",";
      let d = number st in
      expect st Token.RPAREN ")";
      Ast.Tri (a, p, d)
  | Token.ABOUT ->
      advance st;
      expect st Token.LPAREN "(";
      let v = number st in
      let spread =
        if peek st = Token.COMMA then begin
          advance st;
          number st
        end
        else Float.max 1.0 (Float.abs v *. 0.1)
      in
      expect st Token.RPAREN ")";
      Ast.About (v, spread)
  | Token.DIST ->
      advance st;
      expect st Token.LPAREN "(";
      let pair st =
        let v = number st in
        expect st Token.COLON ":";
        let d = number st in
        (v, d)
      in
      let pts = comma_sep st pair in
      expect st Token.RPAREN ")";
      Ast.Discrete pts
  | _ -> fail st "a fuzzy literal"

let operand st =
  let lo = (peek_span st).Ast.sp_lo in
  match (peek st, peek2 st) with
  | Token.IDENT name, Token.LPAREN
    when Relational.Aggregate.of_string name <> None -> (
      match Relational.Aggregate.of_string name with
      | Some agg ->
          advance st;
          advance st;
          let attr = ident st in
          expect st Token.RPAREN ")";
          Ast.Agg_of (agg, attr, span_from st lo)
      | None -> assert false)
  | Token.IDENT s, _ ->
      advance st;
      Ast.Attr (s, span_from st lo)
  | Token.NUMBER f, _ ->
      advance st;
      Ast.Const (Ast.Num f, span_from st lo)
  | Token.STRING s, _ ->
      advance st;
      Ast.Const (Ast.Str s, span_from st lo)
  | (Token.TRAP | Token.TRI | Token.ABOUT | Token.DIST), _ ->
      let c = fuzzy_literal st in
      Ast.Const (c, span_from st lo)
  | _ -> fail st "an attribute, constant, or fuzzy literal"

let select_item st =
  let lo = (peek_span st).Ast.sp_lo in
  match (peek st, peek2 st) with
  | Token.IDENT name, Token.LPAREN -> (
      match Relational.Aggregate.of_string name with
      | Some agg ->
          advance st;
          advance st;
          let attr =
            match peek st with
            | Token.STAR ->
                advance st;
                "*"
            | _ -> ident st
          in
          expect st Token.RPAREN ")";
          Ast.Agg (agg, attr, span_from st lo)
      | None ->
          fail_at (peek_span st)
            (Printf.sprintf "unknown aggregate function %s" name))
  | Token.IDENT _, _ ->
      let s, sp = ident_spanned st in
      Ast.Col (s, sp)
  | _ -> fail st "a projection item"

let from_item st =
  let rel, sp = ident_spanned st in
  match peek st with
  | Token.IDENT alias ->
      let asp = peek_span st in
      advance st;
      (rel, Some alias, Ast.span_hull sp asp)
  | _ -> (rel, None, sp)

let rec query st =
  let qlo = (peek_span st).Ast.sp_lo in
  expect st Token.SELECT "SELECT";
  let distinct =
    if peek st = Token.DISTINCT then begin
      advance st;
      true
    end
    else false
  in
  let select = comma_sep st select_item in
  expect st Token.FROM "FROM";
  let from = comma_sep st from_item in
  let where = if peek st = Token.WHERE then begin advance st; predicates st end else [] in
  (* The trailing clauses — GROUPBY, HAVING, ORDER BY D, LIMIT, WITH — may
     appear in any order, each at most once. *)
  let group_by = ref [] and having = ref [] and with_d = ref None in
  let order_by_d = ref None and limit = ref None in
  let with_span = ref Ast.dummy_span in
  let once name clause_span r v =
    match !r with
    | None -> r := Some v
    | Some _ -> fail_at clause_span (Printf.sprintf "duplicate %s clause" name)
  in
  let rec clauses () =
    match peek st with
    | Token.GROUPBY ->
        let ksp = peek_span st in
        advance st;
        if !group_by <> [] then fail_at ksp "duplicate GROUPBY clause";
        group_by := comma_sep st ident_spanned;
        clauses ()
    | Token.HAVING ->
        let ksp = peek_span st in
        advance st;
        if !having <> [] then fail_at ksp "duplicate HAVING clause";
        having := predicates st;
        clauses ()
    | Token.ORDERBY ->
        let ksp = peek_span st in
        advance st;
        let d, dsp = ident_spanned st in
        if String.uppercase_ascii d <> "D" then
          fail_at dsp "ORDER BY supports only the degree attribute D";
        let dir =
          match peek st with
          | Token.DESC ->
              advance st;
              Ast.Desc
          | Token.ASC ->
              advance st;
              Ast.Asc
          | _ -> Ast.Desc
        in
        once "ORDER BY" ksp order_by_d dir;
        clauses ()
    | Token.LIMIT ->
        let ksp = peek_span st in
        advance st;
        let k, nsp = number_spanned st in
        if Float.rem k 1.0 <> 0.0 || k < 0.0 then
          fail_at nsp "LIMIT expects a non-negative integer";
        once "LIMIT" ksp limit (int_of_float k);
        clauses ()
    | Token.WITH ->
        let ksp = peek_span st in
        advance st;
        let d, dsp = ident_spanned st in
        if String.uppercase_ascii d <> "D" then
          fail_at dsp "WITH clause must constrain the degree attribute D";
        let strict =
          match peek st with
          | Token.OP Fuzzy.Fuzzy_compare.Ge ->
              advance st;
              false
          | Token.OP Fuzzy.Fuzzy_compare.Gt ->
              advance st;
              true
          | _ -> fail st ">= or > in WITH clause"
        in
        once "WITH" ksp with_d { Ast.strict; value = number st };
        with_span := Ast.span_hull ksp (span_from st ksp.Ast.sp_lo);
        clauses ()
    | _ -> ()
  in
  clauses ();
  {
    Ast.distinct;
    select;
    from;
    where;
    group_by = !group_by;
    having = !having;
    with_d = !with_d;
    with_span = !with_span;
    order_by_d = !order_by_d;
    limit = !limit;
    q_span = span_from st qlo;
  }

and subquery st =
  expect st Token.LPAREN "(";
  let q = query st in
  expect st Token.RPAREN ")";
  q

and predicates st =
  let rec more acc =
    if peek st = Token.AND then begin
      advance st;
      more (predicate st :: acc)
    end
    else List.rev acc
  in
  more [ predicate st ]

and predicate st =
  match peek st with
  | Token.EXISTS ->
      advance st;
      Ast.Exists (subquery st)
  | Token.NOT when peek2 st = Token.EXISTS ->
      advance st;
      advance st;
      Ast.Not_exists (subquery st)
  | _ -> (
      let lhs = operand st in
      (* Optional IS before IN / NOT IN, as the paper writes "is in". *)
      if peek st = Token.IS then advance st;
      match peek st with
      | Token.IN ->
          advance st;
          Ast.In (lhs, subquery st)
      | Token.NOT ->
          advance st;
          expect st Token.IN "IN after NOT";
          Ast.Not_in (lhs, subquery st)
      | Token.OP op -> (
          advance st;
          match peek st with
          | Token.ALL ->
              advance st;
              Ast.Quant (lhs, op, Ast.All, subquery st)
          | Token.SOME ->
              advance st;
              Ast.Quant (lhs, op, Ast.Some_, subquery st)
          | Token.LPAREN when peek2 st = Token.SELECT ->
              Ast.CmpSub (lhs, op, subquery st)
          | _ -> Ast.Cmp (lhs, op, operand st))
      | _ -> fail st "a comparison operator, IN, or NOT IN")

let make_state input = { tokens = Lexer.tokenize_spanned input; last_end = 0 }

let parse_spanned input =
  let st = make_state input in
  let q = query st in
  expect st Token.EOF "end of input";
  q

let parse input =
  try parse_spanned input with Error_at (msg, _) -> raise (Error msg)

let parse_const input =
  try
    let st = make_state input in
    let c =
      match peek st with
      | Token.NUMBER f ->
          advance st;
          Ast.Num f
      | Token.STRING s ->
          advance st;
          Ast.Str s
      | Token.IDENT _ ->
          (* bare word(s): a string such as a linguistic term *)
          let rec words acc =
            match peek st with
            | Token.IDENT s ->
                advance st;
                words (s :: acc)
            | _ -> String.concat " " (List.rev acc)
          in
          Ast.Str (words [])
      | Token.TRAP | Token.TRI | Token.ABOUT | Token.DIST -> fuzzy_literal st
      | _ -> fail st "a constant"
    in
    expect st Token.EOF "end of constant";
    c
  with Error_at (msg, _) -> raise (Error msg)
