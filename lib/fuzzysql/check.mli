(** Static query analysis: every diagnostic for a query in one pass.

    Layers on {!Analyzer.analyze} (binding and type errors) the checks
    that only fuzzy semantics make possible at compile time:

    - {b FSQL030} — a predicate comparing an attribute with a fuzzy
      constant whose support cannot meet the attribute's {e loaded
      domain} (the hull of every stored value's support) is always
      degree 0;
    - {b FSQL031} — a [WITH D >= z] cut above a predicate constant's
      maximum membership height is unsatisfiable: any t-norm is bounded
      by [min], so no answer in that block can exceed the height;
    - {b FSQL032} — a conjunction whose support intervals intersect to
      the empty set (checked only for attributes whose loaded values are
      all crisp — fuzzy data values can satisfy formally "contradictory"
      constraints with positive degree);
    - {b FSQL033} — a nested shape outside the paper's unnestable types
      N/J/JX/JA/JALL, reported through the [?classify] callback (wired
      to [Unnest.Classify.shape_hint] by the binaries and daemon so this
      library does not depend on the planner).

    Satisfiability findings are {e warnings}: the query is valid, merely
    provably empty (or slow). Only Error-severity diagnostics make
    {!check_string} return no bound query, fail [fsql --check], or get a
    query rejected at daemon admission. *)

type ctx

val ctx : catalog:Relational.Catalog.t -> terms:Fuzzy.Term.t -> ctx
(** Scans every catalog relation once, recording per numeric attribute
    the hull of loaded supports and whether all loaded values are crisp.
    Build it at startup (or after loading) and reuse it per query. *)

val code_table : (string * Diagnostic.severity * string) list
(** Every stable diagnostic code with its severity and a one-line
    description — golden-tested, mirrored in DESIGN.md section 14. *)

val check_ast :
  ?classify:(Bound.query -> string option) ->
  ctx ->
  Ast.query ->
  Bound.query option * Diagnostic.t list

val check_string :
  ?classify:(Bound.query -> string option) ->
  ctx ->
  string ->
  Bound.query option * Diagnostic.t list
(** Lex + parse + {!check_ast}; lexical errors come back as [FSQL001]
    and syntax errors as [FSQL002] diagnostics instead of exceptions. *)
