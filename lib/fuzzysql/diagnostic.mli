(** Typed static-analysis diagnostics with caret-underlined rendering.

    Every diagnostic carries a stable [FSQL0xx] code (the full table lives
    in {!Check.code_table} and DESIGN.md section 14), a severity, a byte
    {!Ast.span} into the source text, a human message, and an optional
    hint (e.g. a nearest-name suggestion). Rendering is rustc-style:

    {v
    error[FSQL010]: unknown relation NOSUCH
      --> line 1, column 20
     1 | SELECT F.NAME FROM NOSUCH
       |                    ^^^^^^
      hint: did you mean F?
    v} *)

type severity = Error | Warning

type t = {
  code : string;  (** stable [FSQL0xx] code *)
  severity : severity;
  span : Ast.span;
  message : string;
  hint : string option;
}

val make :
  ?hint:string -> code:string -> severity:severity -> span:Ast.span ->
  string -> t

val is_error : t -> bool
val has_errors : t list -> bool
val errors : t list -> t list

val sort : t list -> t list
(** Stable order: by span start, then code, then message; duplicates
    (same code, span, and message) are collapsed. *)

val position : source:string -> int -> int * int
(** [position ~source off] is the 1-based (line, column) of byte [off];
    offsets past the end clamp to the last position. *)

val render : source:string -> t -> string
(** One diagnostic as a multi-line block (no trailing newline). *)

val render_all : source:string -> t list -> string
(** All diagnostics, {!sort}ed, blocks separated by a blank line. *)

val summary : t list -> string
(** One-line count, e.g. ["2 errors, 1 warning"] or ["no issues"]. *)

val suggest : candidates:string list -> string -> string option
(** Nearest candidate by (case-insensitive) edit distance, within a
    distance budget scaled to the word length; [None] when nothing is
    close enough. *)
