(** Recursive-descent parser for Fuzzy SQL.

    Accepted syntax (case-insensitive keywords):
    {v
    SELECT [DISTINCT] item, ...      item := attr | AGG(attr)
    FROM rel [alias], ...
    [WHERE pred AND pred AND ...]
    [GROUPBY attr, ...]  (also GROUP BY)
    [HAVING pred AND ...]
    [WITH D >= number]   (also >)
    v}
    Predicates: [X op Y], [X op (SELECT ...)], [X [IS] [NOT] IN (SELECT ...)],
    [X op ALL/SOME (SELECT ...)], [[NOT] EXISTS (SELECT ...)]. Operands are
    attributes, numbers, strings / linguistic terms, or fuzzy literals
    [TRAP(a,b,c,d)], [TRI(a,p,d)], [ABOUT(v[,spread])],
    [DIST(v:d, v:d, ...)]. *)

exception Error of string

exception Error_at of string * Ast.span
(** Spanned variant raised by {!parse_spanned}; {!parse} unwraps it to the
    message-only {!Error} for legacy callers. *)

val parse : string -> Ast.query
(** Raises [Error] (or {!Lexer.Error}) on malformed input. *)

val parse_spanned : string -> Ast.query
(** Like {!parse} but syntax errors raise {!Error_at} carrying the source
    span of the offending token — used by {!Check} for caret rendering. *)

val parse_const : string -> Ast.const
(** Parse a single constant: a number, a quoted string, or a fuzzy literal
    ([TRAP(..)], [TRI(..)], [ABOUT(..)], [DIST(..)]). A bare word is taken
    as a string. Used by the CSV loader. *)
