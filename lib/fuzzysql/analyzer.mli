(** Semantic analysis: resolve names against a catalog and a linguistic-term
    dictionary, type-check predicates, and produce the bound form.

    String constants compared against numeric attributes are resolved in the
    term dictionary ("medium young" becomes its trapezoid); against string
    attributes they stay crisp strings. Subqueries used by IN / NOT IN /
    quantifiers must select exactly one column; scalar subqueries must select
    exactly one aggregate. *)

exception Error of string

val bind :
  catalog:Relational.Catalog.t -> terms:Fuzzy.Term.t -> Ast.query -> Bound.query

val bind_string :
  catalog:Relational.Catalog.t -> terms:Fuzzy.Term.t -> string -> Bound.query
(** Parse then bind. *)
