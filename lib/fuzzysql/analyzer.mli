(** Semantic analysis: resolve names against a catalog and a linguistic-term
    dictionary, type-check predicates, and produce the bound form.

    String constants compared against numeric attributes are resolved in the
    term dictionary ("medium young" becomes its trapezoid); against string
    attributes they stay crisp strings. Subqueries used by IN / NOT IN /
    quantifiers must select exactly one column; scalar subqueries must select
    exactly one aggregate.

    The analysis {e accumulates} diagnostics ({!Diagnostic.t}, stable
    [FSQL0xx] codes) instead of failing fast: {!analyze} reports every
    independent problem in one pass. {!bind} is the historical fail-fast
    facade — it raises {!Error} with the first error's message iff any
    Error-severity diagnostic was produced. *)

exception Error of string

val analyze :
  catalog:Relational.Catalog.t ->
  terms:Fuzzy.Term.t ->
  Ast.query ->
  Bound.query option * Diagnostic.t list
(** All diagnostics for the query, sorted by source position. The bound
    query is [Some] iff no diagnostic has Error severity (the analyzer
    itself emits only errors; {!Check} layers warnings on top). *)

val bind :
  catalog:Relational.Catalog.t -> terms:Fuzzy.Term.t -> Ast.query -> Bound.query
(** Fail-fast facade over {!analyze}: raises {!Error} carrying the first
    (in source order) error message when the query does not bind. *)

val bind_string :
  catalog:Relational.Catalog.t -> terms:Fuzzy.Term.t -> string -> Bound.query
(** Parse then bind. *)
