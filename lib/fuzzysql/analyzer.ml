open Relational

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type scope = (string * Relation.t) list list
(** blocks, innermost first; each block lists its FROM entries *)

let resolve_attr (scopes : scope) name =
  let rec in_blocks up = function
    | [] -> errf "unknown attribute %s" name
    | block :: outer -> (
        let hits =
          List.concat
            (List.mapi
               (fun from_idx (_, rel) ->
                 match Schema.index_of (Relation.schema rel) name with
                 | Some attr_idx -> [ (from_idx, attr_idx) ]
                 | None -> [])
               block)
        in
        match hits with
        | [] -> in_blocks (up + 1) outer
        | [ (from_idx, attr_idx) ] ->
            { Bound.up; from_idx; attr_idx; display = name }
        | _ :: _ :: _ -> errf "ambiguous attribute %s" name)
  in
  in_blocks 0 scopes

let attr_ty (scopes : scope) (r : Bound.attr_ref) =
  let block = List.nth scopes r.Bound.up in
  let _, rel = List.nth block r.Bound.from_idx in
  Schema.ty_of (Relation.schema rel) r.Bound.attr_idx

let resolve_const ~terms ~expected c =
  match (c, expected) with
  | Ast.Num f, Some Schema.TStr -> errf "number %g compared with a string attribute" f
  | Ast.Num f, _ -> Value.crisp_num f
  | Ast.Str s, Some Schema.TStr -> Value.Str s
  | Ast.Str s, Some Schema.TNum -> (
      match Fuzzy.Hedge.lookup terms s with
      | Some p -> Value.Fuzzy p
      | None -> errf "unknown linguistic term %S (numeric context)" s)
  | Ast.Str s, None -> (
      match Fuzzy.Hedge.lookup terms s with
      | Some p -> Value.Fuzzy p
      | None -> Value.Str s)
  | (Ast.Trap _ | Ast.Tri _ | Ast.About _ | Ast.Discrete _), Some Schema.TStr ->
      errf "fuzzy literal compared with a string attribute"
  | Ast.Trap (a, b, c, d), _ ->
      Value.Fuzzy (Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make a b c d))
  | Ast.Tri (a, p, d), _ ->
      Value.Fuzzy (Fuzzy.Possibility.triangle a p d)
  | Ast.About (v, spread), _ -> Value.Fuzzy (Fuzzy.Possibility.about v ~spread)
  | Ast.Discrete pts, _ -> Value.Fuzzy (Fuzzy.Possibility.discrete pts)

let rec bind_query ~catalog ~terms ~outer (q : Ast.query) : Bound.query =
  if q.Ast.select = [] then errf "empty SELECT list";
  if q.Ast.from = [] then errf "empty FROM list";
  let from =
    List.map
      (fun (rel_name, alias) ->
        match Catalog.find catalog rel_name with
        | None -> errf "unknown relation %s" rel_name
        | Some rel ->
            let alias = Option.value alias ~default:rel_name in
            (alias, Relation.with_name rel alias))
      q.Ast.from
  in
  let scopes = from :: outer in
  let local_ref name =
    let r = resolve_attr [ from ] name in
    (* resolving against the single local block always gives up = 0 *)
    r
  in
  let select =
    List.map
      (function
        | Ast.Col name -> Bound.Col (local_ref name)
        | Ast.Agg (_, "*") ->
            errf "COUNT(*) is not supported: aggregate a named attribute"
        | Ast.Agg (agg, name) -> Bound.Agg (agg, local_ref name))
      q.Ast.select
  in
  let where = List.map (bind_pred ~catalog ~terms ~scopes) q.Ast.where in
  let group_by = List.map local_ref q.Ast.group_by in
  let having = List.map (bind_having ~terms ~scopes) q.Ast.having in
  (match q.Ast.with_d with
  | Some { Ast.value; _ } when value < 0.0 || value > 1.0 ->
      errf "WITH threshold %g outside [0, 1]" value
  | _ -> ());
  (match q.Ast.limit with
  | Some k when k < 0 -> errf "negative LIMIT %d" k
  | _ -> ());
  if outer <> [] && (q.Ast.order_by_d <> None || q.Ast.limit <> None) then
    errf "ORDER BY / LIMIT are only allowed on the outermost query block";
  {
    Bound.distinct = q.Ast.distinct;
    select;
    from;
    where;
    group_by;
    having;
    threshold = q.Ast.with_d;
    order_by_d = q.Ast.order_by_d;
    limit = q.Ast.limit;
  }

and bind_operand ~terms ~scopes ~expected = function
  | Ast.Attr name -> Bound.Ref (resolve_attr scopes name)
  | Ast.Const c -> Bound.Lit (resolve_const ~terms ~expected c)
  | Ast.Agg_of _ -> errf "aggregate operands are only allowed in HAVING"

and bind_cmp ~terms ~scopes lhs op rhs =
  (* Resolve attribute sides first so constants get the right typing
     context (a string against a numeric attribute is a linguistic term). *)
  let expected_from o =
    match o with
    | Ast.Attr name -> Some (attr_ty scopes (resolve_attr scopes name))
    | Ast.Const _ | Ast.Agg_of _ -> None
  in
  let e1 = expected_from rhs and e2 = expected_from lhs in
  let b1 = bind_operand ~terms ~scopes ~expected:e1 lhs in
  let b2 = bind_operand ~terms ~scopes ~expected:e2 rhs in
  Bound.Cmp (b1, op, b2)

and bind_pred ~catalog ~terms ~scopes p =
  let sub q = bind_query ~catalog ~terms ~outer:scopes q in
  let single_col q =
    match q.Bound.select with
    | [ Bound.Col _ ] -> q
    | _ -> errf "subquery of IN / quantifier must select exactly one column"
  in
  let single_agg q =
    match q.Bound.select with
    | [ Bound.Agg _ ] -> q
    | _ -> errf "scalar subquery must select exactly one aggregate"
  in
  match p with
  | Ast.Cmp (lhs, op, rhs) -> bind_cmp ~terms ~scopes lhs op rhs
  | Ast.CmpSub (lhs, op, q) ->
      Bound.Cmp_sub
        (bind_operand ~terms ~scopes ~expected:None lhs, op, single_agg (sub q))
  | Ast.In (lhs, q) ->
      Bound.In (bind_operand ~terms ~scopes ~expected:None lhs, single_col (sub q))
  | Ast.Not_in (lhs, q) ->
      Bound.Not_in
        (bind_operand ~terms ~scopes ~expected:None lhs, single_col (sub q))
  | Ast.Quant (lhs, op, quant, q) ->
      Bound.Quant
        (bind_operand ~terms ~scopes ~expected:None lhs, op, quant,
         single_col (sub q))
  | Ast.Exists q -> Bound.Exists (sub q)
  | Ast.Not_exists q -> Bound.Not_exists (sub q)

and bind_having ~terms ~scopes p =
  let make agg attr op c =
    let h_attr = resolve_attr scopes attr in
    if h_attr.Bound.up <> 0 then
      errf "HAVING aggregate must reference this block's relations";
    {
      Bound.h_agg = agg;
      h_attr;
      h_op = op;
      h_value = resolve_const ~terms ~expected:None c;
    }
  in
  match p with
  | Ast.Cmp (Ast.Agg_of (agg, attr), op, Ast.Const c) -> make agg attr op c
  | Ast.Cmp (Ast.Const c, op, Ast.Agg_of (agg, attr)) ->
      make agg attr (Fuzzy.Fuzzy_compare.flip op) c
  | _ -> errf "HAVING supports only AGG(attr) op constant"

let bind ~catalog ~terms q = bind_query ~catalog ~terms ~outer:[] q
let bind_string ~catalog ~terms s = bind ~catalog ~terms (Parser.parse s)
