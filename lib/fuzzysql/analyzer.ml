open Relational

exception Error of string

(* ------------------------------------------------------------------ *)
(* Accumulating context

   Binding no longer stops at the first problem: every element binder
   reports into [diags] and returns [None] for the unresolvable piece, so
   one pass surfaces all independent errors. The bound query is produced
   only when nothing was reported at Error severity — partially-resolved
   scopes make indices meaningless, so a failed bind yields [None] and
   the diagnostics are the sole result. *)

type ctx = {
  catalog : Catalog.t;
  terms : Fuzzy.Term.t;
  mutable diags : Diagnostic.t list;
}

let report ctx ?hint ~code ~severity ~span fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <- Diagnostic.make ?hint ~code ~severity ~span message :: ctx.diags)
    fmt

let err ctx ?hint ~code ~span fmt =
  report ctx ?hint ~code ~severity:Diagnostic.Error ~span fmt

let all_some xs =
  if List.exists Option.is_none xs then None
  else Some (List.filter_map Fun.id xs)

type scope = (string * Relation.t) list list
(** blocks, innermost first; each block lists its FROM entries *)

type resolution = Resolved of Bound.attr_ref | Unknown | Ambiguous

(* Silent resolution — used both for real binding (which reports on
   failure) and for typing context (which must not double-report). *)
let try_resolve (scopes : scope) name =
  let rec in_blocks up = function
    | [] -> Unknown
    | block :: outer -> (
        let hits =
          List.concat
            (List.mapi
               (fun from_idx (_, rel) ->
                 match Schema.index_of (Relation.schema rel) name with
                 | Some attr_idx -> [ (from_idx, attr_idx) ]
                 | None -> [])
               block)
        in
        match hits with
        | [] -> in_blocks (up + 1) outer
        | [ (from_idx, attr_idx) ] ->
            Resolved { Bound.up; from_idx; attr_idx; display = name }
        | _ :: _ :: _ -> Ambiguous)
  in
  in_blocks 0 scopes

(* Candidates both bare and alias-qualified, so a misspelling of [F.NAME]
   (the common, qualified spelling) still lands within the edit budget. *)
let visible_attrs (scopes : scope) =
  List.concat_map
    (fun block ->
      List.concat_map
        (fun (alias, rel) ->
          List.concat_map
            (fun (a, _) -> [ a; alias ^ "." ^ a ])
            (Array.to_list (Schema.attrs (Relation.schema rel))))
        block)
    scopes

let resolve_attr ctx (scopes : scope) ~span name =
  match try_resolve scopes name with
  | Resolved r -> Some r
  | Ambiguous ->
      err ctx ~code:"FSQL012" ~span "ambiguous attribute %s" name;
      None
  | Unknown ->
      let hint =
        Option.map
          (Printf.sprintf "did you mean %s?")
          (Diagnostic.suggest ~candidates:(visible_attrs scopes) name)
      in
      err ctx ?hint ~code:"FSQL011" ~span "unknown attribute %s" name;
      None

let attr_ty (scopes : scope) (r : Bound.attr_ref) =
  let block = List.nth scopes r.Bound.up in
  let _, rel = List.nth block r.Bound.from_idx in
  Schema.ty_of (Relation.schema rel) r.Bound.attr_idx

let suggest_term ctx s =
  let hedges, base = Fuzzy.Hedge.strip s in
  let prefix =
    String.concat ""
      (List.map
         (function Fuzzy.Hedge.Very -> "very " | Fuzzy.Hedge.Somewhat -> "somewhat ")
         hedges)
  in
  Option.map
    (fun t -> Printf.sprintf "did you mean %S?" (prefix ^ t))
    (Diagnostic.suggest ~candidates:(Fuzzy.Term.names ctx.terms) base)

let resolve_const ctx ~expected ~span c =
  match (c, expected) with
  | Ast.Num f, Some Schema.TStr ->
      err ctx ~code:"FSQL020" ~span "number %g compared with a string attribute" f;
      None
  | Ast.Num f, _ -> Some (Value.crisp_num f)
  | Ast.Str s, Some Schema.TStr -> Some (Value.Str s)
  | Ast.Str s, Some Schema.TNum -> (
      match Fuzzy.Hedge.lookup ctx.terms s with
      | Some p -> Some (Value.Fuzzy p)
      | None ->
          let hint = suggest_term ctx s in
          err ctx ?hint ~code:"FSQL021" ~span
            "unknown linguistic term %S (numeric context)" s;
          None)
  | Ast.Str s, None -> (
      match Fuzzy.Hedge.lookup ctx.terms s with
      | Some p -> Some (Value.Fuzzy p)
      | None -> Some (Value.Str s))
  | (Ast.Trap _ | Ast.Tri _ | Ast.About _ | Ast.Discrete _), Some Schema.TStr ->
      err ctx ~code:"FSQL022" ~span "fuzzy literal compared with a string attribute";
      None
  | Ast.Trap (a, b, c, d), _ ->
      Some (Value.Fuzzy (Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make a b c d)))
  | Ast.Tri (a, p, d), _ -> Some (Value.Fuzzy (Fuzzy.Possibility.triangle a p d))
  | Ast.About (v, spread), _ -> Some (Value.Fuzzy (Fuzzy.Possibility.about v ~spread))
  | Ast.Discrete pts, _ -> Some (Value.Fuzzy (Fuzzy.Possibility.discrete pts))

let rec bind_query ctx ~outer (q : Ast.query) : Bound.query option =
  if q.Ast.select = [] then
    err ctx ~code:"FSQL013" ~span:q.Ast.q_span "empty SELECT list";
  if q.Ast.from = [] then
    err ctx ~code:"FSQL014" ~span:q.Ast.q_span "empty FROM list";
  (* Bind the FROM list first: even when a relation is missing we keep the
     resolvable tail so attribute errors in the rest of the block still
     surface (the partially-built scope only feeds diagnostics — a block
     with any error never yields a bound query). *)
  let from_ok = ref true in
  let from =
    List.filter_map
      (fun (rel_name, alias, span) ->
        match Catalog.find ctx.catalog rel_name with
        | None ->
            from_ok := false;
            let hint =
              Option.map
                (Printf.sprintf "did you mean %s?")
                (Diagnostic.suggest ~candidates:(Catalog.names ctx.catalog)
                   rel_name)
            in
            err ctx ?hint ~code:"FSQL010" ~span "unknown relation %s" rel_name;
            None
        | Some rel ->
            let alias = Option.value alias ~default:rel_name in
            Some (alias, Relation.with_name rel alias))
      q.Ast.from
  in
  let scopes = from :: outer in
  let local_ref ~span name =
    (* resolving against the single local block always gives up = 0 *)
    resolve_attr ctx [ from ] ~span name
  in
  let select =
    all_some
      (List.map
         (function
           | Ast.Col (name, span) ->
               Option.map (fun r -> Bound.Col r) (local_ref ~span name)
           | Ast.Agg (_, "*", span) ->
               err ctx ~code:"FSQL015" ~span
                 "COUNT(*) is not supported: aggregate a named attribute";
               None
           | Ast.Agg (agg, name, span) ->
               Option.map (fun r -> Bound.Agg (agg, r)) (local_ref ~span name))
         q.Ast.select)
  in
  let where = all_some (List.map (bind_pred ctx ~scopes) q.Ast.where) in
  let group_by =
    all_some (List.map (fun (name, span) -> local_ref ~span name) q.Ast.group_by)
  in
  let having = all_some (List.map (bind_having ctx ~scopes) q.Ast.having) in
  (match q.Ast.with_d with
  | Some { Ast.value; _ } when value < 0.0 || value > 1.0 ->
      err ctx ~code:"FSQL023" ~span:q.Ast.with_span
        "WITH threshold %g outside [0, 1]" value
  | _ -> ());
  (match q.Ast.limit with
  | Some k when k < 0 ->
      err ctx ~code:"FSQL025" ~span:q.Ast.q_span "negative LIMIT %d" k
  | _ -> ());
  if outer <> [] && (q.Ast.order_by_d <> None || q.Ast.limit <> None) then
    err ctx ~code:"FSQL024" ~span:q.Ast.q_span
      "ORDER BY / LIMIT are only allowed on the outermost query block";
  match (select, where, group_by, having) with
  | Some select, Some where, Some group_by, Some having
    when !from_ok && q.Ast.select <> [] && q.Ast.from <> [] ->
      Some
        {
          Bound.distinct = q.Ast.distinct;
          select;
          from;
          where;
          group_by;
          having;
          threshold = q.Ast.with_d;
          order_by_d = q.Ast.order_by_d;
          limit = q.Ast.limit;
        }
  | _ -> None

and bind_operand ctx ~scopes ~expected = function
  | Ast.Attr (name, span) ->
      Option.map (fun r -> Bound.Ref r) (resolve_attr ctx scopes ~span name)
  | Ast.Const (c, span) ->
      Option.map (fun v -> Bound.Lit v) (resolve_const ctx ~expected ~span c)
  | Ast.Agg_of (_, _, span) ->
      err ctx ~code:"FSQL016" ~span "aggregate operands are only allowed in HAVING";
      None

and bind_cmp ctx ~scopes lhs op rhs =
  (* Resolve attribute sides first so constants get the right typing
     context (a string against a numeric attribute is a linguistic term).
     This probe is silent — the real binding below reports failures. *)
  let expected_from o =
    match o with
    | Ast.Attr (name, _) -> (
        match try_resolve scopes name with
        | Resolved r -> Some (attr_ty scopes r)
        | Unknown | Ambiguous -> None)
    | Ast.Const _ | Ast.Agg_of _ -> None
  in
  let e1 = expected_from rhs and e2 = expected_from lhs in
  let b1 = bind_operand ctx ~scopes ~expected:e1 lhs in
  let b2 = bind_operand ctx ~scopes ~expected:e2 rhs in
  match (b1, b2) with
  | Some b1, Some b2 -> Some (Bound.Cmp (b1, op, b2))
  | _ -> None

and bind_pred ctx ~scopes p : Bound.pred option =
  let sub q = bind_query ctx ~outer:scopes q in
  let single_col (ast_q : Ast.query) q =
    match q.Bound.select with
    | [ Bound.Col _ ] -> Some q
    | _ ->
        err ctx ~code:"FSQL018" ~span:ast_q.Ast.q_span
          "subquery of IN / quantifier must select exactly one column";
        None
  in
  let single_agg (ast_q : Ast.query) q =
    match q.Bound.select with
    | [ Bound.Agg _ ] -> Some q
    | _ ->
        err ctx ~code:"FSQL019" ~span:ast_q.Ast.q_span
          "scalar subquery must select exactly one aggregate";
        None
  in
  match p with
  | Ast.Cmp (lhs, op, rhs) -> bind_cmp ctx ~scopes lhs op rhs
  | Ast.CmpSub (lhs, op, q) -> (
      let b = bind_operand ctx ~scopes ~expected:None lhs in
      match (b, Option.bind (sub q) (single_agg q)) with
      | Some b, Some bq -> Some (Bound.Cmp_sub (b, op, bq))
      | _ -> None)
  | Ast.In (lhs, q) -> (
      let b = bind_operand ctx ~scopes ~expected:None lhs in
      match (b, Option.bind (sub q) (single_col q)) with
      | Some b, Some bq -> Some (Bound.In (b, bq))
      | _ -> None)
  | Ast.Not_in (lhs, q) -> (
      let b = bind_operand ctx ~scopes ~expected:None lhs in
      match (b, Option.bind (sub q) (single_col q)) with
      | Some b, Some bq -> Some (Bound.Not_in (b, bq))
      | _ -> None)
  | Ast.Quant (lhs, op, quant, q) -> (
      let b = bind_operand ctx ~scopes ~expected:None lhs in
      match (b, Option.bind (sub q) (single_col q)) with
      | Some b, Some bq -> Some (Bound.Quant (b, op, quant, bq))
      | _ -> None)
  | Ast.Exists q -> Option.map (fun bq -> Bound.Exists bq) (sub q)
  | Ast.Not_exists q -> Option.map (fun bq -> Bound.Not_exists bq) (sub q)

and bind_having ctx ~scopes p : Bound.having option =
  let make ~span agg attr op c cspan =
    match resolve_attr ctx scopes ~span attr with
    | None -> None
    | Some h_attr when h_attr.Bound.up <> 0 ->
        err ctx ~code:"FSQL026" ~span
          "HAVING aggregate must reference this block's relations";
        None
    | Some h_attr ->
        Option.map
          (fun h_value -> { Bound.h_agg = agg; h_attr; h_op = op; h_value })
          (resolve_const ctx ~expected:None ~span:cspan c)
  in
  match p with
  | Ast.Cmp (Ast.Agg_of (agg, attr, span), op, Ast.Const (c, cspan)) ->
      make ~span agg attr op c cspan
  | Ast.Cmp (Ast.Const (c, cspan), op, Ast.Agg_of (agg, attr, span)) ->
      make ~span agg attr (Fuzzy.Fuzzy_compare.flip op) c cspan
  | _ ->
      err ctx ~code:"FSQL027" ~span:(Ast.predicate_span p)
        "HAVING supports only AGG(attr) op constant";
      None

let analyze ~catalog ~terms q =
  let ctx = { catalog; terms; diags = [] } in
  let bound = bind_query ctx ~outer:[] q in
  let diags = Diagnostic.sort ctx.diags in
  let bound = if Diagnostic.has_errors diags then None else bound in
  (bound, diags)

let bind ~catalog ~terms q =
  match analyze ~catalog ~terms q with
  | Some b, _ -> b
  | None, diags -> (
      match Diagnostic.errors diags with
      | d :: _ -> raise (Error d.Diagnostic.message)
      | [] -> raise (Error "semantic analysis failed"))

let bind_string ~catalog ~terms s = bind ~catalog ~terms (Parser.parse s)
