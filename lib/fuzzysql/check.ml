open Relational

(* ------------------------------------------------------------------ *)
(* Loaded-domain statistics

   One scan per relation at [ctx] construction time records, for every
   numeric attribute, the hull of the stored values' supports and whether
   every stored value is crisp. Relations are matched back by physical
   heap-file identity, so aliasing through [Relation.with_name] (which
   shares the file) finds the same statistics. *)

type attr_stats = {
  dom : Fuzzy.Interval.t option;  (** hull of loaded supports; [None] when
                                      the column holds no numeric value *)
  all_crisp : bool;
}

type rel_stats = { file : Storage.Heap_file.t; stats : attr_stats array }

type ctx = {
  catalog : Catalog.t;
  terms : Fuzzy.Term.t;
  rels : rel_stats list;
}

let scan rel =
  let n = Schema.arity (Relation.schema rel) in
  let dom = Array.make n None and all_crisp = Array.make n true in
  Relation.iter rel (fun tup ->
      for i = 0 to n - 1 do
        match Value.to_possibility (Ftuple.value tup i) with
        | None -> ()
        | Some p ->
            let s = Fuzzy.Possibility.support p in
            dom.(i) <-
              Some
                (match dom.(i) with
                | None -> s
                | Some d -> Fuzzy.Interval.hull d s);
            if not (Fuzzy.Possibility.is_crisp p) then all_crisp.(i) <- false
      done);
  {
    file = Relation.file rel;
    stats = Array.init n (fun i -> { dom = dom.(i); all_crisp = all_crisp.(i) });
  }

let ctx ~catalog ~terms =
  let rels =
    List.filter_map
      (fun name -> Option.map scan (Catalog.find catalog name))
      (Catalog.names catalog)
  in
  { catalog; terms; rels }

let stats_for ctx rel attr_idx =
  match List.find_opt (fun rs -> rs.file == Relation.file rel) ctx.rels with
  | Some rs when attr_idx < Array.length rs.stats -> Some rs.stats.(attr_idx)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Code table *)

let code_table =
  [
    ("FSQL001", Diagnostic.Error, "lexical error");
    ("FSQL002", Diagnostic.Error, "syntax error");
    ("FSQL010", Diagnostic.Error, "unknown relation");
    ("FSQL011", Diagnostic.Error, "unknown attribute");
    ("FSQL012", Diagnostic.Error, "ambiguous attribute");
    ("FSQL013", Diagnostic.Error, "empty SELECT list");
    ("FSQL014", Diagnostic.Error, "empty FROM list");
    ("FSQL015", Diagnostic.Error, "COUNT(*) is not supported");
    ("FSQL016", Diagnostic.Error, "aggregate operand outside HAVING");
    ("FSQL018", Diagnostic.Error, "IN / quantifier subquery arity");
    ("FSQL019", Diagnostic.Error, "scalar subquery must select one aggregate");
    ("FSQL020", Diagnostic.Error, "number compared with a string attribute");
    ("FSQL021", Diagnostic.Error, "unknown linguistic term");
    ("FSQL022", Diagnostic.Error, "fuzzy literal against a string attribute");
    ("FSQL023", Diagnostic.Error, "WITH threshold outside [0, 1]");
    ("FSQL024", Diagnostic.Error, "ORDER BY / LIMIT on an inner block");
    ("FSQL025", Diagnostic.Error, "negative LIMIT");
    ("FSQL026", Diagnostic.Error, "HAVING aggregate not of this block");
    ("FSQL027", Diagnostic.Error, "unsupported HAVING form");
    ("FSQL030", Diagnostic.Warning, "support disjoint from loaded domain");
    ("FSQL031", Diagnostic.Warning, "threshold above maximum membership height");
    ("FSQL032", Diagnostic.Warning, "contradictory conjunction");
    ("FSQL033", Diagnostic.Warning, "nested shape needs nested-loop evaluation");
  ]

(* ------------------------------------------------------------------ *)
(* Satisfiability pass

   Walks the AST and the bound query in parallel (the analyzer preserves
   list structure 1:1, and only runs this pass when binding succeeded).

   Soundness notes, since fuzzy data makes naive region reasoning wrong:

   - FSQL030 uses only the loaded-domain hull D: every stored support is
     contained in D, so [supp(lit) disjoint-beyond D] really does force
     sup-min degree 0 for every stored value, fuzzy or crisp.
   - FSQL031 relies on any t-norm being bounded above by [min] and on
     [poss(X op lit) <= height(lit)], which holds for every comparator
     under sup-min semantics.
   - FSQL032 would be unsound for fuzzy values (a wide stored trapezoid
     satisfies [X <= 3 AND X >= 4] with positive degree), so it only
     fires for attributes whose loaded values are all crisp. *)

type constr = {
  c_op : Fuzzy.Fuzzy_compare.op;
  c_sup : Fuzzy.Interval.t;  (** support of the literal *)
  c_span : Ast.span;
}

let warn acc ?hint ~code ~span fmt =
  Printf.ksprintf
    (fun message ->
      acc :=
        Diagnostic.make ?hint ~code ~severity:Diagnostic.Warning ~span message
        :: !acc)
    fmt

(* [attr op lit]: degree 0 for every loaded value? (see notes above) *)
let disjoint_from_domain op ~dom:d ~sup:s =
  let open Fuzzy in
  match op with
  | Fuzzy_compare.Eq -> not (Interval.overlaps d s)
  | Fuzzy_compare.Le -> Interval.lo d > Interval.hi s
  | Fuzzy_compare.Lt -> Interval.lo d >= Interval.hi s
  | Fuzzy_compare.Ge -> Interval.hi d < Interval.lo s
  | Fuzzy_compare.Gt -> Interval.hi d <= Interval.lo s
  | Fuzzy_compare.Ne -> false

let rec check_block ctx acc (ast : Ast.query) (b : Bound.query) =
  (* (from_idx, attr_idx) -> accumulated single-attribute constraints *)
  let constraints : ((int * int) * (string * constr list ref)) list ref =
    ref []
  in
  let flagged_attrs = ref [] in
  let note_constraint (r : Bound.attr_ref) c =
    let key = (r.Bound.from_idx, r.Bound.attr_idx) in
    match List.assoc_opt key !constraints with
    | Some (_, cs) -> cs := c :: !cs
    | None -> constraints := (key, (r.Bound.display, ref [ c ])) :: !constraints
  in
  let consider (r : Bound.attr_ref) op v ~alit ~span =
    match Value.to_possibility v with
    | None -> ()
    | Some p ->
        let sup = Fuzzy.Possibility.support p in
        note_constraint r { c_op = op; c_sup = sup; c_span = span };
        let _, rel = List.nth b.Bound.from r.Bound.from_idx in
        (match stats_for ctx rel r.Bound.attr_idx with
        | Some { dom = Some d; _ } when disjoint_from_domain op ~dom:d ~sup ->
            flagged_attrs := (r.Bound.from_idx, r.Bound.attr_idx) :: !flagged_attrs;
            warn acc ~code:"FSQL030" ~span
              "predicate is always degree 0: support [%g, %g] of %s cannot \
               meet %s's loaded domain [%g, %g]"
              (Fuzzy.Interval.lo sup) (Fuzzy.Interval.hi sup) alit
              r.Bound.display (Fuzzy.Interval.lo d) (Fuzzy.Interval.hi d)
        | _ -> ());
        (* FSQL031: the block's threshold cut vs this predicate's ceiling. *)
        (match b.Bound.threshold with
        | Some { Ast.strict; value = z } ->
            let h = Fuzzy.Possibility.height p in
            if z > h || (strict && z >= h) then
              warn acc ~code:"FSQL031" ~span
                "predicate degree can reach at most %g (the height of %s), \
                 below the WITH D %s %g cut — this block yields no answers"
                h alit
                (if strict then ">" else ">=")
                z
        | None -> ())
  in
  List.iter2
    (fun (bp : Bound.pred) (ap : Ast.predicate) ->
      match (bp, ap) with
      | Bound.Cmp (Bound.Ref r, op, Bound.Lit v), Ast.Cmp (_, _, Ast.Const (c, _))
        when r.Bound.up = 0 ->
          consider r op v ~alit:(Pretty.const_to_string c)
            ~span:(Ast.predicate_span ap)
      | Bound.Cmp (Bound.Lit v, op, Bound.Ref r), Ast.Cmp (Ast.Const (c, _), _, _)
        when r.Bound.up = 0 ->
          consider r (Fuzzy.Fuzzy_compare.flip op) v
            ~alit:(Pretty.const_to_string c)
            ~span:(Ast.predicate_span ap)
      | Bound.Cmp _, _ -> ()
      | Bound.Cmp_sub (_, _, sub), Ast.CmpSub (_, _, asub)
      | Bound.In (_, sub), Ast.In (_, asub)
      | Bound.Not_in (_, sub), Ast.Not_in (_, asub)
      | Bound.Quant (_, _, _, sub), Ast.Quant (_, _, _, asub)
      | Bound.Exists sub, Ast.Exists asub
      | Bound.Not_exists sub, Ast.Not_exists asub ->
          check_block ctx acc asub sub
      | _ ->
          (* The analyzer maps each AST predicate to the same-shaped bound
             predicate, so the lists walk in lock-step. *)
          assert false)
    b.Bound.where ast.Ast.where;
  (* FSQL032: intersect the per-attribute constraint regions (crisp data
     only; skip attributes already flagged FSQL030 to avoid double noise). *)
  List.iter
    (fun ((from_idx, attr_idx), (display, cs)) ->
      let cs = !cs in
      if List.length cs >= 2 && not (List.mem (from_idx, attr_idx) !flagged_attrs)
      then
        let _, rel = List.nth b.Bound.from from_idx in
        match stats_for ctx rel attr_idx with
        | Some { dom = Some d; all_crisp = true } ->
            let lo = ref (Fuzzy.Interval.lo d)
            and hi = ref (Fuzzy.Interval.hi d) in
            List.iter
              (fun c ->
                let slo = Fuzzy.Interval.lo c.c_sup
                and shi = Fuzzy.Interval.hi c.c_sup in
                match c.c_op with
                | Fuzzy.Fuzzy_compare.Eq ->
                    lo := Float.max !lo slo;
                    hi := Float.min !hi shi
                | Fuzzy.Fuzzy_compare.Le | Fuzzy.Fuzzy_compare.Lt ->
                    hi := Float.min !hi shi
                | Fuzzy.Fuzzy_compare.Ge | Fuzzy.Fuzzy_compare.Gt ->
                    lo := Float.max !lo slo
                | Fuzzy.Fuzzy_compare.Ne -> ())
              cs;
            if !lo > !hi then
              let span =
                List.fold_left
                  (fun sp c -> Ast.span_hull sp c.c_span)
                  (List.hd cs).c_span (List.tl cs)
              in
              warn acc ~code:"FSQL032" ~span
                "contradictory conjunction on %s: the combined supports \
                 admit no loaded value (degree is always 0)"
                display
        | _ -> ())
    !constraints

let shape_warning classify (ast : Ast.query) (b : Bound.query) =
  match classify with
  | None -> []
  | Some f -> (
      match f b with
      | None -> []
      | Some desc ->
          let is_nested = function
            | Ast.Cmp _ -> false
            | Ast.CmpSub _ | Ast.In _ | Ast.Not_in _ | Ast.Quant _
            | Ast.Exists _ | Ast.Not_exists _ ->
                true
          in
          let span =
            match List.find_opt is_nested ast.Ast.where with
            | Some p -> Ast.predicate_span p
            | None -> ast.Ast.q_span
          in
          [
            Diagnostic.make ~code:"FSQL033" ~severity:Diagnostic.Warning ~span
              ~hint:
                "expect O(outer x inner) scan cost; consider rewriting the \
                 subquery into an unnestable form"
              (Printf.sprintf
                 "query is %s — outside the unnestable types N/J/JX/JA/JALL, \
                  so it runs on the nested-loop interpreter"
                 desc);
          ])

let check_ast ?classify ctx ast =
  let bound, diags =
    Analyzer.analyze ~catalog:ctx.catalog ~terms:ctx.terms ast
  in
  match bound with
  | None -> (None, diags)
  | Some b ->
      let acc = ref [] in
      check_block ctx acc ast b;
      let shape = shape_warning classify ast b in
      (Some b, Diagnostic.sort (diags @ !acc @ shape))

let check_string ?classify ctx sql =
  match Parser.parse_spanned sql with
  | exception Lexer.Error (msg, pos) ->
      ( None,
        [
          Diagnostic.make ~code:"FSQL001" ~severity:Diagnostic.Error
            ~span:{ Ast.sp_lo = pos; sp_hi = pos + 1 }
            msg;
        ] )
  | exception Parser.Error_at (msg, span) ->
      (None, [ Diagnostic.make ~code:"FSQL002" ~severity:Diagnostic.Error ~span msg ])
  | ast -> check_ast ?classify ctx ast
