(** Abstract syntax of Fuzzy SQL (Section 2.2 of the paper).

    A query is a SELECT block: projection list, FROM relations (with optional
    aliases), a WHERE conjunction of predicates, optional GROUPBY / HAVING,
    and an optional [WITH D >= z] threshold on the answer's membership
    degrees. Subqueries appear in IN / NOT IN predicates, under quantifiers
    (ALL / SOME), under EXISTS, and as scalar aggregate subqueries compared
    with [op] (the paper's type JA). *)

type const =
  | Num of float  (** crisp number *)
  | Str of string
      (** either a string constant or a linguistic term — disambiguated
          against the attribute type and term dictionary by the analyzer *)
  | Trap of float * float * float * float  (** TRAP(a,b,c,d) literal *)
  | Tri of float * float * float  (** TRI(a,peak,d) literal *)
  | About of float * float  (** ABOUT(v, spread) literal *)
  | Discrete of (float * float) list  (** DIST(v:d, ...) literal *)

type operand =
  | Attr of string
  | Const of const
  | Agg_of of Relational.Aggregate.t * string
      (** aggregate operand, only meaningful inside HAVING *)

type quant = All | Some_

type select_item =
  | Col of string
  | Agg of Relational.Aggregate.t * string

type threshold = { strict : bool; value : float }

type order = Desc | Asc

type query = {
  distinct : bool;
  select : select_item list;
  from : (string * string option) list;
  where : predicate list;  (** conjunction *)
  group_by : string list;
  having : predicate list;
  with_d : threshold option;
  order_by_d : order option;  (** ORDER BY D: rank answers by degree *)
  limit : int option;  (** LIMIT k: top-k answers (by degree when ordered) *)
}

and predicate =
  | Cmp of operand * Fuzzy.Fuzzy_compare.op * operand
  | CmpSub of operand * Fuzzy.Fuzzy_compare.op * query
      (** scalar (aggregate) subquery comparison *)
  | In of operand * query
  | Not_in of operand * query
  | Quant of operand * Fuzzy.Fuzzy_compare.op * quant * query
  | Exists of query
  | Not_exists of query

let empty_query =
  {
    distinct = false;
    select = [];
    from = [];
    where = [];
    group_by = [];
    having = [];
    with_d = None;
    order_by_d = None;
    limit = None;
  }
