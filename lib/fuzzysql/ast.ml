(** Abstract syntax of Fuzzy SQL (Section 2.2 of the paper).

    A query is a SELECT block: projection list, FROM relations (with optional
    aliases), a WHERE conjunction of predicates, optional GROUPBY / HAVING,
    and an optional [WITH D >= z] threshold on the answer's membership
    degrees. Subqueries appear in IN / NOT IN predicates, under quantifiers
    (ALL / SOME), under EXISTS, and as scalar aggregate subqueries compared
    with [op] (the paper's type JA).

    Every named node carries a byte {!span} into the source text so the
    analyzer ({!Analyzer}, {!Check}) can attach caret-rendered diagnostics
    to the exact offending fragment. Leaf payload types ([const], [quant],
    [threshold], [order]) are span-free — downstream consumers (the
    unnesting planner, the CSV loader) pattern-match on those and never
    need positions. *)

type span = { sp_lo : int; sp_hi : int }
(** Byte offsets into the source string, [sp_hi] exclusive. *)

let dummy_span = { sp_lo = 0; sp_hi = 0 }

let span_hull a b =
  { sp_lo = min a.sp_lo b.sp_lo; sp_hi = max a.sp_hi b.sp_hi }

type const =
  | Num of float  (** crisp number *)
  | Str of string
      (** either a string constant or a linguistic term — disambiguated
          against the attribute type and term dictionary by the analyzer *)
  | Trap of float * float * float * float  (** TRAP(a,b,c,d) literal *)
  | Tri of float * float * float  (** TRI(a,peak,d) literal *)
  | About of float * float  (** ABOUT(v, spread) literal *)
  | Discrete of (float * float) list  (** DIST(v:d, ...) literal *)

type operand =
  | Attr of string * span
  | Const of const * span
  | Agg_of of Relational.Aggregate.t * string * span
      (** aggregate operand, only meaningful inside HAVING *)

type quant = All | Some_

type select_item =
  | Col of string * span
  | Agg of Relational.Aggregate.t * string * span

type threshold = { strict : bool; value : float }

type order = Desc | Asc

type query = {
  distinct : bool;
  select : select_item list;
  from : (string * string option * span) list;
  where : predicate list;  (** conjunction *)
  group_by : (string * span) list;
  having : predicate list;
  with_d : threshold option;
  with_span : span;  (** span of the WITH clause; [dummy_span] if absent *)
  order_by_d : order option;  (** ORDER BY D: rank answers by degree *)
  limit : int option;  (** LIMIT k: top-k answers (by degree when ordered) *)
  q_span : span;  (** whole block, SELECT to last clause *)
}

and predicate =
  | Cmp of operand * Fuzzy.Fuzzy_compare.op * operand
  | CmpSub of operand * Fuzzy.Fuzzy_compare.op * query
      (** scalar (aggregate) subquery comparison *)
  | In of operand * query
  | Not_in of operand * query
  | Quant of operand * Fuzzy.Fuzzy_compare.op * quant * query
  | Exists of query
  | Not_exists of query

let operand_span = function
  | Attr (_, sp) | Const (_, sp) | Agg_of (_, _, sp) -> sp

let predicate_span = function
  | Cmp (l, _, r) -> span_hull (operand_span l) (operand_span r)
  | CmpSub (l, _, q) | In (l, q) | Not_in (l, q) | Quant (l, _, _, q) ->
      span_hull (operand_span l) q.q_span
  | Exists q | Not_exists q -> q.q_span

let empty_query =
  {
    distinct = false;
    select = [];
    from = [];
    where = [];
    group_by = [];
    having = [];
    with_d = None;
    with_span = dummy_span;
    order_by_d = None;
    limit = None;
    q_span = dummy_span;
  }
