(** Pretty-printer for Fuzzy SQL ASTs (round-trip tested against the
    parser). *)

let const_to_string = function
  | Ast.Num f -> Printf.sprintf "%g" f
  | Ast.Str s -> Printf.sprintf "\"%s\"" s
  | Ast.Trap (a, b, c, d) -> Printf.sprintf "TRAP(%g, %g, %g, %g)" a b c d
  | Ast.Tri (a, p, d) -> Printf.sprintf "TRI(%g, %g, %g)" a p d
  | Ast.About (v, s) -> Printf.sprintf "ABOUT(%g, %g)" v s
  | Ast.Discrete pts ->
      Printf.sprintf "DIST(%s)"
        (String.concat ", " (List.map (fun (v, d) -> Printf.sprintf "%g:%g" v d) pts))

let operand_to_string = function
  | Ast.Attr (a, _) -> a
  | Ast.Const (c, _) -> const_to_string c
  | Ast.Agg_of (agg, a, _) ->
      Printf.sprintf "%s(%s)" (Relational.Aggregate.to_string agg) a

let rec query_to_string (q : Ast.query) =
  let select_item = function
    | Ast.Col (a, _) -> a
    | Ast.Agg (agg, a, _) ->
        Printf.sprintf "%s(%s)" (Relational.Aggregate.to_string agg) a
  in
  let from_item = function
    | rel, None, _ -> rel
    | rel, Some alias, _ -> rel ^ " " ^ alias
  in
  let parts =
    [
      "SELECT "
      ^ (if q.Ast.distinct then "DISTINCT " else "")
      ^ String.concat ", " (List.map select_item q.Ast.select);
      "FROM " ^ String.concat ", " (List.map from_item q.Ast.from);
    ]
    @ (match q.Ast.where with
      | [] -> []
      | ps -> [ "WHERE " ^ String.concat " AND " (List.map pred_to_string ps) ])
    @ (match q.Ast.group_by with
      | [] -> []
      | gs -> [ "GROUPBY " ^ String.concat ", " (List.map fst gs) ])
    @ (match q.Ast.having with
      | [] -> []
      | ps -> [ "HAVING " ^ String.concat " AND " (List.map pred_to_string ps) ])
    @ (match q.Ast.order_by_d with
      | None -> []
      | Some Ast.Desc -> [ "ORDERBY D DESC" ]
      | Some Ast.Asc -> [ "ORDERBY D ASC" ])
    @ (match q.Ast.limit with
      | None -> []
      | Some k -> [ Printf.sprintf "LIMIT %d" k ])
    @
    match q.Ast.with_d with
    | None -> []
    | Some { Ast.strict; value } ->
        [ Printf.sprintf "WITH D %s %g" (if strict then ">" else ">=") value ]
  in
  String.concat " " parts

and pred_to_string = function
  | Ast.Cmp (l, op, r) ->
      Printf.sprintf "%s %s %s" (operand_to_string l)
        (Fuzzy.Fuzzy_compare.op_to_string op)
        (operand_to_string r)
  | Ast.CmpSub (l, op, q) ->
      Printf.sprintf "%s %s (%s)" (operand_to_string l)
        (Fuzzy.Fuzzy_compare.op_to_string op)
        (query_to_string q)
  | Ast.In (l, q) ->
      Printf.sprintf "%s IN (%s)" (operand_to_string l) (query_to_string q)
  | Ast.Not_in (l, q) ->
      Printf.sprintf "%s NOT IN (%s)" (operand_to_string l) (query_to_string q)
  | Ast.Quant (l, op, quant, q) ->
      Printf.sprintf "%s %s %s (%s)" (operand_to_string l)
        (Fuzzy.Fuzzy_compare.op_to_string op)
        (match quant with Ast.All -> "ALL" | Ast.Some_ -> "SOME")
        (query_to_string q)
  | Ast.Exists q -> Printf.sprintf "EXISTS (%s)" (query_to_string q)
  | Ast.Not_exists q -> Printf.sprintf "NOT EXISTS (%s)" (query_to_string q)
