(** Name-resolved (bound) Fuzzy SQL queries.

    The analyzer turns the textual AST into this form: every attribute
    reference carries the number of query-block levels to climb ([up] = 0 for
    the local block — a nonzero [up] is a correlation reference to an outer
    relation), the index of the FROM entry within that block, and the
    attribute position within that relation's schema. The executors
    (naive nested evaluation, blocked nested loop, and the unnesting
    merge-join pipelines) all interpret this single representation. *)

open Relational

type attr_ref = {
  up : int;  (** 0 = this block, k = k levels out (correlation) *)
  from_idx : int;  (** which FROM entry of that block *)
  attr_idx : int;  (** attribute position in the relation's schema *)
  display : string;  (** name for result schemas and error messages *)
}

type operand = Ref of attr_ref | Lit of Value.t

type select_item =
  | Col of attr_ref
  | Agg of Aggregate.t * attr_ref

type quant = Ast.quant

type query = {
  distinct : bool;
  select : select_item list;
  from : (string * Relation.t) list;  (** alias, bound relation *)
  where : pred list;
  group_by : attr_ref list;
  having : having list;
  threshold : Ast.threshold option;
  order_by_d : Ast.order option;
  limit : int option;
}

and pred =
  | Cmp of operand * Fuzzy.Fuzzy_compare.op * operand
  | Cmp_sub of operand * Fuzzy.Fuzzy_compare.op * query
  | In of operand * query
  | Not_in of operand * query
  | Quant of operand * Fuzzy.Fuzzy_compare.op * quant * query
  | Exists of query
  | Not_exists of query

and having = {
  h_agg : Aggregate.t;
  h_attr : attr_ref;
  h_op : Fuzzy.Fuzzy_compare.op;
  h_value : Value.t;
}

(** Number of nested blocks: 1 for a flat query. *)
let rec depth q =
  let pred_depth = function
    | Cmp _ -> 0
    | Cmp_sub (_, _, sub) | In (_, sub) | Not_in (_, sub)
    | Quant (_, _, _, sub) | Exists sub | Not_exists sub ->
        depth sub
  in
  1 + List.fold_left (fun acc p -> Int.max acc (pred_depth p)) 0 q.where
