(** Tokens of the Fuzzy SQL lexer. *)

type t =
  | SELECT
  | DISTINCT
  | FROM
  | WHERE
  | AND
  | IN
  | NOT
  | IS
  | ALL
  | SOME
  | EXISTS
  | GROUPBY
  | ORDERBY
  | DESC
  | ASC
  | LIMIT
  | HAVING
  | WITH
  | TRAP
  | TRI
  | ABOUT
  | DIST
  | IDENT of string  (** identifier, possibly qualified (R.X) *)
  | STRING of string
  | NUMBER of float
  | OP of Fuzzy.Fuzzy_compare.op
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | STAR
  | EOF

let to_string = function
  | SELECT -> "SELECT"
  | DISTINCT -> "DISTINCT"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | AND -> "AND"
  | IN -> "IN"
  | NOT -> "NOT"
  | IS -> "IS"
  | ALL -> "ALL"
  | SOME -> "SOME"
  | EXISTS -> "EXISTS"
  | GROUPBY -> "GROUPBY"
  | ORDERBY -> "ORDERBY"
  | DESC -> "DESC"
  | ASC -> "ASC"
  | LIMIT -> "LIMIT"
  | HAVING -> "HAVING"
  | WITH -> "WITH"
  | TRAP -> "TRAP"
  | TRI -> "TRI"
  | ABOUT -> "ABOUT"
  | DIST -> "DIST"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING s -> Printf.sprintf "string %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | OP op -> Fuzzy.Fuzzy_compare.op_to_string op
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | STAR -> "*"
  | EOF -> "end of input"
