open Relational

exception Error of string

let errf line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

(* Split one CSV line into fields, honouring double quotes. *)
let split_line ~separator line lineno =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then begin
      if in_quotes then errf lineno "unterminated quoted field";
      fields := Buffer.contents buf :: !fields
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = separator then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev_map String.trim !fields

let cell_value ~terms ~ty ~lineno cell =
  match ty with
  | Schema.TStr -> Value.Str cell
  | Schema.TNum -> (
      match float_of_string_opt cell with
      | Some f -> Value.crisp_num f
      | None -> (
          (* Try the term dictionary on the raw text first: linguistic terms
             such as "about 35" would otherwise collide with the ABOUT
             keyword of the literal syntax. *)
          match Fuzzy.Hedge.lookup terms cell with
          | Some p -> Value.Fuzzy p
          | None -> (
              let const =
                try Parser.parse_const cell with
                | Parser.Error msg -> errf lineno "bad cell %S: %s" cell msg
                | Lexer.Error (msg, _) -> errf lineno "bad cell %S: %s" cell msg
              in
              match const with
              | Ast.Num f -> Value.crisp_num f
              | Ast.Trap (a, b, c, d) ->
                  Value.Fuzzy (Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make a b c d))
              | Ast.Tri (a, p, d) -> Value.Fuzzy (Fuzzy.Possibility.triangle a p d)
              | Ast.About (v, s) -> Value.Fuzzy (Fuzzy.Possibility.about v ~spread:s)
              | Ast.Discrete pts -> Value.Fuzzy (Fuzzy.Possibility.discrete pts)
              | Ast.Str s -> (
                  match Fuzzy.Hedge.lookup terms s with
                  | Some p -> Value.Fuzzy p
                  | None ->
                      errf lineno
                        "cell %S of a numeric column is neither a number, a \
                         fuzzy literal, nor a known linguistic term"
                        s))))

let load_lines ?(separator = ',') ?(terms = Fuzzy.Term.paper) env ~name ~schema
    lines =
  match lines with
  | [] -> raise (Error "empty input: missing header row")
  | header :: rows ->
      let columns = split_line ~separator header 1 in
      let find_column attr =
        let rec go i = function
          | [] -> raise (Error (Printf.sprintf "missing column %s" attr))
          | c :: rest ->
              if String.lowercase_ascii c = String.lowercase_ascii attr then i
              else go (i + 1) rest
        in
        go 0 columns
      in
      let positions = List.map (fun (attr, ty) -> (find_column attr, ty)) schema in
      let degree_pos =
        let rec go i = function
          | [] -> None
          | c :: rest -> if String.lowercase_ascii c = "d" then Some i else go (i + 1) rest
        in
        go 0 columns
      in
      let rel = Relation.create env (Schema.make ~name schema) in
      List.iteri
        (fun row_idx line ->
          let lineno = row_idx + 2 in
          if String.trim line <> "" then begin
            let cells = Array.of_list (split_line ~separator line lineno) in
            let get i =
              if i < Array.length cells then cells.(i)
              else errf lineno "row has only %d fields" (Array.length cells)
            in
            let values =
              List.map (fun (i, ty) -> cell_value ~terms ~ty ~lineno (get i)) positions
            in
            let degree =
              match degree_pos with
              | None -> 1.0
              | Some i -> (
                  match float_of_string_opt (get i) with
                  | Some d when d >= 0.0 && d <= 1.0 -> d
                  | Some d -> errf lineno "degree %g outside [0, 1]" d
                  | None -> errf lineno "bad degree %S" (get i))
            in
            Relation.insert rel (Ftuple.make (Array.of_list values) degree)
          end)
        rows;
      Storage.Buffer_pool.flush env.Storage.Env.pool;
      rel

let load_csv_string ?separator ?terms env ~name ~schema text =
  load_lines ?separator ?terms env ~name ~schema
    (String.split_on_char '\n' text)

let load_csv ?separator ?terms env ~name ~schema ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      load_lines ?separator ?terms env ~name ~schema (List.rev !lines))
