(** Hand-written lexer for Fuzzy SQL.

    Identifiers may be qualified ([M.AGE]); string literals use single or
    double quotes; [GROUP BY] and [GROUPBY] both lex to {!Token.GROUPBY};
    comments run from [--] to end of line. *)

exception Error of string * int  (** message, byte offset *)

val tokenize : string -> Token.t list
(** The resulting list always ends with [EOF]. *)

val tokenize_spanned : string -> (Token.t * (int * int)) list
(** Like {!tokenize}, with each token's (start, end) byte offsets, end
    exclusive. [EOF] gets the zero-width span at the end of the input. *)
