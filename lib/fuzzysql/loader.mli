(** Loading fuzzy relations from CSV files.

    The first row names the columns; each schema attribute must appear among
    them (extra columns are ignored). An optional [D] column supplies tuple
    membership degrees (default 1). Cell syntax per column type:
    - numeric columns: a number ([42], [3.5]) loads as a crisp value; a
      fuzzy literal ([TRAP(20,25,30,35)], [TRI(30,35,40)], [ABOUT(35)],
      [DIST(1:1, 2:0.8)]) loads as a possibility distribution; a bare or
      quoted word is resolved in the term dictionary ("medium young");
    - string columns: the cell text (quotes optional).

    Fields are separated by [separator] (default ','); double quotes wrap
    fields containing separators, and doubled quotes escape a quote. *)

exception Error of string  (** includes the 1-based line number *)

val load_csv :
  ?separator:char -> ?terms:Fuzzy.Term.t -> Storage.Env.t -> name:string ->
  schema:(string * Relational.Schema.ty) list -> path:string ->
  Relational.Relation.t

val load_csv_string :
  ?separator:char -> ?terms:Fuzzy.Term.t -> Storage.Env.t -> name:string ->
  schema:(string * Relational.Schema.ty) list -> string ->
  Relational.Relation.t
(** Same, from an in-memory string (used by tests). *)
