exception Error of string * int

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c || c = '.'

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some Token.SELECT
  | "DISTINCT" -> Some Token.DISTINCT
  | "FROM" -> Some Token.FROM
  | "WHERE" -> Some Token.WHERE
  | "AND" -> Some Token.AND
  | "IN" -> Some Token.IN
  | "NOT" -> Some Token.NOT
  | "IS" -> Some Token.IS
  | "ALL" -> Some Token.ALL
  | "SOME" | "ANY" -> Some Token.SOME
  | "EXISTS" -> Some Token.EXISTS
  | "GROUPBY" -> Some Token.GROUPBY
  | "ORDERBY" -> Some Token.ORDERBY
  | "DESC" -> Some Token.DESC
  | "ASC" -> Some Token.ASC
  | "LIMIT" -> Some Token.LIMIT
  | "HAVING" -> Some Token.HAVING
  | "WITH" -> Some Token.WITH
  | "TRAP" -> Some Token.TRAP
  | "TRI" -> Some Token.TRI
  | "ABOUT" -> Some Token.ABOUT
  | "DIST" -> Some Token.DIST
  | _ -> None

(* Each token carries its (start, end) byte offsets, end exclusive; EOF
   gets the zero-width span at the end of the input. *)
let tokenize_spanned input =
  let n = String.length input in
  let tokens = ref [] in
  let emit lo hi t = tokens := (t, (lo, hi)) :: !tokens in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i =
    if i >= n then emit n n Token.EOF
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' -> go (skip_line i)
      | '(' -> emit i (i + 1) Token.LPAREN; go (i + 1)
      | ')' -> emit i (i + 1) Token.RPAREN; go (i + 1)
      | ',' -> emit i (i + 1) Token.COMMA; go (i + 1)
      | ':' -> emit i (i + 1) Token.COLON; go (i + 1)
      | '*' -> emit i (i + 1) Token.STAR; go (i + 1)
      | '=' -> emit i (i + 1) (Token.OP Fuzzy.Fuzzy_compare.Eq); go (i + 1)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
          emit i (i + 2) (Token.OP Fuzzy.Fuzzy_compare.Ne); go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
          emit i (i + 2) (Token.OP Fuzzy.Fuzzy_compare.Le); go (i + 2)
      | '<' -> emit i (i + 1) (Token.OP Fuzzy.Fuzzy_compare.Lt); go (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
          emit i (i + 2) (Token.OP Fuzzy.Fuzzy_compare.Ge); go (i + 2)
      | '>' -> emit i (i + 1) (Token.OP Fuzzy.Fuzzy_compare.Gt); go (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' ->
          emit i (i + 2) (Token.OP Fuzzy.Fuzzy_compare.Ne); go (i + 2)
      | ('\'' | '"') as quote ->
          let rec find j =
            if j >= n then raise (Error ("unterminated string literal", i))
            else if input.[j] = quote then j
            else find (j + 1)
          in
          let j = find (i + 1) in
          emit i (j + 1) (Token.STRING (String.sub input (i + 1) (j - i - 1)));
          go (j + 1)
      | c when is_digit c ->
          let rec find j =
            if j < n && (is_digit input.[j] || input.[j] = '.') then find (j + 1)
            else j
          in
          let j = find i in
          let s = String.sub input i (j - i) in
          (match float_of_string_opt s with
          | Some f -> emit i j (Token.NUMBER f)
          | None -> raise (Error (Printf.sprintf "bad number %S" s, i)));
          go j
      | c when is_ident_start c ->
          let rec find j = if j < n && is_ident_char input.[j] then find (j + 1) else j in
          let j = find i in
          let s = String.sub input i (j - i) in
          (match keyword_of_string s with
          | Some kw -> emit i j kw; go j
          | None ->
              (* "GROUP BY" as two words *)
              if String.uppercase_ascii s = "GROUP"
                 || String.uppercase_ascii s = "ORDER" then begin
                let kw =
                  if String.uppercase_ascii s = "GROUP" then Token.GROUPBY
                  else Token.ORDERBY
                in
                let rec skip_ws k =
                  if k < n && (input.[k] = ' ' || input.[k] = '\t' || input.[k] = '\n')
                  then skip_ws (k + 1)
                  else k
                in
                let k = skip_ws j in
                if k + 1 < n && String.uppercase_ascii (String.sub input k 2) = "BY"
                then begin
                  emit i (k + 2) kw;
                  go (k + 2)
                end
                else begin
                  emit i j (Token.IDENT s);
                  go j
                end
              end
              else begin
                emit i j (Token.IDENT s);
                go j
              end)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0;
  List.rev !tokens

let tokenize input = List.map fst (tokenize_spanned input)
