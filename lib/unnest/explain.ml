(** EXPLAIN: a textual account of how the planner will evaluate a query —
    the classified shape, the chosen method, the sort/sweep attributes, the
    correlation residuals, and histogram-based cardinality estimates. *)

open Relational

let attr_name rel i = Schema.attr_name (Relation.schema rel) i

let corr_to_string ~outer ~inner (c : Classify.corr) =
  Printf.sprintf "%s %s %s"
    (attr_name inner c.Classify.local_attr)
    (Fuzzy.Fuzzy_compare.op_to_string c.Classify.op)
    (attr_name outer c.Classify.outer_attr)

let link_description ~outer ~inner = function
  | Classify.In_link { y; z; corr } ->
      ( Printf.sprintf "d(%s = %s)" (attr_name outer y) (attr_name inner z),
        corr, Some (y, z) )
  | Classify.Not_in_link { y; z; corr } ->
      ( Printf.sprintf "group-min over 1 - min(.., d(%s = %s), ..)"
          (attr_name outer y) (attr_name inner z),
        corr, Some (y, z) )
  | Classify.Quant_link { y; op; quant; z; corr } ->
      ( Printf.sprintf "quantified %s: d(%s %s %s)"
          (match quant with Fuzzysql.Ast.All -> "ALL" | Fuzzysql.Ast.Some_ -> "SOME")
          (attr_name outer y)
          (Fuzzy.Fuzzy_compare.op_to_string op)
          (attr_name inner z),
        corr, None )
  | Classify.Agg_link { y; op1; agg; z; corr } ->
      ( Printf.sprintf "pipelined %s(%s) compared as d(%s %s AGG)"
          (Aggregate.to_string agg) (attr_name inner z) (attr_name outer y)
          (Fuzzy.Fuzzy_compare.op_to_string op1),
        corr, None )
  | Classify.Exists_link { negated; corr } ->
      ( (if negated then "fuzzy anti-join (NOT EXISTS)"
         else "fuzzy semi-join (EXISTS)"),
        corr, None )

let two_level_text buf (t : Classify.two_level) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let { Classify.outer; inner; p1; p2; link; threshold; select; _ } = t in
  let link_text, corr, in_attrs = link_description ~outer ~inner link in
  add "method: unnest + extended merge-join (Sections 4-7)\n";
  add "  reduce %s by p1 (%d local predicate%s)\n"
    (Schema.name (Relation.schema outer))
    (List.length p1)
    (if List.length p1 = 1 then "" else "s");
  add "  reduce %s by p2 (%d local predicate%s)\n"
    (Schema.name (Relation.schema inner))
    (List.length p2)
    (if List.length p2 = 1 then "" else "s");
  let sweep =
    match (in_attrs, corr) with
    | Some (y, z), _ -> Some (y, z)
    | None, corr -> (
        match
          List.find_opt
            (fun (c : Classify.corr) -> c.Classify.op = Fuzzy.Fuzzy_compare.Eq)
            corr
        with
        | Some c -> Some (c.Classify.outer_attr, c.Classify.local_attr)
        | None -> None)
  in
  (match sweep with
  | Some (y, z) ->
      add "  sort both on the Definition 3.1 interval order of (%s, %s)\n"
        (attr_name outer y) (attr_name inner z);
      add "  single sweep; per outer tuple examine Rng(r): %s\n" link_text;
      let hy = Histogram.build outer ~attr:y and hz = Histogram.build inner ~attr:z in
      add "  estimates: |%s| = %d, |%s| = %d, expected matching pairs ~ %.0f\n"
        (Schema.name (Relation.schema outer))
        (Relation.cardinality outer)
        (Schema.name (Relation.schema inner))
        (Relation.cardinality inner)
        (Histogram.estimate_eq_join hy hz)
  | None ->
      add "  no equality to sweep on -> falls back to the nested-loop method\n");
  (match corr with
  | [] -> ()
  | corr ->
      add "  residual correlation predicates: %s\n"
        (String.concat ", " (List.map (corr_to_string ~outer ~inner) corr)));
  add "  project %s, duplicate-eliminate keeping max degree\n"
    (String.concat ", " (List.map (attr_name outer) select));
  add "  rewritten flat query (paper notation):\n    %s\n" (Rewrite_sql.two_level t);
  match threshold with
  | Some { Fuzzysql.Ast.strict; value } ->
      add "  threshold WITH D %s %g (pushed down%s)\n"
        (if strict then ">" else ">=") value
        (if Pushdown.inner_prunable link then " on both sides"
         else " on the outer side only")
  | None -> ()

let chain_text buf (c : Classify.chain) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let order = Chain_order.plan c in
  let blocks = Array.of_list c.Classify.blocks in
  let name i = Schema.name (Relation.schema blocks.(i).Classify.rel) in
  add "method: unnest to a K-way flat join (Theorem 8.1), merge-joins only\n";
  add "  blocks: %s\n"
    (String.concat " -> " (List.map (fun (b : Classify.chain_block) ->
         Schema.name (Relation.schema b.Classify.rel)) c.Classify.blocks));
  add "  join order (interval DP over estimated intermediate sizes):\n";
  add "    start with %s" (name order.Chain_order.start);
  List.iter (fun b -> add ", then join %s" (name b)) order.Chain_order.steps;
  add "\n    estimated total intermediate tuples: %.0f\n"
    order.Chain_order.estimated_cost;
  add "  rewritten flat query (Theorem 8.1):\n    %s\n" (Rewrite_sql.chain c)

let explain (q : Fuzzysql.Bound.query) : string =
  let buf = Buffer.create 512 in
  let shape = Classify.classify q in
  Buffer.add_string buf ("shape: " ^ Classify.to_string shape ^ "\n");
  (match shape with
  | Classify.Two_level t -> two_level_text buf t
  | Classify.Chain_query c -> chain_text buf c
  | Classify.Flat ->
      Buffer.add_string buf
        "method: direct evaluation (nested loops over the FROM relations,\n\
        \  grouped aggregation if requested, dedup-max, threshold)\n"
  | Classify.General ->
      Buffer.add_string buf
        "method: naive interpreter (inner blocks re-evaluated per outer\n\
        \  binding) - the shape is outside the paper's unnestable classes\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: run the query under a trace collector, then annotate
   the recorded operator spans with the planner's cardinality estimates.
   The estimates are computed AFTER the run, on the base relations — the
   histogram build scans must not pollute the traced I/O counters. *)

type analysis = {
  answer : Relation.t;
  trace : Storage.Trace.t;
  text : string;
}

(* The sweep equality the two-level plan would pick (mirrors the dispatch
   in {!Merge_exec.run}). *)
let sweep_attrs (t : Classify.two_level) =
  match t.Classify.link with
  | Classify.In_link { y; z; _ } | Classify.Not_in_link { y; z; _ } ->
      Some (y, z)
  | Classify.Quant_link { corr; _ }
  | Classify.Exists_link { corr; _ }
  | Classify.Agg_link { corr; _ } -> (
      match
        List.find_opt
          (fun (c : Classify.corr) -> c.Classify.op = Fuzzy.Fuzzy_compare.Eq)
          corr
      with
      | Some c -> Some (c.Classify.outer_attr, c.Classify.local_attr)
      | None -> None)

let annotate_estimates trace (shape : Classify.t) =
  let module Trace = Storage.Trace in
  let set_on name est =
    Trace.iter_spans trace (fun sp ->
        if Trace.span_name sp = name then Trace.span_set_est_rows sp est)
  in
  match shape with
  | Classify.Two_level t -> (
      match sweep_attrs t with
      | Some (y, z) ->
          let hy = Histogram.build t.Classify.outer ~attr:y
          and hz = Histogram.build t.Classify.inner ~attr:z in
          let est = Histogram.estimate_eq_join hy hz in
          (* The sweep emits one callback per outer tuple; the estimated
             matching pairs bound what the callbacks fold over. In the
             parallel plan each partition's sweep span gets the global
             estimate (partition-local estimates are not computed). *)
          set_on "sweep" est;
          set_on "query" (float_of_int (Relation.cardinality t.Classify.outer))
      | None -> ())
  | Classify.Chain_query c ->
      let order = Chain_order.plan c in
      set_on "query" order.Chain_order.estimated_cost
  | Classify.Flat | Classify.General -> ()

let analyze ?name ?strategy ?mem_pages ?chain_dp ?domains
    (q : Fuzzysql.Bound.query) : analysis =
  let module Trace = Storage.Trace in
  let trace = Trace.create () in
  let answer =
    Planner.run ?name ?strategy ?mem_pages ?chain_dp ?domains ~trace q
  in
  annotate_estimates trace (Classify.classify q);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (explain q);
  Buffer.add_string buf "analyze:\n";
  Buffer.add_string buf (Format.asprintf "%a" Trace.pp_tree trace);
  Printf.ksprintf (Buffer.add_string buf) "actual answer rows: %d\n"
    (Relation.cardinality answer);
  { answer; trace; text = Buffer.contents buf }
