(** The nested-loop method: the only way a *nested* fuzzy query can be
    evaluated (Section 3), and the baseline of every experiment in Section 9.

    Buffer allocation follows the paper: one page for the inner relation, the
    rest for outer blocks. For each outer block the inner relation is scanned
    once while per-outer-tuple accumulators absorb each inner tuple's
    contribution to the linking predicate; this is semantically identical to
    re-evaluating the inner block per outer tuple (max / min of mins commute
    with the scan order) but has the paper's measured I/O pattern
    [b_R + ceil(b_R / (M-1)) * b_S]. *)

open Relational
open Fuzzy
open Fuzzysql

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_structural
end)

(* Degree of the conjunction of correlation predicates for a pair (r, s). *)
let corr_degree stats (corr : Classify.corr list) r s =
  match corr with
  | [] -> Degree.one
  | corr ->
      List.fold_left
        (fun acc (c : Classify.corr) ->
          Storage.Iostats.record_fuzzy_op stats;
          Degree.conj acc
            (Value.compare_degree c.Classify.op
               (Ftuple.value s c.Classify.local_attr)
               (Ftuple.value r c.Classify.outer_attr)))
        Degree.one corr

let run ?(name = "answer") ?trace ?cancel (shape : Classify.two_level)
    ~mem_pages : Relation.t =
  let module Trace = Storage.Trace in
  let { Classify.select; outer; inner; p1; p2; link; threshold } = shape in
  let env = Relation.env outer in
  let stats = env.Storage.Env.stats in
  let out_schema =
    Schema.make ~name
      (List.map (fun i -> (Schema.attrs (Relation.schema outer)).(i)) select)
  in
  let out = Relation.create env out_schema in
  let emit r d =
    if Degree.positive d then
      Relation.insert out
        (Ftuple.make
           (Array.of_list (List.map (fun p -> Ftuple.value r p) select))
           d)
  in
  Trace.with_span trace ~stats ~pool:env.Storage.Env.pool "nested-loop"
    (fun () ->
  Join_nested_loop.iter_blocks ~outer ~inner ~mem_pages
    ~f:(fun block scan_inner ->
      Storage.Cancel.check cancel;
      (* d1.(i): degree of membership and p1 for the i-th block tuple. *)
      let d1 =
        Array.map
          (fun r ->
            let d =
              Degree.conj (Ftuple.degree r) (Semantics.local_degree stats r p1)
            in
            (* Threshold pushdown: a failing outer tuple can never produce a
               passing answer (the answer degree is min(d, ...)). *)
            if Pushdown.cannot_pass threshold d then Degree.zero else d)
          block
      in
      let n = Array.length block in
      (* Per-link accumulation, with the link dispatch hoisted out of the
         per-pair loop. [absorb s d2] folds one inner tuple into every block
         tuple's accumulator; [finalize i r] turns the accumulator into the
         linking predicate's satisfaction degree. *)
      let absorb, finalize =
        match link with
        | Classify.In_link { y; z; corr } ->
            let m = Array.make n Degree.zero in
            ( (fun s d2 ->
                for i = 0 to n - 1 do
                  if Degree.positive d1.(i) then begin
                    let r = block.(i) in
                    Storage.Iostats.record_fuzzy_op stats;
                    let term =
                      Degree.conj d2
                        (Degree.conj
                           (Value.compare_degree Fuzzy_compare.Eq
                              (Ftuple.value r y) (Ftuple.value s z))
                           (corr_degree stats corr r s))
                    in
                    if term > m.(i) then m.(i) <- term
                  end
                done),
              fun i _ -> m.(i) )
        | Classify.Not_in_link { y; z; corr } ->
            let m = Array.make n Degree.zero in
            ( (fun s d2 ->
                for i = 0 to n - 1 do
                  if Degree.positive d1.(i) then begin
                    let r = block.(i) in
                    Storage.Iostats.record_fuzzy_op stats;
                    let term =
                      Degree.conj d2
                        (Degree.conj
                           (Value.compare_degree Fuzzy_compare.Eq
                              (Ftuple.value r y) (Ftuple.value s z))
                           (corr_degree stats corr r s))
                    in
                    if term > m.(i) then m.(i) <- term
                  end
                done),
              fun i _ -> Degree.neg m.(i) )
        | Classify.Quant_link { y; op; quant; z; corr } ->
            let m = Array.make n Degree.zero in
            ( (fun s d2 ->
                for i = 0 to n - 1 do
                  if Degree.positive d1.(i) then begin
                    let r = block.(i) in
                    Storage.Iostats.record_fuzzy_op stats;
                    let d_cmp =
                      Value.compare_degree op (Ftuple.value r y)
                        (Ftuple.value s z)
                    in
                    let inner_term =
                      match quant with
                      | Ast.All -> Degree.neg d_cmp
                      | Ast.Some_ -> d_cmp
                    in
                    let term =
                      Degree.conj d2
                        (Degree.conj inner_term (corr_degree stats corr r s))
                    in
                    if term > m.(i) then m.(i) <- term
                  end
                done),
              fun i _ ->
                match quant with
                | Ast.All -> Degree.neg m.(i)
                | Ast.Some_ -> m.(i) )
        | Classify.Exists_link { negated; corr } ->
            let m = Array.make n Degree.zero in
            ( (fun s d2 ->
                for i = 0 to n - 1 do
                  if Degree.positive d1.(i) then begin
                    let term = Degree.conj d2 (corr_degree stats corr block.(i) s) in
                    if term > m.(i) then m.(i) <- term
                  end
                done),
              fun i _ -> if negated then Degree.neg m.(i) else m.(i) )
        | Classify.Agg_link { y; op1; agg; z; corr } ->
            let sets = Array.make n Vmap.empty in
            ( (fun s d2 ->
                for i = 0 to n - 1 do
                  if Degree.positive d1.(i) then begin
                    let r = block.(i) in
                    let d = Degree.conj d2 (corr_degree stats corr r s) in
                    if Degree.positive d then
                      sets.(i) <-
                        Vmap.update (Ftuple.value s z)
                          (function
                            | None -> Some d
                            | Some d' -> Some (Degree.disj d d'))
                          sets.(i)
                  end
                done),
              fun i r ->
                let vs = List.map fst (Vmap.bindings sets.(i)) in
                let result =
                  match (Aggregate.apply agg vs, agg) with
                  | (Some _ as res), _ -> res
                  | None, Aggregate.Count -> Some (Value.Int 0)
                  | None, _ -> None
                in
                match result with
                | None -> Degree.zero
                | Some a ->
                    Storage.Iostats.record_fuzzy_op stats;
                    Value.compare_degree op1 (Ftuple.value r y) a )
      in
      let inner_prune = Pushdown.inner_prunable link in
      scan_inner (fun s ->
          Storage.Cancel.check cancel;
          let d2 =
            Degree.conj (Ftuple.degree s) (Semantics.local_degree stats s p2)
          in
          if
            Degree.positive d2
            && not (inner_prune && Pushdown.cannot_pass threshold d2)
          then absorb s d2);
      Array.iteri
        (fun i r ->
          if Degree.positive d1.(i) then
            emit r (Degree.conj d1.(i) (finalize i r)))
        block);
      Trace.set_rows trace (Relation.cardinality out));
  let deduped =
    Trace.with_span trace ~stats "dedup" (fun () ->
        let deduped = Algebra.dedup_max ~name out in
        Trace.set_rows trace (Relation.cardinality deduped);
        deduped)
  in
  Semantics.apply_threshold deduped threshold
