(** Render the unnesting rewrites as Fuzzy SQL text, in the notation the
    paper itself uses: a classified nested query is shown as its flat
    equivalent — Query N' / J' (Theorems 4.1/4.2), the grouped-MIN Query JX'
    (Theorem 5.1), the T1/T2 cascade of Query JA' and Query COUNT'
    (Theorem 6.1), Query JALL' (Theorem 7.1), and the K-way join Query Q'_K
    (Theorem 8.1). Purely presentational — the executors do not interpret
    this text — but invaluable for understanding and teaching the
    transformation (EXPLAIN prints it). *)

open Relational

let attr rel i =
  Printf.sprintf "%s.%s"
    (Schema.name (Relation.schema rel))
    (Schema.attr_name (Relation.schema rel) i)

let op_str = Fuzzy.Fuzzy_compare.op_to_string

let corr_str ~outer ~inner (c : Classify.corr) =
  Printf.sprintf "%s %s %s" (attr inner c.Classify.local_attr)
    (op_str c.Classify.op)
    (attr outer c.Classify.outer_attr)

let conj parts = String.concat " AND " (List.filter (fun s -> s <> "") parts)

let names rel select = String.concat ", " (List.map (attr rel) select)

let p_str label preds = if preds = [] then "" else label

let threshold_str = function
  | None -> ""
  | Some { Fuzzysql.Ast.strict; value } ->
      Printf.sprintf " WITH D %s %g" (if strict then ">" else ">=") value

let two_level (t : Classify.two_level) : string =
  let { Classify.select; outer; inner; p1; p2; link; threshold; _ } = t in
  let r = Schema.name (Relation.schema outer)
  and s = Schema.name (Relation.schema inner) in
  let p1s = p_str "p1" p1 and p2s = p_str "p2" p2 in
  let w = threshold_str threshold in
  match link with
  | Classify.In_link { y; z; corr } ->
      (* Query N' / J' *)
      Printf.sprintf "SELECT %s FROM %s, %s WHERE %s%s"
        (names outer select) r s
        (conj
           (p1s :: p2s
            :: Printf.sprintf "%s = %s" (attr outer y) (attr inner z)
            :: List.map (corr_str ~outer ~inner) corr))
        w
  | Classify.Not_in_link { y; z; corr } ->
      (* Query JX': grouped MIN(D) over the negated join *)
      Printf.sprintf
        "JXT(K, X) = (SELECT %s.K, %s, MIN(D) FROM %s, %s WHERE %s.D AND \
         NOT(%s.D AND %s) WITH D >= 0 GROUPBY %s.K);  SELECT X FROM JXT%s"
        r (names outer select) r s r s
        (conj
           (p2s
            :: Printf.sprintf "%s = %s" (attr outer y) (attr inner z)
            :: List.map (corr_str ~outer ~inner) corr))
        r w
  | Classify.Quant_link { y; op; quant; z; corr } ->
      (* Query JALL' (and the SOME dual, which unnests like J') *)
      let cmp = Printf.sprintf "%s %s %s" (attr outer y) (op_str op) (attr inner z) in
      (match quant with
      | Fuzzysql.Ast.All ->
          Printf.sprintf
            "T1(K, X, D) = (SELECT %s.K, %s, MIN(D) FROM %s, %s WHERE %s.D \
             AND NOT(%s.D AND %s AND NOT(%s)) WITH D >= 0 GROUPBY %s.K);  \
             SELECT X FROM T1%s"
            r (names outer select) r s r s
            (conj (p2s :: List.map (corr_str ~outer ~inner) corr))
            cmp r w
      | Fuzzysql.Ast.Some_ ->
          Printf.sprintf "SELECT %s FROM %s, %s WHERE %s%s"
            (names outer select) r s
            (conj
               (p1s :: p2s :: cmp :: List.map (corr_str ~outer ~inner) corr))
            w)
  | Classify.Agg_link { y; op1; agg; z; corr } ->
      (* Query JA' (or Query COUNT' with the left outer join). *)
      let agg_s = Aggregate.to_string agg in
      let t2_join =
        conj (p2s :: List.map (corr_str ~outer:inner ~inner) [])
        (* T2 joins S against T1.U below *)
      in
      ignore t2_join;
      let u =
        match corr with
        | c :: _ -> attr outer c.Classify.outer_attr
        | [] -> "?"
      in
      let v =
        match corr with
        | c :: _ -> attr inner c.Classify.local_attr
        | [] -> "?"
      in
      let t1 =
        Printf.sprintf "T1(U) = (SELECT %s FROM %s%s)" u r
          (if p1 = [] then "" else " WHERE p1")
      in
      let t2 =
        Printf.sprintf
          "T2(U, A) = (SELECT T1.U, %s(%s) FROM T1, %s WHERE %s GROUPBY T1.U)"
          agg_s (attr inner z) s
          (conj [ p2s; Printf.sprintf "%s = T1.U" v ])
      in
      let final =
        if agg = Aggregate.Count then
          Printf.sprintf
            "SELECT %s FROM %s, T2 WHERE %s += T2.U [%s %s T2.A : %s %s 0]%s"
            (names outer select) r u (attr outer y) (op_str op1) (attr outer y)
            (op_str op1) w
        else
          Printf.sprintf
            "SELECT %s FROM %s, T2 WHERE %s AND %s = T2.U AND %s %s T2.A%s"
            (names outer select) r
            (if p1 = [] then "TRUE" else "p1")
            u (attr outer y) (op_str op1) w
      in
      String.concat ";  " [ t1; t2; final ]
  | Classify.Exists_link { negated; corr } ->
      Printf.sprintf "SELECT %s FROM %s, %s WHERE %s%s  -- fuzzy %s-join"
        (names outer select) r s
        (conj (p1s :: p2s :: List.map (corr_str ~outer ~inner) corr))
        w
        (if negated then "anti" else "semi")

let chain (c : Classify.chain) : string =
  (* Query Q'_K of Theorem 8.1. *)
  let blocks = Array.of_list c.Classify.blocks in
  let k = Array.length blocks in
  let rel i = blocks.(i).Classify.rel in
  let froms =
    String.concat ", "
      (Array.to_list (Array.map (fun (b : Classify.chain_block) ->
           Schema.name (Relation.schema b.Classify.rel)) blocks))
  in
  let link_preds =
    List.concat
      (List.init (k - 1) (fun i ->
           match blocks.(i).Classify.link_attr with
           | Some y ->
               [ Printf.sprintf "%s = %s" (attr (rel i) y)
                   (attr (rel (i + 1)) blocks.(i + 1).Classify.out_attr) ]
           | None -> []))
  in
  let corr_preds =
    List.concat
      (List.init k (fun i ->
           List.map
             (fun (cr : Classify.corr) ->
               Printf.sprintf "%s %s %s"
                 (attr (rel i) cr.Classify.local_attr)
                 (op_str cr.Classify.op)
                 (attr (rel (i - cr.Classify.up)) cr.Classify.outer_attr))
             blocks.(i).Classify.corr))
  in
  let locals =
    List.concat
      (List.init k (fun i ->
           if blocks.(i).Classify.p_local = [] then []
           else [ Printf.sprintf "p%d" (i + 1) ]))
  in
  Printf.sprintf "SELECT %s FROM %s WHERE %s%s"
    (names (rel 0) c.Classify.top_select)
    froms
    (conj (locals @ link_preds @ corr_preds))
    (threshold_str c.Classify.chain_threshold)
