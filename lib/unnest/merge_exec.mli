(** Unnested evaluation with the extended merge-join: the paper's
    contribution (Sections 4-8).

    Each nested-query type is rewritten to its flat equivalent and evaluated
    as one sorted sweep:
    - type N / J (Theorems 4.1, 4.2): merge-join on [R.Y = S.Z] with the
      correlation predicates as residuals, then max-dedup projection;
    - type JX (Theorem 5.1): the grouped MIN(D) of Query JX' evaluated per
      outer tuple over its window [Rng(r)] — tuples outside the window
      contribute the neutral value, so one sweep suffices;
    - type JALL (Theorem 7.1) and its SOME dual: the same grouped sweep with
      the quantifier folded into [1 - min(..., 1 - d(y op z))];
    - type JA (Theorem 6.1): the pipelined T1 / T2 / JA' cascade, including
      the COUNT left-outer-join branch;
    - EXISTS / NOT EXISTS: fuzzy semi- / anti-joins;
    - chain queries (Theorem 8.1): a cascade of merge-joins growing a
      contiguous block interval in a configurable order, correlation
      predicates applied as soon as both endpoints are available. *)

exception Not_unnestable of string
(** Raised when no equality predicate links outer and inner (quantified,
    aggregate, or EXISTS subqueries whose correlation is order-only); the
    planner falls back to the nested-loop method. *)

val run :
  ?name:string -> ?pool:Storage.Task_pool.t -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t -> ?batch:bool ->
  Classify.two_level -> mem_pages:int -> Relational.Relation.t
(** With a multi-domain [?pool], the sorts and the sweep run domain-parallel
    (see {!Relational.Join_merge}); answers and degrees are identical to the
    sequential run. With [~batch:true] the sorts and the sweep run columnar
    (decorated sort, {!Relational.Join_merge.sweep_batch}): IN / NOT IN
    windows are evaluated by vectorized handlers over the selection vector,
    the other link types bridge to their scalar closures; answers, IEEE-754
    degree bits and operation counts are again identical, and batch composes
    with [?pool], [?trace] (per-batch spans) and [?cancel] (polled per
    batch). With [?trace], one span per operator is recorded
    (reduce, sort/run-formation/k-way-merge, sweep, dedup — or
    constant-inner for uncorrelated subqueries); [None] costs nothing.
    With [?cancel], the reduction predicates, sort comparators, and sweep
    loops poll the token; on {!Storage.Cancel.Cancelled} every owned
    intermediate (reductions, sorted temporaries) is destroyed before the
    exception escapes, so a server worker's environment stays clean. *)

val run_chain :
  ?name:string -> ?order:Chain_order.order -> ?pool:Storage.Task_pool.t ->
  ?trace:Storage.Trace.t -> ?cancel:Storage.Cancel.t -> ?batch:bool ->
  Classify.chain -> mem_pages:int ->
  Relational.Relation.t
(** Default order: left-to-right (outermost block first). The order's steps
    must each be adjacent to the already-joined interval
    ([Invalid_argument] otherwise). [?pool], [?trace] and [?cancel] as for
    {!run} (spans: reduce block-i, one join subtree per step, project; the
    cancel token is additionally polled before each cascade step, and the
    cascade's intermediates are freed on cancellation). *)
