(** Analytic cost model (Section 3 and the per-type response-time orders of
    Sections 4-8).

    Used by the planner to choose a method, and by the ablation bench to
    compare predicted with measured growth. Units are abstract "operations";
    only relative magnitudes matter. *)

type estimate = {
  cpu_ops : float;
  io_pages : float;
}

(** Nested loop over relations with [nr], [ns] tuples / [br], [bs] pages and
    [m] buffer pages: CPU O(nr * ns), I/O br + ceil(br/(m-1)) * bs. *)
let nested_loop ~nr ~ns ~br ~bs ~m =
  {
    cpu_ops = float_of_int nr *. float_of_int ns;
    io_pages =
      float_of_int br
      +. (Float.of_int bs
         *. Float.round
              (ceil (float_of_int br /. float_of_int (Int.max 1 (m - 1)))));
  }

(** Extended merge-join: CPU O(nr log nr + ns log ns + nr + C * nr), I/O for
    a two-pass sort (read + write runs, read for merge) plus one scan each in
    the join phase. *)
let merge_join ~nr ~ns ~br ~bs ~fanout =
  let n = float_of_int in
  let log2 x = if x < 2.0 then 1.0 else Float.log x /. Float.log 2.0 in
  {
    cpu_ops =
      (n nr *. log2 (n nr)) +. (n ns *. log2 (n ns)) +. (n nr *. (1.0 +. fanout));
    io_pages = (3.0 *. n br) +. (3.0 *. n bs) +. n br +. n bs;
  }

let response_time ~io_latency ~cpu_op_seconds { cpu_ops; io_pages } =
  (cpu_ops *. cpu_op_seconds) +. (io_pages *. io_latency)

(** True when the model predicts the merge-join beats the nested loop —
    always, beyond trivial sizes; exposed for the planner and tests. *)
let merge_wins ~nr ~ns ~br ~bs ~m ~fanout =
  let nl = nested_loop ~nr ~ns ~br ~bs ~m in
  let mj = merge_join ~nr ~ns ~br ~bs ~fanout in
  mj.cpu_ops +. mj.io_pages < nl.cpu_ops +. nl.io_pages
