(** Multi-relation outer blocks.

    The paper's nested-query types have one relation per block. A query such
    as [SELECT R.X FROM R, S WHERE R.W <= S.W AND R.Y IN (SELECT ...)] is
    outside that class, but becomes unnestable after the outer block's FROM
    product (with its local predicates folded into tuple degrees) is
    materialised as a single relation and every attribute reference is
    remapped into the concatenated schema. This module performs that
    materialisation and rewrite; the planner then re-classifies and runs the
    unnesting executors. *)

open Relational
open Fuzzysql

(* Offsets of each FROM entry's attributes inside the concatenated tuples. *)
let offsets_of from =
  let rec go acc off = function
    | [] -> List.rev acc
    | (_, rel) :: rest ->
        go (off :: acc) (off + Schema.arity (Relation.schema rel)) rest
  in
  go [] 0 from

let remap_ref offsets (r : Bound.attr_ref) ~depth =
  (* References to the flattened block sit [depth] levels out from where the
     reference occurs; their from_idx collapses to 0 with a shifted
     attribute index. *)
  if r.Bound.up = depth then
    {
      r with
      Bound.from_idx = 0;
      attr_idx = List.nth offsets r.Bound.from_idx + r.Bound.attr_idx;
    }
  else r

let remap_operand offsets ~depth = function
  | Bound.Ref r -> Bound.Ref (remap_ref offsets r ~depth)
  | Bound.Lit _ as l -> l

let rec remap_pred offsets ~depth = function
  | Bound.Cmp (l, op, r) ->
      Bound.Cmp (remap_operand offsets ~depth l, op, remap_operand offsets ~depth r)
  | Bound.Cmp_sub (l, op, sub) ->
      Bound.Cmp_sub
        (remap_operand offsets ~depth l, op, remap_query offsets ~depth:(depth + 1) sub)
  | Bound.In (l, sub) ->
      Bound.In (remap_operand offsets ~depth l, remap_query offsets ~depth:(depth + 1) sub)
  | Bound.Not_in (l, sub) ->
      Bound.Not_in
        (remap_operand offsets ~depth l, remap_query offsets ~depth:(depth + 1) sub)
  | Bound.Quant (l, op, quant, sub) ->
      Bound.Quant
        (remap_operand offsets ~depth l, op, quant,
         remap_query offsets ~depth:(depth + 1) sub)
  | Bound.Exists sub -> Bound.Exists (remap_query offsets ~depth:(depth + 1) sub)
  | Bound.Not_exists sub ->
      Bound.Not_exists (remap_query offsets ~depth:(depth + 1) sub)

and remap_query offsets ~depth (q : Bound.query) =
  {
    q with
    Bound.select =
      List.map
        (function
          | Bound.Col r -> Bound.Col (remap_ref offsets r ~depth)
          | Bound.Agg (a, r) -> Bound.Agg (a, remap_ref offsets r ~depth))
        q.Bound.select;
    where = List.map (remap_pred offsets ~depth) q.Bound.where;
    group_by = List.map (fun r -> remap_ref offsets r ~depth) q.Bound.group_by;
  }

let is_local_cmp = function
  | Bound.Cmp (l, _, r) ->
      let local = function Bound.Lit _ -> true | Bound.Ref a -> a.Bound.up = 0 in
      local l && local r
  | _ -> false

let has_subquery = Classify.pred_has_subquery

(** Rewrite a query whose outer block has several FROM relations and exactly
    one subquery predicate into an equivalent query over the materialised
    FROM product (local predicates folded into the degrees). Returns [None]
    when the shape does not call for flattening (single FROM) or does not
    allow it (several subqueries, grouping, non-local residual preds). *)
let flatten_outer (q : Bound.query) : Bound.query option =
  match q.Bound.from with
  | [] | [ _ ] -> None
  | from ->
      let subqueries, locals = List.partition has_subquery q.Bound.where in
      if
        List.length subqueries <> 1
        || (not (List.for_all is_local_cmp locals))
        || q.Bound.group_by <> [] || q.Bound.having <> []
      then None
      else begin
        match
          (* duplicate aliases would produce colliding qualified names *)
          List.fold_left
            (fun acc (_, rel) ->
              match acc with
              | None -> None
              | Some s -> (
                  try Some (Schema.concat ~name:"flattened" s (Relation.schema rel))
                  with Invalid_argument _ -> None))
            (Some (Relation.schema (snd (List.hd from))))
            (List.tl from)
        with
        | None -> None
        | Some combined_schema ->
        let env = Relation.env (snd (List.hd from)) in
        let stats = env.Storage.Env.stats in
        let combined_schema = Schema.with_name combined_schema "flattened" in
        let out = Relation.create env combined_schema in
        (* Enumerate the FROM product, folding membership degrees and the
           local predicates. *)
        let rels = List.map snd from in
        let rec product frame_rev degree = function
          | [] ->
              let frame = Array.of_list (List.rev frame_rev) in
              let stack = [ frame ] in
              let d =
                List.fold_left
                  (fun acc p ->
                    if Fuzzy.Degree.positive acc then
                      match p with
                      | Bound.Cmp (l, op, r) ->
                          Fuzzy.Degree.conj acc
                            (Semantics.cmp_degree stats stack l op r)
                      | _ -> assert false
                    else acc)
                  degree locals
              in
              if Fuzzy.Degree.positive d then begin
                let values =
                  Array.concat
                    (List.map (fun t -> t.Ftuple.values) (List.rev frame_rev))
                in
                Relation.insert out (Ftuple.make values d)
              end
          | rel :: rest ->
              Relation.iter rel (fun tup ->
                  let d = Fuzzy.Degree.conj degree (Ftuple.degree tup) in
                  if Fuzzy.Degree.positive d then
                    product (tup :: frame_rev) d rest)
        in
        product [] Fuzzy.Degree.one rels;
        let offsets = offsets_of from in
        let q' =
          remap_query offsets ~depth:0
            { q with Bound.where = subqueries }
        in
        Some { q' with Bound.from = [ ("flattened", out) ] }
      end
