(** Classification of bound queries into the paper's nested-query types.

    Following Kim's taxonomy as extended by the paper: a 2-level query whose
    inner block has no correlation predicate is type N; with a correlation
    predicate, type J; [NOT IN] gives type JX; an aggregate subquery gives
    type JA; a quantifier gives type JALL (and its SOME dual); a tower of
    single-relation IN-blocks is a chain query (Section 8). Anything else —
    multiple subqueries in one WHERE, subqueries below EXISTS, grouped
    subqueries — is [General] and is evaluated by the naive interpreter. *)

open Fuzzysql

(** One correlation predicate of an inner block: [local_attr op outer_attr]
    where the outer side lives [up] levels out (paper: p_{i,j}). *)
type corr = {
  local_attr : int;
  op : Fuzzy.Fuzzy_compare.op;
  up : int;
  outer_attr : int;
}

type link =
  | In_link of { y : int; z : int; corr : corr list }
      (** [R.Y IN (SELECT S.Z ...)]; [corr = []] is type N, else type J *)
  | Not_in_link of { y : int; z : int; corr : corr list }  (** type JX/NX *)
  | Quant_link of {
      y : int;
      op : Fuzzy.Fuzzy_compare.op;
      quant : Ast.quant;
      z : int;
      corr : corr list;
    }  (** type JALL and the SOME dual *)
  | Agg_link of {
      y : int;
      op1 : Fuzzy.Fuzzy_compare.op;
      agg : Relational.Aggregate.t;
      z : int;
      corr : corr list;
    }  (** type JA *)
  | Exists_link of { negated : bool; corr : corr list }
      (** EXISTS / NOT EXISTS with correlation: fuzzy semi/anti-join *)

type two_level = {
  select : int list;  (** outer attribute positions to project *)
  outer : Relational.Relation.t;
  inner : Relational.Relation.t;
  p1 : Bound.pred list;  (** subquery-free predicates of the outer block *)
  p2 : Bound.pred list;  (** subquery-free predicates of the inner block *)
  link : link;
  threshold : Ast.threshold option;
}

type chain_block = {
  rel : Relational.Relation.t;
  p_local : Bound.pred list;
  out_attr : int;  (** X_k: the attribute this block exports to its parent *)
  link_attr : int option;  (** Y_k: attribute compared with the child's X_{k+1} *)
  corr : corr list;  (** correlation predicates to any enclosing block *)
}

type chain = {
  blocks : chain_block list;  (** outermost first; length >= 2 *)
  top_select : int list;
  chain_threshold : Ast.threshold option;
}

type t =
  | Flat  (** no subqueries: selection / join / aggregation only *)
  | Two_level of two_level
  | Chain_query of chain
  | General  (** anything else: evaluated by the naive interpreter *)

let link_name = function
  | In_link { corr = []; _ } -> "N"
  | In_link _ -> "J"
  | Not_in_link { corr = []; _ } -> "NX"
  | Not_in_link _ -> "JX"
  | Quant_link { quant = Ast.All; _ } -> "JALL"
  | Quant_link { quant = Ast.Some_; _ } -> "JSOME"
  | Agg_link { corr = []; _ } -> "NA"
  | Agg_link _ -> "JA"
  | Exists_link { negated = false; _ } -> "JEXISTS"
  | Exists_link { negated = true; _ } -> "JNOTEXISTS"

let to_string = function
  | Flat -> "flat"
  | Two_level t -> "type " ^ link_name t.link
  | Chain_query c ->
      Printf.sprintf "chain of %d blocks" (List.length c.blocks)
  | General -> "general nested"

let has_subquery = function
  | Bound.Cmp _ -> false
  | Bound.Cmp_sub _ | Bound.In _ | Bound.Not_in _ | Bound.Quant _
  | Bound.Exists _ | Bound.Not_exists _ ->
      true

(* A Cmp predicate of an inner block is a correlation predicate if one side
   is a local attribute and the other an outer attribute; normalise so the
   local attribute is on the left. Returns [None] for purely local or
   otherwise-shaped predicates. *)
let as_corr = function
  | Bound.Cmp (Bound.Ref l, op, Bound.Ref r)
    when l.Bound.up = 0 && r.Bound.up > 0 ->
      Some
        {
          local_attr = l.Bound.attr_idx;
          op;
          up = r.Bound.up;
          outer_attr = r.Bound.attr_idx;
        }
  | Bound.Cmp (Bound.Ref l, op, Bound.Ref r)
    when r.Bound.up = 0 && l.Bound.up > 0 ->
      Some
        {
          local_attr = r.Bound.attr_idx;
          op = Fuzzy.Fuzzy_compare.flip op;
          up = l.Bound.up;
          outer_attr = l.Bound.attr_idx;
        }
  | _ -> None

let is_local_pred = function
  | Bound.Cmp (l, _, r) ->
      let local_operand = function
        | Bound.Lit _ -> true
        | Bound.Ref a -> a.Bound.up = 0
      in
      local_operand l && local_operand r
  | _ -> false

(* Split an inner block's WHERE into local predicates and correlation
   predicates; [None] if any predicate is neither (e.g. a deeper subquery or
   a correlation crossing several levels). *)
let split_inner_preds preds ~max_up =
  let rec go locals corrs = function
    | [] -> Some (List.rev locals, List.rev corrs)
    | p :: rest ->
        if is_local_pred p then go (p :: locals) corrs rest
        else (
          match as_corr p with
          | Some c when c.up <= max_up -> go locals (c :: corrs) rest
          | Some _ | None -> None)
  in
  go [] [] preds

let plain_block (q : Bound.query) =
  q.Bound.group_by = [] && q.Bound.having = [] && q.Bound.threshold = None

(* The inner block of a 2-level nested predicate: single relation, single
   column (or aggregate) select, only local + 1-level correlation preds. *)
let simple_inner (q : Bound.query) =
  match q.Bound.from with
  | [ _ ] when plain_block q -> (
      match split_inner_preds q.Bound.where ~max_up:1 with
      | Some (p2, corr) -> (
          match q.Bound.select with
          | [ Bound.Col z ] when z.Bound.up = 0 ->
              Some (`Col z.Bound.attr_idx, p2, corr)
          | [ Bound.Agg (agg, z) ] when z.Bound.up = 0 ->
              Some (`Agg (agg, z.Bound.attr_idx), p2, corr)
          | _ -> None)
      | None -> None)
  | _ -> None

(* The inner block of an EXISTS predicate: like [simple_inner] but with no
   constraint on the SELECT list (its values are irrelevant). *)
let simple_exists_inner (q : Bound.query) =
  match q.Bound.from with
  | [ (_, inner) ] when plain_block q -> (
      match split_inner_preds q.Bound.where ~max_up:1 with
      | Some (p2, corr) -> Some (inner, p2, corr)
      | None -> None)
  | _ -> None

let select_positions (q : Bound.query) =
  (* Projection of outer-block attributes only (true for every query shape
     the paper unnests). *)
  let ok = ref true in
  let positions =
    List.map
      (function
        | Bound.Col r when r.Bound.up = 0 && r.Bound.from_idx = 0 ->
            r.Bound.attr_idx
        | Bound.Col _ | Bound.Agg _ ->
            ok := false;
            -1)
      q.Bound.select
  in
  if !ok then Some positions else None

(* Try to view [q] as a chain query (Section 8): every block has one
   relation, local preds, correlation Cmp preds to enclosing blocks, and at
   most one IN-subquery linking to the next block. *)
let rec as_chain_blocks (q : Bound.query) ~level =
  match q.Bound.from with
  | [ (_, rel) ] when plain_block q || level = 0 -> (
      let subqueries, rest = List.partition has_subquery q.Bound.where in
      let locals_ok =
        List.for_all (fun p -> is_local_pred p || as_corr p <> None) rest
      in
      let p_local = List.filter is_local_pred rest in
      let corr = List.filter_map as_corr rest in
      if not locals_ok then None
      else
        let out_attr =
          match q.Bound.select with
          | [ Bound.Col r ] when r.Bound.up = 0 -> Some r.Bound.attr_idx
          | _ -> None
        in
        match (subqueries, out_attr) with
        | [], Some x ->
            Some [ { rel; p_local; out_attr = x; link_attr = None; corr } ]
        | [ Bound.In (Bound.Ref y, sub) ], Some x when y.Bound.up = 0 -> (
            match as_chain_blocks sub ~level:(level + 1) with
            | Some blocks ->
                Some
                  ({ rel; p_local; out_attr = x;
                     link_attr = Some y.Bound.attr_idx; corr }
                  :: blocks)
            | None -> None)
        | _ -> None)
  | _ -> None

let pred_has_subquery = has_subquery

let classify (q : Bound.query) : t =
  let subqueries = List.filter has_subquery q.Bound.where in
  match subqueries with
  | [] -> Flat
  | [ link_pred ] -> (
      let p1 = List.filter (fun p -> not (has_subquery p)) q.Bound.where in
      let p1_ok = List.for_all is_local_pred p1 in
      let two_level_of link sub =
        match (q.Bound.from, sub, select_positions q) with
        | [ (_, outer) ], Some (inner, p2, corr, mk), Some select
          when p1_ok && q.Bound.group_by = [] && q.Bound.having = [] ->
            Some
              (Two_level
                 {
                   select;
                   outer;
                   inner;
                   p1;
                   p2;
                   link = mk corr;
                   threshold = q.Bound.threshold;
                 })
        | _ ->
            ignore link;
            None
      in
      let simple sub_q =
        match simple_inner sub_q with
        | Some (payload, p2, corr) -> (
            match sub_q.Bound.from with
            | [ (_, inner) ] -> Some (payload, inner, p2, corr)
            | _ -> None)
        | None -> None
      in
      let attempt =
        match link_pred with
        | Bound.In (Bound.Ref y, sub) when y.Bound.up = 0 -> (
            match simple sub with
            | Some (`Col z, inner, p2, corr) ->
                two_level_of link_pred
                  (Some
                     ( inner, p2, corr,
                       fun corr -> In_link { y = y.Bound.attr_idx; z; corr } ))
            | _ -> None)
        | Bound.Not_in (Bound.Ref y, sub) when y.Bound.up = 0 -> (
            match simple sub with
            | Some (`Col z, inner, p2, corr) ->
                two_level_of link_pred
                  (Some
                     ( inner, p2, corr,
                       fun corr ->
                         Not_in_link { y = y.Bound.attr_idx; z; corr } ))
            | _ -> None)
        | Bound.Quant (Bound.Ref y, op, quant, sub) when y.Bound.up = 0 -> (
            match simple sub with
            | Some (`Col z, inner, p2, corr) ->
                two_level_of link_pred
                  (Some
                     ( inner, p2, corr,
                       fun corr ->
                         Quant_link { y = y.Bound.attr_idx; op; quant; z; corr }
                     ))
            | _ -> None)
        | Bound.Cmp_sub (Bound.Ref y, op1, sub) when y.Bound.up = 0 -> (
            match simple sub with
            | Some (`Agg (agg, z), inner, p2, corr) ->
                two_level_of link_pred
                  (Some
                     ( inner, p2, corr,
                       fun corr ->
                         Agg_link { y = y.Bound.attr_idx; op1; agg; z; corr } ))
            | _ -> None)
        | Bound.Exists sub -> (
            match simple_exists_inner sub with
            | Some (inner, p2, corr) ->
                two_level_of link_pred
                  (Some
                     (inner, p2, corr, fun corr -> Exists_link { negated = false; corr }))
            | None -> None)
        | Bound.Not_exists sub -> (
            match simple_exists_inner sub with
            | Some (inner, p2, corr) ->
                two_level_of link_pred
                  (Some
                     (inner, p2, corr, fun corr -> Exists_link { negated = true; corr }))
            | None -> None)
        | _ -> None
      in
      match attempt with
      | Some shape -> shape
      | None -> (
          (* Not a 2-level simple shape; maybe a deeper chain. *)
          match as_chain_blocks q ~level:0 with
          | Some blocks
            when List.length blocks >= 2
                 && q.Bound.group_by = [] && q.Bound.having = [] -> (
              match select_positions q with
              | Some top_select ->
                  Chain_query
                    { blocks; top_select; chain_threshold = q.Bound.threshold }
              | None -> General)
          | _ -> General))
  | _ :: _ :: _ -> General

let shape_hint q =
  if Fuzzysql.Bound.depth q <= 1 then None
  else match classify q with General -> Some (to_string General) | _ -> None
