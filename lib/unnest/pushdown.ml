(** WITH-threshold pushdown.

    A [WITH D >= z] clause is a filter on the answer's membership degrees.
    Because every executor combines degrees with [min] and duplicate answers
    with [max], some work can be pruned early without changing the answer:

    - an outer tuple whose degree (with p1 folded in) already fails the
      threshold can never produce a passing answer — safe for every link
      type, since the answer degree is [min(d_r, ...)];
    - an inner tuple whose degree (with p2) fails the threshold contributes a
      term [<= d_s] to a *maximum* — dropping it can only lower that maximum,
      and any answer whose maximum came solely from dropped terms fails the
      threshold anyway. This is safe exactly for the max-combining links
      (IN, SOME, EXISTS) and **unsafe** for the min-combining ones (NOT IN,
      ALL, NOT EXISTS — dropping a term would *raise* their [1 - max]) and
      for aggregates (every group member changes the aggregate value).

    The executors consult this module; the equivalence property tests
    generate random WITH clauses, so correctness of the pruning is checked
    against the naive evaluator on every run. *)

open Fuzzysql

(** [cannot_pass threshold d] is true when a tuple of degree [d] can never
    appear in the answer no matter what it joins with. *)
let cannot_pass threshold d =
  match threshold with
  | None -> false
  | Some { Ast.strict; value } -> if strict then d <= value else d < value

(** Whether inner-side pruning is sound for the given link. *)
let inner_prunable = function
  | Classify.In_link _ -> true
  | Classify.Quant_link { quant = Ast.Some_; _ } -> true
  | Classify.Exists_link { negated = false; _ } -> true
  | Classify.Not_in_link _ | Classify.Quant_link { quant = Ast.All; _ }
  | Classify.Exists_link { negated = true; _ } | Classify.Agg_link _ ->
      false
