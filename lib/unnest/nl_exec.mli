(** The nested-loop method: the only way a *nested* fuzzy query can be
    evaluated (Section 3), and the baseline of every experiment in
    Section 9.

    Buffer allocation follows the paper: one page for the inner relation,
    the rest for outer blocks. For each outer block the inner relation is
    scanned once while per-outer-tuple accumulators absorb each inner
    tuple's contribution to the linking predicate; this is semantically
    identical to re-evaluating the inner block per outer tuple (max / min of
    mins commute with the scan order) but has the paper's measured I/O
    pattern [b_R + ceil(b_R / (M-1)) * b_S]. *)

val run :
  ?name:string -> ?trace:Storage.Trace.t -> ?cancel:Storage.Cancel.t ->
  Classify.two_level -> mem_pages:int -> Relational.Relation.t
(** Evaluate a classified 2-level nested query with the blocked nested-loop
    method. Applicable to every link type (IN, NOT IN, ALL/SOME, EXISTS,
    aggregates), with the WITH threshold pushed down where sound. With
    [?trace], a [nested-loop] span (blocked scan, with buffer-pool
    hit/miss deltas) and a [dedup] span are recorded. With [?cancel], the
    token is polled once per outer block and once per scanned inner tuple,
    so a deadline unwinds with {!Storage.Cancel.Cancelled} mid-scan. *)
