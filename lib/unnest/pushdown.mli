(** WITH-threshold pushdown (see the implementation header for the soundness
    argument: outer-side pruning is always sound; inner-side pruning only
    for the max-combining links). Correctness is exercised by the
    equivalence property tests, which generate random WITH clauses. *)

val cannot_pass : Fuzzysql.Ast.threshold option -> Fuzzy.Degree.t -> bool
(** True when a tuple of this degree can never appear in the answer. *)

val inner_prunable : Classify.link -> bool
(** Whether inner-side pruning is sound for the given link type. *)
