(** Shared degree-evaluation helpers used by every executor.

    A [stack] binds the FROM tuples of each enclosing query block, innermost
    first; bound attribute references are resolved by climbing [up] levels
    then indexing the FROM entry and the attribute. *)

open Relational
open Fuzzy

type stack = Ftuple.t array list

let resolve_ref (stack : stack) (r : Fuzzysql.Bound.attr_ref) =
  let block = List.nth stack r.Fuzzysql.Bound.up in
  Ftuple.value block.(r.Fuzzysql.Bound.from_idx) r.Fuzzysql.Bound.attr_idx

let operand_value stack = function
  | Fuzzysql.Bound.Ref r -> resolve_ref stack r
  | Fuzzysql.Bound.Lit v -> v

let cmp_degree (stats : Storage.Iostats.t) stack lhs op rhs =
  Storage.Iostats.record_fuzzy_op stats;
  Value.compare_degree op (operand_value stack lhs) (operand_value stack rhs)

(** Degree of a conjunction of subquery-free predicates for one tuple of a
    single-relation block ([p1] of the outer block, [p2] of the inner). *)
let local_degree stats (tuple : Ftuple.t) preds =
  let stack = [ [| tuple |] ] in
  List.fold_left
    (fun acc p ->
      match p with
      | Fuzzysql.Bound.Cmp (l, op, r) ->
          Degree.conj acc (cmp_degree stats stack l op r)
      | _ -> invalid_arg "Semantics.local_degree: predicate has a subquery")
    Degree.one preds

(** Apply the WITH clause to a materialised answer. *)
let apply_threshold rel = function
  | None -> rel
  | Some { Fuzzysql.Ast.strict; value } ->
      Algebra.select rel ~pred:(fun tup ->
          let d = Ftuple.degree tup in
          if (strict && d > value) || ((not strict) && d >= value) then
            Degree.one
          else Degree.zero)
