(** Naive evaluation of (nested) Fuzzy SQL queries, straight from the
    execution semantics of Sections 2 and 4-7 of the paper.

    Subqueries are re-evaluated for every candidate binding of the enclosing
    blocks — the inner relation is scanned once per outer tuple, which is
    exactly the behaviour whose cost the paper sets out to eliminate. This
    evaluator is the correctness oracle for the unnesting executors
    (Theorems 4.1-8.1 are property-tested against it), and the only
    evaluator for query shapes outside the unnestable classes (including
    flat multi-relation queries with GROUPBY / HAVING / aggregates). *)

val query :
  ?name:string -> ?trace:Storage.Trace.t -> Fuzzysql.Bound.query ->
  Relational.Relation.t
(** Evaluate a bound query to its answer: a fuzzy relation with max-degree
    duplicate elimination and the WITH threshold applied. [name] names the
    answer schema. With [?trace], a [naive-bindings] span (the nested
    re-evaluation pass) and a [dedup] span are recorded. *)

val pred_degree :
  Storage.Iostats.t -> stack:Semantics.stack -> Fuzzysql.Bound.pred ->
  Fuzzy.Degree.t
(** Satisfaction degree of one predicate under a binding stack; subqueries
    are evaluated recursively. Exposed for the executors and tests. *)
