(** Naive evaluation of (nested) Fuzzy SQL queries, straight from the
    execution semantics of Sections 2 and 4-7 of the paper.

    Subqueries are re-evaluated for every candidate binding of the enclosing
    blocks — the inner relation is scanned once per outer tuple, which is
    exactly the behaviour whose cost the paper sets out to eliminate. This
    evaluator is the correctness oracle for the unnesting executors
    (Theorems 4.1-8.1 are property-tested against it) and the reference
    implementation of the semantics. *)

open Relational
open Fuzzy
open Fuzzysql

let stats_of (q : Bound.query) =
  match q.Bound.from with
  | (_, rel) :: _ -> (Relation.env rel).Storage.Env.stats
  | [] -> invalid_arg "Naive_eval: query without FROM"

(* Fuzzy set of values: structural value -> max degree. *)
module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_structural
end)

let vmap_add v d m =
  if not (Degree.positive d) then m
  else
    Vmap.update v
      (function None -> Some d | Some d' -> Some (Degree.disj d d'))
      m

(* Enumerate all FROM combinations of a block with their base degree
   (the min of the member tuples' membership degrees). *)
let rec combos rels =
  match rels with
  | [] -> Seq.return ([], Degree.one)
  | (_, rel) :: rest ->
      (* The inner relation is rescanned for every combination of the outer
         ones: the naive nested-loops pattern. *)
      Seq.concat_map
        (fun (tuples, d) ->
          Seq.map
            (fun tup ->
              (tup :: tuples, Degree.conj d (Ftuple.degree tup)))
            (List.to_seq (Relation.to_list rel)))
        (combos rest)

(* All satisfying bindings of a block: yields (stack-frame, degree > 0 of
   membership+WHERE). *)
let rec satisfying (q : Bound.query) ~outer : (Ftuple.t array * Degree.t) Seq.t =
  let stats = stats_of q in
  Seq.filter_map
    (fun (tuples, d0) ->
      (* [combos] prepends while recursing, so the list is already in FROM
         order. *)
      let frame = Array.of_list tuples in
      let stack = frame :: outer in
      let d =
        List.fold_left
          (fun acc p ->
            if Degree.positive acc then
              Degree.conj acc (pred_degree stats ~stack p)
            else acc)
          d0 q.Bound.where
      in
      if Degree.positive d then Some (frame, d) else None)
    (combos q.Bound.from)

(* The fuzzy set of values produced by a single-column subquery under the
   given outer context: the temporary relation T (or T(r)) of the paper. *)
and subquery_values (q : Bound.query) ~outer : Degree.t Vmap.t =
  let extract =
    match q.Bound.select with
    | [ Bound.Col r ] -> r
    | _ -> invalid_arg "Naive_eval: subquery must select a single column"
  in
  Seq.fold_left
    (fun m (frame, d) ->
      vmap_add (Semantics.resolve_ref [ frame ] extract) d m)
    Vmap.empty
    (satisfying q ~outer)

and scalar_aggregate (q : Bound.query) ~outer =
  (* Type JA inner block: collect T(r), then apply AGG to its value set.
     D(A(r)) = 1 in Fuzzy SQL. *)
  let agg, extract =
    match q.Bound.select with
    | [ Bound.Agg (agg, r) ] -> (agg, r)
    | _ -> invalid_arg "Naive_eval: scalar subquery must select one aggregate"
  in
  let values =
    Seq.fold_left
      (fun m (frame, d) ->
        vmap_add (Semantics.resolve_ref [ frame ] extract) d m)
      Vmap.empty
      (satisfying q ~outer)
  in
  let vs = List.map fst (Vmap.bindings values) in
  match (Aggregate.apply agg vs, agg) with
  | Some a, _ -> Some a
  | None, Aggregate.Count -> Some (Value.Int 0)
  | None, _ -> None

and pred_degree stats ~stack (p : Bound.pred) : Degree.t =
  match p with
  | Bound.Cmp (l, op, r) -> Semantics.cmp_degree stats stack l op r
  | Bound.In (x, sub) ->
      let xv = Semantics.operand_value stack x in
      Vmap.fold
        (fun z dz acc ->
          Storage.Iostats.record_fuzzy_op stats;
          Degree.disj acc (Degree.conj dz (Value.compare_degree Fuzzy_compare.Eq xv z)))
        (subquery_values sub ~outer:stack)
        Degree.zero
  | Bound.Not_in (x, sub) ->
      Degree.neg (pred_degree stats ~stack (Bound.In (x, sub)))
  | Bound.Quant (x, op, Ast.All, sub) ->
      (* d(v op ALL F) = 1 - max_z min(mu_F(z), 1 - d(v op z)); 1 if empty. *)
      let xv = Semantics.operand_value stack x in
      Degree.neg
        (Vmap.fold
           (fun z dz acc ->
             Storage.Iostats.record_fuzzy_op stats;
             Degree.disj acc
               (Degree.conj dz (Degree.neg (Value.compare_degree op xv z))))
           (subquery_values sub ~outer:stack)
           Degree.zero)
  | Bound.Quant (x, op, Ast.Some_, sub) ->
      let xv = Semantics.operand_value stack x in
      Vmap.fold
        (fun z dz acc ->
          Storage.Iostats.record_fuzzy_op stats;
          Degree.disj acc (Degree.conj dz (Value.compare_degree op xv z)))
        (subquery_values sub ~outer:stack)
        Degree.zero
  | Bound.Exists sub ->
      Seq.fold_left
        (fun acc (_, d) -> Degree.disj acc d)
        Degree.zero
        (satisfying sub ~outer:stack)
  | Bound.Not_exists sub ->
      Degree.neg (pred_degree stats ~stack (Bound.Exists sub))
  | Bound.Cmp_sub (x, op, sub) -> (
      match scalar_aggregate sub ~outer:stack with
      | None -> Degree.zero
      | Some a ->
          Storage.Iostats.record_fuzzy_op stats;
          Degree.conj Degree.one
            (Value.compare_degree op (Semantics.operand_value stack x) a))

(* ----- top-level result construction ----- *)

let ref_ty (q : Bound.query) (r : Bound.attr_ref) =
  let _, rel = List.nth q.Bound.from r.Bound.from_idx in
  Schema.ty_of (Relation.schema rel) r.Bound.attr_idx

let result_schema (q : Bound.query) name =
  let attr_of = function
    | Bound.Col r -> (r.Bound.display, ref_ty q r)
    | Bound.Agg (agg, r) ->
        ( Printf.sprintf "%s_%s" (Aggregate.to_string agg) r.Bound.display,
          match agg with Aggregate.Count -> Schema.TNum | _ -> ref_ty q r )
  in
  (* Rename duplicates introduced by projecting the same attribute twice. *)
  let seen = Hashtbl.create 8 in
  let attrs =
    List.map
      (fun item ->
        let base, ty = attr_of item in
        let n = try Hashtbl.find seen base with Not_found -> 0 in
        Hashtbl.replace seen base (n + 1);
        ((if n = 0 then base else Printf.sprintf "%s_%d" base n), ty))
      q.Bound.select
  in
  Schema.make ~name attrs

let grouped_rows (q : Bound.query) stats rows =
  (* [rows] are (frame, degree) pairs. Group by the GROUP BY key (or a single
     group when only aggregates are selected), aggregate each group's fuzzy
     value sets, and evaluate HAVING. *)
  let key_of frame =
    Array.of_list
      (List.map (fun r -> Semantics.resolve_ref [ frame ] r) q.Bound.group_by)
  in
  let module Kmap = Map.Make (struct
    type t = Value.t array

    let compare a b =
      let c = Int.compare (Array.length a) (Array.length b) in
      if c <> 0 then c
      else
        let rec go i =
          if i >= Array.length a then 0
          else
            match Value.compare_structural a.(i) b.(i) with
            | 0 -> go (i + 1)
            | c -> c
        in
        go 0
  end) in
  let groups =
    List.fold_left
      (fun m (frame, d) ->
        Kmap.update (key_of frame)
          (function
            | None -> Some [ (frame, d) ]
            | Some l -> Some ((frame, d) :: l))
          m)
      Kmap.empty rows
  in
  Kmap.fold
    (fun key members acc ->
      let fuzzy_set_of r =
        List.fold_left
          (fun m (frame, d) -> vmap_add (Semantics.resolve_ref [ frame ] r) d m)
          Vmap.empty members
      in
      let agg_value agg r =
        let vs = List.map fst (Vmap.bindings (fuzzy_set_of r)) in
        match (Aggregate.apply agg vs, agg) with
        | Some a, _ -> Some a
        | None, Aggregate.Count -> Some (Value.Int 0)
        | None, _ -> None
      in
      let group_degree =
        List.fold_left (fun m (_, d) -> Degree.disj m d) Degree.zero members
      in
      let having_degree =
        List.fold_left
          (fun acc (h : Bound.having) ->
            match agg_value h.Bound.h_agg h.Bound.h_attr with
            | None -> Degree.zero
            | Some a ->
                Storage.Iostats.record_fuzzy_op stats;
                Degree.conj acc
                  (Value.compare_degree h.Bound.h_op a h.Bound.h_value))
          Degree.one q.Bound.having
      in
      let select_values =
        List.map
          (function
            | Bound.Col r -> (
                (* must be a grouping attribute *)
                match
                  List.find_opt
                    (fun (g : Bound.attr_ref) ->
                      g.Bound.from_idx = r.Bound.from_idx
                      && g.Bound.attr_idx = r.Bound.attr_idx && g.Bound.up = 0)
                    q.Bound.group_by
                with
                | Some _ ->
                    let ki =
                      ref (-1)
                    in
                    List.iteri
                      (fun i (g : Bound.attr_ref) ->
                        if
                          g.Bound.from_idx = r.Bound.from_idx
                          && g.Bound.attr_idx = r.Bound.attr_idx
                        then if !ki < 0 then ki := i)
                      q.Bound.group_by;
                    Some key.(!ki)
                | None ->
                    invalid_arg
                      "Naive_eval: non-aggregated SELECT column must appear \
                       in GROUPBY")
            | Bound.Agg (agg, r) -> agg_value agg r)
          q.Bound.select
      in
      if List.exists (fun v -> v = None) select_values then acc
      else
        let values = Array.of_list (List.map Option.get select_values) in
        let d = Degree.conj group_degree having_degree in
        if Degree.positive d then Ftuple.make values d :: acc else acc)
    groups []

let query ?(name = "answer") ?trace (q : Bound.query) : Relation.t =
  let module Trace = Storage.Trace in
  let stats = stats_of q in
  let env =
    match q.Bound.from with
    | (_, rel) :: _ -> Relation.env rel
    | [] -> invalid_arg "Naive_eval.query: empty FROM"
  in
  let schema = result_schema q name in
  let rows =
    Trace.with_span trace ~stats ~pool:env.Storage.Env.pool "naive-bindings"
      (fun () ->
        let rows = List.of_seq (satisfying q ~outer:[]) in
        Trace.set_rows trace (List.length rows);
        rows)
  in
  let is_grouped =
    q.Bound.group_by <> []
    || List.exists (function Bound.Agg _ -> true | Bound.Col _ -> false)
         q.Bound.select
  in
  let tuples =
    if is_grouped then grouped_rows q stats rows
    else
      List.map
        (fun (frame, d) ->
          let values =
            Array.of_list
              (List.map
                 (function
                   | Bound.Col r -> Semantics.resolve_ref [ frame ] r
                   | Bound.Agg _ -> assert false)
                 q.Bound.select)
          in
          Ftuple.make values d)
        rows
  in
  let raw = Relation.of_list env schema tuples in
  let deduped =
    Trace.with_span trace ~stats "dedup" (fun () ->
        let deduped = Algebra.dedup_max raw in
        Trace.set_rows trace (Relation.cardinality deduped);
        deduped)
  in
  Semantics.apply_threshold deduped q.Bound.threshold
