(** EXPLAIN: a textual account of how the planner will evaluate a query —
    the classified shape, the chosen method, the sort/sweep attributes, the
    correlation residuals, and histogram-based cardinality estimates. *)

val explain : Fuzzysql.Bound.query -> string

(** {1 EXPLAIN ANALYZE} *)

type analysis = {
  answer : Relational.Relation.t;  (** the executed answer *)
  trace : Storage.Trace.t;  (** the span tree of the run *)
  text : string;
      (** the EXPLAIN text followed by the analyzed span tree: per-operator
          actual time, I/Os, comparisons, fuzzy ops, actual row counts and
          — where the planner has an estimate — estimated-vs-actual
          cardinality *)
}

val analyze :
  ?name:string -> ?strategy:Planner.strategy -> ?mem_pages:int ->
  ?chain_dp:bool -> ?domains:int -> Fuzzysql.Bound.query -> analysis
(** Run the query under a fresh trace collector (same options as
    {!Planner.run}), then annotate the operator spans with the planner's
    cardinality estimates. Estimates are computed after the run so the
    histogram-building scans do not pollute the traced I/O counters. *)
