(** EXPLAIN: a textual account of how the planner will evaluate a query —
    the classified shape, the chosen method, the sort/sweep attributes, the
    correlation residuals, and histogram-based cardinality estimates. *)

val explain : Fuzzysql.Bound.query -> string
