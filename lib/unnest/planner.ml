(** Entry point of the query processor: classify, choose a method, execute.

    Three strategies are available:
    - [Naive]: the recursive interpreter (inner blocks re-evaluated per outer
      binding) — always applicable;
    - [Nested_loop]: the paper's blocked nested-loop method for 2-level
      shapes;
    - [Unnest_merge]: the paper's unnesting transformations evaluated with
      the extended merge-join.

    [Auto] picks [Unnest_merge] whenever the query's shape supports it,
    falling back to [Nested_loop] (for 2-level shapes without an equality to
    sweep on) and finally to [Naive] — mirroring the paper's conclusion that
    unnested evaluation dominates whenever it applies. *)

open Relational

type strategy = Auto | Naive | Nested_loop | Unnest_merge

let strategy_to_string = function
  | Auto -> "auto"
  | Naive -> "naive"
  | Nested_loop -> "nested-loop"
  | Unnest_merge -> "unnest+merge-join"

exception Unsupported of string

let default_mem_pages = 256 (* 2 MB of 8 KB pages, the paper's buffer *)

(* ORDER BY D [DESC|ASC] and LIMIT k: rank the answer by membership degree
   and keep the top k. Ties break on the value vectors so results are
   deterministic. *)
let rank_and_limit answer ~order ~limit =
  match (order, limit) with
  | None, None -> answer
  | _ ->
      let tuples = Relation.to_list answer in
      let sorted =
        match order with
        | None -> tuples
        | Some dir ->
            List.sort
              (fun a b ->
                let c =
                  Float.compare (Ftuple.degree b) (Ftuple.degree a)
                in
                let c = match dir with Fuzzysql.Ast.Desc -> c | Fuzzysql.Ast.Asc -> -c in
                if c <> 0 then c else Ftuple.compare_values a b)
              tuples
      in
      let truncated =
        match limit with
        | None -> sorted
        | Some k ->
            let rec take n = function
              | x :: rest when n > 0 -> x :: take (n - 1) rest
              | _ -> []
            in
            take k sorted
      in
      Relation.of_list (Relation.env answer) (Relation.schema answer) truncated

let run_unranked ?(name = "answer") ?(strategy = Auto)
    ?(mem_pages = default_mem_pages) ?(chain_dp = true) ?(domains = 1)
    ?(batch = false) ?trace ?cancel (q : Fuzzysql.Bound.query) : Relation.t =
  if domains < 1 then invalid_arg "Planner.run: domains < 1";
  Storage.Cancel.check cancel;
  let shape = Classify.classify q in
  let chain_order chain =
    if chain_dp then Some (Chain_order.plan chain) else None
  in
  let exec pool =
    (* Multi-relation outer blocks become unnestable after the outer FROM
       product is materialised (see {!Flatten}); [fallback] runs when the
       rewrite does not apply or does not help. *)
    let try_flattened ~fallback =
      match Flatten.flatten_outer q with
      | None -> fallback ()
      | Some q' -> (
          match Classify.classify q' with
          | Classify.Two_level two -> (
              try
                Merge_exec.run ~name ?pool ?trace ?cancel ~batch two
                  ~mem_pages
              with Merge_exec.Not_unnestable _ ->
                Nl_exec.run ~name ?trace ?cancel two ~mem_pages)
          | Classify.Chain_query chain -> (
              try
                Merge_exec.run_chain ~name ?order:(chain_order chain) ?pool
                  ?trace ?cancel ~batch chain ~mem_pages
              with Merge_exec.Not_unnestable _ -> fallback ())
          | Classify.Flat | Classify.General -> fallback ())
    in
    match (strategy, shape) with
    | Naive, _ -> Naive_eval.query ~name ?trace q
    | Nested_loop, Classify.Two_level shape ->
        Nl_exec.run ~name ?trace ?cancel shape ~mem_pages
    | Nested_loop, (Classify.Flat | Classify.General | Classify.Chain_query _)
      ->
        Naive_eval.query ~name ?trace q
    | Unnest_merge, Classify.Two_level shape ->
        Merge_exec.run ~name ?pool ?trace ?cancel ~batch shape ~mem_pages
    | Unnest_merge, Classify.Chain_query chain ->
        Merge_exec.run_chain ~name ?order:(chain_order chain) ?pool ?trace
          ?cancel ~batch chain ~mem_pages
    | Unnest_merge, Classify.Flat -> Naive_eval.query ~name ?trace q
    | Unnest_merge, Classify.General ->
        try_flattened ~fallback:(fun () ->
            raise
              (Unsupported "query shape cannot be unnested; use Auto or Naive"))
    | Auto, Classify.Two_level two -> (
        try Merge_exec.run ~name ?pool ?trace ?cancel ~batch two ~mem_pages
        with Merge_exec.Not_unnestable _ ->
          Nl_exec.run ~name ?trace ?cancel two ~mem_pages)
    | Auto, Classify.Chain_query chain -> (
        try
          Merge_exec.run_chain ~name ?order:(chain_order chain) ?pool ?trace
            ?cancel ~batch chain ~mem_pages
        with Merge_exec.Not_unnestable _ -> Naive_eval.query ~name ?trace q)
    | Auto, Classify.Flat -> Naive_eval.query ~name ?trace q
    | Auto, Classify.General ->
        try_flattened ~fallback:(fun () -> Naive_eval.query ~name ?trace q)
  in
  let exec pool =
    (* One root span per query, carrying the whole run's Iostats delta and
       the answer cardinality; the executors' operator spans nest inside. *)
    match q.Fuzzysql.Bound.from with
    | (_, rel) :: _ ->
        let stats = (Relation.env rel).Storage.Env.stats in
        Storage.Trace.with_span trace ~stats "query" (fun () ->
            let answer = exec pool in
            Storage.Trace.set_rows trace (Relation.cardinality answer);
            answer)
    | [] -> exec pool
  in
  (* [domains = 1] never constructs a pool: it is exactly the sequential
     engine. The pool lives for one query — spawn cost is amortised across
     all the sorts and sweeps of the plan. *)
  if domains = 1 then exec None
  else
    Storage.Task_pool.with_pool ~domains (fun pool -> exec (Some pool))

let run ?name ?strategy ?mem_pages ?chain_dp ?domains ?batch ?trace ?cancel
    (q : Fuzzysql.Bound.query) : Relation.t =
  let answer =
    run_unranked ?name ?strategy ?mem_pages ?chain_dp ?domains ?batch ?trace
      ?cancel q
  in
  rank_and_limit answer ~order:q.Fuzzysql.Bound.order_by_d
    ~limit:q.Fuzzysql.Bound.limit

let run_string ?name ?strategy ?mem_pages ?chain_dp ?domains ?batch ?trace
    ?cancel ~catalog ~terms sql =
  run ?name ?strategy ?mem_pages ?chain_dp ?domains ?batch ?trace ?cancel
    (Fuzzysql.Analyzer.bind_string ~catalog ~terms sql)
