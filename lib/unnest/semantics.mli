(** Shared degree-evaluation helpers used by every executor. *)

type stack = Relational.Ftuple.t array list
(** Bindings of the FROM tuples of each enclosing query block, innermost
    first; bound attribute references climb [up] levels, then index the FROM
    entry and the attribute. *)

val resolve_ref : stack -> Fuzzysql.Bound.attr_ref -> Relational.Value.t

val operand_value : stack -> Fuzzysql.Bound.operand -> Relational.Value.t

val cmp_degree :
  Storage.Iostats.t -> stack -> Fuzzysql.Bound.operand ->
  Fuzzy.Fuzzy_compare.op -> Fuzzysql.Bound.operand -> Fuzzy.Degree.t
(** Satisfaction degree of one comparison; records one fuzzy op. *)

val local_degree :
  Storage.Iostats.t -> Relational.Ftuple.t -> Fuzzysql.Bound.pred list ->
  Fuzzy.Degree.t
(** Degree of a conjunction of subquery-free predicates for one tuple of a
    single-relation block (the paper's [p1] / [p2]). Raises
    [Invalid_argument] if a predicate contains a subquery. *)

val apply_threshold :
  Relational.Relation.t -> Fuzzysql.Ast.threshold option ->
  Relational.Relation.t
(** Materialise the WITH clause on an answer relation. *)
