(** Join-order selection for unnested chain queries (Section 8).

    A chain's join graph is a path, so connected left-deep orders are exactly
    the ways of growing a contiguous block interval one step left or right;
    the interval dynamic program finds the order minimising the sum of
    estimated intermediate cardinalities in O(K^2) states, with per-join
    fan-outs estimated from {!Relational.Histogram}s over the link
    attributes. *)

type order = {
  start : int;  (** index of the first block materialised *)
  steps : int list;  (** blocks joined in, each adjacent to the current set *)
  estimated_cost : float;  (** sum of estimated intermediate cardinalities *)
}

val left_to_right : int -> order
(** The syntactic order: start at block 0, join 1, 2, ... (cost not
    estimated). *)

val plan : Classify.chain -> order
(** The DP-optimal order under the histogram estimates. *)
