(** Entry point of the query processor: classify, choose a method, execute.

    [Auto] picks the unnesting merge-join whenever the query's shape supports
    it, falling back to the nested-loop method (for 2-level shapes without an
    equality to sweep on) and finally to the naive interpreter — mirroring
    the paper's conclusion that unnested evaluation dominates whenever it
    applies. *)

type strategy =
  | Auto
  | Naive  (** recursive interpreter: the execution semantics, literally *)
  | Nested_loop  (** the paper's blocked nested-loop baseline *)
  | Unnest_merge  (** unnesting + extended merge-join *)

val strategy_to_string : strategy -> string

exception Unsupported of string
(** Raised by [Unnest_merge] on shapes outside the unnestable classes. *)

val default_mem_pages : int
(** 256 pages = the paper's 2 MB buffer. *)

val run :
  ?name:string -> ?strategy:strategy -> ?mem_pages:int -> ?chain_dp:bool ->
  ?domains:int -> ?batch:bool -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t ->
  Fuzzysql.Bound.query -> Relational.Relation.t
(** [chain_dp] (default true) selects the chain join order with the
    dynamic-programming search of {!Chain_order}; false uses the syntactic
    left-to-right order.

    [domains] (default 1) sets the execution parallelism of the merge-join
    engine: a {!Storage.Task_pool} of that many domains is created for the
    query and the sorts and sweeps run domain-parallel. [domains = 1] never
    constructs a pool and is exactly the sequential engine; any value
    returns identical answer tuples and membership degrees.

    [batch] (default false) switches the merge-join engine to the
    vectorized columnar executor: decorated columnar sorts
    ({!Storage.External_sort.sort_support}) and the batch window sweep
    ({!Relational.Join_merge.sweep_batch}) over unboxed trapezoid and
    degree columns. Answer tuples and IEEE-754 degree bits are identical
    to the scalar engine for every strategy and shape; batch composes with
    [domains], [trace] and [cancel] (polled per batch of 1024 rows). The
    nested-loop and naive methods ignore it.

    [trace] (default off, costing nothing) collects one hierarchical span
    per plan operator under a root [query] span — see {!Storage.Trace} and
    {!Explain.analyze}.

    [cancel] (default off, costing nothing) is a {!Storage.Cancel} token
    polled at operator boundaries of the merge-join and nested-loop
    executors: a deadline or an explicit {!Storage.Cancel.cancel} unwinds
    the query with {!Storage.Cancel.Cancelled} within one poll period,
    destroying every owned intermediate on the way out. The fuzzy SQL
    server uses this for per-query deadlines and client cancellation. *)

val run_string :
  ?name:string -> ?strategy:strategy -> ?mem_pages:int -> ?chain_dp:bool ->
  ?domains:int -> ?batch:bool -> ?trace:Storage.Trace.t ->
  ?cancel:Storage.Cancel.t ->
  catalog:Relational.Catalog.t ->
  terms:Fuzzy.Term.t -> string -> Relational.Relation.t
(** Parse, bind, and run. *)
