(** Join-order selection for unnested chain queries.

    Section 8: "To evaluate Query Q'_K, an optimal join order may be
    determined by using, say, a dynamic programming method, to minimize the
    sizes of the intermediate relations." A chain's join graph is a path, so
    connected left-deep orders are exactly the ways of growing a contiguous
    block interval one step left or right; the classic interval DP finds the
    order minimising the sum of estimated intermediate cardinalities in
    O(K^2) states.

    Cardinalities are estimated from equi-width histograms over each link's
    attributes ({!Relational.Histogram}): the expected per-tuple fan-out of
    the join between adjacent blocks k and k+1 is
    [est_pairs(k, k+1) / (card_k * card_{k+1})] scaled by the joining side. *)

open Relational

type order = {
  start : int;  (** index of the first block materialised *)
  steps : int list;  (** block indices joined in, each adjacent to the set *)
  estimated_cost : float;  (** sum of estimated intermediate cardinalities *)
}

let left_to_right k =
  { start = 0; steps = List.init (k - 1) (fun i -> i + 1); estimated_cost = nan }

(** Estimated join-pair count between adjacent blocks [k] and [k+1], from
    histograms on Y_k and X_{k+1}. *)
let adjacent_pairs (blocks : Classify.chain_block array) k =
  let b = blocks.(k) and b' = blocks.(k + 1) in
  match b.Classify.link_attr with
  | None -> 0.0
  | Some y ->
      let h1 = Histogram.build b.Classify.rel ~attr:y in
      let h2 = Histogram.build b'.Classify.rel ~attr:b'.Classify.out_attr in
      Histogram.estimate_eq_join h1 h2

let plan (chain : Classify.chain) : order =
  let blocks = Array.of_list chain.Classify.blocks in
  let k = Array.length blocks in
  if k < 2 then { start = 0; steps = []; estimated_cost = 0.0 }
  else begin
    let card = Array.map (fun b -> float_of_int (Relation.cardinality b.Classify.rel)) blocks in
    let pairs = Array.init (k - 1) (adjacent_pairs blocks) in
    (* fan.(i): expected matches in block i+1 per tuple of a set containing
       block i, and symmetrically fan_left.(i) for extending to block i. *)
    let fan_right = Array.init (k - 1) (fun i -> pairs.(i) /. Float.max 1.0 card.(i)) in
    let fan_left = Array.init (k - 1) (fun i -> pairs.(i) /. Float.max 1.0 card.(i + 1)) in
    (* DP over intervals: best.(i).(j) = (cost, card, order). *)
    let best = Array.make_matrix k k None in
    for i = 0 to k - 1 do
      best.(i).(i) <- Some (0.0, card.(i), { start = i; steps = []; estimated_cost = 0.0 })
    done;
    for len = 2 to k do
      for i = 0 to k - len do
        let j = i + len - 1 in
        (* extend [i+1..j] to the left with block i *)
        let from_left =
          match best.(i + 1).(j) with
          | Some (cost, c, ord) ->
              let c' = c *. fan_left.(i) in
              Some (cost +. c', c', { ord with steps = ord.steps @ [ i ] })
          | None -> None
        in
        (* extend [i..j-1] to the right with block j *)
        let from_right =
          match best.(i).(j - 1) with
          | Some (cost, c, ord) ->
              let c' = c *. fan_right.(j - 1) in
              Some (cost +. c', c', { ord with steps = ord.steps @ [ j ] })
          | None -> None
        in
        best.(i).(j) <-
          (match (from_left, from_right) with
          | Some (c1, _, _), Some (c2, _, _) when c2 <= c1 -> from_right
          | Some _, Some _ -> from_left
          | (Some _ as only), None | None, (Some _ as only) -> only
          | None, None -> None)
      done
    done;
    match best.(0).(k - 1) with
    | Some (cost, _, ord) -> { ord with estimated_cost = cost }
    | None -> left_to_right k
  end
