(** Classification of bound queries into the paper's nested-query taxonomy.

    Following Kim's taxonomy as extended by the paper: a 2-level query whose
    inner block has no correlation predicate is type N; with a correlation
    predicate, type J; [NOT IN] gives type JX; an aggregate subquery gives
    type JA; quantifiers give type JALL / JSOME; [EXISTS] gives JEXISTS; a
    tower of single-relation IN-blocks is a chain query (Section 8). Anything
    else — multiple subqueries in one WHERE, grouped subqueries — is
    [General] and is evaluated by the naive interpreter. *)

(** One correlation predicate of an inner block: [local_attr op outer_attr]
    where the outer side lives [up] levels out (the paper's p_{i,j}). *)
type corr = {
  local_attr : int;
  op : Fuzzy.Fuzzy_compare.op;
  up : int;
  outer_attr : int;
}

type link =
  | In_link of { y : int; z : int; corr : corr list }
      (** [R.Y IN (SELECT S.Z ...)]; [corr = []] is type N, else type J *)
  | Not_in_link of { y : int; z : int; corr : corr list }  (** type JX / NX *)
  | Quant_link of {
      y : int;
      op : Fuzzy.Fuzzy_compare.op;
      quant : Fuzzysql.Ast.quant;
      z : int;
      corr : corr list;
    }  (** type JALL and its SOME dual *)
  | Agg_link of {
      y : int;
      op1 : Fuzzy.Fuzzy_compare.op;
      agg : Relational.Aggregate.t;
      z : int;
      corr : corr list;
    }  (** type JA *)
  | Exists_link of { negated : bool; corr : corr list }
      (** [EXISTS] / [NOT EXISTS] with correlation: fuzzy semi/anti-join *)

type two_level = {
  select : int list;  (** outer attribute positions to project *)
  outer : Relational.Relation.t;
  inner : Relational.Relation.t;
  p1 : Fuzzysql.Bound.pred list;  (** subquery-free preds of the outer block *)
  p2 : Fuzzysql.Bound.pred list;  (** subquery-free preds of the inner block *)
  link : link;
  threshold : Fuzzysql.Ast.threshold option;
}

type chain_block = {
  rel : Relational.Relation.t;
  p_local : Fuzzysql.Bound.pred list;
  out_attr : int;  (** X_k: attribute exported to the parent block *)
  link_attr : int option;  (** Y_k: compared with the child's X_{k+1} *)
  corr : corr list;  (** correlation predicates to enclosing blocks *)
}

type chain = {
  blocks : chain_block list;  (** outermost first; length >= 2 *)
  top_select : int list;
  chain_threshold : Fuzzysql.Ast.threshold option;
}

type t =
  | Flat  (** no subqueries *)
  | Two_level of two_level
  | Chain_query of chain
  | General  (** evaluated by the naive interpreter *)

val classify : Fuzzysql.Bound.query -> t

val pred_has_subquery : Fuzzysql.Bound.pred -> bool
(** Whether a predicate contains a nested query block. *)

val link_name : link -> string
(** "N", "J", "JX", "NX", "JA", "NA", "JALL", "JSOME", "JEXISTS", ... *)

val to_string : t -> string

val shape_hint : Fuzzysql.Bound.query -> string option
(** [Some desc] iff the query is nested (depth > 1) yet classifies as
    {!General}, i.e. it falls outside the paper's unnestable taxonomy and
    will run on the nested-loop interpreter. Passed to
    [Fuzzysql.Check.check_string ?classify] by the binaries and the
    daemon (the fuzzysql library cannot depend on this one). *)
