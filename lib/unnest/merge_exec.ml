(** Unnested evaluation with the extended merge-join: the paper's
    contribution (Sections 4-8).

    Each nested-query type is rewritten to its flat equivalent and evaluated
    as one sorted sweep:
    - type N / J   (Theorems 4.1, 4.2): merge-join on [R.Y = S.Z] with the
      correlation predicates as residuals, then max-dedup projection;
    - type JX      (Theorem 5.1): the grouped MIN(D) of Query JX' evaluated
      per outer tuple over its window [Rng(r)] — tuples outside the window
      contribute the neutral value, so one sweep suffices;
    - type JALL    (Theorem 7.1, and its SOME dual): same grouped sweep with
      the quantifier folded into [1 - min(..., 1 - d(y op z))];
    - type JA      (Theorem 6.1): the pipelined T1 / T2 / JA' cascade —
      aggregate each outer tuple's window group, compare, project, including
      the COUNT left-outer-join branch;
    - chain queries (Theorem 8.1): a cascade of merge-joins, outermost block
      first, correlation predicates evaluated as residuals on the
      accumulated intermediate tuples.

    Prerequisite: the sweep needs one equality predicate linking outer and
    inner (the IN attribute pair or an equality correlation). [Not_unnestable]
    is raised otherwise and the planner falls back to the nested-loop
    method. *)

open Relational
open Fuzzy
open Fuzzysql
module Trace = Storage.Trace

exception Not_unnestable of string

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_structural
end)

let residual_degree stats (corr : Classify.corr list) r s =
  List.fold_left
    (fun acc (c : Classify.corr) ->
      Storage.Iostats.record_fuzzy_op stats;
      Degree.conj acc
        (Value.compare_degree c.Classify.op
           (Ftuple.value s c.Classify.local_attr)
           (Ftuple.value r c.Classify.outer_attr)))
    Degree.one corr

(* Split off one equality correlation predicate to sweep on. *)
let split_eq_corr corr =
  let rec go acc = function
    | [] -> None
    | (c : Classify.corr) :: rest when c.Classify.op = Fuzzy_compare.Eq ->
        Some (c, List.rev_append acc rest)
    | c :: rest -> go (c :: acc) rest
  in
  go [] corr

let project_insert out select r d =
  if Degree.positive d then
    Relation.insert out
      (Ftuple.make (Array.of_list (List.map (fun p -> Ftuple.value r p) select)) d)

(* "Notice that if no join predicate exists in the inner block, the inner
   block produces the same single value for every tuple of R and no
   unnesting is needed" (Section 6). For uncorrelated quantifier, aggregate,
   and EXISTS subqueries the temporary relation T is computed once: the
   aggregate / EXISTS link degree is then a constant, and quantifiers only
   need one pass of R' against the duplicate-eliminated T. *)
let run_constant_inner ~stats ~out ~select ~outer' ~inner' link =
  let module Vm = Vmap in
  (* T: the fuzzy value set of the whole (reduced) inner relation. *)
  let collect z =
    Relation.fold inner' ~init:Vm.empty ~f:(fun m s ->
        let d = Ftuple.degree s in
        if Degree.positive d then
          Vm.update (Ftuple.value s z)
            (function None -> Some d | Some d' -> Some (Degree.disj d d'))
            m
        else m)
  in
  match link with
  | Classify.Exists_link { negated; corr = [] } ->
      let m =
        Relation.fold inner' ~init:Degree.zero ~f:(fun acc s ->
            Degree.disj acc (Ftuple.degree s))
      in
      let d_link = if negated then Degree.neg m else m in
      Relation.iter outer' (fun r ->
          project_insert out select r (Degree.conj (Ftuple.degree r) d_link))
  | Classify.Agg_link { y; op1; agg; z; corr = [] } ->
      let t = collect z in
      let vs = List.map fst (Vm.bindings t) in
      let result =
        match (Aggregate.apply agg vs, agg) with
        | (Some _ as res), _ -> res
        | None, Aggregate.Count -> Some (Value.Int 0)
        | None, _ -> None
      in
      (match result with
      | None -> () (* NULL aggregate: no answers *)
      | Some a ->
          Relation.iter outer' (fun r ->
              Storage.Iostats.record_fuzzy_op stats;
              let d_link = Value.compare_degree op1 (Ftuple.value r y) a in
              project_insert out select r
                (Degree.conj (Ftuple.degree r) d_link)))
  | Classify.Quant_link { y; op; quant; z; corr = [] } ->
      let t = Vm.bindings (collect z) in
      Relation.iter outer' (fun r ->
          let m =
            List.fold_left
              (fun acc (zv, dz) ->
                Storage.Iostats.record_fuzzy_op stats;
                let d_cmp = Value.compare_degree op (Ftuple.value r y) zv in
                let term =
                  match quant with
                  | Ast.All -> Degree.neg d_cmp
                  | Ast.Some_ -> d_cmp
                in
                Degree.disj acc (Degree.conj dz term))
              Degree.zero t
          in
          let d_link =
            match quant with Ast.All -> Degree.neg m | Ast.Some_ -> m
          in
          project_insert out select r (Degree.conj (Ftuple.degree r) d_link))
  | Classify.In_link _ | Classify.Not_in_link _ | Classify.Exists_link _
  | Classify.Agg_link _ | Classify.Quant_link _ ->
      invalid_arg "run_constant_inner: link is not constant-inner"

let is_constant_inner = function
  | Classify.Exists_link { corr = []; _ }
  | Classify.Agg_link { corr = []; _ }
  | Classify.Quant_link { corr = []; _ } ->
      true
  | Classify.In_link _ | Classify.Not_in_link _ | Classify.Exists_link _
  | Classify.Agg_link _ | Classify.Quant_link _ ->
      false

let run ?(name = "answer") ?pool ?trace ?cancel ?(batch = false)
    (shape : Classify.two_level) ~mem_pages : Relation.t =
  let { Classify.select; outer; inner; p1; p2; link; threshold } = shape in
  let env = Relation.env outer in
  let stats = env.Storage.Env.stats in
  let out_schema =
    Schema.make ~name
      (List.map (fun i -> (Schema.attrs (Relation.schema outer)).(i)) select)
  in
  let out = Relation.create env out_schema in
  (* Reduction: only tuples satisfying p1 / p2 positively are sorted
     (their satisfaction degrees are folded into the tuple degrees). With no
     local predicates the base relation is used directly — no copy. The WITH
     threshold is pushed into the reduction where sound (see {!Pushdown}). *)
  let reduced rel preds ~prune =
    if preds = [] && not prune then (rel, false)
    else
      ( Algebra.select rel ~pred:(fun tup ->
            Storage.Cancel.check cancel;
            let d = Semantics.local_degree stats tup preds in
            if
              prune
              && Pushdown.cannot_pass threshold
                   (Degree.conj (Ftuple.degree tup) d)
            then Degree.zero
            else d),
        true )
  in
  let prune = threshold <> None in
  let traced_reduce which rel preds ~prune =
    if preds = [] && not prune then (rel, false)
    else
      Trace.with_span trace ~stats ("reduce " ^ which) (fun () ->
          let r = reduced rel preds ~prune in
          Trace.set_rows trace (Relation.cardinality (fst r));
          r)
  in
  let dedup_project rel =
    Trace.with_span trace ~stats "dedup" (fun () ->
        let deduped = Algebra.dedup_max ~name rel in
        Trace.set_rows trace (Relation.cardinality deduped);
        deduped)
  in
  (* Reductions and sorted temporaries are destroyed through [temps] so a
     cancellation raised anywhere in the pipeline (reduce, sort, sweep)
     still frees them — a server worker's environment outlives the query. *)
  let temps = ref [] in
  Fun.protect ~finally:(fun () -> List.iter Relation.destroy !temps)
  @@ fun () ->
  let outer', outer_owned = traced_reduce "outer" outer p1 ~prune in
  if outer_owned then temps := outer' :: !temps;
  let inner', inner_owned =
    traced_reduce "inner" inner p2 ~prune:(prune && Pushdown.inner_prunable link)
  in
  if inner_owned then temps := inner' :: !temps;
  if is_constant_inner link then begin
    Trace.with_span trace ~stats "constant-inner" (fun () ->
        run_constant_inner ~stats ~out ~select ~outer' ~inner' link;
        Trace.set_rows trace (Relation.cardinality out));
    let deduped = dedup_project out in
    Semantics.apply_threshold deduped threshold
  end
  else begin
  (* Pick the sweep equality and the per-pair term evaluation. *)
  let sweep_y, sweep_z, handle_r =
    match link with
    | Classify.In_link { y; z; corr } ->
        ( y, z,
          fun (r : Ftuple.t) rng ->
            let m =
              List.fold_left
                (fun acc (s, d_eq) ->
                  if Degree.positive d_eq then
                    Degree.disj acc
                      (Degree.conj_list
                         [ Ftuple.degree s; d_eq; residual_degree stats corr r s ])
                  else acc)
                Degree.zero rng
            in
            project_insert out select r (Degree.conj (Ftuple.degree r) m) )
    | Classify.Not_in_link { y; z; corr } ->
        ( y, z,
          fun r rng ->
            (* min over all s of 1 - min(mu_s, d_eq, d_corr); s outside the
               window has d_eq = 0, contributing the neutral 1. *)
            let m =
              List.fold_left
                (fun acc (s, d_eq) ->
                  Degree.disj acc
                    (Degree.conj_list
                       [ Ftuple.degree s; d_eq; residual_degree stats corr r s ]))
                Degree.zero rng
            in
            project_insert out select r
              (Degree.conj (Ftuple.degree r) (Degree.neg m)) )
    | Classify.Quant_link { y; op; quant; z; corr } -> (
        match split_eq_corr corr with
        | None ->
            raise
              (Not_unnestable
                 "quantified subquery without an equality correlation \
                  predicate")
        | Some (eq, rest) ->
            ( eq.Classify.outer_attr, eq.Classify.local_attr,
              fun r rng ->
                let m =
                  List.fold_left
                    (fun acc (s, d_eq) ->
                      if Degree.positive d_eq then begin
                        Storage.Iostats.record_fuzzy_op stats;
                        let d_cmp =
                          Value.compare_degree op (Ftuple.value r y)
                            (Ftuple.value s z)
                        in
                        let inner_term =
                          match quant with
                          | Ast.All -> Degree.neg d_cmp
                          | Ast.Some_ -> d_cmp
                        in
                        Degree.disj acc
                          (Degree.conj_list
                             [
                               Ftuple.degree s; d_eq;
                               residual_degree stats rest r s; inner_term;
                             ])
                      end
                      else acc)
                    Degree.zero rng
                in
                let d_link =
                  match quant with
                  | Ast.All -> Degree.neg m
                  | Ast.Some_ -> m
                in
                project_insert out select r
                  (Degree.conj (Ftuple.degree r) d_link) ))
    | Classify.Exists_link { negated; corr } -> (
        match split_eq_corr corr with
        | None ->
            raise
              (Not_unnestable
                 "EXISTS subquery without an equality correlation predicate")
        | Some (eq, rest) ->
            (* Fuzzy semi-join (anti-join when negated): d(EXISTS) is the max
               over the window of min(mu_s, d_eq, d_rest); tuples outside the
               window have d_eq = 0 and cannot raise the max. *)
            ( eq.Classify.outer_attr, eq.Classify.local_attr,
              fun r rng ->
                let m =
                  List.fold_left
                    (fun acc (s, d_eq) ->
                      if Degree.positive d_eq then
                        Degree.disj acc
                          (Degree.conj_list
                             [
                               Ftuple.degree s; d_eq;
                               residual_degree stats rest r s;
                             ])
                      else acc)
                    Degree.zero rng
                in
                let d_link = if negated then Degree.neg m else m in
                project_insert out select r
                  (Degree.conj (Ftuple.degree r) d_link) ))
    | Classify.Agg_link { y; op1; agg; z; corr } -> (
        match split_eq_corr corr with
        | None ->
            raise
              (Not_unnestable
                 "aggregate subquery without an equality correlation \
                  predicate")
        | Some (eq, rest) ->
            ( eq.Classify.outer_attr, eq.Classify.local_attr,
              fun r rng ->
                (* T'(u): the fuzzy value set of the group for u = r.U. *)
                let set =
                  List.fold_left
                    (fun m (s, d_eq) ->
                      let d =
                        Degree.conj_list
                          [
                            Ftuple.degree s; d_eq;
                            residual_degree stats rest r s;
                          ]
                      in
                      if Degree.positive d then
                        Vmap.update (Ftuple.value s z)
                          (function
                            | None -> Some d
                            | Some d' -> Some (Degree.disj d d'))
                          m
                      else m)
                    Vmap.empty rng
                in
                let vs = List.map fst (Vmap.bindings set) in
                let result =
                  match (Aggregate.apply agg vs, agg) with
                  | (Some _ as res), _ -> res
                  | None, Aggregate.Count ->
                      (* COUNT over an empty group: the left outer join branch
                         of Query COUNT' compares with 0. *)
                      Some (Value.Int 0)
                  | None, _ -> None
                in
                match result with
                | None -> ()
                | Some a ->
                    Storage.Iostats.record_fuzzy_op stats;
                    let d_link =
                      Value.compare_degree op1 (Ftuple.value r y) a
                    in
                    project_insert out select r
                      (Degree.conj (Ftuple.degree r) d_link) ))
  in
  (* Vectorized batch handlers for the IN / NOT IN sweeps: the same max of
     min(mu_s, d_eq, d_corr) as the scalar closures (same branch on
     positive d_eq, same fuzzy-op counts), evaluated straight off the
     window's selection vector with the correlation residuals going through
     the trapezoid kernels where both operands are columnar. The remaining
     link types bridge to their scalar closures through the emitter. *)
  let in_batch ~negated corr =
    (* The correlation columns depend only on the batches, which stay the
       same across every outer row of a sweep: extract them once per batch
       pair instead of once per window pair. *)
    let cached = ref None in
    fun ob i ~inner:ib ~idx ~n ~d_eq ->
      let cols =
        match !cached with
        | Some (ob', ib', cols) when ob' == ob && ib' == ib -> cols
        | _ ->
            let cols =
              List.map
                (fun (c : Classify.corr) ->
                  (c, Batch.col ib c.Classify.local_attr,
                   Batch.col ob c.Classify.outer_attr))
                corr
            in
            cached := Some (ob, ib, cols);
            cols
      in
      let r = Batch.row ob i in
      let deg = Batch.degrees ib in
      (* [Degree.conj]/[disj] are Float.min/max; inlining them keeps the
         exact operation sequence (and bits) of the scalar fold while
         cutting two call layers per window pair. The fuzzy-op counter is
         charged in bulk after the loop — same total as the scalar path. *)
      let m = ref Degree.zero in
      let fz = ref 0 in
      for j = 0 to n - 1 do
        let dq = Array.unsafe_get d_eq j in
        if negated || dq > 0.0 then begin
          let s_i = Array.unsafe_get idx j in
          let d =
            ref (Float.min (Float.min Degree.one (Array.unsafe_get deg s_i)) dq)
          in
          List.iter
            (fun ((c : Classify.corr), u, v) ->
              incr fz;
              let dd =
                if Batch.ok u s_i && Batch.ok v i then
                  Batch_kernels.cmp_at c.Classify.op u s_i v i
                else
                  Value.compare_degree c.Classify.op
                    (Ftuple.value (Batch.row ib s_i) c.Classify.local_attr)
                    (Ftuple.value r c.Classify.outer_attr)
              in
              d := Float.min !d dd)
            cols;
          m := Float.max !m !d
        end
      done;
      if !fz > 0 then Storage.Iostats.record_fuzzy_ops stats !fz;
      let d_link = if negated then Degree.neg !m else !m in
      project_insert out select r (Degree.conj (Ftuple.degree r) d_link)
  in
  let f_batch =
    if not batch then None
    else
      match link with
      | Classify.In_link { corr; _ } -> Some (in_batch ~negated:false corr)
      | Classify.Not_in_link { corr; _ } -> Some (in_batch ~negated:true corr)
      | _ -> None
  in
  let sorted_r =
    Join_merge.sort_by ?pool ?trace ?cancel ~batch outer' ~attr:sweep_y
      ~mem_pages
  in
  temps := sorted_r :: !temps;
  let sorted_s =
    Join_merge.sort_by ?pool ?trace ?cancel ~batch inner' ~attr:sweep_z
      ~mem_pages
  in
  temps := sorted_s :: !temps;
  Join_merge.sweep_sorted ?pool ?trace ?cancel ~batch ?f_batch
    ~outer:sorted_r ~inner:sorted_s ~outer_attr:sweep_y ~inner_attr:sweep_z
    ~mem_pages ~f:handle_r ();
  let deduped = dedup_project out in
  Semantics.apply_threshold deduped threshold
  end

let run_chain ?(name = "answer") ?order ?pool ?trace ?cancel ?(batch = false)
    (chain : Classify.chain) ~mem_pages : Relation.t =
  let { Classify.blocks; top_select; chain_threshold } = chain in
  let blocks_arr = Array.of_list blocks in
  let k = Array.length blocks_arr in
  if k = 0 then invalid_arg "Merge_exec.run_chain: no blocks";
  let stats_of rel = (Relation.env rel).Storage.Env.stats in
  let stats = stats_of blocks_arr.(0).Classify.rel in
  (* Every owned intermediate (block reductions, join cascade steps) goes
     through [temps] so a cancellation at any point of the cascade frees
     them all; cascade steps that are superseded are destroyed early to
     bound disk usage, the rest on exit. *)
  let temps = ref [] in
  Fun.protect ~finally:(fun () -> List.iter Relation.destroy !temps)
  @@ fun () ->
  (* Pre-select each block's relation with its local predicates. *)
  let reduced =
    Array.mapi
      (fun i (b : Classify.chain_block) ->
        if b.Classify.p_local = [] then b.Classify.rel
        else
          Trace.with_span trace ~stats
            (Printf.sprintf "reduce block-%d" i)
            (fun () ->
              let r =
                Algebra.select b.Classify.rel ~pred:(fun tup ->
                    Storage.Cancel.check cancel;
                    Semantics.local_degree stats tup b.Classify.p_local)
              in
              Trace.set_rows trace (Relation.cardinality r);
              temps := r :: !temps;
              r))
      blocks_arr
  in
  let { Chain_order.start; steps; _ } =
    match order with
    | Some o -> o
    | None -> Chain_order.left_to_right k
  in
  (* Grow a contiguous interval of blocks with merge-joins, applying each
     correlation predicate as soon as both of its endpoints are present in
     the accumulated intermediate tuples. [offsets.(b)] is block [b]'s
     attribute offset inside the intermediate; -1 while absent. *)
  let offsets = Array.make k (-1) in
  offsets.(start) <- 0;
  let lo = ref start and hi = ref start in
  let arity b = Schema.arity (Relation.schema blocks_arr.(b).Classify.rel) in
  let acc = ref reduced.(start) in
  let acc_owned = ref false in
  let acc_arity = ref (arity start) in
  let in_set b = offsets.(b) >= 0 in
  let add_block b =
    Storage.Cancel.check cancel;
    if b <> !lo - 1 && b <> !hi + 1 then
      invalid_arg "Merge_exec.run_chain: order step not adjacent to the set";
    let new_rel = reduced.(b) in
    (* The equality linking block [b] to the set: the link between b and
       b+1 when extending left, between b-1 and b when extending right. *)
    let outer_attr, inner_attr =
      if b = !hi + 1 then
        match blocks_arr.(b - 1).Classify.link_attr with
        | Some y -> (offsets.(b - 1) + y, blocks_arr.(b).Classify.out_attr)
        | None -> invalid_arg "Merge_exec.run_chain: missing link attribute"
      else
        match blocks_arr.(b).Classify.link_attr with
        | Some y -> (offsets.(b + 1) + blocks_arr.(b + 1).Classify.out_attr, y)
        | None -> invalid_arg "Merge_exec.run_chain: missing link attribute"
    in
    (* Correlation predicates that become applicable now: those of block [b]
       whose target is already present, and those of present blocks whose
       target is [b]. *)
    let of_new =
      List.filter
        (fun (c : Classify.corr) -> in_set (b - c.Classify.up))
        blocks_arr.(b).Classify.corr
    in
    let onto_new =
      List.concat
        (List.init k (fun blk ->
             if in_set blk then
               List.filter_map
                 (fun (c : Classify.corr) ->
                   if blk - c.Classify.up = b then Some (blk, c) else None)
                 blocks_arr.(blk).Classify.corr
             else []))
    in
    let residual r s =
      let d1 =
        List.fold_left
          (fun acc (c : Classify.corr) ->
            Storage.Iostats.record_fuzzy_op stats;
            Degree.conj acc
              (Value.compare_degree c.Classify.op
                 (Ftuple.value s c.Classify.local_attr)
                 (Ftuple.value r (offsets.(b - c.Classify.up) + c.Classify.outer_attr))))
          Degree.one of_new
      in
      List.fold_left
        (fun acc (blk, (c : Classify.corr)) ->
          Storage.Iostats.record_fuzzy_op stats;
          Degree.conj acc
            (Value.compare_degree c.Classify.op
               (Ftuple.value r (offsets.(blk) + c.Classify.local_attr))
               (Ftuple.value s c.Classify.outer_attr)))
        d1 onto_new
    in
    let joined =
      Join_merge.join_eq ?pool ?trace ?cancel ~batch ~outer:!acc
        ~inner:new_rel ~outer_attr ~inner_attr ~mem_pages ~residual ()
    in
    temps := joined :: !temps;
    if !acc_owned then begin
      let old = !acc in
      temps := List.filter (fun r -> r != old) !temps;
      Relation.destroy old
    end;
    acc := joined;
    acc_owned := true;
    offsets.(b) <- !acc_arity;
    acc_arity := !acc_arity + arity b;
    if b < !lo then lo := b;
    if b > !hi then hi := b
  in
  List.iter add_block steps;
  let out =
    Trace.with_span trace ~stats "project" (fun () ->
        let out =
          Algebra.project_positions ~name !acc
            (List.map (fun p -> offsets.(0) + p) top_select)
        in
        Trace.set_rows trace (Relation.cardinality out);
        out)
  in
  Semantics.apply_threshold out chain_threshold
