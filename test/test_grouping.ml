(** Tests of GROUPBY / HAVING / aggregate-select execution (flat queries are
    evaluated by the interpreter; the grouped-row semantics follow
    Section 6's aggregate definitions with fuzzy-OR group degrees). *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case

let sales_catalog env =
  let catalog = Catalog.create env in
  let schema =
    Schema.make ~name:"SALES"
      [ ("REGION", Schema.TStr); ("AMOUNT", Schema.TNum); ("Q", Schema.TNum) ]
  in
  let t region amount q d =
    Test_util.tuple [ Value.Str region; Value.crisp_num amount; Value.crisp_num q ] d
  in
  Catalog.add catalog
    (Relation.of_list env schema
       [
         t "east" 10. 1. 1.0;
         t "east" 20. 2. 0.8;
         t "east" 30. 3. 0.5;
         t "west" 100. 1. 1.0;
         t "west" 200. 2. 0.9;
         t "north" 5. 1. 0.4;
       ]);
  catalog

let run env catalog sql =
  Test_util.answer_of_relation
    (Unnest.Planner.run
       (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql))
  |> fun l ->
  ignore env;
  l

let find_group ans key =
  List.find_map
    (fun (vs, d) ->
      match vs.(0) with
      | Value.Str k when k = key -> Some (vs, d)
      | _ -> None)
    ans

let grouping_tests =
  [
    tc "COUNT per group with fuzzy-OR group degree" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        let ans = run env catalog
            "SELECT SALES.REGION, COUNT(SALES.AMOUNT) FROM SALES GROUPBY SALES.REGION" in
        Alcotest.(check int) "three groups" 3 (List.length ans);
        (match find_group ans "east" with
        | Some (vs, d) ->
            Alcotest.(check bool) "count east" true (Value.equal vs.(1) (Value.Int 3));
            Test_util.check_degree "max degree east" 1.0 d
        | None -> Alcotest.fail "no east group");
        match find_group ans "north" with
        | Some (vs, d) ->
            Alcotest.(check bool) "count north" true (Value.equal vs.(1) (Value.Int 1));
            Test_util.check_degree "degree north" 0.4 d
        | None -> Alcotest.fail "no north group");
    tc "SUM / AVG / MIN / MAX per group" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        let one agg =
          let ans = run env catalog
              (Printf.sprintf
                 "SELECT SALES.REGION, %s(SALES.AMOUNT) FROM SALES GROUPBY SALES.REGION"
                 agg)
          in
          match find_group ans "west" with
          | Some (vs, _) -> vs.(1)
          | None -> Alcotest.failf "%s: no west group" agg
        in
        (match one "SUM" with
        | Value.Fuzzy p -> Alcotest.(check (float 1e-9)) "sum" 300.0 (Fuzzy.Defuzz.core_center p)
        | v -> Alcotest.failf "sum shape %s" (Value.to_string v));
        (match one "AVG" with
        | Value.Fuzzy p -> Alcotest.(check (float 1e-9)) "avg" 150.0 (Fuzzy.Defuzz.core_center p)
        | v -> Alcotest.failf "avg shape %s" (Value.to_string v));
        Alcotest.(check bool) "min" true (Value.equal (one "MIN") (Value.crisp_num 100.));
        Alcotest.(check bool) "max" true (Value.equal (one "MAX") (Value.crisp_num 200.)));
    tc "HAVING filters groups" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        let ans = run env catalog
            "SELECT SALES.REGION FROM SALES GROUPBY SALES.REGION HAVING \
             COUNT(SALES.AMOUNT) >= 2" in
        Alcotest.(check int) "two groups survive" 2 (List.length ans);
        Alcotest.(check bool) "no north" true (find_group ans "north" = None));
    tc "HAVING with fuzzy comparison grades groups" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        (* AVG(east) = 20 crisp; compared with ABOUT(25, 10): degree 0.5. *)
        let ans = run env catalog
            "SELECT SALES.REGION FROM SALES GROUPBY SALES.REGION HAVING \
             AVG(SALES.AMOUNT) = ABOUT(25, 10)" in
        match find_group ans "east" with
        | Some (_, d) -> Test_util.check_degree "graded having" 0.5 d
        | None -> Alcotest.fail "east should pass partially");
    tc "aggregate without GROUPBY collapses to one row" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        let ans = run env catalog "SELECT COUNT(SALES.AMOUNT) FROM SALES" in
        match ans with
        | [ (vs, d) ] ->
            Alcotest.(check bool) "count all" true (Value.equal vs.(0) (Value.Int 6));
            Test_util.check_degree "degree" 1.0 d
        | _ -> Alcotest.failf "expected one row, got %d" (List.length ans));
    tc "non-aggregated select column must be in GROUPBY" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        Alcotest.(check bool) "raises" true
          (try
             ignore (run env catalog
                 "SELECT SALES.REGION, COUNT(SALES.AMOUNT) FROM SALES GROUPBY SALES.Q");
             false
           with Invalid_argument _ -> true));
    tc "WHERE combines with GROUPBY (degrees flow into groups)" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = sales_catalog env in
        let ans = run env catalog
            "SELECT SALES.REGION, COUNT(SALES.AMOUNT) FROM SALES WHERE \
             SALES.Q >= 2 GROUPBY SALES.REGION" in
        Alcotest.(check int) "two groups" 2 (List.length ans);
        match find_group ans "east" with
        | Some (vs, d) ->
            Alcotest.(check bool) "east count 2" true (Value.equal vs.(1) (Value.Int 2));
            Test_util.check_degree "east degree 0.8" 0.8 d
        | None -> Alcotest.fail "no east group");
  ]

let algebra_set_tests =
  [
    tc "fuzzy difference and intersection" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let schema = Schema.make ~name:"R" [ ("K", Schema.TStr) ] in
        let mk name rows =
          Relation.of_list env (Schema.with_name schema name)
            (List.map (fun (k, d) -> Test_util.tuple [ Value.Str k ] d) rows)
        in
        let a = mk "A" [ ("x", 0.9); ("y", 0.6); ("z", 0.3) ] in
        let b = mk "B" [ ("x", 0.5); ("y", 1.0) ] in
        let diff = Test_util.answer_of_relation (Algebra.difference a b) in
        (* x: min(0.9, 1-0.5) = 0.5; y: min(0.6, 0) = 0 (gone); z: 0.3 *)
        Alcotest.(check int) "two rows" 2 (List.length diff);
        List.iter
          (fun (vs, d) ->
            match vs.(0) with
            | Value.Str "x" -> Test_util.check_degree "x" 0.5 d
            | Value.Str "z" -> Test_util.check_degree "z" 0.3 d
            | v -> Alcotest.failf "unexpected %s" (Value.to_string v))
          diff;
        let inter = Test_util.answer_of_relation (Algebra.intersect_min a b) in
        Alcotest.(check int) "two common rows" 2 (List.length inter);
        List.iter
          (fun (vs, d) ->
            match vs.(0) with
            | Value.Str "x" -> Test_util.check_degree "x" 0.5 d
            | Value.Str "y" -> Test_util.check_degree "y" 0.6 d
            | v -> Alcotest.failf "unexpected %s" (Value.to_string v))
          inter);
  ]

(* ---------- ORDER BY D / LIMIT ---------- *)

let ranking_tests =
  [
    tc "ORDER BY D DESC LIMIT k ranks by degree" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = Test_util.paper_db env in
        let run sql =
          Relation.to_list
            (Unnest.Planner.run
               (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql))
        in
        (* degrees: Ann(about 35) 0.5, Ann(medium young) 1 -> dedup 1;
           Betty 0.7; Cathy 0. Deduped: Ann 1, Betty 0.7. *)
        let top =
          run
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' ORDER BY D \
             DESC LIMIT 1"
        in
        (match top with
        | [ t ] ->
            Alcotest.(check bool) "Ann first" true
              (Value.equal (Ftuple.value t 0) (Value.Str "Ann"));
            Test_util.check_degree "degree 1" 1.0 (Ftuple.degree t)
        | l -> Alcotest.failf "expected 1 row, got %d" (List.length l));
        let asc =
          run "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' ORDER BY D ASC"
        in
        (match asc with
        | first :: _ ->
            Alcotest.(check bool) "Betty first ascending" true
              (Value.equal (Ftuple.value first 0) (Value.Str "Betty"))
        | [] -> Alcotest.fail "nonempty");
        let limited = run "SELECT F.NAME FROM F LIMIT 2" in
        Alcotest.(check int) "bare LIMIT truncates" 2 (List.length limited));
    tc "ORDER BY / LIMIT interact with WITH and nested queries" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = Test_util.paper_db env in
        let run sql =
          Relation.to_list
            (Unnest.Planner.run
               (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql))
        in
        let ranked =
          run
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME \
             IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age') ORDER BY \
             D DESC LIMIT 5 WITH D >= 0.5"
        in
        Alcotest.(check int) "both answers survive" 2 (List.length ranked));
    tc "ORDER BY / LIMIT rejected in subqueries; parser errors" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        Alcotest.(check bool) "subquery LIMIT rejected" true
          (try
             ignore
               (Test_util.bind_paper_query env
                  "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME \
                   FROM M LIMIT 2)");
             false
           with Fuzzysql.Analyzer.Error _ -> true);
        let bad sql =
          try
            ignore (Fuzzysql.Parser.parse sql);
            false
          with Fuzzysql.Parser.Error _ -> true
        in
        Alcotest.(check bool) "ORDER BY X rejected" true
          (bad "SELECT F.NAME FROM F ORDER BY NAME");
        Alcotest.(check bool) "fractional LIMIT rejected" true
          (bad "SELECT F.NAME FROM F LIMIT 2.5");
        Alcotest.(check bool) "duplicate LIMIT rejected" true
          (bad "SELECT F.NAME FROM F LIMIT 2 LIMIT 3"));
  ]

let suites =
  [
    ("grouping", grouping_tests); ("algebra.sets", algebra_set_tests);
    ("ranking", ranking_tests);
  ]
