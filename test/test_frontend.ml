(** Additional front-end tests: a random-AST pretty/parse round-trip
    property, constant parsing, and the CSV loader. *)

open Frepro
open Frepro.Relational
open Frepro.Fuzzysql

let tc = Alcotest.test_case

(* ---------- random AST round-trip ---------- *)

let gen_query =
  let open QCheck.Gen in
  let ident = oneofl [ "X"; "Y"; "Z"; "R.X"; "R.Y"; "S.Z" ] in
  let const =
    oneof
      [
        map (fun n -> Ast.Num (float_of_int n)) (int_range 0 100);
        map (fun s -> Ast.Str s) (oneofl [ "young"; "high"; "abc" ]);
        map
          (fun (a, b) ->
            let a = float_of_int a and b = float_of_int b in
            Ast.Trap (a, a +. 1., a +. 2., a +. 2. +. b))
          (pair (int_range 0 50) (int_range 0 10));
        map
          (fun (v, s) -> Ast.About (float_of_int v, float_of_int (s + 1)))
          (pair (int_range 0 50) (int_range 0 10));
        map
          (fun vs ->
            Ast.Discrete
              (List.mapi (fun i v -> (float_of_int (10 * i), 0.1 +. (0.05 *. float_of_int v))) vs))
          (list_size (int_range 1 3) (int_range 0 9));
      ]
  in
  let sp = Ast.dummy_span in
  let operand =
    oneof
      [ map (fun a -> Ast.Attr (a, sp)) ident;
        map (fun c -> Ast.Const (c, sp)) const ]
  in
  let op = oneofl Fuzzy.Fuzzy_compare.[ Eq; Ne; Lt; Le; Gt; Ge ] in
  let rec query depth =
    let pred =
      if depth <= 0 then
        map3 (fun l o r -> Ast.Cmp (l, o, r)) operand op operand
      else
        frequency
          [
            (3, map3 (fun l o r -> Ast.Cmp (l, o, r)) operand op operand);
            (1, map2 (fun l q -> Ast.In (l, q)) operand (query (depth - 1)));
            (1, map2 (fun l q -> Ast.Not_in (l, q)) operand (query (depth - 1)));
            ( 1,
              map3
                (fun l o q -> Ast.Quant (l, o, Ast.All, q))
                operand op (query (depth - 1)) );
            (1, map (fun q -> Ast.Exists q) (query (depth - 1)));
          ]
    in
    let select =
      oneof
        [
          map (fun a -> [ Ast.Col (a, sp) ]) ident;
          map (fun a -> [ Ast.Agg (Aggregate.Max, a, sp) ]) ident;
          map2 (fun a b -> [ Ast.Col (a, sp); Ast.Col (b, sp) ]) ident ident;
        ]
    in
    map3
      (fun select from (where, with_d) ->
        {
          Ast.distinct = false;
          select;
          from;
          where;
          group_by = [];
          having = [];
          with_d;
          with_span = sp;
          order_by_d = None;
          limit = None;
          q_span = sp;
        })
      select
      (oneofl
         [
           [ ("R", None, sp) ];
           [ ("R", Some "A", sp) ];
           [ ("R", None, sp); ("S", None, sp) ];
         ])
      (pair
         (list_size (int_range 0 3) pred)
         (oneofl [ None; Some { Ast.strict = false; value = 0.5 };
                   Some { Ast.strict = true; value = 0.25 } ]))
  in
  query 2

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pretty |> parse |> pretty is stable"
    (QCheck.make ~print:Pretty.query_to_string gen_query) (fun q ->
      let s1 = Pretty.query_to_string q in
      let q2 = Parser.parse s1 in
      String.equal s1 (Pretty.query_to_string q2))

let const_tests =
  [
    tc "parse_const forms" `Quick (fun () ->
        (match Parser.parse_const "42.5" with
        | Ast.Num f -> Alcotest.(check (float 0.)) "num" 42.5 f
        | _ -> Alcotest.fail "num");
        (match Parser.parse_const "'medium young'" with
        | Ast.Str s -> Alcotest.(check string) "quoted" "medium young" s
        | _ -> Alcotest.fail "quoted");
        (match Parser.parse_const "medium young" with
        | Ast.Str s -> Alcotest.(check string) "bare words" "medium young" s
        | _ -> Alcotest.fail "bare");
        (match Parser.parse_const "TRAP(1, 2, 3, 4)" with
        | Ast.Trap (1., 2., 3., 4.) -> ()
        | _ -> Alcotest.fail "trap");
        Alcotest.(check bool) "garbage rejected" true
          (try ignore (Parser.parse_const "TRAP(1,2"); false
           with Parser.Error _ -> true));
  ]

(* ---------- CSV loader ---------- *)

let people_schema =
  [ ("NAME", Schema.TStr); ("AGE", Schema.TNum); ("INCOME", Schema.TNum) ]

let loader_tests =
  [
    tc "loads crisp, fuzzy-literal, and term cells with degrees" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        let csv =
          "NAME,AGE,INCOME,D\n\
           Ann,\"TRI(30, 35, 40)\",\"about 60K\",1\n\
           Betty,middle age,high,0.9\n\
           Carl,29,\"ABOUT(40, 10)\",0.5\n"
        in
        let rel =
          Loader.load_csv_string env ~name:"PEOPLE" ~schema:people_schema csv
        in
        Alcotest.(check int) "three tuples" 3 (Relation.cardinality rel);
        let rows = Relation.to_list rel in
        let by_name n =
          List.find (fun t -> Value.equal (Ftuple.value t 0) (Value.Str n)) rows
        in
        let ann = by_name "Ann" in
        Alcotest.(check bool) "Ann age fuzzy" true
          (Value.equal (Ftuple.value ann 1)
             (Value.Fuzzy (Fuzzy.Possibility.triangle 30. 35. 40.)));
        Alcotest.(check bool) "Ann income resolved via terms" true
          (Value.equal (Ftuple.value ann 2) (Test_util.term "about 60K"));
        let betty = by_name "Betty" in
        Test_util.check_degree "Betty degree" 0.9 (Ftuple.degree betty);
        let carl = by_name "Carl" in
        Alcotest.(check bool) "Carl crisp age" true
          (Value.equal (Ftuple.value carl 1) (Value.crisp_num 29.)));
    tc "column order from header, extra columns ignored" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let csv = "JUNK,INCOME,NAME,AGE\nx,55,Dora,41\n" in
        let rel = Loader.load_csv_string env ~name:"P" ~schema:people_schema csv in
        match Relation.to_list rel with
        | [ t ] ->
            Alcotest.(check bool) "name" true (Value.equal (Ftuple.value t 0) (Value.Str "Dora"));
            Alcotest.(check bool) "age" true (Value.equal (Ftuple.value t 1) (Value.crisp_num 41.))
        | _ -> Alcotest.fail "one tuple");
    tc "quoted separators and escaped quotes" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let csv = "NAME,AGE,INCOME\n\"Smith, Jr. said \"\"hi\"\"\",30,40\n" in
        let rel = Loader.load_csv_string env ~name:"P" ~schema:people_schema csv in
        match Relation.to_list rel with
        | [ t ] ->
            Alcotest.(check bool) "name kept separator and quote" true
              (Value.equal (Ftuple.value t 0) (Value.Str "Smith, Jr. said \"hi\""))
        | _ -> Alcotest.fail "one tuple");
    tc "loader errors carry line numbers" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let bad csv expected_fragment =
          try
            ignore (Loader.load_csv_string env ~name:"P" ~schema:people_schema csv);
            Alcotest.failf "should fail: %s" csv
          with Loader.Error msg ->
            Alcotest.(check bool)
              (Printf.sprintf "%S mentions %S" msg expected_fragment)
              true
              (let nh = String.length msg and nn = String.length expected_fragment in
               let rec go i =
                 i + nn <= nh && (String.sub msg i nn = expected_fragment || go (i + 1))
               in
               go 0)
        in
        bad "NAME,AGE\nx,1\n" "missing column";
        bad "NAME,AGE,INCOME\nx,notanage,3\n" "line 2";
        bad "NAME,AGE,INCOME,D\nx,1,2,1.5\n" "outside [0, 1]";
        bad "NAME,AGE,INCOME\nonlyname\n" "fields");
    tc "loaded relation answers queries" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let csv =
          "NAME,AGE,INCOME\nAnn,about 35,about 60K\nBetty,middle age,high\n"
        in
        let rel = Loader.load_csv_string env ~name:"F" ~schema:people_schema csv in
        let catalog = Catalog.create env in
        Catalog.add catalog rel;
        let ans =
          Unnest.Planner.run_string ~catalog ~terms:Fuzzy.Term.paper
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young'"
        in
        (* Ann (about 35): 0.5; Betty (middle age): 0.7 *)
        Alcotest.(check int) "two partial matches" 2 (Relation.cardinality ans));
  ]

let suites =
  [
    ("frontend.roundtrip_prop", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ("frontend.const", const_tests);
    ("frontend.loader", loader_tests);
  ]
