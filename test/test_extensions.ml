(** Tests of the extensions beyond the paper's core: necessity degrees,
    histogram estimation, chain join-order DP, EXPLAIN, band/interval joins,
    threshold pushdown, and relation persistence. *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case

(* ---------- necessity (the double-measure discussion of Section 2.2) --- *)

let nec_hand_cases =
  tc "necessity hand cases" `Quick (fun () ->
      let open Fuzzy in
      let my = Option.get (Term.lookup Term.paper "medium young") in
      let a35 = Option.get (Term.lookup Term.paper "about 35") in
      (* Two genuinely fuzzy values: fully possible that they differ, so
         necessity of equality is 0 while possibility is 0.5. *)
      Test_util.check_degree "Poss(my = a35)" 0.5
        (Necessity.possibility Fuzzy_compare.Eq my a35);
      Test_util.check_degree "Nec(my = a35)" 0.0
        (Necessity.necessity Fuzzy_compare.Eq my a35);
      (* Crisp equal values: certainty. *)
      let c = Possibility.crisp 5.0 in
      Test_util.check_degree "Nec(5 = 5)" 1.0 (Necessity.necessity Fuzzy_compare.Eq c c);
      Test_util.check_degree "Nec(5 <> 5)" 0.0 (Necessity.necessity Fuzzy_compare.Ne c c);
      (* Certainly larger: supports disjoint. *)
      let lo = Possibility.triangle 0. 5. 10. and hi = Possibility.triangle 20. 25. 30. in
      Test_util.check_degree "Nec(hi > lo)" 1.0
        (Necessity.necessity Fuzzy_compare.Gt hi lo);
      Test_util.check_degree "Poss(lo > hi)" 0.0
        (Necessity.possibility Fuzzy_compare.Gt lo hi))

let nec_leq_poss =
  QCheck.Test.make ~count:300 ~name:"Nec <= Poss for normal distributions"
    (QCheck.pair (QCheck.make (QCheck.gen (QCheck.make QCheck.Gen.int)))
       QCheck.(pair (int_bound 1000) (int_bound 5)))
    (fun (_, (seed, op_i)) ->
      let rng = Random.State.make [| seed |] in
      let u = Workload.Gen.random_possibility rng ~lo:0.0 ~hi:50.0 in
      let v = Workload.Gen.random_possibility rng ~lo:0.0 ~hi:50.0 in
      let op =
        [| Fuzzy.Fuzzy_compare.Eq; Ne; Lt; Le; Gt; Ge |].(op_i mod 6)
      in
      (* Only normal (height-1) distributions satisfy the law; the random
         discrete ones may be subnormal, so normalise by skipping those. *)
      if Fuzzy.Possibility.height u < 1.0 || Fuzzy.Possibility.height v < 1.0
      then true
      else
        Fuzzy.Necessity.necessity op u v
        <= Fuzzy.Necessity.possibility op u v +. 1e-9)

(* ---------- piecewise-linear membership functions ---------- *)

let arb_trap =
  QCheck.make
    ~print:(Format.asprintf "%a" Fuzzy.Trapezoid.pp)
    QCheck.Gen.(
      map
        (fun (a, b, c, d) ->
          match List.sort Float.compare [ a; b; c; d ] with
          | [ a; b; c; d ] -> Fuzzy.Trapezoid.make a b c d
          | _ -> assert false)
        (quad (float_bound_inclusive 100.) (float_bound_inclusive 100.)
           (float_bound_inclusive 100.) (float_bound_inclusive 100.)))

let close a b = Float.abs (a -. b) <= 1e-9

let plf_props =
  [
    QCheck.Test.make ~count:300 ~name:"Plf sup_min = trapezoid eq_height"
      (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
        close
          (Fuzzy.Plf.sup_min (Fuzzy.Plf.of_trapezoid u) (Fuzzy.Plf.of_trapezoid v))
          (Fuzzy.Trapezoid.eq_height u v));
    QCheck.Test.make ~count:300 ~name:"Plf poss_ge = trapezoid ge_height"
      (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
        close
          (Fuzzy.Plf.poss_ge (Fuzzy.Plf.of_trapezoid u) (Fuzzy.Plf.of_trapezoid v))
          (Fuzzy.Trapezoid.ge_height u v));
    QCheck.Test.make ~count:300 ~name:"Plf mem = trapezoid mem at random points"
      (QCheck.pair arb_trap (QCheck.float_bound_inclusive 100.0)) (fun (u, x) ->
        close (Fuzzy.Plf.mem (Fuzzy.Plf.of_trapezoid u) x) (Fuzzy.Trapezoid.mem u x));
    QCheck.Test.make ~count:200 ~name:"Plf power 2 is a concentration"
      (QCheck.pair arb_trap (QCheck.float_bound_inclusive 100.0)) (fun (u, x) ->
        let p = Fuzzy.Plf.of_trapezoid u in
        let very = Fuzzy.Plf.power p 2.0 in
        Fuzzy.Plf.mem very x <= Fuzzy.Plf.mem p x +. 1e-9);
  ]

let plf_tests =
  [
    tc "Plf basics: interpolation, support, height, core" `Quick (fun () ->
        let open Fuzzy in
        let p = Plf.of_breakpoints [ (0., 0.); (2., 0.5); (4., 1.0); (10., 0.) ] in
        Test_util.check_degree "interp" 0.25 (Plf.mem p 1.0);
        Test_util.check_degree "at breakpoint" 0.5 (Plf.mem p 2.0);
        Test_util.check_degree "outside" 0.0 (Plf.mem p 11.0);
        Test_util.(Alcotest.check interval) "support" (Interval.make 0. 10.) (Plf.support p);
        Test_util.check_degree "height" 1.0 (Plf.height p);
        Alcotest.(check (float 1e-9)) "core center" 4.0 (Plf.core_center p);
        (* subnormal multi-modal shape *)
        let bimodal =
          Plf.of_breakpoints [ (0., 0.); (1., 0.8); (2., 0.1); (3., 0.8); (4., 0.) ]
        in
        Test_util.check_degree "bimodal height" 0.8 (Plf.height bimodal);
        Alcotest.(check (float 1e-9)) "bimodal core center" 2.0
          (Plf.core_center bimodal));
    tc "Plf validation" `Quick (fun () ->
        let bad pts =
          try ignore (Fuzzy.Plf.of_breakpoints pts); false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "empty" true (bad []);
        Alcotest.(check bool) "non-increasing" true (bad [ (1., 0.5); (1., 0.6) ]);
        Alcotest.(check bool) "ordinate > 1" true (bad [ (0., 1.5) ]);
        Alcotest.(check bool) "all zero" true (bad [ (0., 0.); (1., 0.) ]));
    tc "Plf transforms" `Quick (fun () ->
        let open Fuzzy in
        let p = Plf.of_breakpoints [ (0., 0.); (1., 1.); (2., 0.) ] in
        let shifted = Plf.shift_x p 10.0 in
        Test_util.check_degree "shift" 1.0 (Plf.mem shifted 11.0);
        let scaled = Plf.scale_x p 2.0 in
        Test_util.check_degree "scale" 1.0 (Plf.mem scaled 2.0);
        let mirrored = Plf.scale_x p (-1.0) in
        Test_util.check_degree "mirror" 1.0 (Plf.mem mirrored (-1.0));
        (* exact hedge: power of the bimodal profile *)
        let very = Plf.power p 2.0 in
        Test_util.check_degree "power at peak" 1.0 (Plf.mem very 1.0);
        Alcotest.(check bool) "power between" true (Plf.mem very 0.5 < 0.5 +. 1e-9));
  ]

(* ---------- linguistic hedges ---------- *)

let hedge_tests =
  [
    tc "very / somewhat on trapezoids preserve the core" `Quick (fun () ->
        let open Fuzzy in
        let young = Trapezoid.make 16. 18. 25. 30. in
        let very = Hedge.apply Hedge.Very (Possibility.trap young) in
        let somewhat = Hedge.apply Hedge.Somewhat (Possibility.trap young) in
        (match very with
        | Possibility.Trap t ->
            Test_util.(Alcotest.check interval) "core unchanged"
              (Trapezoid.core young) (Trapezoid.core t);
            Test_util.(Alcotest.check interval) "support tightened"
              (Interval.make 17. 27.5) (Trapezoid.support t)
        | _ -> Alcotest.fail "very shape");
        match somewhat with
        | Possibility.Trap t ->
            Test_util.(Alcotest.check interval) "support widened"
              (Interval.make 14. 35.) (Trapezoid.support t)
        | _ -> Alcotest.fail "somewhat shape");
    tc "discrete hedges are exact powers" `Quick (fun () ->
        let open Fuzzy in
        let d = Possibility.discrete [ (1.0, 0.5); (2.0, 1.0) ] in
        (match Hedge.apply Hedge.Very d with
        | Possibility.Discrete [ (1.0, 0.25); (2.0, 1.0) ] -> ()
        | p -> Alcotest.failf "very: %a" Possibility.pp p);
        match Hedge.apply Hedge.Somewhat d with
        | Possibility.Discrete [ (1.0, x); (2.0, 1.0) ] ->
            Alcotest.(check (float 1e-9)) "sqrt" (Float.sqrt 0.5) x
        | p -> Alcotest.failf "somewhat: %a" Possibility.pp p);
    tc "hedge-aware lookup, stacking, and precedence" `Quick (fun () ->
        let open Fuzzy in
        Alcotest.(check bool) "very young resolves" true
          (Hedge.lookup Term.paper "very young" <> None);
        Alcotest.(check bool) "very very young stacks" true
          (Hedge.lookup Term.paper "VERY very young" <> None);
        Alcotest.(check bool) "unknown base fails" true
          (Hedge.lookup Term.paper "very ancient" = None);
        (* an exact dictionary entry wins over hedge decomposition *)
        let t = Term.register Term.paper "very young" (Possibility.crisp 1.0) in
        match Hedge.lookup t "very young" with
        | Some p -> Alcotest.(check bool) "exact entry wins" true (Possibility.is_crisp p)
        | None -> Alcotest.fail "lookup");
    tc "hedged terms work end-to-end in SQL" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q =
          Test_util.bind_paper_query env
            "SELECT F.NAME FROM F WHERE F.AGE = 'very medium young'"
        in
        let naive, nl, merged = Test_util.run_all_strategies q in
        Test_util.check_same_answer "nl" naive nl;
        Test_util.check_same_answer "merge" naive merged;
        (* the hedged predicate is at most as satisfied as the bare one *)
        let bare =
          Unnest.Planner.run
            (Test_util.bind_paper_query env
               "SELECT F.NAME FROM F WHERE F.AGE = 'medium young'")
        in
        let degree_of rel name =
          List.fold_left
            (fun acc (vs, d) ->
              match vs.(0) with Value.Str n when n = name -> Float.max acc d | _ -> acc)
            0.0
            (Test_util.answer_of_relation rel)
        in
        List.iter
          (fun n ->
            Alcotest.(check bool)
              (n ^ ": hedged <= bare")
              true
              (degree_of naive n <= degree_of bare n +. 1e-9))
          [ "Ann"; "Betty"; "Cathy" ]);
  ]

(* ---------- histograms ---------- *)

let histogram_tests =
  [
    tc "selectivity and join estimates are sane" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let spec = { Workload.Gen.default_spec with n = 600; groups = 30 } in
        let r, s = Workload.Gen.join_pair env ~seed:5 ~outer:spec ~inner:spec in
        let hr = Histogram.build r ~attr:1 and hs = Histogram.build s ~attr:1 in
        Alcotest.(check int) "cardinality" 600 (Histogram.cardinality hr);
        Alcotest.(check bool) "avg width positive" true
          (Histogram.avg_support_width hr > 0.0);
        let est = Histogram.estimate_eq_join hr hs in
        (* true match count = n * n / groups = 12000; the estimate should at
           least land within an order of magnitude *)
        Alcotest.(check bool)
          (Printf.sprintf "join estimate %.0f in [1200, 120000]" est)
          true
          (est > 1200.0 && est < 120000.0);
        let sel =
          Histogram.estimate_eq_selectivity hr
            (Fuzzy.Possibility.about 0.0 ~spread:30.0)
        in
        Alcotest.(check bool) "selectivity in [0,1]" true (sel >= 0.0 && sel <= 1.0));
    tc "empty relation histogram" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let schema = Workload.Gen.schema ~name:"E" in
        let e = Relation.of_list env schema [] in
        let h = Histogram.build e ~attr:1 in
        Alcotest.(check int) "cardinality 0" 0 (Histogram.cardinality h);
        Alcotest.(check (float 0.)) "join est 0" 0.0 (Histogram.estimate_eq_join h h));
  ]

(* ---------- chain order DP ---------- *)

let chain_catalog env ~n1 ~n2 ~n3 =
  let catalog = Catalog.create env in
  let spec n g = { Workload.Gen.default_spec with n; groups = g } in
  let add name s seed =
    let rel = Workload.Gen.relation env ~seed ~name (s : Workload.Gen.spec) in
    Catalog.add catalog rel
  in
  add "R" (spec n1 (Int.max 1 (n1 / 4))) 11;
  add "S" (spec n2 (Int.max 1 (n2 / 4))) 12;
  add "T" (spec n3 (Int.max 1 (n3 / 4))) 13;
  catalog

let chain_sql =
  "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W AND \
   S.X IN (SELECT T.X FROM T WHERE T.W >= S.W))"

let chain_tests =
  [
    tc "DP order evaluates to the same answer as left-to-right" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = chain_catalog env ~n1:40 ~n2:40 ~n3:40 in
        let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper chain_sql in
        let with_dp = Unnest.Planner.run ~chain_dp:true q in
        let without = Unnest.Planner.run ~chain_dp:false q in
        let naive = Unnest.Planner.run ~strategy:Unnest.Planner.Naive q in
        Test_util.check_same_answer "dp vs fixed" with_dp without;
        Test_util.check_same_answer "dp vs naive" with_dp naive);
    tc "every adjacent-growth order is valid and equivalent" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = chain_catalog env ~n1:25 ~n2:25 ~n3:25 in
        let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper chain_sql in
        match Unnest.Classify.classify q with
        | Unnest.Classify.Chain_query chain ->
            let reference = Unnest.Planner.run ~strategy:Unnest.Planner.Naive q in
            List.iter
              (fun (start, steps) ->
                let order =
                  { Unnest.Chain_order.start; steps; estimated_cost = nan }
                in
                let r = Unnest.Merge_exec.run_chain ~order chain ~mem_pages:16 in
                Test_util.check_same_answer
                  (Printf.sprintf "order starting at %d" start)
                  reference r)
              [ (0, [ 1; 2 ]); (1, [ 0; 2 ]); (1, [ 2; 0 ]); (2, [ 1; 0 ]) ]
        | other ->
            Alcotest.failf "expected a chain, got %s" (Unnest.Classify.to_string other));
    tc "non-adjacent order step is rejected" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = chain_catalog env ~n1:5 ~n2:5 ~n3:5 in
        let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper chain_sql in
        match Unnest.Classify.classify q with
        | Unnest.Classify.Chain_query chain ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore
                   (Unnest.Merge_exec.run_chain
                      ~order:{ Unnest.Chain_order.start = 0; steps = [ 2; 1 ];
                               estimated_cost = nan }
                      chain ~mem_pages:16);
                 false
               with Invalid_argument _ -> true)
        | _ -> Alcotest.fail "expected a chain");
    tc "DP prefers starting from the small end" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        (* Block sizes 200 - 200 - 5: joining T (tiny) early shrinks every
           intermediate; the DP should not start by joining R with S. *)
        let catalog = chain_catalog env ~n1:200 ~n2:200 ~n3:5 in
        let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper chain_sql in
        match Unnest.Classify.classify q with
        | Unnest.Classify.Chain_query chain ->
            let order = Unnest.Chain_order.plan chain in
            Alcotest.(check bool) "cost is finite" true
              (Float.is_finite order.Unnest.Chain_order.estimated_cost);
            let lr = Unnest.Chain_order.left_to_right 3 in
            ignore lr;
            (* The chosen order must involve block 2 before the expensive
               R-S join, i.e. not be plain left-to-right. *)
            Alcotest.(check bool) "not left-to-right" true
              (order.Unnest.Chain_order.start <> 0
              || order.Unnest.Chain_order.steps <> [ 1; 2 ])
        | _ -> Alcotest.fail "expected a chain");
  ]

(* ---------- explain ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let explain_tests =
  [
    tc "explain mentions shape, sweep, and estimates" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q =
          Test_util.bind_paper_query env
            "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M \
             WHERE M.AGE = F.AGE) WITH D >= 0.5"
        in
        let text = Unnest.Explain.explain q in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("mentions " ^ needle) true (contains text needle))
          [ "type J"; "merge-join"; "Definition 3.1"; "estimates"; "WITH D >= 0.5" ]);
    tc "explain shows the chain order" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = chain_catalog env ~n1:20 ~n2:20 ~n3:20 in
        let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper chain_sql in
        let text = Unnest.Explain.explain q in
        Alcotest.(check bool) "mentions DP" true (contains text "join order");
        Alcotest.(check bool) "mentions Theorem 8.1" true (contains text "Theorem 8.1"));
    tc "explain for flat and general shapes" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let flat = Test_util.bind_paper_query env "SELECT F.NAME FROM F" in
        Alcotest.(check bool) "flat" true
          (contains (Unnest.Explain.explain flat) "direct evaluation");
        let general =
          Test_util.bind_paper_query env
            "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE FROM M) AND \
             F.INCOME IN (SELECT M.INCOME FROM M)"
        in
        Alcotest.(check bool) "general" true
          (contains (Unnest.Explain.explain general) "naive interpreter"));
  ]

(* ---------- band / interval joins ---------- *)

let band_schema name = Schema.make ~name [ ("ID", Schema.TNum); ("X", Schema.TNum) ]

let crisp_rel env name xs =
  Relation.of_list env (band_schema name)
    (List.mapi (fun i x -> Test_util.tuple [ Value.Int i; Value.crisp_num x ] 1.0) xs)

let band_tests =
  [
    tc "band join equals the brute-force band predicate" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let rng = Random.State.make [| 99 |] in
        let xs () = List.init 60 (fun _ -> Random.State.float rng 100.0) in
        let r_xs = xs () and s_xs = xs () in
        let r = crisp_rel env "R" r_xs and s = crisp_rel env "S" s_xs in
        let c1 = 3.0 and c2 = 7.0 in
        let joined =
          Join_band.band_join ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
            ~mem_pages:8 ~c1 ~c2 ()
        in
        let expected =
          List.fold_left
            (fun acc rx ->
              acc
              + List.length
                  (List.filter (fun sx -> rx -. c1 <= sx && sx <= rx +. c2) s_xs))
            0 r_xs
        in
        Alcotest.(check int) "pair count" expected (Relation.cardinality joined);
        Alcotest.(check int) "schema keeps only original attrs" 4
          (Schema.arity (Relation.schema joined)));
    tc "interval join = support overlap" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let itv lo hi =
          Value.Fuzzy (Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make lo lo hi hi))
        in
        let rel name rows =
          Relation.of_list env (band_schema name)
            (List.mapi (fun i (lo, hi) -> Test_util.tuple [ Value.Int i; itv lo hi ] 1.0) rows)
        in
        let r = rel "R" [ (0., 10.); (20., 30.); (35., 40.) ] in
        let s = rel "S" [ (5., 8.); (9., 22.); (50., 60.) ] in
        (* overlaps: r0-s0, r0-s1, r1-s1 *)
        let joined =
          Join_band.interval_join ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
            ~mem_pages:8 ()
        in
        Alcotest.(check int) "three overlaps" 3 (Relation.cardinality joined));
    tc "negative band rejected" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = crisp_rel env "R" [ 1.0 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Join_band.band_join ~outer:r ~inner:r ~outer_attr:1 ~inner_attr:1
                  ~mem_pages:8 ~c1:(-1.0) ~c2:0.0 ());
             false
           with Invalid_argument _ -> true));
  ]

(* ---------- persistence ---------- *)

let persist_tests =
  [
    tc "save / load roundtrip preserves schema, tuples, degrees" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = Test_util.paper_db env in
        let f = Option.get (Catalog.find catalog "F") in
        let path = Filename.temp_file "frepro" ".frel" in
        Persist.save f ~path;
        let env2 = Test_util.fresh_env () in
        let f2 = Persist.load env2 ~path in
        Sys.remove path;
        Alcotest.(check string) "schema name" "F" (Schema.name (Relation.schema f2));
        Test_util.check_same_answer "tuples" f f2);
    tc "catalog roundtrip through a directory" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = Test_util.paper_db env in
        let dir = Filename.temp_file "frepro" ".d" in
        Sys.remove dir;
        Persist.save_catalog catalog ~dir;
        let env2 = Test_util.fresh_env () in
        let catalog2 = Persist.load_catalog env2 ~dir in
        Alcotest.(check (list string)) "names" (Catalog.names catalog)
          (Catalog.names catalog2);
        (* loaded catalog answers the paper query identically *)
        let q sql c = Fuzzysql.Analyzer.bind_string ~catalog:c ~terms:Fuzzy.Term.paper sql in
        let sql =
          "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
           (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
        in
        Test_util.check_same_answer "same answers"
          (Unnest.Planner.run (q sql catalog))
          (Unnest.Planner.run (q sql catalog2));
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir);
    tc "bad magic rejected" `Quick (fun () ->
        let path = Filename.temp_file "frepro" ".frel" in
        let oc = open_out path in
        output_string oc "NOT A RELATION FILE AT ALL";
        close_out oc;
        let env = Test_util.fresh_env () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Persist.load env ~path);
             false
           with Persist.Format_error _ -> true);
        Sys.remove path);
  ]

(* ---------- outer-block flattening and paper-notation rewrites ---------- *)

let flatten_tests =
  [
    tc "flatten turns a multi-FROM outer block into type J" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = Test_util.paper_db env in
        let q =
          Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
            "SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE AND F.INCOME \
             IN (SELECT G.INCOME FROM M G WHERE G.AGE = M.AGE)"
        in
        Alcotest.(check string) "general before" "general nested"
          (Unnest.Classify.to_string (Unnest.Classify.classify q));
        match Unnest.Flatten.flatten_outer q with
        | None -> Alcotest.fail "flatten should apply"
        | Some q' ->
            Alcotest.(check string) "type J after" "type J"
              (Unnest.Classify.to_string (Unnest.Classify.classify q'));
            Alcotest.(check int) "single FROM" 1 (List.length q'.Fuzzysql.Bound.from);
            (* equivalence against naive evaluation of the original *)
            Test_util.check_same_answer "flattened = naive"
              (Unnest.Planner.run q)
              (Unnest.Planner.run ~strategy:Unnest.Planner.Naive q));
    tc "flatten declines when it cannot apply" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let catalog = Test_util.paper_db env in
        let bind sql = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
        Alcotest.(check bool) "single FROM" true
          (Unnest.Flatten.flatten_outer
             (bind "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M)")
          = None);
        Alcotest.(check bool) "two subqueries" true
          (Unnest.Flatten.flatten_outer
             (bind
                "SELECT F.NAME FROM F, M WHERE F.AGE IN (SELECT M.AGE FROM M) \
                 AND F.INCOME IN (SELECT M.INCOME FROM M)")
          = None));
    tc "rewrite_sql prints the paper's flat forms" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let shape sql =
          match
            Unnest.Classify.classify (Test_util.bind_paper_query env sql)
          with
          | Unnest.Classify.Two_level t -> Unnest.Rewrite_sql.two_level t
          | s -> Alcotest.failf "not two-level: %s" (Unnest.Classify.to_string s)
        in
        let j =
          shape "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)"
        in
        Alcotest.(check bool) "J' is a flat join" true (contains j "FROM F, M");
        let jx =
          shape "SELECT F.NAME FROM F WHERE F.INCOME NOT IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)"
        in
        Alcotest.(check bool) "JX' has the grouped MIN(D)" true (contains jx "MIN(D)");
        Alcotest.(check bool) "JX' negates the join" true (contains jx "NOT(");
        let ja =
          shape "SELECT F.NAME FROM F WHERE F.INCOME >= (SELECT COUNT(M.INCOME) FROM M WHERE M.AGE = F.AGE)"
        in
        Alcotest.(check bool) "COUNT' uses the outer join bracket" true
          (contains ja "+= T2.U"));
  ]

(* ---------- threshold pushdown specifics ---------- *)

let pushdown_tests =
  [
    tc "cannot_pass respects strictness" `Quick (fun () ->
        let mk strict value = Some { Fuzzysql.Ast.strict; value } in
        Alcotest.(check bool) "no threshold" false
          (Unnest.Pushdown.cannot_pass None 0.0);
        Alcotest.(check bool) ">= z keeps z" false
          (Unnest.Pushdown.cannot_pass (mk false 0.5) 0.5);
        Alcotest.(check bool) "> z drops z" true
          (Unnest.Pushdown.cannot_pass (mk true 0.5) 0.5);
        Alcotest.(check bool) "below drops" true
          (Unnest.Pushdown.cannot_pass (mk false 0.5) 0.4));
    tc "inner pruning is disabled for min-combining links" `Quick (fun () ->
        let corrless = [] in
        Alcotest.(check bool) "IN prunable" true
          (Unnest.Pushdown.inner_prunable
             (Unnest.Classify.In_link { y = 0; z = 0; corr = corrless }));
        Alcotest.(check bool) "NOT IN not prunable" false
          (Unnest.Pushdown.inner_prunable
             (Unnest.Classify.Not_in_link { y = 0; z = 0; corr = corrless }));
        Alcotest.(check bool) "ALL not prunable" false
          (Unnest.Pushdown.inner_prunable
             (Unnest.Classify.Quant_link
                { y = 0; op = Fuzzy.Fuzzy_compare.Lt; quant = Fuzzysql.Ast.All;
                  z = 0; corr = corrless }));
        Alcotest.(check bool) "aggregate not prunable" false
          (Unnest.Pushdown.inner_prunable
             (Unnest.Classify.Agg_link
                { y = 0; op1 = Fuzzy.Fuzzy_compare.Gt;
                  agg = Aggregate.Sum; z = 0; corr = corrless })));
  ]

let suites =
  [
    ( "ext.necessity",
      [ nec_hand_cases; QCheck_alcotest.to_alcotest nec_leq_poss ] );
    ("ext.hedges", hedge_tests);
    ("ext.plf", List.map QCheck_alcotest.to_alcotest plf_props @ plf_tests);
    ("ext.histogram", histogram_tests);
    ("ext.chain_order", chain_tests);
    ("ext.explain", explain_tests);
    ("ext.band_join", band_tests);
    ("ext.persist", persist_tests);
    ("ext.flatten", flatten_tests);
    ("ext.pushdown", pushdown_tests);
  ]
