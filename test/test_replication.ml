(** Tests of WAL-shipped replication (PR 10): the storage-level shipping
    primitives ({!Frepro.Storage.Wal_stream}), the sender/replica pair
    over a real localhost socket, epoch fencing in both directions,
    promotion, the rev-3 wire frames, and the byte-for-byte rev-2
    interop guarantee. *)

open Frepro.Storage
open Frepro.Relational
module Server = Frepro.Server
module Replication = Server.Replication

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "frepro-rep-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_dir2 f = with_dir (fun a -> with_dir (fun b -> f a b))

(* ------------------------------------------------------------------ *)
(* Workload helpers *)

let schema = Schema.make ~name:"K" [ ("ID", Schema.TNum); ("X", Schema.TNum) ]

let tup i x d =
  Ftuple.make [| Value.Int i; Value.crisp_num (float_of_int x) |] d

let batch ~seed ~start n =
  let rng = Random.State.make [| 0xEE1; seed |] in
  List.init n (fun k ->
      tup (start + k)
        (Random.State.int rng 1000)
        (0.125 *. float_of_int (1 + ((start + k + seed) mod 8))))

let raw_records rel =
  List.rev
    (Frepro.Storage.Heap_file.fold (Relation.file rel) ~init:[]
       ~f:(fun acc r -> r :: acc))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let open_primary dir =
  Env.open_durable ~dir ~page_size:512 ~pool_pages:256 ~wal_sync:Wal.Always ()

(* ------------------------------------------------------------------ *)
(* Wal_stream: cursor, tail, appender, committed_state *)

let wal_stream_tests =
  [
    tc "cursor reads the live log byte-identically and detects rotation"
      `Quick (fun () ->
        with_dir (fun dir ->
            let env = open_primary dir in
            let rel = Relation.create ~durable:true env schema in
            List.iter (Relation.insert rel) (batch ~seed:1 ~start:0 25);
            Env.commit env;
            let wal = Option.get (Env.wal env) in
            let e = Wal.committed_end wal in
            let cur =
              Wal_stream.Cursor.open_at ~path:(Wal.path wal)
                ~pos:Wal.header_size
            in
            let buf = Buffer.create 256 in
            let rec pump () =
              (* Tiny [max] exercises the positioned-read loop. *)
              let b = Wal_stream.Cursor.read cur ~upto:e ~max:97 in
              if Bytes.length b > 0 then begin
                Buffer.add_bytes buf b;
                pump ()
              end
            in
            pump ();
            let whole = read_file (Wal.path wal) in
            Alcotest.(check string)
              "cursor bytes = file bytes [header, committed_end)"
              (String.sub whole Wal.header_size (e - Wal.header_size))
              (Buffer.contents buf);
            Alcotest.(check int) "cursor position" e
              (Wal_stream.Cursor.pos cur);
            Alcotest.(check bool) "not rotated yet" false
              (Wal_stream.Cursor.rotated cur);
            (* Checkpoint rewrites the log via tmp+rename: same path, new
               inode — the cursor must notice. *)
            Env.flush env;
            Wal.checkpoint wal;
            Alcotest.(check bool) "rotation detected" true
              (Wal_stream.Cursor.rotated cur);
            Wal_stream.Cursor.reopen cur ~pos:Wal.header_size;
            Alcotest.(check bool) "reopen follows the new inode" false
              (Wal_stream.Cursor.rotated cur);
            Wal_stream.Cursor.close cur;
            Env.close env));
    tc "tail releases commit-bounded prefixes; appender preserves bytes"
      `Quick (fun () ->
        with_dir2 (fun a b ->
            let env = open_primary a in
            let rel = Relation.create ~durable:true env schema in
            List.iter (Relation.insert rel) (batch ~seed:2 ~start:0 9);
            Env.commit env;
            List.iter (Relation.insert rel) (batch ~seed:3 ~start:9 14);
            Env.commit env;
            let wal = Option.get (Env.wal env) in
            let e = Wal.committed_end wal in
            let whole = read_file (Wal.path wal) in
            let shipped = String.sub whole Wal.header_size (e - Wal.header_size) in
            (* Feed in 7-byte pieces plus a trailing partial frame that
               must stay buffered, draining after every feed. *)
            let tail = Wal_stream.Tail.create ~start_lsn:Wal.header_size in
            let out = Buffer.create 256 in
            let commits = ref 0 and last_end = ref Wal.header_size in
            let drain () =
              match Wal_stream.Tail.drain tail with
              | Error m -> Alcotest.fail ("tail rejected valid bytes: " ^ m)
              | Ok None -> ()
              | Ok (Some d) ->
                  Buffer.add_bytes out d.Wal_stream.Tail.bytes;
                  last_end := d.Wal_stream.Tail.new_end;
                  List.iter
                    (fun (_, r) ->
                      match r with
                      | Wal.Commit -> incr commits
                      | _ -> ())
                    d.Wal_stream.Tail.records
            in
            let n = String.length shipped in
            let i = ref 0 in
            while !i < n do
              let k = min 7 (n - !i) in
              Wal_stream.Tail.feed tail (Bytes.of_string (String.sub shipped !i k));
              drain ();
              i := !i + k
            done;
            (* A partial frame beyond the last commit stays buffered. *)
            Wal_stream.Tail.feed tail (Bytes.of_string "\x40\x00\x00\x00\x05");
            drain ();
            Alcotest.(check int) "drained exactly to committed_end" e !last_end;
            Alcotest.(check int) "next wanted byte = committed_end + partial" (e + 5)
              (Wal_stream.Tail.expected tail);
            Alcotest.(check string) "drained bytes verbatim" shipped
              (Buffer.contents out);
            Alcotest.(check int) "both commit boundaries seen" 2 !commits;
            (* Append the drained bytes behind a copied header: the
               replica-side file must re-validate with the identical
               committed state. *)
            let rpath = Filename.concat b "wal.fsql" in
            (try Unix.mkdir b 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let fd =
              Unix.openfile rpath [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
            in
            let hdr = Bytes.of_string (String.sub whole 0 Wal.header_size) in
            assert (Unix.write fd hdr 0 Wal.header_size = Wal.header_size);
            Unix.close fd;
            let ap = Wal_stream.Appender.open_at ~path:rpath in
            Alcotest.(check int) "appender starts at header" Wal.header_size
              (Wal_stream.Appender.end_lsn ap);
            Wal_stream.Appender.append ap (Buffer.to_bytes out);
            Wal_stream.Appender.fsync ap;
            Wal_stream.Appender.close ap;
            (match Wal_stream.committed_state ~path:rpath with
            | Ok (ce, ep) ->
                Alcotest.(check int) "replayed committed_end" e ce;
                Alcotest.(check int) "epoch (never promoted)" 0 ep
            | Error m -> Alcotest.fail m);
            Alcotest.(check string) "file prefix byte-identical"
              (String.sub whole 0 e) (read_file rpath);
            Env.close env));
    tc "committed_state: torn tails and uncommitted epochs do not bind"
      `Quick (fun () ->
        with_dir (fun dir ->
            let env = open_primary dir in
            let rel = Relation.create ~durable:true env schema in
            List.iter (Relation.insert rel) (batch ~seed:4 ~start:0 12);
            Env.commit env;
            let wal = Option.get (Env.wal env) in
            let e = Wal.committed_end wal in
            let path = Wal.path wal in
            (* An epoch record with no commit point after it... *)
            Wal.log_epoch wal 5;
            Env.crash env;
            (* ...plus garbage appended by a dying process. *)
            let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
            let junk = Bytes.of_string "\xde\xad\xbe\xef\x00\x17" in
            assert (Unix.write fd junk 0 (Bytes.length junk) = Bytes.length junk);
            Unix.close fd;
            (match Wal_stream.committed_state ~path with
            | Ok (ce, ep) ->
                Alcotest.(check int) "boundary unmoved" e ce;
                Alcotest.(check int) "uncommitted epoch invisible" 0 ep
            | Error m -> Alcotest.fail m);
            (* Once a commit point covers it, the epoch binds. *)
            let env2 = Env.open_durable ~dir () in
            let wal2 = Option.get (Env.wal env2) in
            Wal.log_epoch wal2 5;
            Wal.commit wal2;
            Env.crash env2;
            (match Wal_stream.committed_state ~path with
            | Ok (_, ep) -> Alcotest.(check int) "committed epoch binds" 5 ep
            | Error m -> Alcotest.fail m)));
  ]

(* ------------------------------------------------------------------ *)
(* Sender <-> Replica over localhost *)

let addr_of port = "127.0.0.1:" ^ string_of_int port

let e2e_tests =
  [
    tc "replica catch-up is byte-identical; semi-sync ack; lag books"
      `Quick (fun () ->
        with_dir2 (fun pdir rdir ->
            let env = open_primary pdir in
            let rel = Relation.create ~durable:true env schema in
            List.iter (Relation.insert rel) (batch ~seed:7 ~start:0 30);
            Env.commit env;
            let sender = Replication.Sender.create ~env in
            let port = Replication.Sender.listen ~port:0 sender in
            let replica =
              Replication.Replica.create ~dir:rdir ~primary:(addr_of port) ()
            in
            Replication.Replica.start replica;
            Alcotest.(check bool) "initial catch-up (snapshot + tail)" true
              (Replication.Replica.wait_synced ~timeout_s:30.0 replica);
            Alcotest.(check int) "one snapshot served" 1
              (Replication.Sender.snapshots_sent sender);
            (* Live tail: a batch committed after sync must flow through
               and be acked (the semi-sync primitive). *)
            List.iter (Relation.insert rel) (batch ~seed:8 ~start:30 21);
            Env.commit env;
            let wal = Option.get (Env.wal env) in
            let lsn = Wal.committed_end wal in
            Alcotest.(check bool) "wait_applied observes the ack" true
              (Replication.Sender.wait_applied sender ~lsn ~timeout_s:30.0);
            Alcotest.(check int) "replica applied through the commit" lsn
              (Replication.Replica.applied_lsn replica);
            Alcotest.(check int) "caught-up sender shows zero lag" 0
              (Replication.Sender.lag_bytes sender);
            Alcotest.(check int) "one subscriber" 1
              (Replication.Sender.connected sender);
            Alcotest.(check bool) "replica staleness is finite and small" true
              (Replication.Replica.stale_ms replica < 10_000.0);
            let expected = raw_records rel in
            Replication.Replica.stop replica;
            Replication.Sender.stop sender;
            Env.crash env;
            (* Byte identity: the replica's log is exactly the primary's
               committed prefix — nothing more, nothing less. *)
            let pwal = read_file (Recovery.wal_path_of pdir) in
            let rwal = read_file (Recovery.wal_path_of rdir) in
            Alcotest.(check int) "replica log ends at the last boundary" lsn
              (String.length rwal);
            Alcotest.(check string) "replica log = primary committed prefix"
              (String.sub pwal 0 lsn) rwal;
            (* And the replicated relation is record-identical. *)
            let env2 = Env.open_durable ~dir:rdir ~readonly:true () in
            (match Catalog.find (Catalog.load_durable env2) "K" with
            | Some rel2 ->
                Alcotest.(check (list bytes)) "records bit-identical" expected
                  (raw_records rel2)
            | None -> Alcotest.fail "replicated catalog lost K");
            Env.close env2));
    tc "promotion bumps and persists the epoch; idempotent; fences both ways"
      `Quick (fun () ->
        with_dir2 (fun pdir rdir ->
            let env = open_primary pdir in
            let rel = Relation.create ~durable:true env schema in
            List.iter (Relation.insert rel) (batch ~seed:9 ~start:0 15);
            Env.commit env;
            let sender = Replication.Sender.create ~env in
            Alcotest.(check int) "first use adopts epoch 1" 1
              (Replication.Sender.epoch sender);
            let port = Replication.Sender.listen ~port:0 sender in
            let replica =
              Replication.Replica.create ~dir:rdir ~primary:(addr_of port) ()
            in
            Replication.Replica.start replica;
            Alcotest.(check bool) "synced" true
              (Replication.Replica.wait_synced ~timeout_s:30.0 replica);
            (* The primary dies. *)
            Replication.Sender.stop sender;
            Env.crash env;
            let e = Replication.Replica.promote replica in
            Alcotest.(check int) "promotion lands on epoch 2" 2 e;
            Alcotest.(check int) "promote is idempotent" 2
              (Replication.Replica.promote replica);
            Alcotest.(check bool) "promoted replica is never stale" true
              (Replication.Replica.stale_ms replica = 0.0);
            Replication.Replica.stop replica;
            (* The bumped epoch is durable in the replica's log. *)
            (match
               Wal_stream.committed_state ~path:(Recovery.wal_path_of rdir)
             with
            | Ok (_, ep) -> Alcotest.(check int) "epoch persisted" 2 ep
            | Error m -> Alcotest.fail m);
            (* Fencing drill: a zombie sender on the dead primary's
               directory is still at epoch 1; the epoch-2 replica must
               reject its stream and the zombie must count the fence. *)
            let zombie = Replication.Sender.create_for_dir ~dir:pdir in
            Alcotest.(check int) "zombie still at epoch 1" 1
              (Replication.Sender.epoch zombie);
            let zport = Replication.Sender.listen ~port:0 zombie in
            let r2 =
              Replication.Replica.create ~dir:rdir ~primary:(addr_of zport) ()
            in
            Replication.Replica.start r2;
            let deadline = Unix.gettimeofday () +. 10.0 in
            while
              Replication.Replica.fenced_rejects r2 = 0
              && Unix.gettimeofday () < deadline
            do
              Thread.yield ();
              Unix.sleepf 0.01
            done;
            Replication.Replica.stop r2;
            Alcotest.(check bool) "replica rejected the stale stream" true
              (Replication.Replica.fenced_rejects r2 >= 1);
            Alcotest.(check bool) "zombie sender fenced the subscriber" true
              (Replication.Sender.fenced zombie >= 1);
            Replication.Sender.stop zombie));
  ]

(* ------------------------------------------------------------------ *)
(* Wire protocol: rev-3 frames and the rev-2 interop guarantee *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let roundtrip_request req =
  let r, w = Unix.pipe () in
  Server.Wire.write_request w req;
  let got = Server.Wire.read_request r in
  close_noerr w;
  close_noerr r;
  got

let roundtrip_reply reply =
  let r, w = Unix.pipe () in
  Server.Wire.write_reply w reply;
  let got = Server.Wire.read_reply r in
  close_noerr w;
  close_noerr r;
  got

(* Raw frame I/O, independent of the Wire codecs — what a foreign client
   implementation would do. *)
let raw_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let raw_str buf s =
  raw_u32 buf (String.length s);
  Buffer.add_string buf s

let raw_frame payload =
  let frame = Buffer.create 64 in
  raw_u32 frame (Buffer.length payload);
  Buffer.add_buffer frame payload;
  Buffer.contents frame

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k = Unix.read fd b off (n - off) in
      if k = 0 then failwith "peer closed mid-frame";
      go (off + k)
    end
  in
  go 0;
  b

let read_raw_frame fd =
  let hdr = read_exact fd 4 in
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  Bytes.to_string (read_exact fd len)

let wire_tests =
  [
    tc "rev-3 replication frames round-trip exactly" `Quick (fun () ->
        Alcotest.(check int) "protocol rev" 3 Server.Wire.protocol_rev;
        List.iter
          (fun req ->
            Alcotest.(check bool) "request" true (roundtrip_request req = req))
          [
            Server.Wire.Rep_subscribe
              { epoch = 3; stream_id = 0x123456789ABCL; from_lsn = 7781 };
            Server.Wire.Rep_subscribe
              { epoch = 0; stream_id = 0L; from_lsn = 0 };
            Server.Wire.Rep_ack { epoch = 2; applied_lsn = 1_048_583 };
            Server.Wire.Promote;
          ];
        List.iter
          (fun reply ->
            Alcotest.(check bool) "reply" true (roundtrip_reply reply = reply))
          [
            Server.Wire.Rep_hello
              {
                epoch = 2;
                stream_id = Int64.max_int;
                page_size = 8192;
                snapshot = true;
                start_lsn = 4096;
                data_len = 123_456;
              };
            Server.Wire.Rep_chunk
              {
                kind = Server.Wire.Data_chunk;
                off = 0;
                data = "\x00\x01\xff binary \n bytes\x00";
              };
            Server.Wire.Rep_chunk
              { kind = Server.Wire.Wal_chunk; off = 65_536; data = "" };
            Server.Wire.Rep_wal
              { epoch = 1; start_lsn = 8; primary_end = 99; data = "\xca\xfe" };
            (* empty data = heartbeat *)
            Server.Wire.Rep_wal
              { epoch = 1; start_lsn = 99; primary_end = 99; data = "" };
            Server.Wire.Rep_fence { epoch = 7 };
            Server.Wire.Promoted { epoch = 2 };
          ]);
    tc "rev-2 client / rev-3 daemon: byte-for-byte interop" `Quick (fun () ->
        (* A rev-2 client's Query frame, crafted byte by byte: tag 'q',
           request ID, deadline, domains, SQL — exactly as PR 7 shipped
           it. The rev-3 daemon must serve it, answer only with rev-2
           reply tags, and the rev-3 encoder must still emit the
           identical bytes for the same request. *)
        let sql =
          "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= 20)"
        in
        let rid = "deadbeef01234567" in
        let payload = Buffer.create 64 in
        Buffer.add_char payload 'q';
        raw_str payload rid;
        raw_u32 payload 10_000;
        raw_u32 payload 0;
        raw_str payload sql;
        let raw = raw_frame payload in
        (* Byte identity of the rev-3 encoder on a rev-2 frame. *)
        let r, w = Unix.pipe () in
        Server.Wire.write_request w
          (Server.Wire.Query
             { request_id = rid; deadline_ms = 10_000; domains = 0; sql });
        let reencoded =
          Bytes.to_string (read_exact r (String.length raw))
        in
        close_noerr w;
        close_noerr r;
        Alcotest.(check string) "rev-3 encoding of a rev-2 query" raw reencoded;
        (* Serve it. *)
        let daemon =
          Server.Daemon.start ~workers:1
            ~setup:(Server.Demo.server_setup ~seed:11 ())
            ()
        in
        Fun.protect
          ~finally:(fun () -> Server.Daemon.stop daemon)
          (fun () ->
            let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () -> close_noerr sock)
              (fun () ->
                Unix.connect sock
                  (Unix.ADDR_INET
                     (Unix.inet_addr_loopback, Server.Daemon.port daemon));
                write_all sock raw;
                let rev2_reply_tags = [ 'H'; 'R'; 'D'; 'E'; 'T'; 'O'; 'S'; 'C' ] in
                let rows = ref 0 and header = ref false and fin = ref false in
                while not !fin do
                  let frame = read_raw_frame sock in
                  let tag = frame.[0] in
                  Alcotest.(check bool)
                    (Printf.sprintf "reply tag %C is a rev-2 tag" tag)
                    true
                    (List.mem tag rev2_reply_tags);
                  match tag with
                  | 'H' -> header := true
                  | 'R' -> incr rows
                  | 'D' -> fin := true
                  | t ->
                      Alcotest.fail
                        (Printf.sprintf "unexpected terminal %C" t)
                done;
                Alcotest.(check bool) "header arrived" true !header;
                Alcotest.(check bool) "rows arrived" true (!rows > 0);
                (* A rev-2 Metrics frame on the same connection. *)
                let m = Buffer.create 4 in
                Buffer.add_char m 'M';
                write_all sock (raw_frame m);
                let frame = read_raw_frame sock in
                Alcotest.(check char) "metrics answered with rev-2 'J'" 'J'
                  frame.[0])));
    tc "Client.connect honours the connect deadline" `Quick (fun () ->
        (* A listener whose accept queue is saturated drops further SYNs,
           so a fresh connect hangs in retransmission — exactly the
           blackholed-primary case the applier's reconnect path hits. *)
        let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt srv Unix.SO_REUSEADDR true;
        Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen srv 1;
        let port =
          match Unix.getsockname srv with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        let stuffers =
          List.init 8 (fun _ ->
              let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.set_nonblock c;
              (try
                 Unix.connect c
                   (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
               with
              | Unix.Unix_error
                  ( (Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN),
                    _,
                    _ ) ->
                  ());
              c)
        in
        Unix.sleepf 0.05;
        let t0 = Unix.gettimeofday () in
        let timed_out =
          try
            let c = Server.Client.connect ~timeout_ms:300 ~port () in
            Server.Client.close c;
            false
          with Server.Client.Connect_timeout -> true
        in
        let dt = Unix.gettimeofday () -. t0 in
        List.iter close_noerr stuffers;
        close_noerr srv;
        Alcotest.(check bool) "raised Connect_timeout" true timed_out;
        Alcotest.(check bool) "within a bounded window" true
          (dt >= 0.25 && dt < 3.0));
  ]

let suites =
  [
    ("replication.wal-stream", wal_stream_tests);
    ("replication.e2e", e2e_tests);
    ("replication.wire", wire_tests);
  ]
