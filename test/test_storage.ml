(** Tests of the storage substrate: simulated disk, buffer pool, heap files,
    external sort, and the I/O statistics they feed. *)

open Frepro.Storage

let tc = Alcotest.test_case

let disk_tests =
  [
    tc "read/write roundtrip counts I/O" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create ~page_size:64 stats in
        let p = Sim_disk.alloc disk in
        let buf = Bytes.make 64 'x' in
        Sim_disk.write disk p buf;
        let back = Sim_disk.read disk p in
        Alcotest.(check bytes) "contents" buf back;
        Alcotest.(check int) "reads" 1 (Iostats.page_reads stats);
        Alcotest.(check int) "writes" 1 (Iostats.page_writes stats));
    tc "alloc zeroes reused pages" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create ~page_size:16 stats in
        let p = Sim_disk.alloc disk in
        Sim_disk.write disk p (Bytes.make 16 'z');
        Sim_disk.free disk [ p ];
        let p2 = Sim_disk.alloc disk in
        Alcotest.(check int) "page reused" p p2;
        Alcotest.(check bytes) "zeroed" (Bytes.make 16 '\000') (Sim_disk.read disk p2));
    tc "bad page id rejected with a typed error" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create stats in
        Alcotest.(check bool) "raises Bad_page with the offending id" true
          (try ignore (Sim_disk.read disk 42); false
           with Sim_disk.Bad_page { page = 42; num_pages = 0 } -> true));
  ]

let pool_tests =
  [
    tc "hits avoid disk reads" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create ~page_size:16 stats in
        let pool = Buffer_pool.create (Disk.sim disk) ~capacity:2 in
        let p = Sim_disk.alloc disk in
        ignore (Buffer_pool.read pool p);
        ignore (Buffer_pool.read pool p);
        Alcotest.(check int) "one miss" 1 (Iostats.page_reads stats);
        Alcotest.(check int) "one hit" 1 (Buffer_pool.hits pool));
    tc "LRU eviction writes dirty page back" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create ~page_size:16 stats in
        let pool = Buffer_pool.create (Disk.sim disk) ~capacity:1 in
        let p1 = Sim_disk.alloc disk and p2 = Sim_disk.alloc disk in
        Buffer_pool.with_write pool p1 (fun b -> Bytes.set b 0 'A');
        ignore (Buffer_pool.read pool p2) (* evicts dirty p1 *);
        Alcotest.(check int) "write-back happened" 1 (Iostats.page_writes stats);
        Buffer_pool.drop pool;
        Alcotest.(check char) "contents survived eviction" 'A'
          (Bytes.get (Sim_disk.read disk p1) 0));
    tc "pinned frames never evicted" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create ~page_size:16 stats in
        let pool = Buffer_pool.create (Disk.sim disk) ~capacity:1 in
        let p1 = Sim_disk.alloc disk and p2 = Sim_disk.alloc disk in
        Buffer_pool.pin pool p1;
        Alcotest.(check bool) "miss with all pinned fails" true
          (try ignore (Buffer_pool.read pool p2); false
           with Buffer_pool.All_frames_pinned { capacity = 1; _ } -> true);
        Buffer_pool.unpin pool p1;
        ignore (Buffer_pool.read pool p2));
    tc "sequential scan misses once per page" `Quick (fun () ->
        let stats = Iostats.create () in
        let disk = Sim_disk.create ~page_size:16 stats in
        let pool = Buffer_pool.create (Disk.sim disk) ~capacity:3 in
        let pages = List.init 10 (fun _ -> Sim_disk.alloc disk) in
        List.iter (fun p -> ignore (Buffer_pool.read pool p)) pages;
        Alcotest.(check int) "10 misses" 10 (Buffer_pool.misses pool));
  ]

let heap_tests =
  [
    tc "append / iter roundtrip across pages" `Quick (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:8 () in
        let f = Heap_file.create env in
        let records =
          List.init 50 (fun i -> Bytes.of_string (Printf.sprintf "rec-%03d" i))
        in
        List.iter (Heap_file.append f) records;
        Alcotest.(check int) "record count" 50 (Heap_file.num_records f);
        Alcotest.(check bool) "multiple pages" true (Heap_file.num_pages f > 1);
        let back = ref [] in
        Heap_file.iter f (fun r -> back := r :: !back);
        Alcotest.(check (list bytes)) "order preserved" records (List.rev !back));
    tc "oversized record rejected" `Quick (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:4 () in
        let f = Heap_file.create env in
        Alcotest.(check bool) "raises" true
          (try Heap_file.append f (Bytes.make 100 'x'); false
           with Invalid_argument _ -> true));
    tc "cursor peek/next/seek" `Quick (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:8 () in
        let f = Heap_file.create env in
        for i = 0 to 19 do
          Heap_file.append f (Bytes.of_string (Printf.sprintf "%02d" i))
        done;
        let c = Heap_file.Cursor.of_file f in
        Alcotest.(check (option bytes)) "peek first" (Some (Bytes.of_string "00"))
          (Heap_file.Cursor.peek c);
        ignore (Heap_file.Cursor.next c);
        Alcotest.(check int) "pos" 1 (Heap_file.Cursor.pos c);
        Heap_file.Cursor.seek c 15;
        Alcotest.(check (option bytes)) "after seek" (Some (Bytes.of_string "15"))
          (Heap_file.Cursor.next c);
        Heap_file.Cursor.seek c 20;
        Alcotest.(check (option bytes)) "end" None (Heap_file.Cursor.next c));
    tc "destroy returns pages for reuse" `Quick (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:8 () in
        let f = Heap_file.create env in
        for _ = 1 to 30 do Heap_file.append f (Bytes.make 20 'a') done;
        Buffer_pool.flush env.Env.pool;
        let used_before = Disk.num_pages env.Env.disk in
        Heap_file.destroy f;
        let g = Heap_file.create env in
        for _ = 1 to 30 do Heap_file.append g (Bytes.make 20 'b') done;
        Alcotest.(check int) "no disk growth" used_before
          (Disk.num_pages env.Env.disk));
  ]

let sort_record i = Bytes.of_string (Printf.sprintf "%06d" i)

let sort_tests =
  [
    tc "external sort orders and preserves multiset" `Quick (fun () ->
        let env = Env.create ~page_size:128 ~pool_pages:16 () in
        let f = Heap_file.create env in
        let rng = Random.State.make [| 42 |] in
        let input = List.init 500 (fun _ -> Random.State.int rng 1000) in
        List.iter (fun i -> Heap_file.append f (sort_record i)) input;
        let sorted = External_sort.sort f ~compare:Bytes.compare ~mem_pages:3 in
        let out = ref [] in
        Heap_file.iter sorted (fun r -> out := Bytes.to_string r :: !out);
        let out = List.rev !out in
        Alcotest.(check int) "size" 500 (List.length out);
        Alcotest.(check (list string)) "sorted & same multiset"
          (List.sort compare (List.map (fun i -> Printf.sprintf "%06d" i) input))
          out);
    tc "sort counts comparisons and I/O in the Sort phase" `Quick (fun () ->
        let env = Env.create ~page_size:128 ~pool_pages:16 () in
        let f = Heap_file.create env in
        for i = 0 to 199 do Heap_file.append f (sort_record (199 - i)) done;
        Iostats.reset env.Env.stats;
        ignore (External_sort.sort f ~compare:Bytes.compare ~mem_pages:3);
        Alcotest.(check bool) "comparisons counted" true
          (Iostats.comparisons env.Env.stats > 0);
        Alcotest.(check bool) "sort time attributed" true
          (Iostats.phase_seconds env.Env.stats Iostats.Sort >= 0.0);
        Alcotest.(check bool) "I/O happened" true (Iostats.total_ios env.Env.stats > 0));
    tc "multi-pass merge with tiny memory" `Quick (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:8 () in
        let f = Heap_file.create env in
        for i = 0 to 299 do Heap_file.append f (sort_record ((i * 7919) mod 1000)) done;
        let sorted = External_sort.sort f ~compare:Bytes.compare ~mem_pages:3 in
        let prev = ref Bytes.empty in
        let ok = ref true in
        Heap_file.iter sorted (fun r ->
            if Bytes.compare !prev r > 0 then ok := false;
            prev := r);
        Alcotest.(check bool) "nondecreasing" true !ok;
        Alcotest.(check int) "size" 300 (Heap_file.num_records sorted));
    tc "mem_pages < 3 rejected" `Quick (fun () ->
        let env = Env.create () in
        let f = Heap_file.create env in
        Alcotest.(check bool) "raises" true
          (try ignore (External_sort.sort f ~compare:Bytes.compare ~mem_pages:2); false
           with Invalid_argument _ -> true));
    tc "replacement selection sorts correctly" `Quick (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:8 () in
        let f = Heap_file.create env in
        let rng = Random.State.make [| 5 |] in
        let input = List.init 400 (fun _ -> Random.State.int rng 1000) in
        List.iter (fun i -> Heap_file.append f (sort_record i)) input;
        let sorted =
          External_sort.sort ~run_strategy:External_sort.Replacement_selection
            f ~compare:Bytes.compare ~mem_pages:3
        in
        let out = ref [] in
        Heap_file.iter sorted (fun r -> out := Bytes.to_string r :: !out);
        Alcotest.(check (list string)) "sorted & same multiset"
          (List.sort compare (List.map (fun i -> Printf.sprintf "%06d" i) input))
          (List.rev !out));
    tc "replacement selection produces longer runs on random input" `Quick
      (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:16 () in
        let f = Heap_file.create env in
        let rng = Random.State.make [| 6 |] in
        for _ = 1 to 600 do
          Heap_file.append f (sort_record (Random.State.int rng 100000))
        done;
        let count strategy =
          let runs =
            External_sort.initial_runs strategy f ~compare:Bytes.compare
              ~mem_pages:3
          in
          let n = List.length runs in
          List.iter Heap_file.destroy runs;
          n
        in
        let load = count External_sort.Load_sort in
        let replacement = count External_sort.Replacement_selection in
        Alcotest.(check bool)
          (Printf.sprintf "replacement %d < load %d runs" replacement load)
          true (replacement < load));
    tc "replacement selection on presorted input yields one run" `Quick
      (fun () ->
        let env = Env.create ~page_size:64 ~pool_pages:8 () in
        let f = Heap_file.create env in
        for i = 0 to 299 do Heap_file.append f (sort_record i) done;
        let runs =
          External_sort.initial_runs External_sort.Replacement_selection f
            ~compare:Bytes.compare ~mem_pages:3
        in
        Alcotest.(check int) "single run" 1 (List.length runs);
        List.iter Heap_file.destroy runs);
  ]

(* The k-way merge heap: any collection of sorted runs (duplicates included)
   must merge into one globally sorted file with the exact input multiset. *)
let prop_merge_heap =
  QCheck.Test.make ~count:100 ~name:"k-way merge heap: sorted, multiset kept"
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(int_range 0 8) (int_bound 60)))
    (fun (seed, run_sizes) ->
      let env = Env.create ~page_size:64 ~pool_pages:8 () in
      let rng = Random.State.make [| seed |] in
      (* Values from a small domain so duplicates appear within and across
         runs. *)
      let runs_data =
        List.map
          (fun n ->
            List.sort compare (List.init n (fun _ -> Random.State.int rng 50)))
          run_sizes
      in
      let runs =
        List.map
          (fun data ->
            let f = Heap_file.create env in
            List.iter (fun i -> Heap_file.append f (sort_record i)) data;
            f)
          runs_data
      in
      let merged = External_sort.merge_runs env runs ~compare:Bytes.compare in
      let out = ref [] in
      Heap_file.iter merged (fun r -> out := Bytes.to_string r :: !out);
      let out = List.rev !out in
      Heap_file.destroy merged;
      let expected =
        List.sort compare
          (List.map (fun i -> Printf.sprintf "%06d" i) (List.concat runs_data))
      in
      out = expected)

(* The domain-parallel sort must return the record sequence of the sequential
   sort: with the whole record as the key, the order is fully determined, so
   the outputs are compared exactly. *)
let prop_parallel_sort =
  QCheck.Test.make ~count:60
    ~name:"sort_keyed (domains 1/2/4) = sequential sort"
    QCheck.(triple (int_bound 10_000) (int_bound 400) (int_bound 2))
    (fun (seed, n, dsel) ->
      let domains = [| 1; 2; 4 |].(dsel) in
      let rng = Random.State.make [| seed |] in
      let input = List.init n (fun _ -> Random.State.int rng 500) in
      let fill env =
        let f = Heap_file.create env in
        List.iter (fun i -> Heap_file.append f (sort_record i)) input;
        f
      in
      let contents f =
        let out = ref [] in
        Heap_file.iter f (fun r -> out := Bytes.to_string r :: !out);
        List.rev !out
      in
      let seq_env = Env.create ~page_size:64 ~pool_pages:8 () in
      let seq =
        contents (External_sort.sort (fill seq_env) ~compare:Bytes.compare ~mem_pages:4)
      in
      let par_env = Env.create ~page_size:64 ~pool_pages:8 () in
      let par =
        Task_pool.with_pool ~domains (fun pool ->
            contents
              (External_sort.sort_keyed ~pool (fill par_env)
                 ~key:Bytes.to_string ~compare_key:String.compare ~mem_pages:4))
      in
      seq = par)

let task_pool_tests =
  [
    tc "run_list returns results in order" `Quick (fun () ->
        Task_pool.with_pool ~domains:4 (fun pool ->
            let jobs = List.init 20 (fun i () -> i * i) in
            Alcotest.(check (list int)) "ordered"
              (List.init 20 (fun i -> i * i))
              (Task_pool.run_list pool jobs)));
    tc "run_list with one domain runs on the caller" `Quick (fun () ->
        Task_pool.with_pool ~domains:1 (fun pool ->
            Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ]
              (Task_pool.run_list pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ])));
    tc "exceptions propagate after the batch completes" `Quick (fun () ->
        Task_pool.with_pool ~domains:2 (fun pool ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore
                   (Task_pool.run_list pool
                      [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]);
                 false
               with Failure msg -> msg = "boom")));
    tc "pool survives across batches" `Quick (fun () ->
        Task_pool.with_pool ~domains:3 (fun pool ->
            for i = 1 to 5 do
              let n = i * 4 in
              Alcotest.(check int) "sum"
                (n * (n - 1) / 2)
                (List.fold_left ( + ) 0
                   (Task_pool.run_list pool (List.init n (fun j () -> j))))
            done));
    tc "domains < 1 rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try ignore (Task_pool.create ~domains:0); false
           with Invalid_argument _ -> true));
  ]

(* Model-based property test of the buffer pool: random reads/writes against
   a trivial in-memory reference model must agree on contents; the pool must
   never hold more frames than its capacity allows (observable through the
   miss count lower bound). *)
let prop_pool_model =
  QCheck.Test.make ~count:200 ~name:"buffer pool agrees with a flat model"
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, cap_sel) ->
      let capacity = 1 + cap_sel in
      let stats = Iostats.create () in
      let disk = Sim_disk.create ~page_size:8 stats in
      let pool = Buffer_pool.create (Disk.sim disk) ~capacity in
      let n_pages = 6 in
      let pages = Array.init n_pages (fun _ -> Sim_disk.alloc disk) in
      let model = Array.make n_pages '\000' in
      let rng = Random.State.make [| seed |] in
      for _ = 1 to 100 do
        let p = Random.State.int rng n_pages in
        if Random.State.bool rng then begin
          let c = Char.chr (Random.State.int rng 256) in
          Buffer_pool.with_write pool pages.(p) (fun b -> Bytes.set b 0 c);
          model.(p) <- c
        end
        else begin
          let b = Buffer_pool.read pool pages.(p) in
          if Bytes.get b 0 <> model.(p) then failwith "pool diverged from model"
        end
      done;
      Buffer_pool.flush pool;
      Array.iteri
        (fun i p ->
          if Bytes.get (Sim_disk.read disk p) 0 <> model.(i) then
            failwith "disk diverged after flush")
        pages;
      true)

let prop_cursor_seek =
  QCheck.Test.make ~count:100 ~name:"cursor seek agrees with sequential scan"
    QCheck.(pair (int_bound 10_000) (int_bound 200))
    (fun (seed, n) ->
      let n = n + 1 in
      let env = Env.create ~page_size:64 ~pool_pages:8 () in
      let f = Heap_file.create env in
      for i = 0 to n - 1 do
        Heap_file.append f (Bytes.of_string (Printf.sprintf "%05d" i))
      done;
      let c = Heap_file.Cursor.of_file f in
      let rng = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 20 do
        let target = Random.State.int rng (n + 2) in
        Heap_file.Cursor.seek c target;
        (match Heap_file.Cursor.next c with
        | Some r ->
            if int_of_string (Bytes.to_string r) <> Int.min target n then ok := false
        | None -> if target < n then ok := false)
      done;
      !ok)

let stats_tests =
  [
    tc "timed phases are exclusive" `Quick (fun () ->
        let s = Iostats.create () in
        Iostats.timed s Iostats.Sort (fun () ->
            Iostats.timed s Iostats.Join (fun () -> Sys.opaque_identity ()));
        let total = Iostats.cpu_seconds s in
        let parts =
          Iostats.phase_seconds s Iostats.Sort +. Iostats.phase_seconds s Iostats.Join
        in
        Alcotest.(check (float 1e-6)) "exclusive buckets" total parts);
    tc "response time model" `Quick (fun () ->
        let s = Iostats.create () in
        Iostats.record_read s;
        Iostats.record_read s;
        Iostats.record_write s;
        Alcotest.(check (float 1e-9)) "3 IOs at 10ms" 0.03
          (Iostats.response_time s ~io_latency:0.01 -. Iostats.cpu_seconds s));
    tc "add_into accumulates" `Quick (fun () ->
        let a = Iostats.create () and b = Iostats.create () in
        Iostats.record_read a;
        Iostats.record_read b;
        Iostats.record_fuzzy_op b;
        Iostats.add_into a b;
        Alcotest.(check int) "reads" 2 (Iostats.page_reads a);
        Alcotest.(check int) "fuzzy" 1 (Iostats.fuzzy_ops a));
  ]

let suites =
  [
    ("storage.disk", disk_tests);
    ("storage.pool", pool_tests @ [ QCheck_alcotest.to_alcotest prop_pool_model ]);
    ("storage.heap", heap_tests @ [ QCheck_alcotest.to_alcotest prop_cursor_seek ]);
    ( "storage.sort",
      sort_tests
      @ List.map QCheck_alcotest.to_alcotest [ prop_merge_heap; prop_parallel_sort ] );
    ("storage.pool_tasks", task_pool_tests);
    ("storage.stats", stats_tests);
  ]
