(** Tests of the relational layer: values, schemas, codec, relations,
    algebra, and aggregates. *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case
let eq = Fuzzy.Fuzzy_compare.Eq
let gt = Fuzzy.Fuzzy_compare.Gt

let value_tests =
  [
    tc "crisp comparisons are boolean" `Quick (fun () ->
        Test_util.check_degree "5 = 5" 1.0
          (Value.compare_degree eq (Value.crisp_num 5.) (Value.crisp_num 5.));
        Test_util.check_degree "5 = 6" 0.0
          (Value.compare_degree eq (Value.crisp_num 5.) (Value.crisp_num 6.));
        Test_util.check_degree "int/fuzzy promote" 1.0
          (Value.compare_degree eq (Value.Int 5) (Value.crisp_num 5.)));
    tc "string comparisons are lexicographic and crisp" `Quick (fun () ->
        Test_util.check_degree "abc = abc" 1.0
          (Value.compare_degree eq (Value.Str "abc") (Value.Str "abc"));
        Test_util.check_degree "abc > abb" 1.0
          (Value.compare_degree gt (Value.Str "abc") (Value.Str "abb"));
        Test_util.check_degree "type mismatch" 0.0
          (Value.compare_degree eq (Value.Str "5") (Value.crisp_num 5.)));
    tc "fuzzy equality via possibility kernel" `Quick (fun () ->
        let v1 = Test_util.term "medium young" and v2 = Test_util.term "about 35" in
        Test_util.check_degree "0.5 crossing" 0.5 (Value.compare_degree eq v1 v2));
    tc "structural equality for dedup" `Quick (fun () ->
        Alcotest.(check bool) "same trapezoid" true
          (Value.equal (Test_util.term "high") (Test_util.term "high"));
        Alcotest.(check bool) "Int vs equivalent crisp" true
          (Value.equal (Value.Int 3) (Value.crisp_num 3.0));
        Alcotest.(check bool) "different shapes differ" false
          (Value.equal (Test_util.term "high") (Test_util.term "low")));
    tc "support intervals" `Quick (fun () ->
        Test_util.(Alcotest.check interval) "term support"
          (Fuzzy.Interval.make 20. 35.)
          (Value.support (Test_util.term "medium young"));
        Test_util.(Alcotest.check interval) "int support"
          (Fuzzy.Interval.point 7.) (Value.support (Value.Int 7)));
  ]

let schema_tests =
  [
    tc "index_of handles bare and qualified names" `Quick (fun () ->
        let s = Schema.make ~name:"R" [ ("X", Schema.TNum); ("Y", Schema.TStr) ] in
        Alcotest.(check (option int)) "bare" (Some 0) (Schema.index_of s "X");
        Alcotest.(check (option int)) "qualified" (Some 1) (Schema.index_of s "R.Y");
        Alcotest.(check (option int)) "wrong qualifier" None (Schema.index_of s "S.Y");
        Alcotest.(check (option int)) "missing" None (Schema.index_of s "Z"));
    tc "duplicate attributes rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try ignore (Schema.make ~name:"R" [ ("X", Schema.TNum); ("X", Schema.TNum) ]); false
           with Invalid_argument _ -> true));
    tc "concat qualifies attribute names" `Quick (fun () ->
        let r = Schema.make ~name:"R" [ ("X", Schema.TNum) ] in
        let s = Schema.make ~name:"S" [ ("X", Schema.TNum) ] in
        let j = Schema.concat ~name:"J" r s in
        Alcotest.(check int) "arity" 2 (Schema.arity j);
        Alcotest.(check (option int)) "R.X" (Some 0) (Schema.index_of j "R.X");
        Alcotest.(check (option int)) "S.X" (Some 1) (Schema.index_of j "S.X"));
  ]

let arb_value =
  let open QCheck.Gen in
  let gen =
    frequency
      [
        (2, map (fun i -> Value.Int i) (int_range (-1000) 1000));
        (2, map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 20)));
        ( 3,
          map
            (fun (a, b, c, d) ->
              match List.sort Float.compare [ a; b; c; d ] with
              | [ a; b; c; d ] ->
                  Value.Fuzzy (Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make a b c d))
              | _ -> assert false)
            (quad (float_bound_inclusive 100.) (float_bound_inclusive 100.)
               (float_bound_inclusive 100.) (float_bound_inclusive 100.)) );
        ( 1,
          map
            (fun pts -> Value.Fuzzy (Fuzzy.Possibility.discrete pts))
            (list_size (int_range 1 5)
               (pair (float_bound_inclusive 50.)
                  (map (fun d -> 0.1 +. (0.9 *. d)) (float_bound_inclusive 1.0)))) );
      ]
  in
  QCheck.make ~print:Value.to_string gen

let arb_tuple =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Ftuple.pp t)
    QCheck.Gen.(
      map2
        (fun vs d -> Ftuple.make (Array.of_list vs) (0.01 +. (0.99 *. d)))
        (list_size (int_range 0 6) (QCheck.gen arb_value))
        (float_bound_inclusive 1.0))

let prop_codec_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec roundtrip" arb_tuple (fun t ->
      let t' = Codec.decode (Codec.encode t) in
      Ftuple.values_equal t t' && Fuzzy.Degree.equal (Ftuple.degree t) (Ftuple.degree t'))

let prop_codec_padding =
  QCheck.Test.make ~count:200 ~name:"codec padding to fixed size" arb_tuple
    (fun t ->
      let natural = Codec.encoded_size t in
      let padded = Codec.encode ~pad_to:(natural + 64) t in
      Bytes.length padded = natural + 64
      && Ftuple.values_equal t (Codec.decode padded))

let codec_tests =
  [
    tc "pad_to smaller than encoding rejected" `Quick (fun () ->
        let t = Test_util.tuple [ Value.Str "hello world" ] 1.0 in
        Alcotest.(check bool) "raises" true
          (try ignore (Codec.encode ~pad_to:4 t); false
           with Invalid_argument _ -> true));
  ]

let relation_tests =
  [
    tc "zero-degree tuples are not members" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let s = Schema.make ~name:"R" [ ("X", Schema.TNum) ] in
        let r =
          Relation.of_list env s
            [ Test_util.tuple [ Value.Int 1 ] 0.0; Test_util.tuple [ Value.Int 2 ] 0.4 ]
        in
        Alcotest.(check int) "only positive degrees" 1 (Relation.cardinality r));
    tc "of_list / to_list roundtrip with padding" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let s = Schema.make ~name:"R" [ ("X", Schema.TNum) ] in
        let tuples = List.init 100 (fun i -> Test_util.tuple [ Value.Int i ] 1.0) in
        let r = Relation.of_list ~pad_to:128 env s tuples in
        Alcotest.(check int) "cardinality" 100 (Relation.cardinality r);
        Alcotest.(check bool) "pages reflect padding" true (Relation.num_pages r >= 2);
        let back = Relation.to_list r in
        Alcotest.(check bool) "same values" true
          (List.for_all2 Ftuple.values_equal tuples back));
  ]

let mk_rel env name rows =
  let s = Schema.make ~name [ ("K", Schema.TStr); ("V", Schema.TNum) ] in
  Relation.of_list env s
    (List.map (fun (k, v, d) -> Test_util.tuple [ Value.Str k; Value.crisp_num v ] d) rows)

let algebra_tests =
  [
    tc "select combines degrees by min" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 0.9); ("b", 2., 0.3) ] in
        let out = Algebra.select r ~pred:(fun _ -> 0.5) in
        let ds = List.map Ftuple.degree (Relation.to_list out) in
        Alcotest.(check (list (float 1e-9))) "min degrees" [ 0.5; 0.3 ] ds);
    tc "dedup keeps max degree (fuzzy OR)" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 0.3); ("a", 1., 0.7); ("b", 1., 0.2) ] in
        let out = Algebra.dedup_max r in
        let ans = Test_util.answer_of_relation out in
        Alcotest.(check int) "two rows" 2 (List.length ans);
        let d_a = List.assoc "a" (List.map (fun (vs, d) ->
          (match vs.(0) with Value.Str s -> s | _ -> "?"), d) ans) in
        Alcotest.(check (float 1e-9)) "max kept" 0.7 d_a);
    tc "project then dedup" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 0.3); ("a", 2., 0.8) ] in
        let out = Algebra.project r ~attrs:[ "K" ] in
        Alcotest.(check int) "single row" 1 (Relation.cardinality out);
        match Relation.to_list out with
        | [ t ] -> Alcotest.(check (float 1e-9)) "max degree" 0.8 (Ftuple.degree t)
        | _ -> Alcotest.fail "expected one tuple");
    tc "project unknown attribute errors" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 1.) ] in
        Alcotest.(check bool) "raises" true
          (try ignore (Algebra.project r ~attrs:[ "NOPE" ]); false
           with Invalid_argument _ -> true));
    tc "union_max merges by max" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 0.4) ] in
        let s = mk_rel env "S" [ ("a", 1., 0.6); ("b", 2., 0.5) ] in
        let u = Algebra.union_max r s in
        Alcotest.(check int) "rows" 2 (Relation.cardinality u));
    tc "threshold implements WITH D >= z" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 0.4); ("b", 1., 0.8) ] in
        let out = Algebra.threshold r 0.5 in
        Alcotest.(check int) "one survives" 1 (Relation.cardinality out));
    tc "product multiplies cardinalities, degree is min" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 0.9); ("b", 2., 0.8) ] in
        let s = mk_rel env "S" [ ("x", 3., 0.5) ] in
        let p = Algebra.product r s in
        Alcotest.(check int) "2x1" 2 (Relation.cardinality p);
        List.iter
          (fun t -> Alcotest.(check bool) "degree <= 0.5" true (Ftuple.degree t <= 0.5))
          (Relation.to_list p));
    tc "group collects by key" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let r = mk_rel env "R" [ ("a", 1., 1.); ("a", 2., 1.); ("b", 3., 1.) ] in
        let groups = Algebra.group r ~key:[ 0 ] in
        Alcotest.(check int) "two groups" 2 (List.length groups);
        let sizes = List.map (fun (_, ts) -> List.length ts) groups in
        Alcotest.(check (list int)) "sizes" [ 2; 1 ] sizes);
  ]

let aggregate_tests =
  [
    tc "count / empty semantics" `Quick (fun () ->
        Alcotest.(check bool) "count []" true
          (Aggregate.apply Aggregate.Count [] = Some (Value.Int 0));
        Alcotest.(check bool) "sum [] is NULL" true (Aggregate.apply Aggregate.Sum [] = None);
        Alcotest.(check bool) "min [] is NULL" true (Aggregate.apply Aggregate.Min [] = None));
    tc "sum and avg use fuzzy arithmetic" `Quick (fun () ->
        let vs = [ Value.crisp_num 10.; Value.crisp_num 20. ] in
        (match Aggregate.apply Aggregate.Sum vs with
        | Some (Value.Fuzzy p) ->
            Alcotest.(check (float 1e-9)) "sum" 30.0 (Fuzzy.Defuzz.core_center p)
        | _ -> Alcotest.fail "sum shape");
        match Aggregate.apply Aggregate.Avg vs with
        | Some (Value.Fuzzy p) ->
            Alcotest.(check (float 1e-9)) "avg" 15.0 (Fuzzy.Defuzz.core_center p)
        | _ -> Alcotest.fail "avg shape");
    tc "min/max defuzzify by core center and return originals" `Quick (fun () ->
        let low = Test_util.term "about 40K" and high = Test_util.term "high" in
        (match Aggregate.apply Aggregate.Max [ low; high ] with
        | Some v -> Alcotest.(check bool) "max is high" true (Value.equal v high)
        | None -> Alcotest.fail "max");
        match Aggregate.apply Aggregate.Min [ low; high ] with
        | Some v -> Alcotest.(check bool) "min is about 40K" true (Value.equal v low)
        | None -> Alcotest.fail "min");
    tc "non-numeric aggregation rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try ignore (Aggregate.apply Aggregate.Sum [ Value.Str "x" ]); false
           with Invalid_argument _ -> true));
    tc "degree strategies" `Quick (fun () ->
        Test_util.check_degree "always one" 1.0 (Aggregate.result_degree [ 0.2; 0.4 ]);
        Test_util.check_degree "average" 0.3
          (Aggregate.result_degree ~strategy:Aggregate.Average_membership [ 0.2; 0.4 ]);
        Test_util.check_degree "weighted on empty" 1.0
          (Aggregate.result_degree ~strategy:Aggregate.Weighted_membership []));
  ]

let suites =
  [
    ("relational.value", value_tests);
    ("relational.schema", schema_tests);
    ( "relational.codec",
      List.map QCheck_alcotest.to_alcotest [ prop_codec_roundtrip; prop_codec_padding ]
      @ codec_tests );
    ("relational.relation", relation_tests);
    ("relational.algebra", algebra_tests);
    ("relational.aggregate", aggregate_tests);
  ]
