(** Tests for the telemetry spine (PR 7): request IDs and the trace
    ring, SQL shape normalization, the rotating query log, Prometheus /
    [\top] rendering, the metrics HTTP listener, quantile edge cases on
    plain and sliding-window histograms (qcheck: window quantiles agree
    with lifetime quantiles while everything is in-window, and expiry
    really drops old observations), and the daemon wired end-to-end —
    request IDs on the wire, [\trace] fetch, the deadline/client split of
    the cancelled counter, and query-log/trace-ring agreement. *)

open Frepro

let tc = Alcotest.test_case

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" what needle hay

(* ------------------------------------------------------------------ *)
(* Request IDs and the trace ring.                                     *)

let ring_tests =
  [
    tc "request IDs are 16 hex chars and distinct" `Quick (fun () ->
        let rng = Random.State.make [| 7 |] in
        let ids = List.init 100 (fun _ -> Server.Telemetry.gen_request_id rng) in
        List.iter
          (fun id ->
            Alcotest.(check int) "length" 16 (String.length id);
            String.iter
              (fun c ->
                if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
                  Alcotest.failf "non-hex char %C in %s" c id)
              id)
          ids;
        Alcotest.(check int)
          "no duplicates in 100 draws" 100
          (List.length (List.sort_uniq compare ids)));
    tc "ring stores, finds, and evicts in completion order" `Quick (fun () ->
        let r = Server.Telemetry.Ring.create 3 in
        Alcotest.(check int) "capacity" 3 (Server.Telemetry.Ring.capacity r);
        Alcotest.(check (option string)) "miss on empty" None
          (Server.Telemetry.Ring.find r "nope");
        List.iter
          (fun i ->
            Server.Telemetry.Ring.add r
              ~id:(Printf.sprintf "id-%d" i)
              ~json:(Printf.sprintf "{\"n\":%d}" i))
          [ 1; 2; 3 ];
        Alcotest.(check (option string)) "find 1" (Some "{\"n\":1}")
          (Server.Telemetry.Ring.find r "id-1");
        (* a 4th insert overwrites the oldest *)
        Server.Telemetry.Ring.add r ~id:"id-4" ~json:"{\"n\":4}";
        Alcotest.(check (option string)) "1 evicted" None
          (Server.Telemetry.Ring.find r "id-1");
        Alcotest.(check (option string)) "2 live" (Some "{\"n\":2}")
          (Server.Telemetry.Ring.find r "id-2");
        Alcotest.(check (option string)) "4 live" (Some "{\"n\":4}")
          (Server.Telemetry.Ring.find r "id-4");
        Alcotest.(check (list string)) "ids oldest first"
          [ "id-2"; "id-3"; "id-4" ]
          (Server.Telemetry.Ring.ids r);
        Alcotest.(check int) "length" 3 (Server.Telemetry.Ring.length r);
        Alcotest.(check int) "stored counts lifetime inserts" 4
          (Server.Telemetry.Ring.stored r));
    tc "a reused ID resolves to its most recent trace" `Quick (fun () ->
        let r = Server.Telemetry.Ring.create 4 in
        Server.Telemetry.Ring.add r ~id:"dup" ~json:"old";
        Server.Telemetry.Ring.add r ~id:"other" ~json:"x";
        Server.Telemetry.Ring.add r ~id:"dup" ~json:"new";
        Alcotest.(check (option string)) "latest wins" (Some "new")
          (Server.Telemetry.Ring.find r "dup"));
  ]

(* ------------------------------------------------------------------ *)
(* SQL shape normalization.                                            *)

let normalize_tests =
  [
    tc "literals become ?, whitespace collapses" `Quick (fun () ->
        let n = Server.Telemetry.normalize_sql in
        Alcotest.(check string) "numbers"
          "SELECT R.ID FROM R WHERE R.X >= ?"
          (n "SELECT R.ID  FROM R\n WHERE R.X >= 42");
        Alcotest.(check string) "strings"
          "SELECT R.ID FROM R WHERE R.NAME = ?"
          (n "SELECT R.ID FROM R WHERE R.NAME = 'Ann'");
        Alcotest.(check string) "escaped quote stays one literal"
          "SELECT R.ID FROM R WHERE R.NAME = ?"
          (n "SELECT R.ID FROM R WHERE R.NAME = 'O''Brien'");
        Alcotest.(check string) "floats"
          "SELECT R.ID FROM R WHERE R.X <= ?" (n "SELECT R.ID FROM R WHERE R.X <= 3.5"));
    tc "digits inside identifiers survive" `Quick (fun () ->
        Alcotest.(check string) "R2 is a name, 2 is a literal"
          "SELECT R2.ID FROM R2 WHERE R2.X = ?"
          (Server.Telemetry.normalize_sql "SELECT R2.ID FROM R2 WHERE R2.X = 2"));
    tc "identical shapes normalize identically" `Quick (fun () ->
        let a =
          Server.Telemetry.normalize_sql
            "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= 20)"
        and b =
          Server.Telemetry.normalize_sql
            "SELECT R.ID FROM R   WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= \
             99)"
        in
        Alcotest.(check string) "same shape" a b);
    tc "token-stream rebase: canonical keyword case" `Quick (fun () ->
        Alcotest.(check string) "keywords uppercase, identifiers keep case"
          "SELECT r.id FROM r WHERE r.x >= ?"
          (Server.Telemetry.normalize_sql "select r.id from r where r.x >= 42");
        Alcotest.(check bool) "identifier case preserved" true
          (String.length
             (Server.Telemetry.normalize_sql "select MixedCase.ID from MixedCase")
          > 0
          &&
          Server.Telemetry.normalize_sql "select MixedCase.ID from MixedCase"
          = "SELECT MixedCase.ID FROM MixedCase"));
    tc "token-stream rebase: comments are dropped" `Quick (fun () ->
        Alcotest.(check string) "line comment vanishes"
          "SELECT R.ID FROM R WHERE R.X = ?"
          (Server.Telemetry.normalize_sql
             "SELECT R.ID -- project the key\nFROM R WHERE R.X = 7"));
    tc "token-stream rebase: paren and comma spacing" `Quick (fun () ->
        Alcotest.(check string) "subquery shape"
          "SELECT R.ID, R.Y FROM R WHERE R.Y IN (SELECT S.Z FROM S)"
          (Server.Telemetry.normalize_sql
             "SELECT R.ID,R.Y FROM R WHERE R.Y IN ( SELECT S.Z FROM S )"));
    tc "lexer-refused statements fall back to the char scrub" `Quick
      (fun () ->
        let n = Server.Telemetry.normalize_sql in
        (* unterminated string: still scrubbed, never raises *)
        let s = n "SELECT R.ID FROM R WHERE R.NAME = 'oops" in
        Alcotest.(check bool) "literal text scrubbed" true
          (not
             (let rec has i =
                i + 4 <= String.length s
                && (String.sub s i 4 = "oops" || has (i + 1))
              in
              has 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Query log: records, slow threshold, rotation.                       *)

let mk_record ?(exec_s = 0.01) ?(id = "abc") () =
  {
    Server.Telemetry.Query_log.ts = 1700000000.0;
    request_id = id;
    shape = "SELECT R.ID FROM R WHERE R.X >= ?";
    engine = "batch";
    queue_wait_s = 0.001;
    exec_s;
    page_reads = 12;
    page_writes = 3;
    comparisons = 400;
    fuzzy_ops = 40;
    rows = 7;
    retries = 1;
    outcome = "ok";
  }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_temp_log f =
  let path = Filename.temp_file "fsql_test_qlog" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".1") with Sys_error _ -> ())
    (fun () -> f path)

let query_log_tests =
  [
    tc "one JSONL record per request, flushed, with every field" `Quick
      (fun () ->
        with_temp_log (fun path ->
            let log = Server.Telemetry.Query_log.create path in
            Server.Telemetry.Query_log.log log (mk_record ~id:"req-1" ());
            Server.Telemetry.Query_log.log log (mk_record ~id:"req-2" ());
            Alcotest.(check int) "written" 2
              (Server.Telemetry.Query_log.written log);
            (* flushed per record: readable before close *)
            let body = read_file path in
            let lines =
              List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
            in
            Alcotest.(check int) "two lines" 2 (List.length lines);
            let l = List.hd lines in
            List.iter
              (check_contains "record" l)
              [
                "\"request_id\":\"req-1\"";
                "\"shape\":\"SELECT R.ID FROM R WHERE R.X >= ?\"";
                "\"engine\":\"batch\"";
                "\"queue_wait_s\":";
                "\"exec_s\":";
                "\"page_reads\":12";
                "\"page_writes\":3";
                "\"comparisons\":400";
                "\"fuzzy_ops\":40";
                "\"rows\":7";
                "\"retries\":1";
                "\"outcome\":\"ok\"";
              ];
            Server.Telemetry.Query_log.close log));
    tc "slow-ms threshold drops fast queries" `Quick (fun () ->
        with_temp_log (fun path ->
            let log = Server.Telemetry.Query_log.create ~slow_ms:50.0 path in
            Server.Telemetry.Query_log.log log (mk_record ~exec_s:0.010 ());
            Server.Telemetry.Query_log.log log (mk_record ~exec_s:0.200 ());
            Alcotest.(check int) "only the slow one" 1
              (Server.Telemetry.Query_log.written log);
            Server.Telemetry.Query_log.close log));
    tc "reopen after an external rename (SIGHUP/logrotate handshake)" `Quick
      (fun () ->
        with_temp_log (fun path ->
            let log = Server.Telemetry.Query_log.create path in
            Server.Telemetry.Query_log.log log (mk_record ~id:"before-1" ());
            Server.Telemetry.Query_log.log log (mk_record ~id:"before-2" ());
            (* logrotate renames the live file, then signals the daemon;
               records logged in between must land in the renamed file
               (the fd follows the inode), never be lost. *)
            Sys.rename path (path ^ ".1");
            Server.Telemetry.Query_log.log log (mk_record ~id:"between" ());
            Server.Telemetry.Query_log.reopen log;
            Server.Telemetry.Query_log.log log (mk_record ~id:"after" ());
            Alcotest.(check int) "no record dropped" 4
              (Server.Telemetry.Query_log.written log);
            Server.Telemetry.Query_log.close log;
            let rotated = read_file (path ^ ".1") and live = read_file path in
            List.iter (check_contains "rotated" rotated)
              [ "before-1"; "before-2"; "between" ];
            check_contains "live" live "after";
            Alcotest.(check bool) "live file holds only post-reopen records"
              true
              (not
                 (List.exists
                    (fun id ->
                      let n = String.length id and h = String.length live in
                      let rec has i =
                        i + n <= h && (String.sub live i n = id || has (i + 1))
                      in
                      has 0)
                    [ "before-1"; "before-2"; "between" ]));
            (* reopen on an un-rotated log is a harmless no-op *)
            let log2 = Server.Telemetry.Query_log.create path in
            Server.Telemetry.Query_log.reopen log2;
            Server.Telemetry.Query_log.log log2 (mk_record ~id:"steady" ());
            Server.Telemetry.Query_log.close log2;
            check_contains "append preserved" (read_file path) "after"));
    tc "rotation renames to .1 and starts fresh" `Quick (fun () ->
        with_temp_log (fun path ->
            let log = Server.Telemetry.Query_log.create ~max_bytes:400 path in
            for i = 1 to 10 do
              Server.Telemetry.Query_log.log log
                (mk_record ~id:(Printf.sprintf "req-%d" i) ())
            done;
            Server.Telemetry.Query_log.close log;
            Alcotest.(check bool) "rotated file exists" true
              (Sys.file_exists (path ^ ".1"));
            let live = read_file path and old = read_file (path ^ ".1") in
            Alcotest.(check bool) "live file below the cap + one record" true
              (String.length live <= 400 + 400);
            (* only one rotation generation is kept, so older chunks may be
               gone — but what remains must be a contiguous, newest-last
               suffix of the stream: [.1] immediately precedes the live
               file and the live file ends at req-10 *)
            let nums s =
              List.filter_map
                (fun l ->
                  if l = "" then None
                  else
                    let key = "\"request_id\":\"req-" in
                    let rec find i =
                      if i + String.length key > String.length l then None
                      else if String.sub l i (String.length key) = key then
                        let start = i + String.length key in
                        let j = String.index_from l start '"' in
                        int_of_string_opt (String.sub l start (j - start))
                      else find (i + 1)
                    in
                    find 0)
                (String.split_on_char '\n' s)
            in
            let tail = nums old @ nums live in
            Alcotest.(check bool) "suffix is non-empty" true (tail <> []);
            let first = List.hd tail in
            Alcotest.(check (list int))
              "contiguous suffix ending at the newest record"
              (List.init (10 - first + 1) (fun i -> first + i))
              tail));
  ]

(* ------------------------------------------------------------------ *)
(* Prometheus and \top rendering.                                      *)

let render_tests =
  [
    tc "prometheus text: counters, gauges, summaries, NaN when empty" `Quick
      (fun () ->
        let m = Storage.Metrics.create () in
        Storage.Metrics.incr ~by:3
          (Storage.Metrics.counter m "requests_completed");
        Storage.Metrics.set_gauge (Storage.Metrics.gauge m "queue_depth") 2.0;
        let h = Storage.Metrics.histogram m "latency_s" in
        Storage.Metrics.observe h 0.25;
        let w = Storage.Metrics.window_histogram m "exec_s" in
        ignore w;
        let text = Server.Telemetry.render_prometheus m ~now:1000.0 in
        List.iter
          (check_contains "prometheus" text)
          [
            "# TYPE fsqld_requests_completed counter";
            "fsqld_requests_completed 3";
            "# TYPE fsqld_queue_depth gauge";
            "fsqld_queue_depth 2";
            "# TYPE fsqld_latency_s summary";
            "fsqld_latency_s{quantile=\"0.5\"}";
            "fsqld_latency_s_count 1";
            (* the registered-but-empty window renders NaN quantiles *)
            "fsqld_exec_s_window{quantile=\"0.99\"} NaN";
          ];
        (* every line is a comment or "name{labels} value" with a sane name *)
        List.iter
          (fun line ->
            if line <> "" && line.[0] <> '#' then
              match line.[0] with
              | 'a' .. 'z' | 'A' .. 'Z' | '_' -> ()
              | c -> Alcotest.failf "bad metric line start %C: %s" c line)
          (String.split_on_char '\n' text));
    tc "metric names are sanitised" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        Storage.Metrics.incr (Storage.Metrics.counter m "weird.name-with ops");
        let text = Server.Telemetry.render_prometheus m ~now:0.0 in
        check_contains "sanitised" text "fsqld_weird_name_with_ops 1");
    tc "top snapshot: gauges, window table with - for empty, counters" `Quick
      (fun () ->
        let m = Storage.Metrics.create () in
        Storage.Metrics.set_gauge (Storage.Metrics.gauge m "busy_workers") 1.0;
        Storage.Metrics.incr ~by:5
          (Storage.Metrics.counter m "requests_accepted");
        let w = Storage.Metrics.window_histogram m "latency_s" in
        Storage.Metrics.observe_window w ~now:100.0 0.02;
        let empty = Storage.Metrics.window_histogram m "queue_wait_s" in
        ignore empty;
        let text = Server.Telemetry.render_top m ~now:100.1 in
        List.iter
          (check_contains "top" text)
          [ "busy_workers"; "requests_accepted"; "latency_s"; "queue_wait_s" ];
        (* the empty window's quantile cells render as "-", not "nan" *)
        Alcotest.(check bool) "no bare nan" false (contains text "nan"));
  ]

(* ------------------------------------------------------------------ *)
(* HTTP listener.                                                      *)

let http_tests =
  [
    tc "serves GETs on an ephemeral port; unknown paths 404" `Quick (fun () ->
        let srv =
          Server.Telemetry.Http.start ~port:0 (fun path ->
              if path = "/metrics" then
                Some (200, "text/plain; version=0.0.4", "fsqld_up 1\n")
              else None)
        in
        let port = Server.Telemetry.Http.port srv in
        Alcotest.(check bool) "ephemeral port bound" true (port > 0);
        let status, body = Server.Telemetry.Http.get ~port "/metrics" in
        Alcotest.(check int) "200" 200 status;
        Alcotest.(check string) "body" "fsqld_up 1\n" body;
        let status, _ = Server.Telemetry.Http.get ~port "/nope" in
        Alcotest.(check int) "404" 404 status;
        (* one request per connection: a second GET still works *)
        let status, _ = Server.Telemetry.Http.get ~port "/metrics" in
        Alcotest.(check int) "second scrape" 200 status;
        Server.Telemetry.Http.stop srv;
        match Server.Telemetry.Http.get ~port "/metrics" with
        | exception Unix.Unix_error _ -> ()
        | status, _ ->
            Alcotest.(check bool) "no 200 after stop" true (status <> 200));
  ]

(* ------------------------------------------------------------------ *)
(* Quantile edge cases (satellite: empty -> nan, single -> exact).     *)

let quantile_tests =
  [
    tc "empty histogram quantiles are nan, never invented" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        let h = Storage.Metrics.histogram m "h" in
        List.iter
          (fun q ->
            Alcotest.(check bool)
              (Printf.sprintf "q=%g nan" q)
              true
              (Float.is_nan (Storage.Metrics.hist_quantile h q)))
          [ 0.0; 0.5; 0.99; 1.0 ];
        let w = Storage.Metrics.window_histogram m "w" in
        Alcotest.(check bool) "window p50 nan" true
          (Float.is_nan (Storage.Metrics.window_quantile w ~now:10.0 0.5));
        Alcotest.(check bool) "window max nan" true
          (Float.is_nan (Storage.Metrics.window_max w ~now:10.0)));
    tc "single observation is exact at every quantile" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        let h = Storage.Metrics.histogram m "h" in
        Storage.Metrics.observe h 0.037;
        List.iter
          (fun q ->
            Alcotest.(check (float 1e-12))
              (Printf.sprintf "q=%g exact" q)
              0.037
              (Storage.Metrics.hist_quantile h q))
          [ 0.0; 0.5; 0.99; 1.0 ];
        let w = Storage.Metrics.window_histogram m "w" in
        Storage.Metrics.observe_window w ~now:5.0 0.037;
        Alcotest.(check (float 1e-12))
          "window p99 exact" 0.037
          (Storage.Metrics.window_quantile w ~now:5.5 0.99));
  ]

(* qcheck: while every observation is inside one live window, windowed
   quantiles must agree with the lifetime histogram's; and after the
   window passes, they are all gone. *)
let window_agreement_prop =
  QCheck.Test.make ~count:200
    ~name:"window quantiles = lifetime quantiles inside one window; expiry \
           drops all"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 64) (float_bound_exclusive 1000.0))
        (float_bound_exclusive 0.99))
    (fun (obs, q) ->
      let obs = List.map Float.abs obs in
      let m = Storage.Metrics.create () in
      let h = Storage.Metrics.histogram m "h" in
      let w = Storage.Metrics.window_histogram m "w" in
      let t0 = 1000.0 in
      (* all observations land within one 5 s slot *)
      List.iter
        (fun v ->
          Storage.Metrics.observe h v;
          Storage.Metrics.observe_window w ~now:t0 v)
        obs;
      let lifetime = Storage.Metrics.hist_quantile h q in
      let windowed = Storage.Metrics.window_quantile w ~now:(t0 +. 1.0) q in
      let agree =
        if Float.is_nan lifetime then Float.is_nan windowed
        else Float.abs (lifetime -. windowed) <= 1e-9 *. Float.abs lifetime
      in
      if not agree then
        QCheck.Test.fail_reportf
          "in-window disagreement at q=%g: lifetime %g, windowed %g" q lifetime
          windowed;
      (* drive the clock past the whole span: everything expires *)
      let later = t0 +. Storage.Metrics.window_span_s w +. 1.0 in
      let expired = Storage.Metrics.window_quantile w ~now:later q in
      if not (Float.is_nan expired) then
        QCheck.Test.fail_reportf "q=%g still %g after expiry" q expired;
      if Storage.Metrics.window_count w ~now:later <> 0 then
        QCheck.Test.fail_reportf "window count nonzero after expiry";
      true)

(* ------------------------------------------------------------------ *)
(* Daemon integration: IDs over the wire, \trace, the cancelled split,  *)
(* log/ring agreement, and the HTTP endpoints.                          *)

let setup = Server.Demo.server_setup ~seed:11 ()
let slow_setup = Server.Demo.server_setup ~seed:3 ~n_r:2000 ~n_s:2000 ()

let slow_sql =
  "SELECT R.ID FROM R WHERE R.Y > SOME (SELECT S.Z FROM S WHERE S.V <= R.U)"

let log_lines path =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (read_file path))

(* The terminal frame is written before the worker files the trace and
   the log record, so a client can observe its answer a beat before the
   telemetry lands — poll instead of asserting instantly. *)
let wait_for ?(timeout = 10.0) what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let daemon_tests =
  [
    tc "request IDs correlate replies, \\trace, the ring, and the log" `Quick
      (fun () ->
        with_temp_log (fun path ->
            let daemon =
              Server.Daemon.start ~workers:1 ~setup ~query_log:path ()
            in
            let client =
              Server.Client.connect ~port:(Server.Daemon.port daemon) ()
            in
            Alcotest.(check string) "no ID before the first query" ""
              (Server.Client.last_request_id client);
            (match
               Server.Client.query client
                 "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE \
                  S.V >= 20)"
             with
            | Server.Client.Answer _ -> ()
            | _ -> Alcotest.fail "expected an answer");
            let id = Server.Client.last_request_id client in
            Alcotest.(check int) "client generated a real ID" 16
              (String.length id);
            (* the trace is fetchable by that ID, over the wire *)
            wait_for "trace in the ring" (fun () ->
                Server.Daemon.trace_json daemon id <> None);
            (match Server.Client.trace_json client id with
            | Some json ->
                check_contains "trace json" json "\"name\": \"request\"";
                check_contains "trace json" json "exec"
            | None -> Alcotest.fail "trace missing from the ring");
            Alcotest.(check (option string)) "unknown ID is None" None
              (Server.Client.trace_json client "deadbeefdeadbeef");
            (* a statically-invalid query is rejected at admission: it
               still gets an ID and a log record (outcome
               "rejected_static"), but never a worker or a ring entry *)
            (match Server.Client.query client "SELECT FROM WHERE" with
            | Server.Client.Rejected { code; diagnostics } ->
                Alcotest.(check string) "primary code" "FSQL002" code;
                check_contains "rendered diagnostics" diagnostics
                  "error[FSQL002]"
            | _ -> Alcotest.fail "expected Rejected");
            let bad_id = Server.Client.last_request_id client in
            Alcotest.(check bool) "fresh ID per query" true (bad_id <> id);
            Alcotest.(check int) "rejected counted" 1
              (Server.Daemon.counter_value daemon "requests_rejected_static");
            Alcotest.(check (option string)) "no span tree for a rejection"
              None
              (Server.Daemon.trace_json daemon bad_id);
            Server.Client.close client;
            Server.Daemon.stop daemon;
            (* log/ring agreement: one record per accepted or rejected
               request; accepted IDs match the ring's span trees *)
            let accepted =
              Server.Daemon.counter_value daemon "requests_accepted"
            in
            Alcotest.(check (option int)) "log count = accepted + rejected"
              (Some (accepted + 1))
              (Server.Daemon.query_log_written daemon);
            let ring_ids =
              List.sort compare
                (Server.Telemetry.Ring.ids (Server.Daemon.trace_ring daemon))
            in
            let logged_ids =
              List.sort compare
                (List.filter_map
                   (fun line ->
                     let key = "\"request_id\":\"" in
                     let rec find i =
                       if i + String.length key > String.length line then None
                       else if String.sub line i (String.length key) = key then
                         let start = i + String.length key in
                         let j = String.index_from line start '"' in
                         Some (String.sub line start (j - start))
                       else find (i + 1)
                     in
                     find 0)
                   (log_lines path))
            in
            Alcotest.(check (list string))
              "every accepted logged ID has exactly one span tree" ring_ids
              (List.filter (fun i -> i <> bad_id) logged_ids);
            Alcotest.(check bool) "the rejection is logged too" true
              (List.mem bad_id logged_ids);
            let outcomes = String.concat "\n" (log_lines path) in
            check_contains "rejected_static outcome logged" outcomes
              "\"outcome\":\"rejected_static\""));
    tc "the cancelled counter splits into deadline vs client" `Slow (fun () ->
        let daemon =
          Server.Daemon.start ~workers:1 ~queue_capacity:4 ~setup:slow_setup ()
        in
        let client =
          Server.Client.connect ~port:(Server.Daemon.port daemon) ()
        in
        (* 1: deadline *)
        (match Server.Client.query ~deadline_ms:150 client slow_sql with
        | Server.Client.Cancelled _ -> ()
        | _ -> Alcotest.fail "expected deadline Cancelled");
        (* 2: explicit client cancel *)
        let reply = ref None in
        let th =
          Thread.create
            (fun () -> reply := Some (Server.Client.query client slow_sql))
            ()
        in
        let deadline = Unix.gettimeofday () +. 10.0 in
        while
          Server.Daemon.counter_value daemon "requests_accepted" < 2
          && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.005
        done;
        Server.Client.cancel client;
        Thread.join th;
        (match !reply with
        | Some (Server.Client.Cancelled _) -> ()
        | _ -> Alcotest.fail "expected client Cancelled");
        (* the terminal frame races the counter bump: wait for the books *)
        let deadline = Unix.gettimeofday () +. 10.0 in
        while
          Server.Daemon.counter_value daemon "requests_cancelled" < 2
          && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.005
        done;
        let c = Server.Daemon.counter_value daemon in
        Alcotest.(check int) "deadline split" 1 (c "requests_cancelled_deadline");
        Alcotest.(check int) "client split" 1 (c "requests_cancelled_client");
        Alcotest.(check int)
          "aggregate = deadline + client" (c "requests_cancelled")
          (c "requests_cancelled_deadline" + c "requests_cancelled_client");
        Server.Client.close client;
        Server.Daemon.stop daemon);
    tc "\\top over the wire shows windowed stats and gauges" `Quick (fun () ->
        let daemon = Server.Daemon.start ~workers:1 ~setup () in
        let client =
          Server.Client.connect ~port:(Server.Daemon.port daemon) ()
        in
        (match Server.Client.query client "SELECT T.ID FROM T WHERE T.W >= 0" with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "expected an answer");
        let text = Server.Client.top_text client in
        List.iter
          (check_contains "top" text)
          [ "latency_s"; "queue_depth"; "busy_workers"; "requests_completed" ];
        Server.Client.close client;
        Server.Daemon.stop daemon);
    tc "/metrics and /healthz serve a live daemon" `Quick (fun () ->
        let daemon = Server.Daemon.start ~workers:1 ~setup ~metrics_port:0 () in
        let mport =
          match Server.Daemon.metrics_port daemon with
          | Some p -> p
          | None -> Alcotest.fail "metrics port not bound"
        in
        let client =
          Server.Client.connect ~port:(Server.Daemon.port daemon) ()
        in
        (match Server.Client.query client "SELECT T.ID FROM T WHERE T.W >= 0" with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "expected an answer");
        let status, body = Server.Telemetry.Http.get ~port:mport "/metrics" in
        Alcotest.(check int) "/metrics 200" 200 status;
        List.iter
          (check_contains "/metrics" body)
          [
            "# TYPE fsqld_requests_completed counter";
            "fsqld_requests_completed 1";
            "fsqld_latency_s_window{quantile=\"0.5\"}";
            "fsqld_queue_depth";
          ];
        let status, body = Server.Telemetry.Http.get ~port:mport "/healthz" in
        Alcotest.(check int) "/healthz 200" 200 status;
        check_contains "/healthz" body "\"status\":\"ok\"";
        let status, _ = Server.Telemetry.Http.get ~port:mport "/favicon.ico" in
        Alcotest.(check int) "404 elsewhere" 404 status;
        Server.Client.close client;
        Server.Daemon.stop daemon;
        (* the listener dies with the daemon *)
        match Server.Telemetry.Http.get ~port:mport "/metrics" with
        | exception Unix.Unix_error _ -> ()
        | status, _ ->
            Alcotest.(check bool) "no scrape after stop" true (status <> 200));
  ]

let suites =
  [
    ("telemetry ring", ring_tests);
    ("telemetry normalize", normalize_tests);
    ("telemetry query log", query_log_tests);
    ("telemetry rendering", render_tests);
    ("telemetry http", http_tests);
    ( "telemetry quantiles",
      quantile_tests @ [ QCheck_alcotest.to_alcotest window_agreement_prop ] );
    ("telemetry daemon", daemon_tests);
  ]
