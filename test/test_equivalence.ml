(** Property tests of the unnesting theorems.

    For every nested-query type the paper unnests (Theorems 4.1, 4.2, 5.1,
    6.1, 7.1, 8.1), random small databases and random queries of that shape
    are evaluated by (a) the naive interpreter, (b) the blocked nested-loop
    method, and (c) the unnesting merge-join executor; all three answers must
    be identical fuzzy relations — same tuples AND same membership degrees,
    the equivalence notion of Section 2.3. *)

open Frepro
open Frepro.Relational

(* ---------- random databases ---------- *)

type db_spec = {
  seed : int;
  n_r : int;
  n_s : int;
  n_t : int;
  discrete_ok : bool;
}

let pp_spec s =
  Printf.sprintf "{seed=%d; n_r=%d; n_s=%d; n_t=%d; discrete=%b}" s.seed s.n_r
    s.n_s s.n_t s.discrete_ok

let arb_spec ?(discrete_ok = true) () =
  let gen =
    QCheck.Gen.(
      map3
        (fun seed (n_r, n_s) n_t -> { seed; n_r; n_s; n_t; discrete_ok })
        (int_bound 1_000_000)
        (pair (int_bound 20) (int_bound 20))
        (int_bound 10))
  in
  QCheck.make ~print:pp_spec gen

let rand_value rng ~discrete_ok =
  match Random.State.int rng (if discrete_ok then 5 else 4) with
  | 0 -> Value.crisp_num (float_of_int (Random.State.int rng 50))
  | 1 | 2 | 3 ->
      Value.Fuzzy (Fuzzy.Possibility.trap (Workload.Gen.random_trapezoid rng ~lo:0.0 ~hi:50.0))
  | _ ->
      let n = 1 + Random.State.int rng 3 in
      Value.Fuzzy
        (Fuzzy.Possibility.discrete
           (List.init n (fun _ ->
                ( float_of_int (Random.State.int rng 50),
                  0.125 *. float_of_int (1 + Random.State.int rng 8) ))))

let rand_degree rng = 0.125 *. float_of_int (1 + Random.State.int rng 8)

let make_db spec =
  let env = Test_util.fresh_env () in
  let catalog = Catalog.create env in
  let rng = Random.State.make [| spec.seed |] in
  let rel name n attrs =
    let schema = Schema.make ~name (("ID", Schema.TNum) :: List.map (fun a -> (a, Schema.TNum)) attrs) in
    let tuples =
      List.init n (fun i ->
          Test_util.tuple
            (Value.Int i
            :: List.map (fun _ -> rand_value rng ~discrete_ok:spec.discrete_ok) attrs)
            (rand_degree rng))
    in
    let r = Relation.of_list env schema tuples in
    Catalog.add catalog r;
    r
  in
  ignore (rel "R" spec.n_r [ "Y"; "U" ]);
  ignore (rel "S" spec.n_s [ "Z"; "V" ]);
  ignore (rel "T" spec.n_t [ "W"; "P" ]);
  catalog

(* ---------- query templates ---------- *)

let ops = [| "="; "<"; "<="; ">"; ">=" |]
let aggs = [| "MAX"; "MIN"; "AVG"; "SUM"; "COUNT" |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let maybe rng s = if Random.State.bool rng then s else ""

let template rng kind =
  let c () = Random.State.int rng 50 in
  let p1 = maybe rng (Printf.sprintf " AND R.U >= %d" (c ())) in
  let p2 = maybe rng (Printf.sprintf " AND S.V <= %d" (c ())) in
  let corr_op = pick rng [| "="; "<="; ">=" |] in
  let with_d = maybe rng (Printf.sprintf " WITH D >= 0.%d" (1 + Random.State.int rng 8)) in
  match kind with
  | `N ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= %d%s)%s%s"
        (c ()) p2 p1 with_d
  | `J ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V %s R.U%s)%s%s"
        corr_op p2 p1 with_d
  | `JX ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V %s R.U%s)%s%s"
        corr_op p2 p1 with_d
  | `JALL ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y %s ALL (SELECT S.Z FROM S WHERE S.V = R.U%s)%s%s"
        (pick rng ops) p2 p1 with_d
  | `JSOME ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y %s SOME (SELECT S.Z FROM S WHERE S.V = R.U%s)%s%s"
        (pick rng ops) p2 p1 with_d
  | `JA ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y %s (SELECT %s(S.Z) FROM S WHERE S.V = R.U%s)%s%s"
        (pick rng ops) (pick rng aggs) p2 p1 with_d
  | `Chain ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V %s R.U \
         AND S.Z IN (SELECT T.W FROM T WHERE T.P = S.V AND T.W %s R.Y))%s%s"
        corr_op (pick rng [| "<="; ">=" |]) p1 with_d
  | `Exists ->
      Printf.sprintf
        "SELECT R.ID FROM R WHERE %s (SELECT S.ID FROM S WHERE S.V = R.U AND \
         S.Z %s R.Y%s)%s%s"
        (pick rng [| "EXISTS"; "NOT EXISTS" |])
        corr_op p2 p1 with_d
  | `Multi_from ->
      (* Multi-relation outer block: unnestable only after the outer FROM
         product is flattened (Unnest.Flatten). *)
      Printf.sprintf
        "SELECT R.ID, T.ID FROM R, T WHERE R.U <= T.W AND R.Y IN (SELECT S.Z \
         FROM S WHERE S.V %s T.P%s)%s"
        corr_op p2 with_d
  | `Uncorrelated ->
      (* Constant inner blocks: "no unnesting is needed" (Section 6). *)
      (match Random.State.int rng 3 with
      | 0 ->
          Printf.sprintf
            "SELECT R.ID FROM R WHERE R.Y %s (SELECT %s(S.Z) FROM S WHERE S.V \
             >= %d)%s%s"
            (pick rng ops) (pick rng aggs) (c ()) p1 with_d
      | 1 ->
          Printf.sprintf
            "SELECT R.ID FROM R WHERE R.Y %s %s (SELECT S.Z FROM S WHERE S.V \
             >= %d)%s%s"
            (pick rng ops)
            (pick rng [| "ALL"; "SOME" |])
            (c ()) p1 with_d
      | _ ->
          Printf.sprintf
            "SELECT R.ID FROM R WHERE %s (SELECT S.ID FROM S WHERE S.V >= %d)%s%s"
            (pick rng [| "EXISTS"; "NOT EXISTS" |])
            (c ()) p1 with_d)

let check_three_ways kind spec =
  let catalog = make_db spec in
  let rng = Random.State.make [| spec.seed + 17 |] in
  let sql = template rng kind in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
  let naive = Unnest.Naive_eval.query q in
  let nl = Unnest.Planner.run ~strategy:Unnest.Planner.Nested_loop ~mem_pages:4 q in
  let merged = Unnest.Planner.run ~strategy:Unnest.Planner.Auto ~mem_pages:8 q in
  let a_naive = Test_util.answer_of_relation naive in
  let a_nl = Test_util.answer_of_relation nl in
  let a_merged = Test_util.answer_of_relation merged in
  if not (Test_util.answers_equal a_naive a_nl) then
    QCheck.Test.fail_reportf "naive <> nested-loop for %s@.naive: %a@.nl: %a"
      sql Test_util.pp_answer a_naive Test_util.pp_answer a_nl;
  if not (Test_util.answers_equal a_naive a_merged) then
    QCheck.Test.fail_reportf "naive <> merge for %s@.naive: %a@.merge: %a" sql
      Test_util.pp_answer a_naive Test_util.pp_answer a_merged;
  true

let make_prop name kind ?discrete_ok () =
  QCheck.Test.make ~count:60 ~name (arb_spec ?discrete_ok ())
    (check_three_ways kind)

let props =
  [
    make_prop "Theorem 4.1: type N unnesting" `N ();
    make_prop "Theorem 4.2: type J unnesting" `J ();
    make_prop "Theorem 5.1: type JX unnesting" `JX ();
    make_prop "Theorem 7.1: type JALL unnesting" `JALL ();
    make_prop "SOME dual of Theorem 7.1" `JSOME ();
    (* SUM/AVG cannot mix discrete and continuous operands. *)
    make_prop "Theorem 6.1: type JA unnesting" `JA ~discrete_ok:false ();
    make_prop "Theorem 8.1: chain unnesting" `Chain ();
    make_prop "EXISTS / NOT EXISTS semi- and anti-join unnesting" `Exists ();
    (* uncorrelated aggregates use SUM/AVG, which cannot mix discrete and
       continuous operands *)
    make_prop "constant inner blocks (uncorrelated NA / NALL / NEXISTS)"
      `Uncorrelated ~discrete_ok:false ();
    make_prop "multi-relation outer blocks via flattening" `Multi_from ();
  ]

(* ---------- deterministic regression cases ---------- *)

let tc = Alcotest.test_case

let regression_cases =
  [
    tc "empty inner relation: IN yields nothing, NOT IN / ALL yield all" `Quick
      (fun () ->
        let spec = { seed = 1; n_r = 5; n_s = 0; n_t = 0; discrete_ok = false } in
        let catalog = make_db spec in
        let bind sql = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
        let run sql = Unnest.Planner.run (bind sql) in
        Alcotest.(check int) "IN empty" 0
          (Relation.cardinality (run "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)"));
        Alcotest.(check int) "NOT IN empty keeps all" 5
          (Relation.cardinality
             (run "SELECT R.ID FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)"));
        Alcotest.(check int) "ALL over empty keeps all" 5
          (Relation.cardinality
             (run "SELECT R.ID FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)"));
        Alcotest.(check int) "COUNT over empty compares with 0" 5
          (Relation.cardinality
             (run "SELECT R.ID FROM R WHERE R.Y >= (SELECT COUNT(S.Z) FROM S WHERE S.V = R.U)")));
    tc "degenerate: outer empty" `Quick (fun () ->
        let spec = { seed = 2; n_r = 0; n_s = 5; n_t = 0; discrete_ok = false } in
        let catalog = make_db spec in
        let q =
          Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
            "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)"
        in
        let naive, nl, merged = Test_util.run_all_strategies q in
        Alcotest.(check int) "naive" 0 (Relation.cardinality naive);
        Alcotest.(check int) "nl" 0 (Relation.cardinality nl);
        Alcotest.(check int) "merge" 0 (Relation.cardinality merged));
  ]

let suites =
  [
    ("equivalence.theorems", List.map QCheck_alcotest.to_alcotest props);
    ("equivalence.regressions", regression_cases);
  ]
