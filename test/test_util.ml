(** Shared helpers for the test suites. *)

open Frepro
open Relational

let degree = Alcotest.testable Fuzzy.Degree.pp (fun a b -> Fuzzy.Degree.equal a b)

let check_degree msg expected actual = Alcotest.check degree msg expected actual

let interval =
  Alcotest.testable Fuzzy.Interval.pp (fun a b -> Fuzzy.Interval.equal a b)

let value = Alcotest.testable Value.pp Value.equal

(* Answers as sorted (values, degree) lists, compared up to 1e-9 on
   degrees — the equivalence notion of the paper's theorems. *)
let answer_of_relation rel =
  Relation.to_list rel
  |> List.map (fun t -> (t.Ftuple.values, Ftuple.degree t))
  |> List.sort (fun (v1, _) (v2, _) ->
         let c = Int.compare (Array.length v1) (Array.length v2) in
         if c <> 0 then c
         else
           let rec go i =
             if i >= Array.length v1 then 0
             else
               match Value.compare_structural v1.(i) v2.(i) with
               | 0 -> go (i + 1)
               | c -> c
           in
           go 0)

let answers_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (v1, d1) (v2, d2) ->
         Array.length v1 = Array.length v2
         && Array.for_all2 Value.equal v1 v2
         && Fuzzy.Degree.equal d1 d2)
       a b

let pp_answer ppf ans =
  List.iter
    (fun (vs, d) ->
      Format.fprintf ppf "(%s | %.6f)@ "
        (String.concat ", " (Array.to_list (Array.map Value.to_string vs)))
        d)
    ans

let check_same_answer msg rel1 rel2 =
  let a1 = answer_of_relation rel1 and a2 = answer_of_relation rel2 in
  if not (answers_equal a1 a2) then
    Alcotest.failf "%s:@.left:@ %a@.right:@ %a" msg pp_answer a1 pp_answer a2

let fresh_env ?(pool_pages = 256) () = Storage.Env.create ~pool_pages ()

let tuple vs d = Ftuple.make (Array.of_list vs) d

let term name =
  match Fuzzy.Term.lookup Fuzzy.Term.paper name with
  | Some p -> Value.Fuzzy p
  | None -> Alcotest.failf "unknown paper term %s" name

(* The dating-service database of Example 4.1. *)
let paper_db env =
  let catalog = Catalog.create env in
  let person_schema name =
    Schema.make ~name
      [
        ("ID", Schema.TNum); ("NAME", Schema.TStr); ("AGE", Schema.TNum);
        ("INCOME", Schema.TNum);
      ]
  in
  let f =
    Relation.of_list env (person_schema "F")
      [
        tuple [ Value.Int 101; Value.Str "Ann"; term "about 35"; term "about 60K" ] 1.0;
        tuple [ Value.Int 102; Value.Str "Ann"; term "medium young"; term "medium high" ] 1.0;
        tuple [ Value.Int 103; Value.Str "Betty"; term "middle age"; term "high" ] 1.0;
        tuple [ Value.Int 104; Value.Str "Cathy"; term "about 50"; term "low" ] 1.0;
      ]
  in
  let m =
    Relation.of_list env (person_schema "M")
      [
        tuple [ Value.Int 201; Value.Str "Allen"; Value.crisp_num 24.0; term "about 25K" ] 1.0;
        tuple [ Value.Int 202; Value.Str "Allen"; term "about 50"; term "about 40K" ] 1.0;
        tuple [ Value.Int 203; Value.Str "Bill"; term "middle age"; term "high" ] 1.0;
        tuple [ Value.Int 204; Value.Str "Carl"; term "about 29"; term "medium low" ] 1.0;
      ]
  in
  Catalog.add catalog f;
  Catalog.add catalog m;
  catalog

let bind_paper_query env sql =
  Fuzzysql.Analyzer.bind_string ~catalog:(paper_db env) ~terms:Fuzzy.Term.paper sql

let run_all_strategies q =
  ( Unnest.Naive_eval.query q,
    Unnest.Planner.run ~strategy:Unnest.Planner.Nested_loop q,
    Unnest.Planner.run ~strategy:Unnest.Planner.Auto q )
