(** Golden tests for EXPLAIN (one query per shape of the taxonomy) and for
    EXPLAIN ANALYZE (actual cardinalities from the trace, estimates
    attached post-run).

    The goldens pin the full explain text over the Example 4.1 database:
    both the fixture and the histogram estimator are deterministic, so any
    drift in the plan description shows up as a diff. *)

open Frepro

let tc = Alcotest.test_case

let explain_of sql =
  let env = Test_util.fresh_env () in
  Unnest.Explain.explain (Test_util.bind_paper_query env sql)

let check_golden label sql expected =
  Alcotest.(check string) label expected (explain_of sql)

let golden_tests =
  [
    tc "type N" `Quick (fun () ->
        check_golden "type N"
          "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
           (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
          "shape: type N\n\
           method: unnest + extended merge-join (Sections 4-7)\n\
          \  reduce F by p1 (1 local predicate)\n\
          \  reduce M by p2 (1 local predicate)\n\
          \  sort both on the Definition 3.1 interval order of (INCOME, \
           INCOME)\n\
          \  single sweep; per outer tuple examine Rng(r): d(INCOME = INCOME)\n\
          \  estimates: |F| = 4, |M| = 4, expected matching pairs ~ 15\n\
          \  project NAME, duplicate-eliminate keeping max degree\n\
          \  rewritten flat query (paper notation):\n\
          \    SELECT F.NAME FROM F, M WHERE p1 AND p2 AND F.INCOME = \
           M.INCOME\n");
    tc "type J" `Quick (fun () ->
        check_golden "type J"
          "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M \
           WHERE M.AGE = F.AGE)"
          "shape: type J\n\
           method: unnest + extended merge-join (Sections 4-7)\n\
          \  reduce F by p1 (0 local predicates)\n\
          \  reduce M by p2 (0 local predicates)\n\
          \  sort both on the Definition 3.1 interval order of (INCOME, \
           INCOME)\n\
          \  single sweep; per outer tuple examine Rng(r): d(INCOME = INCOME)\n\
          \  estimates: |F| = 4, |M| = 4, expected matching pairs ~ 15\n\
          \  residual correlation predicates: AGE = AGE\n\
          \  project NAME, duplicate-eliminate keeping max degree\n\
          \  rewritten flat query (paper notation):\n\
          \    SELECT F.NAME FROM F, M WHERE F.INCOME = M.INCOME AND M.AGE = \
           F.AGE\n");
    tc "type JX" `Quick (fun () ->
        check_golden "type JX"
          "SELECT F.NAME FROM F WHERE F.INCOME NOT IN (SELECT M.INCOME FROM \
           M WHERE M.AGE = F.AGE)"
          "shape: type JX\n\
           method: unnest + extended merge-join (Sections 4-7)\n\
          \  reduce F by p1 (0 local predicates)\n\
          \  reduce M by p2 (0 local predicates)\n\
          \  sort both on the Definition 3.1 interval order of (INCOME, \
           INCOME)\n\
          \  single sweep; per outer tuple examine Rng(r): group-min over 1 \
           - min(.., d(INCOME = INCOME), ..)\n\
          \  estimates: |F| = 4, |M| = 4, expected matching pairs ~ 15\n\
          \  residual correlation predicates: AGE = AGE\n\
          \  project NAME, duplicate-eliminate keeping max degree\n\
          \  rewritten flat query (paper notation):\n\
          \    JXT(K, X) = (SELECT F.K, F.NAME, MIN(D) FROM F, M WHERE F.D \
           AND NOT(M.D AND F.INCOME = M.INCOME AND M.AGE = F.AGE) WITH D >= \
           0 GROUPBY F.K);  SELECT X FROM JXT\n");
    tc "type JA" `Quick (fun () ->
        check_golden "type JA"
          "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM \
           M WHERE M.AGE = F.AGE)"
          "shape: type JA\n\
           method: unnest + extended merge-join (Sections 4-7)\n\
          \  reduce F by p1 (0 local predicates)\n\
          \  reduce M by p2 (0 local predicates)\n\
          \  sort both on the Definition 3.1 interval order of (AGE, AGE)\n\
          \  single sweep; per outer tuple examine Rng(r): pipelined \
           MAX(INCOME) compared as d(INCOME > AGG)\n\
          \  estimates: |F| = 4, |M| = 4, expected matching pairs ~ 13\n\
          \  residual correlation predicates: AGE = AGE\n\
          \  project NAME, duplicate-eliminate keeping max degree\n\
          \  rewritten flat query (paper notation):\n\
          \    T1(U) = (SELECT F.AGE FROM F);  T2(U, A) = (SELECT T1.U, \
           MAX(M.INCOME) FROM T1, M WHERE M.AGE = T1.U GROUPBY T1.U);  \
           SELECT F.NAME FROM F, T2 WHERE TRUE AND F.AGE = T2.U AND F.INCOME \
           > T2.A\n");
    tc "type JALL" `Quick (fun () ->
        check_golden "type JALL"
          "SELECT F.NAME FROM F WHERE F.INCOME < ALL (SELECT M.INCOME FROM M \
           WHERE M.AGE = F.AGE)"
          "shape: type JALL\n\
           method: unnest + extended merge-join (Sections 4-7)\n\
          \  reduce F by p1 (0 local predicates)\n\
          \  reduce M by p2 (0 local predicates)\n\
          \  sort both on the Definition 3.1 interval order of (AGE, AGE)\n\
          \  single sweep; per outer tuple examine Rng(r): quantified ALL: \
           d(INCOME < INCOME)\n\
          \  estimates: |F| = 4, |M| = 4, expected matching pairs ~ 13\n\
          \  residual correlation predicates: AGE = AGE\n\
          \  project NAME, duplicate-eliminate keeping max degree\n\
          \  rewritten flat query (paper notation):\n\
          \    T1(K, X, D) = (SELECT F.K, F.NAME, MIN(D) FROM F, M WHERE F.D \
           AND NOT(M.D AND M.AGE = F.AGE AND NOT(F.INCOME < M.INCOME)) WITH \
           D >= 0 GROUPBY F.K);  SELECT X FROM T1\n");
    tc "chain of 3 blocks" `Quick (fun () ->
        check_golden "chain"
          "SELECT F.ID FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
           (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE AND M.ID IN (SELECT \
           G.ID FROM F G WHERE G.AGE = M.AGE AND G.INCOME = F.INCOME))"
          "shape: chain of 3 blocks\n\
           method: unnest to a K-way flat join (Theorem 8.1), merge-joins \
           only\n\
          \  blocks: F -> M -> G\n\
          \  join order (interval DP over estimated intermediate sizes):\n\
          \    start with M, then join G, then join F\n\
          \    estimated total intermediate tuples: 0\n\
          \  rewritten flat query (Theorem 8.1):\n\
          \    SELECT F.ID FROM F, M, G WHERE p1 AND F.INCOME = M.INCOME AND \
           M.ID = G.ID AND M.AGE = F.AGE AND G.AGE = M.AGE AND G.INCOME = \
           F.INCOME\n");
  ]

(* ---------- EXPLAIN ANALYZE ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let analyze_tests =
  [
    tc "analyze reports actual = answer cardinality and the estimate" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        let q =
          Test_util.bind_paper_query env
            "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M \
             WHERE M.AGE = F.AGE)"
        in
        let a = Unnest.Explain.analyze q in
        let answer_rows = Relational.Relation.cardinality a.Unnest.Explain.answer in
        (* The root "query" span records the executed answer's cardinality. *)
        let query_rows = ref None and sweep_est = ref None in
        Storage.Trace.iter_spans a.Unnest.Explain.trace (fun sp ->
            match Storage.Trace.span_name sp with
            | "query" -> query_rows := Storage.Trace.span_rows sp
            | "sweep" -> sweep_est := Storage.Trace.span_est_rows sp
            | _ -> ());
        Alcotest.(check (option int))
          "query span rows = executed answer size" (Some answer_rows)
          !query_rows;
        Alcotest.(check bool) "sweep span carries an estimate" true
          (!sweep_est <> None);
        (* Both figures surface in the rendered text. *)
        let text = a.Unnest.Explain.text in
        Alcotest.(check bool) "text has the analyze tree" true
          (contains text "analyze:");
        Alcotest.(check bool) "text has the estimate" true
          (contains text "est~");
        Alcotest.(check bool) "text has the actual row count" true
          (contains text
             (Printf.sprintf "actual answer rows: %d" answer_rows));
        (* And the analyzed answer matches a plain run of the same query. *)
        Test_util.check_same_answer "analyze answer = planner answer"
          a.Unnest.Explain.answer
          (Unnest.Planner.run q));
    tc "analyze on a chain query annotates the root span" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q =
          Test_util.bind_paper_query env
            "SELECT F.ID FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE AND M.ID IN (SELECT \
             G.ID FROM F G WHERE G.AGE = M.AGE AND G.INCOME = F.INCOME))"
        in
        let a = Unnest.Explain.analyze q in
        let query_est = ref None in
        Storage.Trace.iter_spans a.Unnest.Explain.trace (fun sp ->
            if Storage.Trace.span_name sp = "query" then
              query_est := Storage.Trace.span_est_rows sp);
        Alcotest.(check bool)
          "chain root span carries the DP cost estimate" true
          (!query_est <> None));
  ]

let suites =
  [ ("explain.golden", golden_tests); ("explain.analyze", analyze_tests) ]
