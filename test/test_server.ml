(** Tests for the serving layer: wire-protocol round-trips, the bounded
    admission queue, and the daemon end-to-end over real sockets —
    concurrent clients get bit-identical answers to the sequential
    engine, deadlines and explicit cancels return [Cancelled] and free
    the worker, queue overflow returns [Overloaded], every request
    produces a trace with queue-wait/plan/exec children, and shutdown
    drains cleanly. *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let wait_for ?(timeout = 10.0) what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Wire protocol round-trips through a real pipe.                      *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let roundtrip_request req =
  let r, w = Unix.pipe () in
  Server.Wire.write_request w req;
  let got = Server.Wire.read_request r in
  close_noerr w;
  close_noerr r;
  got

let roundtrip_reply reply =
  let r, w = Unix.pipe () in
  Server.Wire.write_reply w reply;
  let got = Server.Wire.read_reply r in
  close_noerr w;
  close_noerr r;
  got

let wire_tests =
  [
    tc "requests round-trip" `Quick (fun () ->
        let q =
          Server.Wire.Query
            {
              request_id = "";
              deadline_ms = 250;
              domains = 4;
              sql = "SELECT R.ID FROM R";
            }
        in
        Alcotest.(check bool) "query" true (roundtrip_request q = q);
        Alcotest.(check bool)
          "cancel" true
          (roundtrip_request Server.Wire.Cancel = Server.Wire.Cancel);
        Alcotest.(check bool)
          "metrics" true
          (roundtrip_request Server.Wire.Metrics = Server.Wire.Metrics));
    tc "replies round-trip with exact degree bits" `Quick (fun () ->
        let row =
          Server.Wire.Row
            {
              degree_bits = Int64.bits_of_float 0.7000000000000001;
              values = [ "\"Ann\""; "35" ];
            }
        in
        List.iter
          (fun reply ->
            Alcotest.(check bool) "roundtrip" true (roundtrip_reply reply = reply))
          [
            Server.Wire.Header [ "NAME"; "AGE" ];
            row;
            Server.Wire.Done { rows = 3; elapsed_s = 0.0421 };
            Server.Wire.Error "parse error: ...";
            Server.Wire.Retryable "transient fault, retries exhausted";
            Server.Wire.Overloaded;
            Server.Wire.Cancelled "deadline exceeded";
            Server.Wire.Metrics_json "{}";
          ]);
    tc "request-ID frames round-trip; \\trace and \\top frames too" `Quick
      (fun () ->
        let q =
          Server.Wire.Query
            {
              request_id = "a3f09b1c77d2e845";
              deadline_ms = 250;
              domains = 4;
              sql = "SELECT R.ID FROM R";
            }
        in
        Alcotest.(check bool) "query with ID" true (roundtrip_request q = q);
        Alcotest.(check bool)
          "trace fetch" true
          (roundtrip_request (Server.Wire.Trace_get "a3f09b1c77d2e845")
          = Server.Wire.Trace_get "a3f09b1c77d2e845");
        Alcotest.(check bool)
          "top" true
          (roundtrip_request Server.Wire.Top = Server.Wire.Top);
        List.iter
          (fun reply ->
            Alcotest.(check bool)
              "telemetry reply" true
              (roundtrip_reply reply = reply))
          [
            Server.Wire.Trace_json None;
            Server.Wire.Trace_json (Some "{\"traceEvents\":[]}");
            Server.Wire.Top_text "fsqld top\n";
          ])
      ;
    tc "old client / new server: rev-1 query frames still decode" `Quick
      (fun () ->
        (* A rev-1 'Q' frame crafted byte by byte: tag, u32 deadline, u32
           domains, u32-length-prefixed SQL — no request ID field. *)
        let sql = "SELECT R.ID FROM R" in
        let payload = Buffer.create 64 in
        Buffer.add_char payload 'Q';
        let u32 n =
          Buffer.add_char payload (Char.chr ((n lsr 24) land 0xff));
          Buffer.add_char payload (Char.chr ((n lsr 16) land 0xff));
          Buffer.add_char payload (Char.chr ((n lsr 8) land 0xff));
          Buffer.add_char payload (Char.chr (n land 0xff))
        in
        u32 250;
        u32 4;
        u32 (String.length sql);
        Buffer.add_string payload sql;
        let frame = Buffer.create 64 in
        let n = Buffer.length payload in
        Buffer.add_char frame (Char.chr ((n lsr 24) land 0xff));
        Buffer.add_char frame (Char.chr ((n lsr 16) land 0xff));
        Buffer.add_char frame (Char.chr ((n lsr 8) land 0xff));
        Buffer.add_char frame (Char.chr (n land 0xff));
        Buffer.add_buffer frame payload;
        let raw = Buffer.contents frame in
        let r, w = Unix.pipe () in
        assert (
          Unix.write w (Bytes.of_string raw) 0 (String.length raw)
          = String.length raw);
        let got = Server.Wire.read_request r in
        Alcotest.(check bool)
          "decodes with an empty request ID (server assigns)" true
          (got
          = Server.Wire.Query { request_id = ""; deadline_ms = 250; domains = 4; sql });
        (* new client / old server: the empty-ID encoding is byte-identical
           to that rev-1 frame, so an old server never sees a new tag *)
        Server.Wire.write_request w got;
        let echoed = Bytes.create (String.length raw) in
        let rec read_exact off len =
          if len > 0 then begin
            let k = Unix.read r echoed off len in
            assert (k > 0);
            read_exact (off + k) (len - k)
          end
        in
        read_exact 0 (String.length raw);
        Alcotest.(check string)
          "re-encoding is byte-identical to the rev-1 frame" raw
          (Bytes.to_string echoed);
        close_noerr w;
        close_noerr r);
    tc "oversized and empty frames are protocol errors" `Quick (fun () ->
        let r, w = Unix.pipe () in
        (* length header far above max_frame *)
        let hdr = Bytes.of_string "\xff\xff\xff\xff" in
        assert (Unix.write w hdr 0 4 = 4);
        (try
           ignore (Server.Wire.read_reply r);
           Alcotest.fail "expected Protocol_error"
         with Server.Wire.Protocol_error _ -> ());
        close_noerr w;
        close_noerr r);
    tc "EOF mid-stream raises Connection_closed, not a decode error" `Quick
      (fun () ->
        (* peer vanished before any frame *)
        let r, w = Unix.pipe () in
        Unix.close w;
        (try
           ignore (Server.Wire.read_reply r);
           Alcotest.fail "expected Connection_closed"
         with Server.Wire.Connection_closed -> ());
        close_noerr r;
        (* peer vanished after half a length header *)
        let r, w = Unix.pipe () in
        assert (Unix.write w (Bytes.of_string "\x00\x00") 0 2 = 2);
        Unix.close w;
        (try
           ignore (Server.Wire.read_reply r);
           Alcotest.fail "expected Connection_closed"
         with Server.Wire.Connection_closed -> ());
        close_noerr r;
        (* writing into a closed pipe surfaces the same way (EPIPE; ignore
           SIGPIPE first, as Daemon.start/Client.connect would) *)
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ -> ());
        let r, w = Unix.pipe () in
        Unix.close r;
        (try
           Server.Wire.write_reply w Server.Wire.Overloaded;
           Alcotest.fail "expected Connection_closed"
         with Server.Wire.Connection_closed -> ());
        close_noerr w);
  ]

(* ------------------------------------------------------------------ *)
(* Bounded queue.                                                      *)

let queue_tests =
  [
    tc "try_push respects capacity; pop drains after close" `Quick (fun () ->
        let q = Server.Bounded_queue.create ~capacity:2 in
        Alcotest.(check bool) "push 1" true (Server.Bounded_queue.try_push q 1);
        Alcotest.(check bool) "push 2" true (Server.Bounded_queue.try_push q 2);
        Alcotest.(check bool) "full" false (Server.Bounded_queue.try_push q 3);
        Alcotest.(check int) "length" 2 (Server.Bounded_queue.length q);
        Server.Bounded_queue.close q;
        Alcotest.(check bool) "closed" false (Server.Bounded_queue.try_push q 4);
        Alcotest.(check (option int)) "drain 1" (Some 1) (Server.Bounded_queue.pop q);
        Alcotest.(check (option int)) "drain 2" (Some 2) (Server.Bounded_queue.pop q);
        Alcotest.(check (option int)) "end" None (Server.Bounded_queue.pop q));
    tc "pop blocks until push" `Quick (fun () ->
        let q = Server.Bounded_queue.create ~capacity:1 in
        let got = ref None in
        let th = Thread.create (fun () -> got := Server.Bounded_queue.pop q) () in
        Thread.delay 0.02;
        Alcotest.(check bool) "still blocked" true (!got = None);
        Alcotest.(check bool) "push" true (Server.Bounded_queue.try_push q 42);
        Thread.join th;
        Alcotest.(check (option int)) "received" (Some 42) !got);
  ]

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end.                                                  *)

(* Answers in normal form: rows sorted, degrees as IEEE-754 bits, values
   as their printed strings (what the wire carries). *)
let normal_of_relation rel =
  let arity = Schema.arity (Relation.schema rel) in
  let rows = ref [] in
  Relation.iter rel (fun t ->
      rows :=
        ( List.init arity (fun i -> Value.to_string (Ftuple.value t i)),
          Int64.bits_of_float (Ftuple.degree t) )
        :: !rows);
  List.sort compare !rows

let normal_of_reply name = function
  | Server.Client.Answer { rows; _ } ->
      List.sort compare
        (List.map
           (fun (r : Server.Client.row) ->
             (r.values, Int64.bits_of_float r.degree))
           rows)
  | Server.Client.Failed m -> Alcotest.failf "%s failed: %s" name m
  | Server.Client.Rejected { diagnostics; _ } ->
      Alcotest.failf "%s rejected: %s" name diagnostics
  | Server.Client.Retryable m -> Alcotest.failf "%s transient: %s" name m
  | Server.Client.Overloaded -> Alcotest.failf "%s overloaded" name
  | Server.Client.Cancelled r -> Alcotest.failf "%s cancelled: %s" name r

(* Every nesting shape of the paper over the demo R/S/T, including a
   correlated 3-block chain (same template as the equivalence suite). *)
let shapes =
  [
    ("N", "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= 20)");
    ("J", "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V <= R.U)");
    ( "JX",
      "SELECT R.ID FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V >= \
       R.U)" );
    ( "JA",
      "SELECT R.ID FROM R WHERE R.Y >= (SELECT MAX(S.Z) FROM S WHERE S.V = \
       R.U)" );
    ( "JALL",
      "SELECT R.ID FROM R WHERE R.Y <= ALL (SELECT S.Z FROM S WHERE S.V = \
       R.U)" );
    ( "chain",
      "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.Z IN \
       (SELECT T.W FROM T))" );
    ( "chain-corr",
      "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V <= R.U \
       AND S.Z IN (SELECT T.W FROM T WHERE T.P = S.V AND T.W >= R.Y))" );
  ]

let setup = Server.Demo.server_setup ~seed:11 ()

(* Sequential ground truth with the same loader and planner defaults the
   daemon uses. *)
let expected_answers () =
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  setup env catalog;
  List.map
    (fun (name, sql) ->
      let q =
        Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql
      in
      (name, normal_of_relation (Unnest.Planner.run q)))
    shapes

(* The blocked nested loop over 2000x2000 tuples runs for seconds and
   polls its cancel token per inner tuple — the workhorse for the
   deadline / cancel / overload tests. *)
let slow_sql = "SELECT R.ID FROM R WHERE R.Y > SOME (SELECT S.Z FROM S WHERE S.V <= R.U)"
let slow_setup = Server.Demo.server_setup ~seed:3 ~n_r:2000 ~n_s:2000 ()

let daemon_tests =
  [
    tc "concurrent clients match the sequential engine bit-for-bit" `Slow
      (fun () ->
        let expected = expected_answers () in
        let daemon = Server.Daemon.start ~workers:4 ~queue_capacity:32 ~setup () in
        let port = Server.Daemon.port daemon in
        let n_clients = 8 in
        let failures = Mutex.create () in
        let failed = ref [] in
        let client_run idx () =
          try
            let client = Server.Client.connect ~port () in
            (* stagger the shape order per client *)
            let rotated =
              let k = idx mod List.length shapes in
              let rec rot n l =
                if n = 0 then l
                else match l with [] -> [] | x :: tl -> rot (n - 1) (tl @ [ x ])
              in
              rot k shapes
            in
            List.iter
              (fun (name, sql) ->
                let got = normal_of_reply name (Server.Client.query client sql) in
                if got <> List.assoc name expected then
                  Alcotest.failf "client %d: %s diverged from sequential" idx
                    name)
              rotated;
            Server.Client.close client
          with e ->
            Mutex.lock failures;
            failed := Printexc.to_string e :: !failed;
            Mutex.unlock failures
        in
        let threads =
          List.init n_clients (fun i -> Thread.create (client_run i) ())
        in
        List.iter Thread.join threads;
        Server.Daemon.stop daemon;
        (match !failed with
        | [] -> ()
        | es -> Alcotest.failf "client failures: %s" (String.concat " | " es));
        Alcotest.(check int)
          "every query completed"
          (n_clients * List.length shapes)
          (Server.Daemon.counter_value daemon "requests_completed"));
    tc "deadline-exceeded returns Cancelled and frees the worker" `Slow
      (fun () ->
        let daemon =
          Server.Daemon.start ~workers:1 ~queue_capacity:4 ~setup:slow_setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        (match Server.Client.query ~deadline_ms:150 client slow_sql with
        | Server.Client.Cancelled reason ->
            Alcotest.(check bool)
              "reason mentions the deadline" true
              (contains reason "deadline")
        | _ -> Alcotest.fail "expected Cancelled");
        (* The worker must be free again: a fast query on the same
           connection completes. *)
        (match Server.Client.query client "SELECT T.ID FROM T WHERE T.W >= 0" with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "worker not freed after deadline cancel");
        Alcotest.(check int)
          "one cancelled" 1
          (Server.Daemon.counter_value daemon "requests_cancelled");
        Server.Client.close client;
        Server.Daemon.stop daemon);
    tc "queue overflow returns Overloaded; explicit cancel unwinds" `Slow
      (fun () ->
        let daemon =
          Server.Daemon.start ~workers:1 ~queue_capacity:1 ~setup:slow_setup ()
        in
        let port = Server.Daemon.port daemon in
        let a = Server.Client.connect ~port () in
        let b = Server.Client.connect ~port () in
        let c = Server.Client.connect ~port () in
        let reply_a = ref None and reply_b = ref None in
        let th_a =
          Thread.create (fun () -> reply_a := Some (Server.Client.query a slow_sql)) ()
        in
        (* wait until A's query is on the worker (queue drained again) *)
        wait_for "A accepted" (fun () ->
            Server.Daemon.counter_value daemon "requests_accepted" >= 1
            && Server.Daemon.queue_length daemon = 0);
        let th_b =
          Thread.create (fun () -> reply_b := Some (Server.Client.query b slow_sql)) ()
        in
        wait_for "B queued" (fun () -> Server.Daemon.queue_length daemon = 1);
        (* worker busy with A, queue holds B: C must be rejected *)
        (match Server.Client.query c slow_sql with
        | Server.Client.Overloaded -> ()
        | _ -> Alcotest.fail "expected Overloaded");
        Alcotest.(check bool)
          "overload counted" true
          (Server.Daemon.counter_value daemon "requests_rejected_overload" >= 1);
        (* explicit cancels unwind both the running and the queued query *)
        Server.Client.cancel a;
        Server.Client.cancel b;
        Thread.join th_a;
        Thread.join th_b;
        (match (!reply_a, !reply_b) with
        | Some (Server.Client.Cancelled ra), Some (Server.Client.Cancelled rb) ->
            Alcotest.(check bool)
              "reasons mention the client" true
              (contains ra "client" && contains rb "client")
        | _ -> Alcotest.fail "expected both slow queries cancelled");
        List.iter Server.Client.close [ a; b; c ];
        Server.Daemon.stop daemon);
    tc "every request produces a trace with queue-wait/plan/exec" `Quick
      (fun () ->
        let traces = ref [] in
        let tlock = Mutex.create () in
        let daemon =
          Server.Daemon.start ~workers:1 ~setup
            ~on_trace:(fun tr ->
              Mutex.lock tlock;
              traces := tr :: !traces;
              Mutex.unlock tlock)
            ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        (match Server.Client.query client (List.assoc "J" shapes) with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "expected an answer");
        (* on_trace fires just after the terminal frame *)
        wait_for "trace delivery" (fun () ->
            Mutex.lock tlock;
            let n = List.length !traces in
            Mutex.unlock tlock;
            n >= 1);
        let tr = List.hd !traces in
        let names = ref [] in
        Storage.Trace.iter_spans tr (fun sp ->
            names := Storage.Trace.span_name sp :: !names);
        List.iter
          (fun required ->
            Alcotest.(check bool)
              (required ^ " span present")
              true
              (List.mem required !names))
          [ "request"; "queue-wait"; "plan"; "exec" ];
        Alcotest.(check bool)
          "engine operator spans nest under exec" true
          (List.mem "sort" !names || List.mem "sweep" !names);
        Server.Client.close client;
        Server.Daemon.stop daemon);
    tc "metrics over the wire; per-daemon registries are isolated" `Quick
      (fun () ->
        let d1 = Server.Daemon.start ~workers:1 ~setup () in
        let d2 = Server.Daemon.start ~workers:1 ~setup () in
        let client = Server.Client.connect ~port:(Server.Daemon.port d1) () in
        (match Server.Client.query client (List.assoc "N" shapes) with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "expected an answer");
        let json = Server.Client.metrics_json client in
        Alcotest.(check bool)
          "d1 metrics show the request" true
          (contains json "requests_accepted");
        Alcotest.(check int)
          "d1 counted" 1
          (Server.Daemon.counter_value d1 "requests_accepted");
        Alcotest.(check int)
          "d2 untouched" 0
          (Server.Daemon.counter_value d2 "requests_accepted");
        Server.Client.close client;
        Server.Daemon.stop d1;
        Server.Daemon.stop d2);
    tc "statically invalid queries are rejected at admission" `Quick
      (fun () ->
        let daemon = Server.Daemon.start ~workers:2 ~queue_capacity:8 ~setup () in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        (* one good query so the books carry accepted traffic too *)
        (match Server.Client.query client (List.assoc "N" shapes) with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "expected an answer");
        (* semantic error: rejected with the analyzer's stable code *)
        (match Server.Client.query client "SELECT R.NOPE FROM R" with
        | Server.Client.Rejected { code; diagnostics } ->
            Alcotest.(check string) "code" "FSQL011" code;
            Alcotest.(check bool) "caret render" true
              (contains diagnostics "error[FSQL011]")
        | _ -> Alcotest.fail "expected Rejected for unknown attribute");
        (* parse error: same path, different code *)
        (match Server.Client.query client "SELECT FROM R" with
        | Server.Client.Rejected { code; _ } ->
            Alcotest.(check string) "code" "FSQL002" code
        | _ -> Alcotest.fail "expected Rejected for parse error");
        Server.Client.close client;
        Server.Daemon.stop daemon;
        let c name = Server.Daemon.counter_value daemon name in
        Alcotest.(check int) "rejections counted" 2 (c "requests_rejected_static");
        (* rejection happens before admission: the books still balance *)
        Alcotest.(check int) "accepted only the good query" 1
          (c "requests_accepted");
        Alcotest.(check int) "books balance"
          (c "requests_accepted")
          (c "requests_completed" + c "requests_cancelled"
         + c "requests_failed" + c "requests_failed_transient"));
    tc "graceful shutdown drains and is idempotent" `Quick (fun () ->
        let daemon = Server.Daemon.start ~workers:2 ~setup () in
        let port = Server.Daemon.port daemon in
        let client = Server.Client.connect ~port () in
        (match Server.Client.query client (List.assoc "N" shapes) with
        | Server.Client.Answer _ -> ()
        | _ -> Alcotest.fail "expected an answer");
        Server.Daemon.stop daemon;
        Server.Daemon.stop daemon;
        (* the listener is gone *)
        (match Server.Client.connect ~port () with
        | exception Unix.Unix_error _ -> ()
        | c ->
            (* a TIME_WAIT accept race can let one connect through, but no
               request may complete *)
            (match Server.Client.query c "SELECT T.ID FROM T" with
            | exception _ -> Server.Client.close c
            | Server.Client.Failed _ -> Server.Client.close c
            | _ -> Alcotest.fail "server answered after stop")));
  ]

let suites =
  [
    ("server wire", wire_tests);
    ("server queue", queue_tests);
    ("server daemon", daemon_tests);
  ]
