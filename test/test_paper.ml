(** Fixtures straight from the paper: Example 4.1's intermediate and final
    tables, the running example queries (Queries 1-5), and the Appendix
    discussion of discrete distributions. *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case

let q2_sql =
  "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN (SELECT \
   M.INCOME FROM M WHERE M.AGE = 'middle age')"

let example_4_1_T =
  tc "temporary relation T = {about 40K: 0.4, high: 1}" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let catalog = Test_util.paper_db env in
      let q =
        Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
          "SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'"
      in
      let t = Unnest.Naive_eval.query q in
      let ans = Test_util.answer_of_relation t in
      Alcotest.(check int) "two tuples" 2 (List.length ans);
      List.iter
        (fun (vs, d) ->
          if Value.equal vs.(0) (Test_util.term "about 40K") then
            Test_util.check_degree "about 40K" 0.4 d
          else if Value.equal vs.(0) (Test_util.term "high") then
            Test_util.check_degree "high" 1.0 d
          else Alcotest.failf "unexpected value %s" (Value.to_string vs.(0)))
        ans)

let example_4_1_answer =
  tc "answer = {Ann: 0.7, Betty: 0.7} under every strategy" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let catalog = Test_util.paper_db env in
      let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper q2_sql in
      let naive, nl, merged = Test_util.run_all_strategies q in
      List.iter
        (fun (label, rel) ->
          let ans = Test_util.answer_of_relation rel in
          Alcotest.(check int) (label ^ ": two rows") 2 (List.length ans);
          List.iter
            (fun (vs, d) ->
              match vs.(0) with
              | Value.Str ("Ann" | "Betty") ->
                  Test_util.check_degree (label ^ " degree") 0.7 d
              | v -> Alcotest.failf "unexpected name %s" (Value.to_string v))
            ans)
        [ ("naive", naive); ("nested-loop", nl); ("merge", merged) ])

let example_4_1_with_clause =
  tc "WITH D > 0.7 empties Example 4.1's answer; WITH D >= 0.7 keeps it" `Quick
    (fun () ->
      let env = Test_util.fresh_env () in
      let catalog = Test_util.paper_db env in
      let run sql =
        Unnest.Planner.run
          (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql)
      in
      Alcotest.(check int) "strict above" 0
        (Relation.cardinality (run (q2_sql ^ " WITH D > 0.75")));
      Alcotest.(check int) "non-strict below" 2
        (Relation.cardinality (run (q2_sql ^ " WITH D >= 0.65")));
      Alcotest.(check int) "cut between the 0.3 and 0.7 candidates" 2
        (Relation.cardinality (run (q2_sql ^ " WITH D >= 0.5"))))

let query_1_flat =
  tc "Query 1: flat fuzzy join on AGE with income filter" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let catalog = Test_util.paper_db env in
      let q =
        Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
          "SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE AND M.INCOME > \
           'medium high'"
      in
      Alcotest.(check string) "flat" "flat"
        (Unnest.Classify.to_string (Unnest.Classify.classify q));
      let ans = Test_util.answer_of_relation (Unnest.Naive_eval.query q) in
      Alcotest.(check bool) "nonempty" true (List.length ans > 0);
      List.iter
        (fun (_, d) -> Alcotest.(check bool) "degree in (0,1]" true (d > 0.0 && d <= 1.0))
        ans;
      let degree_of f m =
        List.find_map
          (fun (vs, d) ->
            match (vs.(0), vs.(1)) with
            | Value.Str f', Value.Str m' when f' = f && m' = m -> Some d
            | _ -> None)
          ans
      in
      (* Betty is "middle age" like Bill, whose income "high" certainly
         exceeds "medium high": possibility 1. *)
      (match degree_of "Betty" "Bill" with
      | Some d -> Test_util.check_degree "(Betty, Bill)" 1.0 d
      | None -> Alcotest.fail "missing (Betty, Bill)");
      (* Cathy ("about 50") matches Allen(202) on age, but "about 40K" cannot
         exceed "medium high" (disjoint supports): pair excluded. *)
      Alcotest.(check bool) "no (Cathy, Allen)" true
        (degree_of "Cathy" "Allen" = None))

let query_4_antijoin =
  tc "Query 4 shape: employees whose income avoids the other dept" `Quick
    (fun () ->
      let env = Test_util.fresh_env () in
      let catalog = Test_util.paper_db env in
      let sql =
        "SELECT F.NAME FROM F WHERE F.INCOME NOT IN (SELECT M.INCOME FROM M \
         WHERE M.AGE = F.AGE)"
      in
      let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
      let naive, nl, merged = Test_util.run_all_strategies q in
      Test_util.check_same_answer "naive vs nl" naive nl;
      Test_util.check_same_answer "naive vs merge" naive merged)

let query_5_aggregate =
  tc "Query 5 shape: income above MAX of matching group" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let catalog = Test_util.paper_db env in
      let sql =
        "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M \
         WHERE M.AGE = F.AGE)"
      in
      let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
      let naive, nl, merged = Test_util.run_all_strategies q in
      Test_util.check_same_answer "naive vs nl" naive nl;
      Test_util.check_same_answer "naive vs merge" naive merged)

let appendix_example =
  tc "Appendix: discrete join yields x1/1 and x2/0.8" `Quick (fun () ->
      (* R = {(x1,y1), (x2,y2)}, S.Y = 1/y1 + 0.8/y2; both x1 and x2 are
         possible answers with possibilities 1 and 0.8. *)
      let env = Test_util.fresh_env () in
      let catalog = Catalog.create env in
      let r_schema =
        Schema.make ~name:"R" [ ("X", Schema.TStr); ("Y", Schema.TNum) ]
      in
      let s_schema = Schema.make ~name:"S" [ ("Y", Schema.TNum); ("Z", Schema.TStr) ] in
      let r =
        Relation.of_list env r_schema
          [
            Test_util.tuple [ Value.Str "x1"; Value.crisp_num 1.0 ] 1.0;
            Test_util.tuple [ Value.Str "x2"; Value.crisp_num 2.0 ] 1.0;
          ]
      in
      let s =
        Relation.of_list env s_schema
          [
            Test_util.tuple
              [ Value.Fuzzy (Fuzzy.Possibility.discrete [ (1.0, 1.0); (2.0, 0.8) ]);
                Value.Str "z1" ]
              1.0;
          ]
      in
      Catalog.add catalog r;
      Catalog.add catalog s;
      let q =
        Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
          "SELECT R.X FROM R, S WHERE R.Y = S.Y"
      in
      let ans = Test_util.answer_of_relation (Unnest.Naive_eval.query q) in
      Alcotest.(check int) "two possible answers" 2 (List.length ans);
      List.iter
        (fun (vs, d) ->
          match vs.(0) with
          | Value.Str "x1" -> Test_util.check_degree "x1" 1.0 d
          | Value.Str "x2" -> Test_util.check_degree "x2" 0.8 d
          | v -> Alcotest.failf "unexpected %s" (Value.to_string v))
        ans)

let jall_paper_semantics =
  tc "d(v <= ALL F) formula on a hand case" `Quick (fun () ->
      (* F = {10: 1, 20: 0.5}; v = 15 crisp.
         d(15 <= ALL F) = 1 - max(min(1, 1 - d(15<=10)), min(0.5, 1 - d(15<=20)))
                       = 1 - max(min(1,1), min(0.5,0)) = 0. *)
      let env = Test_util.fresh_env () in
      let catalog = Catalog.create env in
      let r_schema = Schema.make ~name:"R" [ ("ID", Schema.TNum); ("Y", Schema.TNum) ] in
      let s_schema = Schema.make ~name:"S" [ ("Z", Schema.TNum) ] in
      Catalog.add catalog
        (Relation.of_list env r_schema
           [ Test_util.tuple [ Value.Int 1; Value.crisp_num 15.0 ] 1.0 ]);
      Catalog.add catalog
        (Relation.of_list env s_schema
           [
             Test_util.tuple [ Value.crisp_num 10.0 ] 1.0;
             Test_util.tuple [ Value.crisp_num 20.0 ] 0.5;
           ]);
      let run sql =
        Test_util.answer_of_relation
          (Unnest.Naive_eval.query
             (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql))
      in
      (match run "SELECT R.ID FROM R WHERE R.Y <= ALL (SELECT S.Z FROM S)" with
      | [] -> ()
      | ans -> Alcotest.failf "expected empty, got %a" Test_util.pp_answer ans);
      match run "SELECT R.ID FROM R WHERE R.Y >= ALL (SELECT S.Z FROM S)" with
      | [ (_, d) ] -> Test_util.check_degree "1 - 0.5" 0.5 d
      | ans -> Alcotest.failf "expected one row, got %a" Test_util.pp_answer ans)

let suites =
  [
    ( "paper.examples",
      [
        example_4_1_T; example_4_1_answer; example_4_1_with_clause; query_1_flat;
        query_4_antijoin; query_5_aggregate; appendix_example;
        jall_paper_semantics;
      ] );
  ]
