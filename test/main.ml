let () =
  Alcotest.run "frepro"
    (Test_fuzzy.suites @ Test_storage.suites @ Test_relational.suites
   @ Test_joins.suites @ Test_sql.suites @ Test_equivalence.suites
   @ Test_paper.suites @ Test_extensions.suites @ Test_grouping.suites
   @ Test_frontend.suites @ Test_explain.suites @ Test_observability.suites
   @ Test_server.suites @ Test_telemetry.suites @ Test_fault.suites
   @ Test_batch.suites @ Test_check.suites @ Test_recovery.suites
   @ Test_replication.suites)
