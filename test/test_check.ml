(** Tests of the static analyzer: the FSQL0xx code table, caret-underlined
    rendering, stable code assignment for historically-rejected queries,
    nearest-name suggestions, multi-error accumulation, the satisfiability
    warnings (FSQL030-033), and two qcheck soundness properties: queries
    with no Error diagnostic execute without raising, and queries the
    fail-fast binder rejects carry at least one Error with a tabled code. *)

open Frepro
open Fuzzysql

let tc = Alcotest.test_case

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ctx env =
  Check.ctx ~catalog:(Test_util.paper_db env) ~terms:Fuzzy.Term.paper

let diags_of env sql =
  snd (Check.check_string ~classify:Unnest.Classify.shape_hint (ctx env) sql)

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let severity_of code =
  match List.find_opt (fun (c, _, _) -> c = code) Check.code_table with
  | Some (_, sev, _) -> Some sev
  | None -> None

(* ---------- code table ---------- *)

let expected_codes =
  [
    ("FSQL001", Diagnostic.Error); ("FSQL002", Diagnostic.Error);
    ("FSQL010", Diagnostic.Error); ("FSQL011", Diagnostic.Error);
    ("FSQL012", Diagnostic.Error); ("FSQL013", Diagnostic.Error);
    ("FSQL014", Diagnostic.Error); ("FSQL015", Diagnostic.Error);
    ("FSQL016", Diagnostic.Error); ("FSQL018", Diagnostic.Error);
    ("FSQL019", Diagnostic.Error); ("FSQL020", Diagnostic.Error);
    ("FSQL021", Diagnostic.Error); ("FSQL022", Diagnostic.Error);
    ("FSQL023", Diagnostic.Error); ("FSQL024", Diagnostic.Error);
    ("FSQL025", Diagnostic.Error); ("FSQL026", Diagnostic.Error);
    ("FSQL027", Diagnostic.Error); ("FSQL030", Diagnostic.Warning);
    ("FSQL031", Diagnostic.Warning); ("FSQL032", Diagnostic.Warning);
    ("FSQL033", Diagnostic.Warning);
  ]

let table_tests =
  [
    tc "code table is the stable golden set" `Quick (fun () ->
        let actual =
          List.map (fun (c, sev, _) -> (c, sev)) Check.code_table
        in
        Alcotest.(check int) "23 codes" 23 (List.length actual);
        List.iter2
          (fun (ec, esev) (ac, asev) ->
            Alcotest.(check string) "code" ec ac;
            Alcotest.(check bool)
              (ec ^ " severity")
              (esev = Diagnostic.Error)
              (asev = Diagnostic.Error))
          expected_codes actual);
    tc "every code has a non-empty description" `Quick (fun () ->
        List.iter
          (fun (c, _, desc) ->
            Alcotest.(check bool) (c ^ " described") true (String.length desc > 0))
          Check.code_table);
  ]

(* ---------- rendering ---------- *)

let render_tests =
  [
    tc "caret render golden: unknown relation" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let sql = "SELECT F.NAME FROM F, NOSUCH" in
        let ds = diags_of env sql in
        Alcotest.(check (list string)) "codes" [ "FSQL010" ] (codes ds);
        let expected =
          "error[FSQL010]: unknown relation NOSUCH\n\
          \  --> line 1, column 23\n\
          \   1 | SELECT F.NAME FROM F, NOSUCH\n\
          \     |                       ^^^^^^"
        in
        Alcotest.(check string) "render"
          expected
          (Diagnostic.render ~source:sql (List.hd ds)));
    tc "caret render: multi-line source points at the right line" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        let sql = "SELECT F.NAME\nFROM F\nWHERE F.AGE = 'bogus term'" in
        let ds = diags_of env sql in
        let r = Diagnostic.render ~source:sql (List.hd ds) in
        Alcotest.(check bool) "line 3" true (contains r "--> line 3");
        Alcotest.(check bool) "shows line text" true
          (contains r "   3 | WHERE F.AGE = 'bogus term'");
        Alcotest.(check bool) "has carets" true (contains r "^^^"));
    tc "render_all sorts by position and separates blocks" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let sql = "SELECT F.NOPE, F.NADA FROM F" in
        let ds = diags_of env sql in
        let all = Diagnostic.render_all ~source:sql ds in
        let idx sub =
          let rec go j =
            if j + String.length sub > String.length all then -1
            else if String.sub all j (String.length sub) = sub then j
            else go (j + 1)
          in
          go 0
        in
        let nope = idx "unknown attribute F.NOPE"
        and nada = idx "unknown attribute F.NADA" in
        Alcotest.(check bool) "both rendered" true (nope >= 0 && nada >= 0);
        Alcotest.(check bool) "source order" true (nope < nada);
        Alcotest.(check bool) "blank-line separated" true
          (contains all "\n\n"));
    tc "summary counts" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        Alcotest.(check string) "no issues" "no issues"
          (Diagnostic.summary (diags_of env "SELECT F.NAME FROM F"));
        let ds = diags_of env "SELECT F.NOPE, F.NADA FROM F" in
        Alcotest.(check string) "2 errors" "2 errors" (Diagnostic.summary ds));
  ]

(* ---------- stable codes for rejected queries ---------- *)

(* Every query the old front end rejected (by raising) must now map to a
   stable diagnostic code. The left column is the contract. *)
let rejected_queries =
  [
    ("FSQL002", "SELECT FROM R");
    ("FSQL002", "SELECT R.X R.Y FROM R");
    ("FSQL002", "SELECT R.X FROM R WHERE");
    ("FSQL002", "SELECT R.X FROM R WITH D = 0.5");
    ("FSQL001", "SELECT R.X FROM R WHERE R.Y = 'unterminated");
    ("FSQL002", "SELECT R.X FROM R WHERE R.Y IN SELECT S.Z FROM S");
    ("FSQL002", "SELECT R.X FROM R trailing garbage");
    ("FSQL010", "SELECT F.NAME FROM NOSUCH");
    ("FSQL011", "SELECT F.NOPE FROM F");
    ("FSQL021", "SELECT F.NAME FROM F WHERE F.AGE = 'no such term'");
    ("FSQL018", "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE, M.INCOME FROM M)");
    ("FSQL019", "SELECT F.NAME FROM F WHERE F.AGE > (SELECT M.AGE FROM M)");
    ("FSQL012", "SELECT F.NAME FROM F, M WHERE NAME = 'x'");
    ("FSQL023", "SELECT F.NAME FROM F WITH D >= 1.5");
    ("FSQL027", "SELECT COUNT(ID) FROM F HAVING AGE > 3");
    ("FSQL015", "SELECT COUNT(*) FROM F");
    ("FSQL016", "SELECT F.NAME FROM F WHERE COUNT(F.AGE) > 1");
    ("FSQL020", "SELECT F.NAME FROM F WHERE F.NAME = 35");
    ("FSQL022", "SELECT F.NAME FROM F WHERE F.NAME = ABOUT(35)");
    ("FSQL024", "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE FROM M LIMIT 2)");
    ("FSQL026",
     "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE FROM M HAVING COUNT(F.ID) > 1)");
  ]

let code_tests =
  [
    tc "rejected queries carry their stable code" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        List.iter
          (fun (code, sql) ->
            let ds = diags_of env sql in
            let errs = Diagnostic.errors ds in
            if errs = [] then Alcotest.failf "no error for %s" sql;
            if not (List.mem code (codes errs)) then
              Alcotest.failf "expected %s for %s, got %s" code sql
                (String.concat "," (codes errs)))
          rejected_queries);
    tc "every emitted code is in the table with matching severity" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        List.iter
          (fun (_, sql) ->
            List.iter
              (fun d ->
                match severity_of d.Diagnostic.code with
                | Some sev ->
                    Alcotest.(check bool)
                      (d.Diagnostic.code ^ " severity matches table")
                      true
                      (sev = d.Diagnostic.severity)
                | None ->
                    Alcotest.failf "code %s not in table (query %s)"
                      d.Diagnostic.code sql)
              (diags_of env sql))
          rejected_queries);
  ]

(* ---------- suggestions and accumulation ---------- *)

let suggestion_tests =
  [
    tc "misspelled attribute suggests nearest name" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        match diags_of env "SELECT F.NAM FROM F" with
        | [ d ] ->
            Alcotest.(check string) "code" "FSQL011" d.Diagnostic.code;
            Alcotest.(check bool) "hint" true
              (match d.Diagnostic.hint with
              | Some h -> contains h "NAME"
              | None -> false)
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    tc "misspelled linguistic term suggests nearest term" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        match diags_of env "SELECT F.NAME FROM F WHERE F.AGE = 'midle age'" with
        | [ d ] ->
            Alcotest.(check string) "code" "FSQL021" d.Diagnostic.code;
            Alcotest.(check bool) "hint" true
              (match d.Diagnostic.hint with
              | Some h -> contains h "middle age"
              | None -> false)
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    tc "distant name gets no hint" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        match diags_of env "SELECT F.NAME FROM F, ZQWVXK" with
        | [ d ] ->
            Alcotest.(check bool) "no hint" true (d.Diagnostic.hint = None)
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    tc "multiple independent errors accumulate in one pass" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let ds =
          diags_of env
            "SELECT F.NOPE, F.NADA FROM F WHERE F.AGE = 'bogus term'"
        in
        Alcotest.(check (list string)) "codes in source order"
          [ "FSQL011"; "FSQL011"; "FSQL021" ]
          (codes ds));
  ]

(* ---------- satisfiability warnings ---------- *)

let bound_of env sql =
  match Check.check_string ~classify:Unnest.Classify.shape_hint (ctx env) sql with
  | Some q, ds -> (q, ds)
  | None, ds ->
      Alcotest.failf "should bind: %s\n%s" sql
        (Diagnostic.render_all ~source:sql ds)

let rows q = List.length (Relational.Relation.to_list (Unnest.Planner.run q))

let warning_tests =
  [
    tc "FSQL030: support disjoint from loaded domain" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q, ds = bound_of env "SELECT F.NAME FROM F WHERE F.ID = 999" in
        Alcotest.(check (list string)) "codes" [ "FSQL030" ] (codes ds);
        Alcotest.(check bool) "warning" true
          ((List.hd ds).Diagnostic.severity = Diagnostic.Warning);
        Alcotest.(check int) "sound: no rows" 0 (rows q));
    tc "FSQL030 also fires for ordered comparators" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let _, ds = bound_of env "SELECT F.NAME FROM F WHERE F.ID > 200" in
        Alcotest.(check (list string)) "codes" [ "FSQL030" ] (codes ds));
    tc "FSQL031: threshold above the literal's height" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q, ds =
          bound_of env
            "SELECT F.NAME FROM F WHERE F.ID = DIST(101:0.5) WITH D >= 0.8"
        in
        Alcotest.(check (list string)) "codes" [ "FSQL031" ] (codes ds);
        Alcotest.(check int) "sound: no rows" 0 (rows q));
    tc "FSQL032: contradictory conjunction on a crisp attribute" `Quick
      (fun () ->
        let env = Test_util.fresh_env () in
        let q, ds =
          bound_of env
            "SELECT F.NAME FROM F WHERE F.ID > 103 AND F.ID < 102"
        in
        Alcotest.(check (list string)) "codes" [ "FSQL032" ] (codes ds);
        Alcotest.(check int) "sound: no rows" 0 (rows q));
    tc "FSQL032 stays quiet on fuzzy attributes (it would be unsound)"
      `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let _, ds =
          bound_of env
            "SELECT F.NAME FROM F WHERE F.AGE > 50 AND F.AGE < 30"
        in
        Alcotest.(check (list string)) "no warning" [] (codes ds));
    tc "FSQL032 stays quiet when the region is satisfiable" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let _, ds =
          bound_of env
            "SELECT F.NAME FROM F WHERE F.ID > 102 AND F.ID < 104"
        in
        Alcotest.(check (list string)) "no warning" [] (codes ds));
    tc "FSQL033: general nested shape warns with a cost hint" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let _, ds =
          bound_of env
            "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M) \
             AND F.AGE IN (SELECT M.AGE FROM M)"
        in
        Alcotest.(check (list string)) "codes" [ "FSQL033" ] (codes ds);
        let d = List.hd ds in
        Alcotest.(check bool) "names the shape" true
          (contains d.Diagnostic.message "general nested");
        Alcotest.(check bool) "cost hint" true
          (match d.Diagnostic.hint with
          | Some h -> contains h "scan cost"
          | None -> false));
    tc "unnestable nesting does not warn" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let _, ds =
          bound_of env
            "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M)"
        in
        Alcotest.(check (list string)) "no warning" [] (codes ds));
    tc "clean paper query has no diagnostics" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        Alcotest.(check (list string)) "no issues" []
          (codes
             (diags_of env
                "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND \
                 F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle \
                 age')")));
  ]

(* ---------- qcheck soundness ---------- *)

(* Random queries over the paper catalog, spanning clean, misspelled, and
   structurally bad statements. *)
let sql_gen =
  let open QCheck.Gen in
  let rel = oneofl [ "F"; "M" ] in
  let attr = oneofl [ "ID"; "NAME"; "AGE"; "INCOME"; "NOPE" ] in
  let op = oneofl [ "="; "<"; ">"; "<="; ">="; "<>" ] in
  let lit =
    oneofl
      [
        "35"; "101"; "999"; "'Ann'"; "'medium young'"; "'middle age'";
        "'no such term'"; "'midle age'"; "ABOUT(40)"; "DIST(101:0.5)";
      ]
  in
  let pred r =
    map3 (fun a o l -> Printf.sprintf "%s.%s %s %s" r a o l) attr op lit
  in
  let flat =
    rel >>= fun r ->
    pred r >>= fun p ->
    return (Printf.sprintf "SELECT %s.NAME FROM %s WHERE %s" r r p)
  in
  let conj =
    rel >>= fun r ->
    pred r >>= fun p1 ->
    pred r >>= fun p2 ->
    return (Printf.sprintf "SELECT %s.NAME FROM %s WHERE %s AND %s" r r p1 p2)
  in
  let nested =
    attr >>= fun a ->
    attr >>= fun b ->
    return
      (Printf.sprintf "SELECT F.NAME FROM F WHERE F.%s IN (SELECT M.%s FROM M)"
         a b)
  in
  let with_d =
    rel >>= fun r ->
    pred r >>= fun p ->
    oneofl [ "0.3"; "0.8"; "1.5" ] >>= fun d ->
    return
      (Printf.sprintf "SELECT %s.NAME FROM %s WHERE %s WITH D >= %s" r r p d)
  in
  let broken =
    oneofl
      [
        "SELECT FROM F"; "SELECT F.NAME FROM"; "SELECT F.NAME FROM F WHERE";
        "SELECT F.NAME FROM F WHERE F.AGE = 'oops";
        "SELECT NAME FROM F, M WHERE NAME = 'x'";
      ]
  in
  frequency [ (3, flat); (2, conj); (2, nested); (2, with_d); (1, broken) ]

let qcheck_env = lazy (Test_util.fresh_env ~pool_pages:512 ())

let qcheck_ctx = lazy (ctx (Lazy.force qcheck_env))

let prop_accept_runs sql =
  let c = Lazy.force qcheck_ctx in
  match Check.check_string ~classify:Unnest.Classify.shape_hint c sql with
  | None, ds ->
      (* Rejected statements must say why, with an Error-severity code. *)
      Diagnostic.has_errors ds
  | Some q, ds ->
      if Diagnostic.has_errors ds then
        QCheck.Test.fail_reportf "bound despite errors: %s" sql
      else (
        (try ignore (Unnest.Planner.run ~strategy:Unnest.Planner.Auto q)
         with e ->
           QCheck.Test.fail_reportf "accepted query raised %s: %s"
             (Printexc.to_string e) sql);
        true)

let prop_reject_has_code sql =
  let c = Lazy.force qcheck_ctx in
  let env = Lazy.force qcheck_env in
  let old_rejects =
    match Test_util.bind_paper_query env sql with
    | _ -> false
    | exception _ -> true
  in
  if not old_rejects then true
  else
    let _, ds = Check.check_string c sql in
    let errs = Diagnostic.errors ds in
    errs <> []
    && List.for_all
         (fun d ->
           match severity_of d.Diagnostic.code with
           | Some Diagnostic.Error -> true
           | _ -> false)
         errs

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:300 ~name:"no-Error queries execute without raising"
        (QCheck.make ~print:Fun.id sql_gen)
        prop_accept_runs;
      QCheck.Test.make ~count:300
        ~name:"binder-rejected queries yield Error diagnostics with tabled codes"
        (QCheck.make ~print:Fun.id sql_gen)
        prop_reject_has_code;
    ]

let suites =
  [
    ("check.codes", table_tests);
    ("check.render", render_tests);
    ("check.stable-codes", code_tests);
    ("check.suggest", suggestion_tests);
    ("check.warnings", warning_tests);
    ("check.qcheck", qcheck_tests);
  ]
