(** Bit-identity of the vectorized columnar executor.

    The batch engine's contract is exact: same answer tuples, same IEEE-754
    membership-degree bits as the scalar engine, for every query shape, at
    any domain count. These properties check the contract at both levels —
    the trapezoid kernels against the boxed [Value.compare_degree] path,
    and whole plans ([Planner.run ~batch:true]) against the scalar run
    across every unnestable shape, sequential and domain-parallel. *)

open Frepro
open Frepro.Relational

let bits = Int64.bits_of_float

(* ---------- kernel-level bit identity ---------- *)

let arb_trap =
  let gen st =
    let rng = Random.State.make [| QCheck.Gen.int_bound 1_000_000 st |] in
    Workload.Gen.random_trapezoid rng ~lo:0.0 ~hi:50.0
  in
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Fuzzy.Trapezoid.pp t)
    gen

let arb_trap_pair = QCheck.pair arb_trap arb_trap

let all_ops =
  Fuzzy.Fuzzy_compare.
    [ (Eq, "="); (Ne, "<>"); (Ge, ">="); (Le, "<="); (Gt, ">"); (Lt, "<") ]

let cmp_of_traps op u v =
  let open Fuzzy.Trapezoid in
  Relational.Batch_kernels.cmp op u.a u.b u.c u.d v.a v.b v.c v.d

let kernel_cmp_prop =
  QCheck.Test.make ~count:500 ~name:"cmp kernels = Value.compare_degree bits"
    arb_trap_pair (fun (u, v) ->
      let vu = Value.Fuzzy (Fuzzy.Possibility.trap u)
      and vv = Value.Fuzzy (Fuzzy.Possibility.trap v) in
      List.for_all
        (fun (op, name) ->
          let scalar = Value.compare_degree op vu vv in
          let batch = cmp_of_traps op u v in
          if bits scalar <> bits batch then
            QCheck.Test.fail_reportf
              "op %s: scalar %.17g (%Lx) <> kernel %.17g (%Lx) for %a vs %a"
              name scalar (bits scalar) batch (bits batch)
              Fuzzy.Trapezoid.pp u Fuzzy.Trapezoid.pp v
          else true)
        all_ops)

(* Crisp numbers travel through the kernels as degenerate trapezoids; the
   crisp/crisp and crisp/trap cases must match the boxed dispatch too. *)
let kernel_crisp_prop =
  QCheck.Test.make ~count:500 ~name:"cmp kernels: crisp and mixed operands"
    QCheck.(triple (int_bound 50) (int_bound 50) arb_trap)
    (fun (a, b, t) ->
      let rows =
        [|
          Ftuple.make [| Value.Int a |] 1.0;
          Ftuple.make [| Value.Int b |] 1.0;
          Ftuple.make [| Value.Fuzzy (Fuzzy.Possibility.trap t) |] 1.0;
        |]
      in
      let batch = Batch.of_rows rows in
      let col = Batch.col batch 0 in
      List.for_all
        (fun (op, name) ->
          List.for_all
            (fun (i, j) ->
              if not (Batch.ok col i && Batch.ok col j) then true
              else
                let scalar =
                  Value.compare_degree op
                    (Ftuple.value rows.(i) 0)
                    (Ftuple.value rows.(j) 0)
                in
                let k = Batch_kernels.cmp_at op col i col j in
                if bits scalar <> bits k then
                  QCheck.Test.fail_reportf
                    "op %s rows (%d,%d): scalar %.17g <> kernel %.17g" name i
                    j scalar k
                else true)
            [ (0, 1); (1, 0); (0, 2); (2, 0); (0, 0) ])
        all_ops)

let mem_prop =
  QCheck.Test.make ~count:500 ~name:"mem_into = Trapezoid.mem bits"
    (QCheck.pair arb_trap (QCheck.list_of_size (QCheck.Gen.return 64)
                             (QCheck.float_range (-10.0) 60.0)))
    (fun (t, xs) ->
      let xs = Array.of_list xs in
      let n = Array.length xs in
      let dst = Array.make (Int.max 1 n) 0.0 in
      Batch_kernels.mem_into t ~xs ~n ~dst;
      Array.for_all
        (fun i -> bits dst.(i) = bits (Fuzzy.Trapezoid.mem t xs.(i)))
        (Array.init n Fun.id))

let tnorm_prop =
  QCheck.Test.make ~count:500 ~name:"conj_into / disj_reduce = Degree folds"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.return 50) (QCheck.float_range 0.0 1.0))
       (QCheck.list_of_size (QCheck.Gen.return 50) (QCheck.float_range 0.0 1.0)))
    (fun (a, b) ->
      let src = Array.of_list a and acc = Array.of_list b in
      let n = Array.length src in
      let expect =
        Array.init n (fun i -> Fuzzy.Degree.conj acc.(i) src.(i))
      in
      let expect_max = Array.fold_left Fuzzy.Degree.disj 0.0 expect in
      Batch_kernels.conj_into ~src ~dst:acc ~n;
      Array.for_all (fun i -> bits acc.(i) = bits expect.(i))
        (Array.init n Fun.id)
      && bits (Batch_kernels.disj_reduce ~xs:acc ~n) = bits expect_max)

(* ---------- whole-plan bit identity across shapes ---------- *)

(* Exact answers: printed values plus raw degree bits, as a sorted multiset
   (the engines may emit tie rows in different orders after their sorts). *)
let answer_bits rel =
  Relation.to_list rel
  |> List.map (fun t ->
         ( Array.to_list (Array.map Value.to_string t.Ftuple.values),
           Int64.bits_of_float (Ftuple.degree t) ))
  |> List.sort compare

let pp_bits ppf ans =
  List.iter
    (fun (vs, d) ->
      Format.fprintf ppf "(%s | %Lx)@ " (String.concat ", " vs) d)
    ans

let check_engines kind spec =
  let catalog = Test_equivalence.make_db spec in
  let rng = Random.State.make [| spec.Test_equivalence.seed + 29 |] in
  let sql = Test_equivalence.template rng kind in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
  let scalar = Unnest.Planner.run ~mem_pages:8 q in
  let batch1 = Unnest.Planner.run ~mem_pages:8 ~batch:true q in
  let batch4 = Unnest.Planner.run ~mem_pages:8 ~batch:true ~domains:4 q in
  let a = answer_bits scalar
  and b1 = answer_bits batch1
  and b4 = answer_bits batch4 in
  if a <> b1 then
    QCheck.Test.fail_reportf
      "scalar <> batch (domains 1) for %s@.scalar: %a@.batch: %a" sql pp_bits
      a pp_bits b1;
  if a <> b4 then
    QCheck.Test.fail_reportf
      "scalar <> batch (domains 4) for %s@.scalar: %a@.batch: %a" sql pp_bits
      a pp_bits b4;
  true

let engine_prop name kind ?discrete_ok () =
  QCheck.Test.make ~count:40 ~name
    (Test_equivalence.arb_spec ?discrete_ok ())
    (check_engines kind)

let engine_props =
  [
    engine_prop "batch = scalar bits: type N" `N ();
    engine_prop "batch = scalar bits: type J" `J ();
    engine_prop "batch = scalar bits: type JX" `JX ();
    engine_prop "batch = scalar bits: type JALL" `JALL ();
    engine_prop "batch = scalar bits: type JSOME" `JSOME ();
    engine_prop "batch = scalar bits: type JA" `JA ~discrete_ok:false ();
    engine_prop "batch = scalar bits: chain" `Chain ();
    engine_prop "batch = scalar bits: EXISTS" `Exists ();
  ]

(* ---------- deterministic regressions ---------- *)

let tc = Alcotest.test_case

let regression_cases =
  [
    tc "sweep_sorted ~batch bridges identical rng lists" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let spec = { Workload.Gen.default_spec with n = 500; groups = 70 } in
        let r, s =
          Workload.Gen.join_pair env ~seed:5 ~outer:spec ~inner:spec
        in
        let sorted_r = Join_merge.sort_by r ~attr:1 ~mem_pages:8 in
        let sorted_s = Join_merge.sort_by s ~attr:1 ~mem_pages:8 in
        let collect batch =
          let acc = ref [] in
          Join_merge.sweep_sorted ~batch ~outer:sorted_r ~inner:sorted_s
            ~outer_attr:1 ~inner_attr:1 ~mem_pages:8
            ~f:(fun t rng ->
              acc :=
                ( Value.to_string (Ftuple.value t 0),
                  List.map
                    (fun (s, d) ->
                      (Value.to_string (Ftuple.value s 0), bits d))
                    rng )
                :: !acc)
            ();
          List.sort compare !acc
        in
        let a = collect false and b = collect true in
        Alcotest.(check int) "same emission count" (List.length a)
          (List.length b);
        if a <> b then Alcotest.fail "scalar and batch rng lists differ");
    tc "sort_support: same key order as the scalar sort" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let spec = { Workload.Gen.default_spec with n = 700; groups = 50 } in
        let r =
          Workload.Gen.relation env ~seed:9 ~name:"R" spec
        in
        let keys rel =
          List.map
            (fun t -> Value.support (Ftuple.value t 1))
            (Relation.to_list rel)
        in
        let scalar = Join_merge.sort_by r ~attr:1 ~mem_pages:8 in
        let batch = Join_merge.sort_by ~batch:true r ~attr:1 ~mem_pages:8 in
        let ks = keys scalar and kb = keys batch in
        Alcotest.(check int) "same length" (List.length ks) (List.length kb);
        List.iter2
          (fun a b ->
            if Fuzzy.Interval.compare_lex a b <> 0 then
              Alcotest.failf "key order diverges: %a vs %a" Fuzzy.Interval.pp
                a Fuzzy.Interval.pp b)
          ks kb);
    tc "batch engine composes with cancellation" `Quick (fun () ->
        let spec =
          {
            Test_equivalence.seed = 3;
            n_r = 15;
            n_s = 15;
            n_t = 5;
            discrete_ok = false;
          }
        in
        let catalog = Test_equivalence.make_db spec in
        let q =
          Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
            "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V \
             <= R.U)"
        in
        let cancel = Storage.Cancel.create () in
        Storage.Cancel.cancel cancel ~reason:"test";
        (match Unnest.Planner.run ~batch:true ~cancel q with
        | _ -> Alcotest.fail "expected Cancelled"
        | exception Storage.Cancel.Cancelled _ -> ());
        (* and a live token lets it complete *)
        let cancel = Storage.Cancel.create () in
        let a = Unnest.Planner.run ~batch:true ~cancel q in
        let b = Unnest.Planner.run q in
        Alcotest.(check int) "same cardinality" (Relation.cardinality b)
          (Relation.cardinality a));
  ]

let suites =
  [
    ( "batch.kernels",
      List.map QCheck_alcotest.to_alcotest
        [ kernel_cmp_prop; kernel_crisp_prop; mem_prop; tnorm_prop ] );
    ("batch.engines", List.map QCheck_alcotest.to_alcotest engine_props);
    ("batch.regressions", regression_cases);
  ]
