(** Tests of the two fuzzy join algorithms of Section 3: the extended
    merge-join must produce exactly the block-nested-loop answer, with
    strictly better asymptotic I/O. *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case

let join_schema name =
  Schema.make ~name [ ("ID", Schema.TNum); ("X", Schema.TNum) ]

let rel_of_values env name values =
  Relation.of_list env (join_schema name)
    (List.mapi
       (fun i (v, d) -> Test_util.tuple [ Value.Int i; Value.Fuzzy v ] d)
       values)

(* Random relations over a small numeric domain so supports overlap often. *)
let arb_join_input =
  let open QCheck.Gen in
  let value =
    map2
      (fun seed crisp ->
        let rng = Random.State.make [| seed |] in
        if crisp then Fuzzy.Possibility.crisp (Random.State.float rng 50.0)
        else
          Fuzzy.Possibility.trap
            (Workload.Gen.random_trapezoid rng ~lo:0.0 ~hi:50.0))
      int bool
  in
  let entry = pair value (map (fun d -> 0.2 +. (0.8 *. d)) (float_bound_inclusive 1.0)) in
  pair (list_size (int_range 0 30) entry) (list_size (int_range 0 30) entry)

let arb_join = QCheck.make arb_join_input

let materialised_join join_fn =
  QCheck.Test.make ~count:100 ~name:"merge-join = nested-loop join" arb_join
    (fun (rs, ss) ->
      let env = Test_util.fresh_env () in
      let r = rel_of_values env "R" rs and s = rel_of_values env "S" ss in
      let nl =
        Join_nested_loop.join ~outer:r ~inner:s ~mem_pages:8
          ~on:[ (1, Fuzzy.Fuzzy_compare.Eq, 1) ] ()
      in
      let mj = join_fn ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1 ~mem_pages:8 () in
      Test_util.answers_equal
        (Test_util.answer_of_relation (Algebra.dedup_max nl))
        (Test_util.answer_of_relation (Algebra.dedup_max mj)))

let prop_merge_equals_nl =
  materialised_join (fun ~outer ~inner ~outer_attr ~inner_attr ~mem_pages () ->
      Join_merge.join_eq ~outer ~inner ~outer_attr ~inner_attr ~mem_pages ())

let prop_indicator_equals_plain =
  QCheck.Test.make ~count:100 ~name:"equality-indicator variant is identical"
    arb_join (fun (rs, ss) ->
      let env = Test_util.fresh_env () in
      let r = rel_of_values env "R" rs and s = rel_of_values env "S" ss in
      let plain =
        Join_merge.join_eq ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:8 ()
      in
      let fast =
        Join_merge.with_indicator ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:8 ()
      in
      Test_util.answers_equal
        (Test_util.answer_of_relation (Algebra.dedup_max plain))
        (Test_util.answer_of_relation (Algebra.dedup_max fast)))

let hand_case =
  tc "hand-checked fuzzy equi-join degrees" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let tr = Fuzzy.Trapezoid.make in
      let r =
        rel_of_values env "R"
          [
            (Fuzzy.Possibility.trap (tr 30. 30. 35. 35.), 1.0);
            (Fuzzy.Possibility.trap (tr 20. 20. 28. 28.), 1.0);
          ]
      in
      let s =
        rel_of_values env "S"
          [
            (Fuzzy.Possibility.trap (tr 32. 32. 34. 34.), 1.0);
            (Fuzzy.Possibility.crisp 25.0, 0.6);
            (Fuzzy.Possibility.trap (tr 30. 30. 40. 40.), 1.0);
          ]
      in
      let out =
        Join_merge.join_eq ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:8 ()
      in
      (* r0 (core 30-35) joins s0 (core 32-34, deg 1), s2 (core 30-40, deg 1);
         r1 (core 20-28) joins s1 (25, deg 0.6). *)
      Alcotest.(check int) "three matches" 3 (Relation.cardinality out);
      List.iter
        (fun t -> Alcotest.(check bool) "full or 0.6" true
            (Fuzzy.Degree.equal (Ftuple.degree t) 1.0
            || Fuzzy.Degree.equal (Ftuple.degree t) 0.6))
        (Relation.to_list out))

let dangling_window_case =
  tc "dangling tuples are examined but never matched" `Quick (fun () ->
      (* The paper's example: s.X = [10, 35] sits in Rng(r) for r.X = [30, 40]
         via sort order, while s'.X in (10, 30) never joins r. *)
      let env = Test_util.fresh_env () in
      let tr a b = Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make a a b b) in
      let r = rel_of_values env "R" [ (tr 30. 40., 1.0) ] in
      let s =
        rel_of_values env "S"
          [ (tr 10. 35., 1.0); (tr 15. 20., 1.0); (tr 33. 34., 1.0) ]
      in
      let out =
        Join_merge.join_eq ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:8 ()
      in
      Alcotest.(check int) "two real matches" 2 (Relation.cardinality out))

let residual_case =
  tc "residual predicate conjunct" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let r = rel_of_values env "R" [ (Fuzzy.Possibility.crisp 10.0, 1.0) ] in
      let s = rel_of_values env "S" [ (Fuzzy.Possibility.crisp 10.0, 1.0) ] in
      let out =
        Join_merge.join_eq ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:8 ~residual:(fun _ _ -> 0.25) ()
      in
      match Relation.to_list out with
      | [ t ] -> Alcotest.(check (float 1e-9)) "degree" 0.25 (Ftuple.degree t)
      | l -> Alcotest.failf "expected 1 tuple, got %d" (List.length l))

let empty_inputs =
  tc "empty inputs" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let r = rel_of_values env "R" [] in
      let s = rel_of_values env "S" [ (Fuzzy.Possibility.crisp 1.0, 1.0) ] in
      let out =
        Join_merge.join_eq ~outer:r ~inner:s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:8 ()
      in
      Alcotest.(check int) "empty" 0 (Relation.cardinality out);
      let out2 =
        Join_nested_loop.join ~outer:s ~inner:r ~mem_pages:8
          ~on:[ (1, Fuzzy.Fuzzy_compare.Eq, 1) ] ()
      in
      Alcotest.(check int) "empty nl" 0 (Relation.cardinality out2))

(* ---------- I/O accounting ---------- *)

let generated_pair env =
  let spec n = { Workload.Gen.default_spec with n; tuple_bytes = 128; groups = 50 } in
  Workload.Gen.join_pair env ~seed:11 ~outer:(spec 400) ~inner:(spec 400)

let nl_io_formula =
  tc "nested loop I/O follows b_R + ceil(b_R/(M-1)) * b_S" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let r, s = generated_pair env in
      let br = Relation.num_pages r and bs = Relation.num_pages s in
      let m = 4 in
      Storage.Iostats.reset env.Storage.Env.stats;
      Join_nested_loop.iter_pairs ~outer:r ~inner:s ~mem_pages:m ~f:(fun _ _ -> ());
      let expected =
        br + (bs * ((br + (m - 1) - 1) / (m - 1)))
      in
      Alcotest.(check int) "reads" expected
        (Storage.Iostats.page_reads env.Storage.Env.stats))

let merge_io_linear =
  tc "merge sweep reads each sorted relation once" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let r, s = generated_pair env in
      let sorted_r = Join_merge.sort_by r ~attr:1 ~mem_pages:16 in
      let sorted_s = Join_merge.sort_by s ~attr:1 ~mem_pages:16 in
      Storage.Buffer_pool.flush env.Storage.Env.pool;
      Storage.Iostats.reset env.Storage.Env.stats;
      Join_merge.sweep_sorted ~outer:sorted_r ~inner:sorted_s ~outer_attr:1
        ~inner_attr:1 ~mem_pages:16 ~f:(fun _ _ -> ()) ();
      let expected = Relation.num_pages sorted_r + Relation.num_pages sorted_s in
      Alcotest.(check int) "reads = b_R + b_S" expected
        (Storage.Iostats.page_reads env.Storage.Env.stats))

let sorted_order_check =
  tc "sort_by orders by Definition 3.1" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let r, _ = generated_pair env in
      let sorted = Join_merge.sort_by r ~attr:1 ~mem_pages:8 in
      let prev = ref None in
      Relation.iter sorted (fun t ->
          let sup = Value.support (Ftuple.value t 1) in
          (match !prev with
          | Some p ->
              Alcotest.(check bool) "nondecreasing" true
                (Fuzzy.Interval.compare_lex p sup <= 0)
          | None -> ());
          prev := Some sup);
      Alcotest.(check int) "same cardinality" (Relation.cardinality r)
        (Relation.cardinality sorted))

let fanout_sanity =
  tc "workload fan-out is close to n_inner / groups" `Quick (fun () ->
      let env = Test_util.fresh_env () in
      let r, s = generated_pair env in
      let matches = ref 0 in
      Join_nested_loop.iter_pairs ~outer:r ~inner:s ~mem_pages:8 ~f:(fun rt st ->
          if
            Fuzzy.Degree.positive
              (Value.compare_degree Fuzzy.Fuzzy_compare.Eq (Ftuple.value rt 1)
                 (Ftuple.value st 1))
          then incr matches);
      let c = float_of_int !matches /. 400.0 in
      (* expected fan-out = 400 / 50 = 8 *)
      Alcotest.(check bool)
        (Printf.sprintf "fan-out %.2f within [5, 11]" c)
        true
        (c > 5.0 && c < 11.0))

(* ---------- parallel execution ---------- *)

(* The degree-equivalence contract of the multicore engine: for every query
   type the planner parallelises, running with domains in {1, 2, 4} must
   return the same answer tuples AND the same membership degrees (domains = 1
   is by construction the sequential engine). *)
let check_parallel kind spec =
  let catalog = Test_equivalence.make_db spec in
  let rng = Random.State.make [| spec.Test_equivalence.seed + 17 |] in
  let sql = Test_equivalence.template rng kind in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
  let answer d =
    Test_util.answer_of_relation (Unnest.Planner.run ~mem_pages:8 ~domains:d q)
  in
  let seq = answer 1 in
  List.for_all
    (fun d ->
      let par = answer d in
      if not (Test_util.answers_equal seq par) then
        QCheck.Test.fail_reportf
          "domains=1 <> domains=%d for %s@.seq: %a@.par: %a" d sql
          Test_util.pp_answer seq Test_util.pp_answer par
      else true)
    [ 2; 4 ]

let parallel_props =
  List.map
    (fun (name, kind, discrete_ok) ->
      QCheck.Test.make ~count:25
        ~name:(Printf.sprintf "parallel degrees: %s with domains {1,2,4}" name)
        (Test_equivalence.arb_spec ~discrete_ok ())
        (check_parallel kind))
    [
      ("type N", `N, true); ("type J", `J, true); ("type JX", `JX, true);
      ("type JA", `JA, false); ("type JALL", `JALL, true);
      ("chain", `Chain, true);
    ]

let partition_replication =
  tc "partition_sweep replicates boundary-straddling windows" `Quick (fun () ->
      let iv = Fuzzy.Interval.make in
      (* Four outer tuples cut into two slices of two; the wide inner
         window [0, 100] overlaps every outer support and must appear in
         both partitions, the narrow ones only where they can join. *)
      let outs = [| (0, iv 0. 10.); (1, iv 5. 15.); (2, iv 20. 30.); (3, iv 25. 40.) |] in
      let ins =
        [| ("low", iv 0. 8.); ("wide", iv 0. 100.); ("cut", iv 12. 22.);
           ("high", iv 26. 35.) |]
      in
      let parts = Join_merge.partition_sweep ~domains:2 outs ins in
      Alcotest.(check int) "two partitions" 2 (Array.length parts);
      let names (_, slice) = List.map fst (Array.to_list slice) in
      let outer_ids (slice, _) = List.map fst (Array.to_list slice) in
      Alcotest.(check (list int)) "first outer slice" [ 0; 1 ] (outer_ids parts.(0));
      Alcotest.(check (list int)) "second outer slice" [ 2; 3 ] (outer_ids parts.(1));
      (* slice 0 covers supports up to hi = 15: "high" (lo 26) is excluded,
         "cut" straddles in via lo 12 <= 15. *)
      Alcotest.(check (list string)) "inner for slice 0"
        [ "low"; "wide"; "cut" ] (names parts.(0));
      (* slice 1 starts at lo = 20: "low" (hi 8) is excluded; "wide" and
         "cut" straddle the boundary and are replicated. *)
      Alcotest.(check (list string)) "inner for slice 1"
        [ "wide"; "cut"; "high" ] (names parts.(1));
      (* A sweep over each partition must find exactly the overlapping pairs
         of the sequential sweep: count them both ways. *)
      let seq_pairs =
        Array.fold_left
          (fun acc (_, ri) ->
            acc
            + Array.fold_left
                (fun a (_, si) -> if Fuzzy.Interval.overlaps ri si then a + 1 else a)
                0 ins)
          0 outs
      in
      let par_pairs =
        Array.fold_left
          (fun acc (o_slice, i_slice) ->
            acc
            + Array.fold_left
                (fun a (_, ri) ->
                  a
                  + Array.fold_left
                      (fun b (_, si) ->
                        if Fuzzy.Interval.overlaps ri si then b + 1 else b)
                      0 i_slice)
                0 o_slice)
          0 parts
      in
      Alcotest.(check int) "overlap pairs preserved" seq_pairs par_pairs)

let suites =
  [
    ( "joins.equivalence",
      List.map QCheck_alcotest.to_alcotest
        [ prop_merge_equals_nl; prop_indicator_equals_plain ]
      @ [ hand_case; dangling_window_case; residual_case; empty_inputs ] );
    ("joins.io", [ nl_io_formula; merge_io_linear; sorted_order_check; fanout_sanity ]);
    ( "joins.parallel",
      List.map QCheck_alcotest.to_alcotest parallel_props
      @ [ partition_replication ] );
  ]
