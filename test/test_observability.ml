(** Tests for the observability layer: the {!Storage.Trace} span collector
    (nesting, counter deltas, exporters, parallel fork/graft), the
    phase-attribution of parallel worker I/O, and {!Storage.Metrics}. *)

open Frepro
open Frepro.Relational

let tc = Alcotest.test_case

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The Table 1 workload at a size that spills the external sort. *)
let traced_run ?(domains = 1) ?trace () =
  let env = Storage.Env.create ~pool_pages:8 () in
  let spec = { Workload.Gen.default_spec with n = 600; groups = 85 } in
  let r, s = Workload.Gen.join_pair env ~seed:7 ~outer:spec ~inner:spec in
  let catalog = Catalog.create env in
  Catalog.add catalog r;
  Catalog.add catalog s;
  let q =
    Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
      "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W)"
  in
  let answer = Unnest.Planner.run ~mem_pages:8 ~domains ?trace q in
  (env, answer)

let span_names trace =
  let names = ref [] in
  Storage.Trace.iter_spans trace (fun sp ->
      names := Storage.Trace.span_name sp :: !names);
  List.rev !names

let trace_tests =
  [
    tc "with_span nests and closes exception-safe" `Quick (fun () ->
        let t = Storage.Trace.create () in
        let trace = Some t in
        let v =
          Storage.Trace.with_span trace "outer" (fun () ->
              Storage.Trace.with_span trace "child-1" (fun () -> ());
              (try
                 Storage.Trace.with_span trace "child-2" (fun () ->
                     failwith "boom")
               with Failure _ -> ());
              Storage.Trace.set_rows trace 42;
              7)
        in
        Alcotest.(check int) "value" 7 v;
        match Storage.Trace.roots t with
        | [ root ] ->
            Alcotest.(check string) "root" "outer"
              (Storage.Trace.span_name root);
            Alcotest.(check (list string))
              "children in order" [ "child-1"; "child-2" ]
              (List.map Storage.Trace.span_name
                 (Storage.Trace.span_children root));
            Alcotest.(check (option int)) "rows on the open span" (Some 42)
              (Storage.Trace.span_rows root);
            Alcotest.(check int) "span_count" 3 (Storage.Trace.span_count t)
        | roots ->
            Alcotest.failf "expected one root, got %d" (List.length roots));
    tc "disabled trace is the identity" `Quick (fun () ->
        let v = Storage.Trace.with_span None "ignored" (fun () -> 11) in
        Storage.Trace.set_rows None 3;
        Storage.Trace.set_est_rows None 3.0;
        Alcotest.(check int) "value" 11 v);
    tc "span deltas track Iostats between open and close" `Quick (fun () ->
        let stats = Storage.Iostats.create () in
        let t = Storage.Trace.create () in
        Storage.Iostats.record_read stats;
        Storage.Trace.with_span (Some t) ~stats "work" (fun () ->
            Storage.Iostats.record_read stats;
            Storage.Iostats.record_write stats;
            Storage.Iostats.record_comparison stats;
            Storage.Iostats.record_fuzzy_op stats);
        match Storage.Trace.roots t with
        | [ sp ] ->
            (* the read recorded before the span is not charged to it *)
            Alcotest.(check int) "reads" 1 (Storage.Trace.span_reads sp);
            Alcotest.(check int) "writes" 1 (Storage.Trace.span_writes sp);
            Alcotest.(check int) "ios" 2 (Storage.Trace.span_ios sp);
            Alcotest.(check int) "compares" 1 (Storage.Trace.span_compares sp);
            Alcotest.(check int) "fuzzy" 1 (Storage.Trace.span_fuzzy_ops sp)
        | _ -> Alcotest.fail "expected one span");
    tc "sequential run records one span per plan operator" `Quick (fun () ->
        let t = Storage.Trace.create () in
        let _env, answer = traced_run ~trace:t () in
        let names = span_names t in
        List.iter
          (fun op ->
            Alcotest.(check bool) ("has span " ^ op) true (List.mem op names))
          [
            "query"; "sort R"; "sort S"; "run-formation"; "k-way-merge";
            "sweep"; "dedup";
          ];
        (* the root span's cardinality is the executed answer's *)
        let root =
          match Storage.Trace.roots t with [ r ] -> r | _ -> assert false
        in
        Alcotest.(check string) "root is the query span" "query"
          (Storage.Trace.span_name root);
        Alcotest.(check (option int)) "root rows" (Some (Relation.cardinality answer))
          (Storage.Trace.span_rows root);
        (* the spilling sort shows up as span I/O *)
        let sort_ios = ref 0 in
        Storage.Trace.iter_spans t (fun sp ->
            if contains (Storage.Trace.span_name sp) "sort" then
              sort_ios := !sort_ios + Storage.Trace.span_ios sp);
        Alcotest.(check bool) "sort spans record I/O" true (!sort_ios > 0));
    tc "parallel run forks lanes and grafts under the coordinator" `Quick
      (fun () ->
        let t = Storage.Trace.create () in
        let _env, _answer = traced_run ~domains:2 ~trace:t () in
        let lanes = ref [] in
        Storage.Trace.iter_spans t (fun sp ->
            let l = Storage.Trace.span_lane sp in
            if not (List.mem l !lanes) then lanes := l :: !lanes);
        Alcotest.(check bool) "worker lanes appear" true
          (List.exists (fun l -> l > 0) !lanes);
        (* grafting keeps a single root: everything hangs off "query" *)
        Alcotest.(check int) "single root" 1
          (List.length (Storage.Trace.roots t)));
    tc "parallel answer equals sequential answer" `Quick (fun () ->
        let _e1, a1 = traced_run () in
        let _e2, a2 = traced_run ~domains:2 () in
        Test_util.check_same_answer "domains=2 = domains=1" a1 a2);
  ]

let exporter_tests =
  [
    tc "pp_tree renders times, I/Os and estimate errors" `Quick (fun () ->
        let t = Storage.Trace.create () in
        let _env, _answer = traced_run ~trace:t () in
        Storage.Trace.iter_spans t (fun sp ->
            if Storage.Trace.span_name sp = "sweep" then
              Storage.Trace.span_set_est_rows sp 10.0);
        let text = Format.asprintf "%a" Storage.Trace.pp_tree t in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("pp_tree has " ^ needle) true
              (contains text needle))
          [ "query"; "sweep"; "est~10"; "rows" ]);
    tc "to_json nests children under their parent" `Quick (fun () ->
        let t = Storage.Trace.create () in
        Storage.Trace.with_span (Some t) "parent" (fun () ->
            Storage.Trace.with_span (Some t) "kid" (fun () -> ()));
        let json = Storage.Trace.to_json t in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("json has " ^ needle) true
              (contains json needle))
          [ {json|"name": "parent"|json}; {json|"name": "kid"|json};
            {json|"children"|json} ]);
    tc "chrome export emits one complete event per span + thread names"
      `Quick (fun () ->
        let t = Storage.Trace.create () in
        let _env, _answer = traced_run ~domains:2 ~trace:t () in
        let json = Storage.Trace.to_chrome_json t in
        let count needle =
          let n = String.length needle in
          let rec go i acc =
            if i + n > String.length json then acc
            else if String.sub json i n = needle then go (i + n) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        Alcotest.(check int) "one X event per span"
          (Storage.Trace.span_count t)
          (count {json|"ph": "X"|json});
        Alcotest.(check bool) "thread metadata present" true
          (contains json {json|"thread_name"|json});
        Alcotest.(check bool) "coordinator lane named" true
          (contains json "coordinator"));
  ]

let phase_tests =
  [
    tc "parallel sort I/O is charged to the Sort phase" `Quick (fun () ->
        let env, _answer = traced_run ~domains:2 () in
        let stats = env.Storage.Env.stats in
        Alcotest.(check bool) "sort-phase I/O > 0" true
          (Storage.Iostats.phase_ios stats Storage.Iostats.Sort > 0);
        (* without the worker-record tagging these transfers land in Other *)
        Alcotest.(check bool) "sort-phase I/O dominates Other" true
          (Storage.Iostats.phase_ios stats Storage.Iostats.Sort
          > Storage.Iostats.phase_ios stats Storage.Iostats.Other));
    tc "parallel and sequential runs agree on per-phase I/O totals" `Quick
      (fun () ->
        let e1, _ = traced_run () and e2, _ = traced_run ~domains:2 () in
        let s1 = e1.Storage.Env.stats and s2 = e2.Storage.Env.stats in
        (* the parallel engine does extra transfers (private pools), but
           whatever it does must be attributed: Sort + Merge + Join + Other
           = total on both sides *)
        let covered s =
          List.fold_left
            (fun acc p -> acc + Storage.Iostats.phase_ios s p)
            0
            [
              Storage.Iostats.Sort; Storage.Iostats.Merge;
              Storage.Iostats.Join; Storage.Iostats.Other;
            ]
        in
        Alcotest.(check int) "sequential phases cover the total"
          (Storage.Iostats.total_ios s1) (covered s1);
        Alcotest.(check int) "parallel phases cover the total"
          (Storage.Iostats.total_ios s2) (covered s2));
  ]

let metrics_tests =
  [
    tc "counters find-or-register and accumulate" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        let c = Storage.Metrics.counter m "queries" in
        Storage.Metrics.incr c;
        Storage.Metrics.incr ~by:4 (Storage.Metrics.counter m "queries");
        Alcotest.(check int) "value" 5 (Storage.Metrics.counter_value c);
        Alcotest.(check string) "name" "queries"
          (Storage.Metrics.counter_name c));
    tc "histograms record count/sum/min/max/quantiles" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        let h = Storage.Metrics.histogram m "wall_s" in
        List.iter (Storage.Metrics.observe h) [ 0.001; 0.002; 0.004; 0.4 ];
        Alcotest.(check int) "count" 4 (Storage.Metrics.hist_count h);
        Alcotest.(check (float 1e-9)) "sum" 0.407 (Storage.Metrics.hist_sum h);
        Alcotest.(check (float 1e-9)) "min" 0.001 (Storage.Metrics.hist_min h);
        Alcotest.(check (float 1e-9)) "max" 0.4 (Storage.Metrics.hist_max h);
        let p50 = Storage.Metrics.hist_quantile h 0.5 in
        Alcotest.(check bool) "p50 bounds the median bucket" true
          (p50 >= 0.002 && p50 <= 0.008);
        Alcotest.(check (float 1e-9)) "p100 clamps to max" 0.4
          (Storage.Metrics.hist_quantile h 1.0));
    tc "reset zeroes but keeps instruments registered" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        Storage.Metrics.incr (Storage.Metrics.counter m "c");
        Storage.Metrics.observe (Storage.Metrics.histogram m "h") 2.0;
        Storage.Metrics.reset m;
        Alcotest.(check int) "counter zero" 0
          (Storage.Metrics.counter_value (Storage.Metrics.counter m "c"));
        Alcotest.(check int) "hist zero" 0
          (Storage.Metrics.hist_count (Storage.Metrics.histogram m "h")));
    tc "pp and to_json list every instrument" `Quick (fun () ->
        let m = Storage.Metrics.create () in
        Storage.Metrics.incr ~by:3 (Storage.Metrics.counter m "ios");
        Storage.Metrics.observe (Storage.Metrics.histogram m "answer_size") 9.0;
        let text = Format.asprintf "%a" Storage.Metrics.pp m in
        Alcotest.(check bool) "pp has counter" true (contains text "ios");
        Alcotest.(check bool) "pp has histogram" true
          (contains text "answer_size");
        let json = Storage.Metrics.to_json m in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("json has " ^ needle) true
              (contains json needle))
          [ {json|"ios"|json}; {json|"answer_size"|json} ]);
  ]

let suites =
  [
    ("observability.trace", trace_tests);
    ("observability.exporters", exporter_tests);
    ("observability.phases", phase_tests);
    ("observability.metrics", metrics_tests);
  ]
